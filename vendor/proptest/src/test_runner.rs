//! Case configuration, the deterministic per-case RNG, and the failure
//! minimizer.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::strategy::Strategy;

/// How many cases a [`crate::proptest!`] block runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Cases per property (before the `PROPTEST_CASES` env override).
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running exactly `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Cases to actually run: `PROPTEST_CASES` (if set and parseable) wins
    /// over the configured count, mirroring the real crate's env override.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    /// 64 cases — far fewer than the real crate's 256, because several of
    /// the workspace's properties run whole simulations per case.
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// FNV-1a hash of the test's full path; the per-test seed root.
pub fn case_seed(test_path: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Type-anchoring helper for the [`proptest!`](crate::proptest) macro:
/// binds a case-checking closure to `strat`'s value type, so the closure
/// body type-checks against concrete inputs instead of an inference
/// variable.
pub fn checker_for<S: Strategy, F>(_strat: &S, f: F) -> F
where
    F: FnMut(&S::Value) -> bool,
{
    f
}

/// Iteratively simplifies a failing input toward a minimal reproducer.
///
/// Walks the strategy's [`shrink`](Strategy::shrink) candidates; whenever
/// one still reproduces the failure (`fails` returns `true`), it becomes
/// the new value and the walk restarts from it. Stops when no candidate
/// fails or the attempt budget runs out (so pathological shrink chains
/// terminate), and returns the smallest failing value found — `value`
/// itself if nothing simpler still fails.
pub fn minimize<S: Strategy>(
    strat: &S,
    mut value: S::Value,
    fails: &mut dyn FnMut(&S::Value) -> bool,
) -> S::Value {
    let mut attempts = 100usize;
    'outer: loop {
        for cand in strat.shrink(&value) {
            if attempts == 0 {
                break 'outer;
            }
            attempts -= 1;
            if fails(&cand) {
                value = cand;
                continue 'outer;
            }
        }
        break;
    }
    value
}

/// Deterministic generator for one test case.
///
/// Delegates to the vendored `rand` crate's [`StdRng`] so the workspace has
/// exactly one PRNG implementation to keep correct.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Builds the RNG for case `case` of the test seeded by `base`.
    pub fn new(base: u64, case: u32) -> Self {
        let seed = base ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen()
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty size range");
        self.inner.gen_range(lo..hi)
    }
}
