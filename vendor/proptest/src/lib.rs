//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate.
//!
//! The build environment has no cargo registry, so the workspace vendors the
//! subset its test suites use:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * strategies: numeric ranges (`0u16..4`, `3u32..=8`, `-50.0f32..50.0`),
//!   tuples of strategies, [`collection::vec`], [`strategy::Just`], and
//!   [`strategy::Strategy::prop_map`].
//!
//! Differences from the real crate, chosen deliberately for an offline,
//! reproducible build:
//!
//! * **Deterministic cases.** Inputs derive from a hash of the test's module
//!   path and name plus the case index — every run explores the same cases,
//!   so a CI failure always reproduces locally.
//! * **Minimal shrinking.** A failing case is re-run under
//!   [`test_runner::minimize`]: integers step toward their range's lower
//!   bound (bound, halfway, decrement), vec lengths truncate toward their
//!   minimum, and tuples shrink one component at a time — then the test
//!   panics with the minimized inputs. There is no value-tree machinery;
//!   `prop_map`ped values do not shrink (the map cannot be inverted), and
//!   intermediate panic messages from shrink attempts still reach captured
//!   test output before the final report.
//! * `prop_assert*` panics (a failure is caught by the minimizer's
//!   `catch_unwind` rather than routed through a rejection channel).

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-importable surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines deterministic property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
///
/// (In real test code each function carries `#[test]`, as in the module
/// docs; the doctest omits it so the property actually runs here.)
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __cases = __config.effective_cases();
            let __base = $crate::test_runner::case_seed(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let __strat = ($(($strat),)+);
            let mut __fails = $crate::test_runner::checker_for(&__strat, |__candidate| {
                let ($($arg,)+) = ::std::clone::Clone::clone(__candidate);
                ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                )
                .is_err()
            });
            for __case in 0..__cases {
                let mut __rng = $crate::test_runner::TestRng::new(__base, __case);
                let __value =
                    $crate::strategy::Strategy::generate(&__strat, &mut __rng);
                if __fails(&__value) {
                    let __minimized = $crate::test_runner::minimize(
                        &__strat,
                        __value,
                        &mut __fails,
                    );
                    panic!(
                        "proptest {} failed on case {}; minimized input {} = {:?}",
                        stringify!($name),
                        __case,
                        stringify!(($($arg),+)),
                        __minimized,
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(
            x in 0u16..4,
            y in 3u32..=8,
            f in -50.0f32..50.0,
            n in 1usize..40,
        ) {
            prop_assert!(x < 4);
            prop_assert!((3..=8).contains(&y));
            prop_assert!((-50.0..50.0).contains(&f));
            prop_assert!((1..40).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        /// Vec strategies honor length ranges; tuples compose.
        #[test]
        fn vec_and_tuple_strategies(
            xs in crate::collection::vec(0u64..100, 1..30),
            pairs in crate::collection::vec((0u16..4, 0u16..6), 0..10),
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 30);
            prop_assert!(xs.iter().all(|&x| x < 100));
            prop_assert!(pairs.len() < 10);
            prop_assert!(pairs.iter().all(|&(a, b)| a < 4 && b < 6));
        }

        #[test]
        fn prop_map_transforms(len in crate::collection::vec(-1.0f64..1.0, 3)) {
            prop_assert_eq!(len.len(), 3);
        }
    }

    #[test]
    fn minimize_halves_and_decrements_to_the_boundary() {
        // Failure iff the first component ≥ 10: halving jumps close, the
        // decrement step lands exactly on the boundary, and the passing
        // second component shrinks all the way to its lower bound.
        let strat = (0u32..100, 0u32..100);
        let mut fails = |v: &(u32, u32)| v.0 >= 10;
        let min = crate::test_runner::minimize(&strat, (57, 33), &mut fails);
        assert_eq!(min, (10, 0));
    }

    #[test]
    fn minimize_truncates_vec_lengths() {
        let strat = crate::collection::vec(0u64..100, 1..30);
        let mut fails = |v: &Vec<u64>| v.len() >= 4;
        let min = crate::test_runner::minimize(&strat, (0..20).collect(), &mut fails);
        assert_eq!(min, vec![0, 1, 2, 3], "minimal failing prefix");
    }

    #[test]
    fn minimize_keeps_the_original_when_nothing_smaller_fails() {
        let strat = 5u32..50;
        let mut fails = |v: &u32| *v == 23;
        assert_eq!(crate::test_runner::minimize(&strat, 23, &mut fails), 23);
    }

    #[test]
    fn cases_are_deterministic() {
        let base = crate::test_runner::case_seed("a::b");
        let mut r1 = crate::test_runner::TestRng::new(base, 5);
        let mut r2 = crate::test_runner::TestRng::new(base, 5);
        assert_eq!(r1.next_u64(), r2.next_u64());
        let mut r3 = crate::test_runner::TestRng::new(base, 6);
        assert_ne!(r1.next_u64(), r3.next_u64());
    }
}
