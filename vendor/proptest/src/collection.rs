//! Collection strategies (only `vec` is needed by the workspace).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for [`vec`]: an exact length or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_in(self.size.lo, self.size.hi);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    /// Shrinks by truncating toward the minimal length: straight to the
    /// minimum, to half the excess, then by one element.
    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let (min, len) = (self.size.lo, v.len());
        if len <= min {
            return Vec::new();
        }
        let mut lens = vec![min, min + (len - min) / 2, len - 1];
        lens.dedup();
        lens.into_iter().map(|l| v[..l].to_vec()).collect()
    }
}

/// A strategy for `Vec`s whose elements come from `elem` and whose length
/// comes from `size` (a `usize` or a `Range<usize>`).
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}
