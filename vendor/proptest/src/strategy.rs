//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest `Strategy` (which yields shrinkable value
/// trees), this stand-in generates plain values directly — there is no
/// shrinking, so `Value` needs no extra structure.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value for the current test case.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Candidate simplifications of `value`, most aggressive first: the
    /// failure minimizer (see
    /// [`minimize`](crate::test_runner::minimize)) walks these while the
    /// failure still reproduces. An empty vector means the value is
    /// already minimal or the strategy cannot shrink (the default —
    /// e.g. [`Map`] cannot invert its function).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Maps generated values through `f` (e.g. raw `Vec<f32>` → `Matrix`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Integer shrink chain toward the range's lower bound: the bound itself
/// (maximally aggressive), the halfway point, then plain decrement — the
/// halving covers big jumps quickly, the decrement lets the minimizer land
/// on the exact boundary a halving chain would step over.
macro_rules! int_shrink_candidates {
    ($t:ty, $wide:ty, $lo:expr, $v:expr) => {{
        let (lo, v) = ($lo, $v);
        if v <= lo {
            Vec::new()
        } else {
            let mid = (lo as $wide + (v as $wide - lo as $wide) / 2) as $t;
            let mut out = vec![lo];
            if mid != lo {
                out.push(mid);
            }
            let dec = v - 1;
            if dec != mid && dec != lo {
                out.push(dec);
            }
            out
        }
    }};
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                int_shrink_candidates!($t, u128, self.start, *v)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    // Full 64-bit domain: raw bits.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span as u64) as $t
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                int_shrink_candidates!($t, u128, *self.start(), *v)
            }
        }
    )*};
}

impl_uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_sint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                int_shrink_candidates!($t, i128, self.start, *v)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Full 64-bit domain: raw bits reinterpreted.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % span as u64) as i128) as $t
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                int_shrink_candidates!($t, i128, *self.start(), *v)
            }
        }
    )*};
}

impl_sint_range_strategy!(i8, i16, i32, i64, isize);

/// Float shrink chain: the lower bound, then halfway toward it (no
/// decrement — there is no useful "one less" float).
macro_rules! float_shrink_candidates {
    ($lo:expr, $v:expr) => {{
        let (lo, v) = ($lo, $v);
        if v > lo {
            let mid = lo + (v - lo) / 2.0;
            let mut out = vec![lo];
            if mid != lo && mid != v {
                out.push(mid);
            }
            out
        } else {
            // At the bound already (or incomparable, e.g. NaN): minimal.
            Vec::new()
        }
    }};
}

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t; // [0, 1)
                let x = self.start + u * (self.end - self.start);
                // The affine map can round up to exactly `end`; keep it out.
                if x >= self.end {
                    self.end.next_down()
                } else {
                    x
                }
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                float_shrink_candidates!(self.start, *v)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let u = rng.unit_f64() as $t;
                lo + u * (hi - lo)
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                float_shrink_candidates!(*self.start(), *v)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
);
