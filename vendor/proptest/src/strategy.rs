//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike the real proptest `Strategy` (which yields shrinkable value
/// trees), this stand-in generates plain values directly — there is no
/// shrinking, so `Value` needs no extra structure.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value for the current test case.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (e.g. raw `Vec<f32>` → `Matrix`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                if span > u64::MAX as u128 {
                    // Full 64-bit domain: raw bits.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}

impl_uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_sint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    // Full 64-bit domain: raw bits reinterpreted.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sint_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t; // [0, 1)
                let x = self.start + u * (self.end - self.start);
                // The affine map can round up to exactly `end`; keep it out.
                if x >= self.end {
                    self.end.next_down()
                } else {
                    x
                }
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let u = rng.unit_f64() as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);
