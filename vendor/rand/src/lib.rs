//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no access to a cargo registry, so the workspace
//! vendors the *minimal* PRNG surface its code actually uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator,
//! * [`SeedableRng::seed_from_u64`],
//! * [`Rng::gen`] and [`Rng::gen_range`] over integer and float ranges.
//!
//! Determinism is the only contract the workspace relies on (seeded weight
//! init and gating traces must be reproducible run-to-run); the exact stream
//! does **not** need to match the real `rand` crate.

/// Random number generators (only [`rngs::StdRng`] is provided).
pub mod rngs {
    /// A deterministic xoshiro256++ PRNG, seeded via splitmix64.
    ///
    /// Statistically solid for simulation workloads and, unlike the real
    /// `StdRng`, guaranteed stable across versions of this workspace.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            // splitmix64 expansion, the standard way to seed xoshiro.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next_u64_impl()
        }
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_u64(seed)
        }
    }
}

/// The raw-output trait every generator implements.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Constructing generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types with a uniform sampler over arbitrary sub-ranges.
///
/// Mirrors the real rand's `SampleUniform`: one *generic* `SampleRange`
/// impl per range shape is what lets `rng.gen_range(-0.05..=0.05)` infer
/// `f32` from the call site instead of defaulting the literal to `f64`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uint_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as u128 - lo as u128) as u64;
                lo + (rng.next_u64() % span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 || span > u64::MAX as u128 {
                    // Full 64-bit (or wider-than-u64) domain: raw bits.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span as u64) as $t
            }
        }
    )*};
}

impl_uint_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sint_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span == 0 || span > u64::MAX as u128 {
                    // Full 64-bit domain: raw bits reinterpreted.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + (rng.next_u64() % span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sint_uniform!(i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let u = <$t as Standard>::sample_standard(rng); // [0, 1)
                let x = lo + u * (hi - lo);
                // lo + u*(hi-lo) can round up to exactly hi; keep it out.
                if x >= hi {
                    hi.next_down()
                } else {
                    x
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Ranges samplable via [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "empty gen_range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws one value uniformly over `T`'s domain (floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-0.25..=0.25);
            assert!((-0.25..=0.25).contains(&x));
            let i: usize = rng.gen_range(0..=4);
            assert!(i <= 4);
            let j: u64 = rng.gen_range(5..10);
            assert!((5..10).contains(&j));
            let f: f32 = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..4096 {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }
}
