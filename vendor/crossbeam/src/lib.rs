//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, built entirely on `std`.
//!
//! The workspace uses exactly two pieces of crossbeam:
//!
//! * [`channel::bounded`] / [`channel::unbounded`] MPMC channels — a ring
//!   buffer (`VecDeque`) under a mutex with two condvars. Unlike
//!   `std::sync::mpsc`, which allocates a list node per message, sends into
//!   the pre-reserved ring are allocation-free at steady state — required
//!   by the native pipeline's zero-allocation decode invariant (pinned by
//!   the `alloc_pin` test in `klotski-analyze`).
//! * [`scope`] — mapped to `std::thread::scope`. Spawn closures receive a
//!   placeholder `()` argument where crossbeam passes the scope handle; the
//!   workspace's closures ignore it (`|_|`).

use std::any::Any;

/// Multi-producer, multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Initial ring capacity. Deep enough for every queue the native
    /// pipeline keeps in flight during decode, so the ring never grows
    /// after construction; a deeper bounded channel reserves its full
    /// bound up front instead.
    const INITIAL_DEPTH: usize = 32;

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// `Some(bound)` for bounded channels (`send` blocks while full).
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a channel. Cloneable; `send` blocks when a
    /// bounded channel is full.
    pub struct Sender<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().expect("channel lock").senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().expect("channel lock");
            st.senders -= 1;
            if st.senders == 0 {
                // Wake blocked receivers so they observe disconnection.
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking on a full bounded channel. Errors only
        /// when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.0.state.lock().expect("channel lock");
            if let Some(cap) = self.0.cap {
                // `cap == 0` (rendezvous) is unused in this workspace;
                // treat it as a one-slot channel.
                while st.queue.len() >= cap.max(1) {
                    if st.receivers == 0 {
                        return Err(SendError(value));
                    }
                    st = self.0.not_full.wait(st).expect("channel lock");
                }
            }
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            self.0.not_empty.notify_one();
            Ok(())
        }
    }

    /// The receiving half of a channel. Cloneable: clones share the same
    /// ring, and each message is delivered to exactly one receiver —
    /// crossbeam's MPMC work-queue semantics.
    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.state.lock().expect("channel lock").receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.0.state.lock().expect("channel lock");
            st.receivers -= 1;
            if st.receivers == 0 {
                // Wake blocked senders so they observe disconnection.
                self.0.not_full.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives. Errors only when every sender is
        /// gone and the channel is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.0.state.lock().expect("channel lock");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.0.not_empty.wait(st).expect("channel lock");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.0.state.lock().expect("channel lock");
            match st.queue.pop_front() {
                Some(v) => {
                    self.0.not_full.notify_one();
                    Ok(v)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }
    }

    fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let depth = cap.unwrap_or(0).max(INITIAL_DEPTH);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(depth),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        channel(None)
    }

    /// Creates a channel holding at most `cap` in-flight values; `send`
    /// blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        channel(Some(cap))
    }
}

/// A scope in which borrowing threads can be spawned.
///
/// Thin wrapper over [`std::thread::Scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a thread spawned inside a [`scope`].
pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread and returns its result (`Err` if it panicked).
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.0.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure's argument is a placeholder for
    /// crossbeam's nested-scope handle and is always `()` here.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle(self.inner.spawn(move || f(())))
    }
}

/// Runs `f` with a [`Scope`]; all spawned threads are joined before this
/// returns. Unjoined-thread panics propagate as panics (rather than `Err`,
/// which is what the real crossbeam returns); the workspace treats both as
/// fatal via `.expect`, so the observable behavior matches.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3];
        let sum = super::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<u64>());
            h.join().expect("worker")
        })
        .expect("scope");
        assert_eq!(sum, 6);
    }

    #[test]
    fn bounded_channel_acts_as_slot_pool() {
        let (slot_tx, slot_rx) = bounded::<()>(2);
        slot_tx.send(()).unwrap();
        slot_tx.send(()).unwrap();
        let (req_tx, req_rx) = unbounded::<u32>();
        super::scope(|s| {
            let worker = s.spawn(move |_| {
                let mut served = 0;
                while let Ok(x) = req_rx.recv() {
                    slot_rx.recv().unwrap();
                    served += x;
                }
                served
            });
            for i in 1..=3 {
                req_tx.send(i).unwrap();
            }
            drop(req_tx);
            // Return the slots the worker consumed (blocking handshake).
            slot_tx.send(()).unwrap();
            assert_eq!(worker.join().expect("worker"), 6);
        })
        .expect("scope");
    }

    #[test]
    fn cloned_receivers_share_a_work_queue() {
        // MPMC semantics: every message is consumed exactly once across
        // all receiver clones (the native pipeline's worker pool).
        let (tx, rx) = unbounded::<u32>();
        for i in 0..100u32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let totals = super::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| {
                        let mut sum = 0u32;
                        let mut count = 0u32;
                        while let Ok(x) = rx.recv() {
                            sum += x;
                            count += 1;
                        }
                        (sum, count)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect::<Vec<_>>()
        })
        .expect("scope");
        let sum: u32 = totals.iter().map(|&(s, _)| s).sum();
        let count: u32 = totals.iter().map(|&(_, c)| c).sum();
        assert_eq!(sum, (0..100).sum::<u32>(), "messages lost or duplicated");
        assert_eq!(count, 100);
    }

    #[test]
    fn disconnection_is_observed() {
        use super::channel::TryRecvError;
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(7).unwrap();
        drop(tx);
        // Queued values drain before disconnection surfaces.
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert!(rx.recv().is_err());

        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert!(tx.send(1).is_err(), "send fails with no receivers");
    }
}
