//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate, built entirely on `std`.
//!
//! The workspace uses exactly two pieces of crossbeam:
//!
//! * [`channel::bounded`] / [`channel::unbounded`] MPMC channels — mapped to
//!   `std::sync::mpsc` (`sync_channel` / `channel`) with the `Receiver`
//!   wrapped in an `Arc<Mutex<…>>` so it is `Clone`, matching crossbeam's
//!   multi-consumer capability (the native pipeline's compute worker pool
//!   shares one task receiver).
//! * [`scope`] — mapped to `std::thread::scope`. Spawn closures receive a
//!   placeholder `()` argument where crossbeam passes the scope handle; the
//!   workspace's closures ignore it (`|_|`).

use std::any::Any;

/// Multi-producer, multi-consumer channels.
pub mod channel {
    use std::sync::{mpsc, Arc, Mutex};

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    enum SenderInner<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    /// The sending half of a channel. Cloneable; `send` blocks when a
    /// bounded channel is full.
    pub struct Sender<T>(SenderInner<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(match &self.0 {
                SenderInner::Unbounded(s) => SenderInner::Unbounded(s.clone()),
                SenderInner::Bounded(s) => SenderInner::Bounded(s.clone()),
            })
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, blocking on a full bounded channel. Errors only
        /// when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderInner::Unbounded(s) => s.send(value),
                SenderInner::Bounded(s) => s.send(value),
            }
        }
    }

    /// The receiving half of a channel. Cloneable: clones share the same
    /// stream, and each message is delivered to exactly one receiver —
    /// crossbeam's MPMC work-queue semantics (backed by a mutex over the
    /// single `std::sync::mpsc` consumer).
    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives. Errors only when every sender is
        /// gone and the channel is drained. When receivers are cloned, one
        /// waiter holds the inner lock while blocking; the others queue on
        /// the lock and take subsequent messages — every message goes to
        /// exactly one receiver.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.lock().expect("receiver lock").recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.lock().expect("receiver lock").try_recv()
        }
    }

    fn wrap<T>(rx: mpsc::Receiver<T>) -> Receiver<T> {
        Receiver(Arc::new(Mutex::new(rx)))
    }

    /// Creates a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(SenderInner::Unbounded(tx)), wrap(rx))
    }

    /// Creates a channel holding at most `cap` in-flight values; `send`
    /// blocks while full (`cap == 0` is a rendezvous channel).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(SenderInner::Bounded(tx)), wrap(rx))
    }
}

/// A scope in which borrowing threads can be spawned.
///
/// Thin wrapper over [`std::thread::Scope`].
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a thread spawned inside a [`scope`].
pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread and returns its result (`Err` if it panicked).
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.0.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure's argument is a placeholder for
    /// crossbeam's nested-scope handle and is always `()` here.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle(self.inner.spawn(move || f(())))
    }
}

/// Runs `f` with a [`Scope`]; all spawned threads are joined before this
/// returns. Unjoined-thread panics propagate as panics (rather than `Err`,
/// which is what the real crossbeam returns); the workspace treats both as
/// fatal via `.expect`, so the observable behavior matches.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3];
        let sum = super::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<u64>());
            h.join().expect("worker")
        })
        .expect("scope");
        assert_eq!(sum, 6);
    }

    #[test]
    fn bounded_channel_acts_as_slot_pool() {
        let (slot_tx, slot_rx) = bounded::<()>(2);
        slot_tx.send(()).unwrap();
        slot_tx.send(()).unwrap();
        let (req_tx, req_rx) = unbounded::<u32>();
        super::scope(|s| {
            let worker = s.spawn(move |_| {
                let mut served = 0;
                while let Ok(x) = req_rx.recv() {
                    slot_rx.recv().unwrap();
                    served += x;
                }
                served
            });
            for i in 1..=3 {
                req_tx.send(i).unwrap();
            }
            drop(req_tx);
            // Return the slots the worker consumed (blocking handshake).
            slot_tx.send(()).unwrap();
            assert_eq!(worker.join().expect("worker"), 6);
        })
        .expect("scope");
    }

    #[test]
    fn cloned_receivers_share_a_work_queue() {
        // MPMC semantics: every message is consumed exactly once across
        // all receiver clones (the native pipeline's worker pool).
        let (tx, rx) = unbounded::<u32>();
        for i in 0..100u32 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let totals = super::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| {
                        let mut sum = 0u32;
                        let mut count = 0u32;
                        while let Ok(x) = rx.recv() {
                            sum += x;
                            count += 1;
                        }
                        (sum, count)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect::<Vec<_>>()
        })
        .expect("scope");
        let sum: u32 = totals.iter().map(|&(s, _)| s).sum();
        let count: u32 = totals.iter().map(|&(_, c)| c).sum();
        assert_eq!(sum, (0..100).sum::<u32>(), "messages lost or duplicated");
        assert_eq!(count, 100);
    }
}
