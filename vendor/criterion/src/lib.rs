//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking crate.
//!
//! Implements the subset the workspace's `benches/` use — [`Criterion`],
//! [`Bencher::iter`], [`black_box`], [`criterion_group!`] and
//! [`criterion_main!`] — as a plain wall-clock timing harness: a short
//! warm-up, then batches until a time budget is spent, reporting the mean
//! and best iteration time. No statistics, plots, or baselines; those can
//! come back the day a real registry is reachable.

use std::time::{Duration, Instant};

/// An opaque barrier preventing the optimizer from deleting a computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark timing loop handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`Bencher::iter`].
    mean_ns: f64,
    /// Best (minimum) nanoseconds per iteration.
    min_ns: f64,
    /// Total iterations measured.
    iters: u64,
}

impl Bencher {
    /// Times `f`: 3 warm-up calls, then batches until the budget
    /// (`KLOTSKI_BENCH_MS`, default 300 ms) or 10 000 iterations.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..3 {
            black_box(f());
        }
        let budget = Duration::from_millis(
            std::env::var("KLOTSKI_BENCH_MS")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(300),
        );
        let start = Instant::now();
        let mut iters: u64 = 0;
        let mut min_ns = f64::INFINITY;
        while start.elapsed() < budget && iters < 10_000 {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed().as_nanos() as f64;
            min_ns = min_ns.min(dt);
            iters += 1;
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters.max(1) as f64;
        self.min_ns = if min_ns.is_finite() { min_ns } else { 0.0 };
        self.iters = iters;
    }
}

/// The benchmark driver; one per `criterion_group!`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one named benchmark and prints its timing line.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mean_ns: 0.0,
            min_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        println!(
            "{id:<44} time: [mean {:>12} | best {:>12} | {} iters]",
            fmt_ns(b.mean_ns),
            fmt_ns(b.min_ns),
            b.iters
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a benchmark group function `$name` running each `$target`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each benchmark group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        std::env::set_var("KLOTSKI_BENCH_MS", "5");
        let mut c = Criterion::default();
        c.bench_function("shim/self_test", |b| {
            b.iter(|| black_box((0..100u64).sum::<u64>()))
        });
    }

    #[test]
    fn formats_cover_magnitudes() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with(" s"));
    }
}
