//! The paper's Table 3 ablation, as an executable invariant: each added
//! technique must not hurt, and the big jumps must come from where the
//! paper says they come from.

use klotski::core::engine::{KlotskiConfig, KlotskiEngine};
use klotski::core::scenario::{Engine, Scenario};
use klotski::model::hardware::HardwareSpec;
use klotski::model::spec::ModelSpec;
use klotski::model::workload::Workload;

fn scenario() -> Scenario {
    Scenario::generate(
        ModelSpec::mixtral_8x7b(),
        HardwareSpec::env1_rtx3090(),
        Workload::new(16, 10, 256, 8),
        77,
    )
}

fn tps(cfg: KlotskiConfig, sc: &Scenario) -> f64 {
    let r = KlotskiEngine::new(cfg).run(sc).expect("run");
    assert!(r.succeeded(), "{:?}", r.oom);
    r.throughput_tps()
}

#[test]
fn each_technique_adds_throughput() {
    let sc = scenario();
    let simple = tps(KlotskiConfig::ablation_simple_pipeline(), &sc);
    let multi = tps(KlotskiConfig::ablation_multi_batch(), &sc);
    let hot = tps(KlotskiConfig::ablation_hot_prefetch(), &sc);
    let full = tps(KlotskiConfig::full(), &sc);
    let quant = tps(KlotskiConfig::quantized(), &sc);

    assert!(
        multi > simple,
        "multi-batch {multi:.2} ≤ simple {simple:.2}"
    );
    assert!(hot > multi, "hot-prefetch {hot:.2} ≤ multi {multi:.2}");
    assert!(full >= hot, "reorder {full:.2} < hot {hot:.2}");
    assert!(
        quant >= full * 0.95,
        "quant {quant:.2} far below full {full:.2}"
    );
}

#[test]
fn multi_batch_is_the_biggest_single_win() {
    // Table 3: "considering multi-batch computations provides the most
    // significant enhancement" (5.7 → 18.2 tok/s in Env 1).
    let sc = scenario();
    let simple = tps(KlotskiConfig::ablation_simple_pipeline(), &sc);
    let multi = tps(KlotskiConfig::ablation_multi_batch(), &sc);
    let hot = tps(KlotskiConfig::ablation_hot_prefetch(), &sc);
    let full = tps(KlotskiConfig::full(), &sc);
    let multi_gain = multi / simple;
    let hot_gain = hot / multi;
    let reorder_gain = full / hot;
    assert!(
        multi_gain > hot_gain && multi_gain > reorder_gain,
        "multi-batch gain {multi_gain:.2}× should dominate (hot {hot_gain:.2}×, reorder {reorder_gain:.2}×)"
    );
    assert!(
        multi_gain > 2.0,
        "multi-batch should be a multi-× improvement, got {multi_gain:.2}×"
    );
}

#[test]
fn ablation_holds_on_env2_as_well() {
    let sc = Scenario::generate(
        ModelSpec::mixtral_8x22b(),
        HardwareSpec::env2_h800(),
        Workload::new(16, 8, 256, 6),
        78,
    );
    let simple = tps(KlotskiConfig::ablation_simple_pipeline(), &sc);
    let multi = tps(KlotskiConfig::ablation_multi_batch(), &sc);
    let full = tps(KlotskiConfig::full(), &sc);
    assert!(multi > simple);
    assert!(full > multi);
}

#[test]
fn quantization_trades_little_peak_for_smaller_n() {
    // §9.3: quantization "has minimal impact on maximum throughput" but
    // lets a smaller n reach full overlap. Compare full-n runs against
    // half-n runs: quantized should lose much less from the smaller group.
    let spec = ModelSpec::mixtral_8x7b();
    let hw = HardwareSpec::env1_rtx3090();
    let big = Scenario::generate(spec.clone(), hw.clone(), Workload::new(16, 12, 256, 6), 79);
    let small = Scenario::generate(spec, hw, Workload::new(16, 4, 256, 6), 79);
    let full_big = tps(KlotskiConfig::full(), &big);
    let full_small = tps(KlotskiConfig::full(), &small);
    let quant_small = tps(KlotskiConfig::quantized(), &small);
    let full_drop = full_small / full_big;
    assert!(
        quant_small > full_small,
        "at small n, quantization must help: {quant_small:.2} vs {full_small:.2}"
    );
    assert!(full_drop < 1.0, "shrinking n must cost the bf16 engine");
}
