//! Integration tests for the beyond-the-paper extensions: the persisted
//! correlation table (§8's JSON-tabulated pre-run, as a text codec), the
//! path-length-2 prefetcher (§8's l trade-off), and the heavy-hitter KV
//! policy (§9.8's future work) composed with the native pipeline.

use klotski::core::native::{run_pipeline, NativePipelineConfig};
use klotski::core::prefetcher::{measure_accuracy, measure_accuracy_l2, CorrelationTable};
use klotski::core::prefetcher_io::{parse_table, serialize_table};
use klotski::model::spec::ModelSpec;
use klotski::model::trace::{GatingModel, TraceConfig};
use klotski::moe::config::MoeConfig;
use klotski::moe::h2o::H2oConfig;
use klotski::moe::model::MoeModel;

#[test]
fn warmup_table_survives_persistence_and_still_predicts() {
    // The engine lifecycle of §6.2/§8: warm up once on sample data, save,
    // reload for a new task, keep online updates in memory only.
    let spec = ModelSpec::mixtral_8x7b();
    let cfg = TraceConfig::for_model(&spec, 21);
    let base = GatingModel::new(&cfg);
    let mut warm = CorrelationTable::new(cfg.n_moe_layers, cfg.n_experts);
    warm.warm_up(&base, 4096, 3);

    let saved = serialize_table(&warm);
    let mut reloaded = parse_table(&saved).expect("reload");

    // Predictions identical after the round trip…
    let prev: Vec<u16> = (0..128).map(|i| (i % 8) as u16).collect();
    for layer in 1..cfg.n_moe_layers {
        assert_eq!(
            reloaded.predict(layer, &prev, 2),
            warm.predict(layer, &prev, 2)
        );
    }
    // …and online updates change the in-memory copy, not the saved text.
    for _ in 0..10_000 {
        reloaded.record(5, Some(0), &[7]);
    }
    assert_eq!(reloaded.predict(5, &[0], 1), vec![7]);
    assert_eq!(
        serialize_table(&warm),
        saved,
        "saved table must be immutable"
    );
}

#[test]
fn path_length_two_is_a_modest_gain_for_8x_memory() {
    // §8: "Increasing l would add dimension to path recording, which
    // increases the complexity of the table lookup and memory occupation"
    // — quantified.
    let spec = ModelSpec::mixtral_8x7b();
    let cfg = TraceConfig::for_model(&spec, 31);
    let base = GatingModel::new(&cfg);
    let task = base.drifted(cfg.drift, 32);
    let trace = task.generate_trace(96, 128, 8, 33);
    let l1 = measure_accuracy(&base, &trace, 2, 4096);
    let l2 = measure_accuracy_l2(&base, &trace, 2, 4096);
    // Accuracy stays in the same band (no collapse, no miracle).
    assert!((l2.avg_really_hot - l1.avg_really_hot).abs() < 0.15);
    assert!(l2.avg_participation > 0.95);
}

#[test]
fn h2o_pipeline_is_exact_and_bounded_end_to_end() {
    let model = MoeModel::new(MoeConfig::small(55));
    let prompts: Vec<Vec<u32>> = (0..4)
        .map(|s| (0..20).map(|p| ((s * 13 + p * 5) % 128) as u32).collect())
        .collect();
    let h2o = H2oConfig {
        budget: 8,
        sinks: 2,
    };
    let reference = model.generate_h2o(&prompts, 5, h2o);
    let piped = run_pipeline(
        &model,
        &prompts,
        5,
        &NativePipelineConfig {
            h2o: Some(h2o),
            ..Default::default()
        },
    );
    assert_eq!(piped.tokens, reference.tokens);
    assert_eq!(piped.final_hidden, reference.final_hidden);
}

#[test]
fn h2o_composes_with_quantized_store() {
    use klotski::tensor::quant::QuantConfig;

    let model = MoeModel::new(MoeConfig::tiny(66));
    let prompts: Vec<Vec<u32>> = (0..3)
        .map(|s| (0..16).map(|p| ((s * 7 + p * 3) % 96) as u32).collect())
        .collect();
    let h2o = H2oConfig {
        budget: 7,
        sinks: 1,
    };
    let exact = run_pipeline(
        &model,
        &prompts,
        4,
        &NativePipelineConfig {
            h2o: Some(h2o),
            ..Default::default()
        },
    );
    let quant = run_pipeline(
        &model,
        &prompts,
        4,
        &NativePipelineConfig {
            h2o: Some(h2o),
            quant: Some(QuantConfig::paper_default()),
            ..Default::default()
        },
    );
    let drift: f32 = exact
        .final_hidden
        .iter()
        .zip(&quant.final_hidden)
        .flat_map(|(a, b)| a.iter().zip(b).map(|(x, y)| (x - y).abs()))
        .fold(0.0, f32::max);
    assert!(drift > 0.0 && drift < 1.5, "drift = {drift}");
}
