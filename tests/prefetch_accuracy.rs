//! The Fig. 13 claims as executable bounds: multi-batch prefetching
//! participates ~always; hot-expert identification lands in the paper's
//! band; single-sequence prefetching is much worse (the reason Klotski
//! aggregates across the batch group).

use klotski::core::prefetcher::measure_accuracy;
use klotski::model::spec::ModelSpec;
use klotski::model::trace::{GatingModel, TraceConfig};

fn report() -> klotski::core::prefetcher::AccuracyReport {
    let spec = ModelSpec::mixtral_8x7b();
    let cfg = TraceConfig::for_model(&spec, 5);
    let base = GatingModel::new(&cfg);
    let task = base.drifted(cfg.drift, 99);
    let trace = task.generate_trace(240, 512, 16, 7);
    measure_accuracy(&base, &trace, 2, 4096)
}

#[test]
fn participation_is_nearly_total() {
    // Fig. 13 green line: 100% of prefetched experts participate.
    let r = report();
    assert!(
        r.avg_participation > 0.97,
        "participation = {:.3}",
        r.avg_participation
    );
}

#[test]
fn really_hot_accuracy_is_in_the_papers_band() {
    // Fig. 13 blue line: 58.89% average (varies by layer, 0.3–1.0).
    let r = report();
    assert!(
        (0.40..0.85).contains(&r.avg_really_hot),
        "really-hot accuracy = {:.3}",
        r.avg_really_hot
    );
    for (i, layer) in r.per_layer.iter().enumerate() {
        assert!(
            layer.really_hot > 0.15,
            "layer {} collapsed to {:.2}",
            i + 1,
            layer.really_hot
        );
    }
}

#[test]
fn single_sequence_prefetching_is_much_worse() {
    // The paper's 42.24% vs 58.89%: predicting per request wastes I/O;
    // batch aggregation is what makes the prefetcher reliable.
    let r = report();
    assert!(
        r.single_seq_accuracy < r.avg_participation - 0.2,
        "single-seq {:.3} should trail participation {:.3}",
        r.single_seq_accuracy,
        r.avg_participation
    );
    assert!(
        (0.25..0.75).contains(&r.single_seq_accuracy),
        "single-seq accuracy = {:.3}",
        r.single_seq_accuracy
    );
}

#[test]
fn accuracy_improves_with_warmup() {
    let spec = ModelSpec::mixtral_8x7b();
    let cfg = TraceConfig::for_model(&spec, 6);
    let base = GatingModel::new(&cfg);
    let task = base.drifted(cfg.drift, 100);
    let trace = task.generate_trace(120, 256, 8, 8);
    let cold = measure_accuracy(&base, &trace, 2, 64);
    let warm = measure_accuracy(&base, &trace, 2, 8192);
    assert!(
        warm.avg_really_hot >= cold.avg_really_hot - 0.05,
        "warm {:.3} vs cold {:.3}",
        warm.avg_really_hot,
        cold.avg_really_hot
    );
}
