//! Cross-crate validation of the native execution path: Klotski's
//! reordered, two-threaded pipeline must be numerically indistinguishable
//! from the sequential reference, across model shapes and configurations.

use klotski::core::native::{run_pipeline, NativePipelineConfig};
use klotski::moe::attention::AttnMask;
use klotski::moe::config::MoeConfig;
use klotski::moe::model::MoeModel;
use klotski::tensor::quant::QuantConfig;

fn prompts(n: usize, len: usize, vocab: usize, salt: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|s| {
            (0..len)
                .map(|p| ((s * 31 + p * 7 + salt) % vocab) as u32)
                .collect()
        })
        .collect()
}

#[test]
fn bit_exact_across_model_shapes() {
    for (cfg, label) in [
        (MoeConfig::tiny(100), "tiny"),
        (MoeConfig::small(200), "small"),
    ] {
        let model = MoeModel::new(cfg);
        let p = prompts(3, 7, cfg.vocab, 2);
        let reference = model.generate(&p, 5, AttnMask::Dense);
        let piped = run_pipeline(&model, &p, 5, &NativePipelineConfig::default());
        assert_eq!(piped.tokens, reference.tokens, "{label}: tokens");
        assert_eq!(
            piped.final_hidden, reference.final_hidden,
            "{label}: hidden states"
        );
    }
}

#[test]
fn bit_exact_across_slot_counts() {
    // The VRAM slot pool changes *when* experts arrive, never *what* is
    // computed.
    let model = MoeModel::new(MoeConfig::tiny(42));
    let p = prompts(4, 6, model.config().vocab, 3);
    let reference = model.generate(&p, 4, AttnMask::Dense);
    for slots in [1usize, 2, 4, 8] {
        let cfg = NativePipelineConfig {
            vram_slots: slots,
            ..Default::default()
        };
        let piped = run_pipeline(&model, &p, 4, &cfg);
        assert_eq!(piped.final_hidden, reference.final_hidden, "slots={slots}");
    }
}

#[test]
fn bit_exact_across_prefetch_depths() {
    let model = MoeModel::new(MoeConfig::tiny(43));
    let p = prompts(4, 6, model.config().vocab, 5);
    let reference = model.generate(&p, 4, AttnMask::Dense);
    for k in [0usize, 1, 3, 6] {
        let cfg = NativePipelineConfig {
            prefetch_k: k,
            ..Default::default()
        };
        let piped = run_pipeline(&model, &p, 4, &cfg);
        assert_eq!(piped.final_hidden, reference.final_hidden, "prefetch_k={k}");
    }
}

#[test]
fn streaming_attention_matches_reference_streaming() {
    let model = MoeModel::new(MoeConfig::tiny(44));
    let p = prompts(2, 16, model.config().vocab, 1);
    let mask = AttnMask::Streaming {
        sinks: 2,
        window: 5,
    };
    let reference = model.generate(&p, 4, mask);
    let cfg = NativePipelineConfig {
        mask,
        ..Default::default()
    };
    let piped = run_pipeline(&model, &p, 4, &cfg);
    assert_eq!(piped.final_hidden, reference.final_hidden);
    // And streaming output differs from dense output on long contexts.
    let dense_ref = model.generate(&p, 4, AttnMask::Dense);
    assert_ne!(dense_ref.final_hidden, reference.final_hidden);
}

#[test]
fn quantized_store_bounds_drift() {
    let model = MoeModel::new(MoeConfig::tiny(45));
    let p = prompts(3, 8, model.config().vocab, 9);
    let exact = run_pipeline(&model, &p, 4, &NativePipelineConfig::default());
    for bits in [4u32, 8] {
        let cfg = NativePipelineConfig {
            quant: Some(QuantConfig {
                bits,
                ..QuantConfig::paper_default()
            }),
            ..Default::default()
        };
        let q = run_pipeline(&model, &p, 4, &cfg);
        let drift: f32 = q
            .final_hidden
            .iter()
            .zip(&exact.final_hidden)
            .flat_map(|(a, b)| a.iter().zip(b).map(|(x, y)| (x - y).abs()))
            .fold(0.0, f32::max);
        assert!(drift > 0.0, "{bits}-bit must not be lossless");
        let bound = if bits == 8 { 0.2 } else { 1.5 };
        assert!(drift < bound, "{bits}-bit drift {drift} exceeds {bound}");
    }
}

#[test]
fn prefetch_hit_rate_reflects_skewed_routing() {
    // With enough sequences, the online popularity predictor should hit
    // most of the time — the multi-batch aggregation effect of §6.2.
    let model = MoeModel::new(MoeConfig::small(46));
    let p = prompts(12, 10, model.config().vocab, 4);
    let piped = run_pipeline(&model, &p, 6, &NativePipelineConfig::default());
    let rate =
        piped.prefetch_hits as f64 / (piped.prefetch_hits + piped.prefetch_misses).max(1) as f64;
    assert!(rate > 0.6, "prefetch hit rate = {rate:.2}");
}

#[test]
fn batched_experts_and_worker_pool_are_numerics_neutral() {
    // The compute-side levers — batched expert GEMMs and the parallel
    // worker pool — must be invisible in the output: every combination is
    // bit-identical to the sequential reference (and hence to the retained
    // per-token fallback).
    let model = MoeModel::new(MoeConfig::small(48));
    let p = prompts(6, 9, model.config().vocab, 7);
    let reference = model.generate(&p, 4, AttnMask::Dense);
    for (batch_experts, compute_workers) in [(false, 1), (true, 1), (true, 2), (true, 4)] {
        let cfg = NativePipelineConfig {
            batch_experts,
            compute_workers,
            ..Default::default()
        };
        let piped = run_pipeline(&model, &p, 4, &cfg);
        assert_eq!(
            piped.tokens, reference.tokens,
            "batch={batch_experts} workers={compute_workers}: tokens"
        );
        assert_eq!(
            piped.final_hidden, reference.final_hidden,
            "batch={batch_experts} workers={compute_workers}: hidden"
        );
    }
}

#[test]
fn batched_attention_is_numerics_neutral() {
    // The attention-path axis: group-batched Q/K/V/O GEMMs + strided
    // scores/AV kernels versus the retained per-token `attend_one` walk —
    // bit-identical to the sequential reference on ragged prompts, dense
    // and streaming masks, and in combination with the expert-path axis.
    let model = MoeModel::new(MoeConfig::small(49));
    let vocab = model.config().vocab;
    let p = vec![
        prompts(1, 5, vocab, 11).remove(0),
        prompts(1, 9, vocab, 12).remove(0),
        prompts(1, 7, vocab, 13).remove(0),
        prompts(1, 12, vocab, 14).remove(0),
    ];
    for mask in [
        AttnMask::Dense,
        AttnMask::Streaming {
            sinks: 2,
            window: 4,
        },
    ] {
        let reference = model.generate(&p, 5, mask);
        for (batch_attention, batch_experts) in [(false, true), (true, true), (true, false)] {
            let cfg = NativePipelineConfig {
                batch_attention,
                batch_experts,
                mask,
                ..Default::default()
            };
            let piped = run_pipeline(&model, &p, 5, &cfg);
            assert_eq!(
                piped.tokens, reference.tokens,
                "attn={batch_attention} experts={batch_experts} {mask:?}: tokens"
            );
            assert_eq!(
                piped.final_hidden, reference.final_hidden,
                "attn={batch_attention} experts={batch_experts} {mask:?}: hidden"
            );
        }
    }
}

#[test]
fn routing_is_expert_diverse() {
    // Sanity for the scheduling problem itself: real gates spread tokens
    // over multiple experts per layer (otherwise reordering is trivial).
    let model = MoeModel::new(MoeConfig::small(47));
    let p = prompts(8, 12, model.config().vocab, 6);
    let reference = model.generate(&p, 4, AttnMask::Dense);
    let cfg = model.config();
    for layer in 0..cfg.n_layers {
        let mut used = std::collections::HashSet::new();
        for ev in reference.routing.iter().filter(|e| e.layer == layer) {
            used.extend(ev.experts.iter().copied());
        }
        assert!(
            used.len() >= 3,
            "layer {layer} used only {} experts",
            used.len()
        );
    }
}
