//! Memory-side integration: the Fig. 12 claims (offloading slashes GPU
//! memory; spare VRAM can be traded back for speed) and placement behaviour
//! across environments.

use klotski::core::engine::{KlotskiConfig, KlotskiEngine};
use klotski::core::scenario::{Engine, Scenario};
use klotski::model::hardware::HardwareSpec;
use klotski::model::spec::ModelSpec;
use klotski::model::workload::Workload;

#[test]
fn complete_offloading_slashes_vram_by_over_90_percent() {
    // Fig. 12: "reducing memory usage by over 94.1%" versus keeping the
    // model resident ("Original Requirement").
    let spec = ModelSpec::mixtral_8x7b();
    let sc = Scenario::generate(
        spec.clone(),
        HardwareSpec::env1_rtx3090(),
        Workload::new(8, 6, 256, 4),
        3,
    );
    let r = KlotskiEngine::new(KlotskiConfig::full()).run(&sc).unwrap();
    assert!(r.succeeded());
    let original = spec.total_bytes() as f64;
    let reduction = 1.0 - r.peak_vram as f64 / original;
    assert!(
        reduction > 0.90,
        "reduction {:.1}% (peak {:.1} GB of {:.1} GB)",
        reduction * 100.0,
        r.peak_vram as f64 / 1e9,
        original / 1e9
    );
}

#[test]
fn spare_vram_mode_uses_more_memory_but_is_not_slower() {
    // Fig. 12 green line: resident expert layers trade memory for I/O.
    let sc = Scenario::generate(
        ModelSpec::mixtral_8x7b(),
        HardwareSpec::env2_h800(),
        Workload::new(8, 6, 256, 4),
        4,
    );
    let lean = KlotskiEngine::new(KlotskiConfig::full()).run(&sc).unwrap();
    let mut cfg = KlotskiConfig::full();
    cfg.use_spare_vram = true;
    let roomy = KlotskiEngine::new(cfg).run(&sc).unwrap();
    assert!(lean.succeeded() && roomy.succeeded());
    assert!(
        roomy.peak_vram > lean.peak_vram,
        "spare-VRAM mode should park experts: {} vs {}",
        roomy.peak_vram,
        lean.peak_vram
    );
    assert!(
        roomy.total_time <= lean.total_time,
        "resident experts must not slow the run: {} vs {}",
        roomy.total_time,
        lean.total_time
    );
}

#[test]
fn memory_curve_is_recorded_on_request() {
    let sc = Scenario::generate(
        ModelSpec::mixtral_8x7b(),
        HardwareSpec::env1_rtx3090(),
        Workload::new(4, 3, 128, 3),
        5,
    );
    let mut cfg = KlotskiConfig::full();
    cfg.record_memory = true;
    let r = KlotskiEngine::new(cfg).run(&sc).unwrap();
    let metrics = r.metrics.expect("memory trace requested");
    assert!(
        !metrics.memory_samples().is_empty(),
        "memory samples must be recorded"
    );
    let peak = metrics.recorded_peak(klotski::sim::memory::Tier::Vram);
    assert!(peak > 0 && peak <= r.peak_vram);
}

#[test]
fn disk_spill_engages_only_when_dram_is_short() {
    use klotski::core::compress::Compression;
    use klotski::core::placement::plan_placement;

    let wl = Workload::paper_default(16).with_batches(10);
    // 8×7B in 256 GB DRAM: no disk.
    let p = plan_placement(
        &ModelSpec::mixtral_8x7b(),
        &HardwareSpec::env1_rtx3090(),
        &wl,
        10,
        &Compression::none(),
        false,
    )
    .unwrap();
    assert_eq!(p.disk_expert_layers, 0);
    // 8×22B in 256 GB DRAM: disk engaged, staging window sized.
    let p = plan_placement(
        &ModelSpec::mixtral_8x22b(),
        &HardwareSpec::env1_rtx3090(),
        &wl,
        10,
        &Compression::none(),
        false,
    )
    .unwrap();
    assert!(p.disk_expert_layers > 0);
    assert!(p.staging_window >= 2);
    // 8×22B in 800 GB DRAM (Env 2): no disk again.
    let p = plan_placement(
        &ModelSpec::mixtral_8x22b(),
        &HardwareSpec::env2_h800(),
        &wl,
        10,
        &Compression::none(),
        false,
    )
    .unwrap();
    assert_eq!(p.disk_expert_layers, 0);
}

#[test]
fn disk_bound_run_is_dominated_by_staging() {
    // Mixtral-8×22B on Env 1 is the paper's disk-engaged scenario: the
    // run must succeed but at roughly an order of magnitude lower
    // throughput than the same model on Env 2.
    let wl = Workload::new(16, 4, 256, 4);
    let env1 = Scenario::generate(
        ModelSpec::mixtral_8x22b(),
        HardwareSpec::env1_rtx3090(),
        wl,
        6,
    );
    let env2 = Scenario::generate(ModelSpec::mixtral_8x22b(), HardwareSpec::env2_h800(), wl, 6);
    let engine = KlotskiEngine::new(KlotskiConfig::full());
    let r1 = engine.run(&env1).unwrap();
    let r2 = engine.run(&env2).unwrap();
    assert!(r1.succeeded() && r2.succeeded());
    assert!(
        r2.throughput_tps() > r1.throughput_tps() * 5.0,
        "Env2 {:.2} vs Env1 {:.2}",
        r2.throughput_tps(),
        r1.throughput_tps()
    );
}

#[test]
fn sparse_attention_reduces_kv_pressure_end_to_end() {
    use klotski::core::compress::{Compression, SparseAttention};

    let wl = Workload::new(32, 10, 512, 6);
    let sc = Scenario::generate(
        ModelSpec::mixtral_8x7b(),
        HardwareSpec::env1_rtx3090(),
        wl,
        8,
    );
    let dense = KlotskiEngine::new(KlotskiConfig::full()).run(&sc).unwrap();
    let mut cfg = KlotskiConfig::full();
    cfg.compression = Compression {
        quant: None,
        sparse_attention: Some(SparseAttention {
            sinks: 4,
            window: 124,
        }),
    };
    let sparse = KlotskiEngine::new(cfg).run(&sc).unwrap();
    assert!(dense.succeeded() && sparse.succeeded());
    assert!(
        sparse.peak_dram < dense.peak_dram,
        "sparse KV should shrink DRAM: {} vs {}",
        sparse.peak_dram,
        dense.peak_dram
    );
    assert!(
        sparse.total_time < dense.total_time,
        "less KV I/O should be faster: {} vs {}",
        sparse.total_time,
        dense.total_time
    );
}
