//! Cross-crate integration: Klotski versus every baseline on shared
//! scenarios — the qualitative claims of the paper's §9.2.

use klotski::baselines::{Accelerate, FastGen, Fiddler, MoeInfinity};
use klotski::core::engine::{KlotskiConfig, KlotskiEngine};
use klotski::core::report::InferenceReport;
use klotski::core::scenario::{Engine, Scenario};
use klotski::model::hardware::HardwareSpec;
use klotski::model::spec::ModelSpec;
use klotski::model::workload::Workload;

fn env1_8x7b(bs: u32, n: u32) -> Scenario {
    Scenario::generate(
        ModelSpec::mixtral_8x7b(),
        HardwareSpec::env1_rtx3090(),
        Workload::new(bs, n, 256, 8),
        1234,
    )
}

fn run(engine: &dyn Engine, sc: &Scenario) -> InferenceReport {
    engine.run(sc).expect("engine must not error")
}

#[test]
fn klotski_outperforms_every_baseline() {
    let sc = env1_8x7b(8, 8);
    let klotski = run(&KlotskiEngine::new(KlotskiConfig::full()), &sc);
    assert!(klotski.succeeded());
    for baseline in klotski::baselines::all_engines() {
        let report = run(baseline.as_ref(), &sc);
        assert!(
            klotski.throughput_tps() > report.throughput_tps(),
            "{} ({:.2} tok/s) should not beat Klotski ({:.2} tok/s)",
            report.engine,
            report.throughput_tps(),
            klotski.throughput_tps()
        );
    }
}

#[test]
fn flexgen_is_the_closest_baseline() {
    // §9.2: FlexGen is the strongest competitor (max speedup over it is
    // only 2.23×, versus 85×/15×/19×/9.5× for the others).
    let sc = env1_8x7b(8, 8);
    let klotski = run(&KlotskiEngine::new(KlotskiConfig::full()), &sc);
    let mut best_other = 0.0f64;
    let mut flexgen_tps = 0.0f64;
    for baseline in klotski::baselines::all_engines() {
        let report = run(baseline.as_ref(), &sc);
        if report.engine == "FlexGen" {
            flexgen_tps = report.throughput_tps();
        } else {
            best_other = best_other.max(report.throughput_tps());
        }
    }
    assert!(
        flexgen_tps > best_other,
        "FlexGen ({flexgen_tps:.2}) should lead the non-FlexGen baselines ({best_other:.2})"
    );
    let ratio = klotski.throughput_tps() / flexgen_tps;
    assert!(
        (1.0..3.0).contains(&ratio),
        "Klotski/FlexGen ratio {ratio:.2} out of the paper's band"
    );
}

#[test]
fn speedup_over_accelerate_is_large() {
    // The headline "up to 85×" is reached at the paper's largest scenario;
    // at this reduced scale the gap must still be an order of magnitude.
    let sc = env1_8x7b(8, 8);
    let klotski = run(&KlotskiEngine::new(KlotskiConfig::full()), &sc);
    let accelerate = run(&Accelerate, &sc);
    let ratio = klotski.throughput_tps() / accelerate.throughput_tps();
    assert!(ratio > 8.0, "Klotski/Accelerate ratio only {ratio:.1}×");
}

#[test]
fn single_batch_engines_oom_where_the_paper_says() {
    // §9.2: experts-only offloading caps Fiddler and MoE-Infinity at batch
    // 16 for Mixtral-8×22B on the 24 GB 3090, while Klotski (which can
    // offload everything) keeps running.
    let sc = Scenario::generate(
        ModelSpec::mixtral_8x22b(),
        HardwareSpec::env1_rtx3090(),
        Workload::new(32, 1, 512, 2),
        7,
    );
    assert!(!run(&MoeInfinity, &sc).succeeded());
    assert!(!run(&Fiddler, &sc).succeeded());
    let klotski = run(&KlotskiEngine::new(KlotskiConfig::full()), &sc);
    assert!(klotski.succeeded(), "{:?}", klotski.oom);
}

#[test]
fn fastgen_beats_accelerate_on_moe_too() {
    let sc = env1_8x7b(4, 4);
    let fast = run(&FastGen, &sc);
    let slow = run(&Accelerate, &sc);
    assert!(fast.throughput_tps() > slow.throughput_tps());
}

#[test]
fn env2_speeds_everything_up() {
    let wl = Workload::new(8, 8, 256, 8);
    let sc1 = Scenario::generate(
        ModelSpec::mixtral_8x7b(),
        HardwareSpec::env1_rtx3090(),
        wl,
        7,
    );
    let sc2 = Scenario::generate(ModelSpec::mixtral_8x7b(), HardwareSpec::env2_h800(), wl, 7);
    let engine = KlotskiEngine::new(KlotskiConfig::full());
    let r1 = run(&engine, &sc1);
    let r2 = run(&engine, &sc2);
    assert!(
        r2.throughput_tps() > r1.throughput_tps() * 1.5,
        "H800 ({:.2}) should clearly beat the 3090 ({:.2})",
        r2.throughput_tps(),
        r1.throughput_tps()
    );
}

#[test]
fn reports_are_internally_consistent() {
    let sc = env1_8x7b(4, 4);
    for engine in klotski::baselines::all_engines() {
        let r = run(engine.as_ref(), &sc);
        assert!(r.succeeded(), "{}: {:?}", r.engine, r.oom);
        assert!(r.total_time >= r.prefill_time, "{}", r.engine);
        assert_eq!(
            r.generated_tokens,
            sc.workload.total_generated(),
            "{}",
            r.engine
        );
        assert!(r.gpu_busy.as_nanos() > 0, "{}", r.engine);
        assert!(r.peak_vram <= sc.hw.vram_bytes, "{}", r.engine);
    }
}
