//! Smoke tests for the `examples/` directory — every example must compile,
//! the flagship `mixtral_3090` walkthrough must run to completion — plus
//! the `serve_sweep` and `serve_scale` determinism contracts.
//!
//! Both tests shell out to the same `cargo` that is running this test
//! suite (`CARGO` env var), against this workspace. By the time integration
//! tests execute, `cargo test` has already compiled every example target,
//! so the build assertions are near-instant cache hits.

use std::process::Command;

fn cargo() -> Command {
    let mut cmd = Command::new(env!("CARGO"));
    cmd.current_dir(env!("CARGO_MANIFEST_DIR"));
    cmd
}

/// `cargo build --examples` must succeed for the whole directory — a new
/// example that does not compile fails this test, not just CI.
#[test]
fn all_examples_build() {
    let out = cargo()
        .args(["build", "--examples", "--quiet"])
        .output()
        .expect("spawning cargo");
    assert!(
        out.status.success(),
        "cargo build --examples failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The paper-walkthrough example must run end-to-end and print its
/// throughput table (Fig. 10's first panel).
#[test]
fn mixtral_3090_runs_to_completion() {
    let out = cargo()
        .args(["run", "--example", "mixtral_3090", "--quiet"])
        .output()
        .expect("spawning cargo");
    assert!(
        out.status.success(),
        "example exited nonzero:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("Mixtral-8x7B") && stdout.contains("Klotski"),
        "unexpected example output:\n{stdout}"
    );
    // The table must report a throughput figure for every batch size row.
    let rows = stdout
        .lines()
        .filter(|l| l.trim_start().starts_with(char::is_numeric))
        .count();
    assert!(
        rows >= 5,
        "expected ≥5 batch-size rows, got {rows}:\n{stdout}"
    );
}

/// The serving sweep must be byte-identical across two runs under the same
/// seed — the whole stack (traffic generation, admission, engine, metrics,
/// formatting) is deterministic. Runs at cheap settings to stay fast.
#[test]
fn serve_sweep_is_byte_deterministic() {
    let run = || {
        let out = cargo()
            .args([
                "run",
                "-p",
                "klotski-bench",
                "--bin",
                "serve_sweep",
                "--quiet",
            ])
            .env("KLOTSKI_CHEAP", "1")
            .output()
            .expect("spawning cargo");
        assert!(
            out.status.success(),
            "serve_sweep exited nonzero:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "serve_sweep output differs between runs");

    let stdout = String::from_utf8_lossy(&first);
    // Every cell reports the SLO metrics the sweep exists for…
    for needle in ["TTFT p50", "TPOT p50", "e2e p99", "goodput", "cost_aware"] {
        assert!(stdout.contains(needle), "missing {needle:?}:\n{stdout}");
    }
    // …and the bin's own assertion (cost-aware beating fixed-n on ≥1 cell)
    // passed, since it exited zero and printed its confirmation.
    assert!(
        stdout.contains("cost-aware beats fixed-n goodput"),
        "missing cost-model comparison line:\n{stdout}"
    );
}

/// The multi-replica sweep must be byte-identical across two runs under
/// the same seed — the dispatcher (replica event interleaving, routing,
/// per-replica utilization) is deterministic end to end. Runs at cheap
/// settings to stay fast.
#[test]
fn serve_scale_is_byte_deterministic() {
    let run = || {
        let out = cargo()
            .args([
                "run",
                "-p",
                "klotski-bench",
                "--bin",
                "serve_scale",
                "--quiet",
            ])
            .env("KLOTSKI_CHEAP", "1")
            .output()
            .expect("spawning cargo");
        assert!(
            out.status.success(),
            "serve_scale exited nonzero:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "serve_scale output differs between runs");

    let stdout = String::from_utf8_lossy(&first);
    // Both experiments report their cells and both in-bin assertions
    // passed (the bin exits nonzero otherwise).
    for needle in [
        "round_robin",
        "jsq",
        "cost_aware",
        "throughput scales with replica count",
        "goodput rr",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?}:\n{stdout}");
    }
}

/// The continuous-batching comparison (slot refill, chunked prefill,
/// priority classes vs the run-to-completion baseline) must be
/// byte-identical across two runs under the same seed. Runs at cheap
/// settings to stay fast.
#[test]
fn serve_continuous_is_byte_deterministic() {
    let run = || {
        let out = cargo()
            .args([
                "run",
                "-p",
                "klotski-bench",
                "--bin",
                "serve_continuous",
                "--quiet",
            ])
            .env("KLOTSKI_CHEAP", "1")
            .output()
            .expect("spawning cargo");
        assert!(
            out.status.success(),
            "serve_continuous exited nonzero:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let first = run();
    let second = run();
    assert_eq!(
        first, second,
        "serve_continuous output differs between runs"
    );

    let stdout = String::from_utf8_lossy(&first);
    // Both schedulers and both experiments report their cells, and the
    // saturated stream exercised refill (the bin asserts it and exits
    // nonzero otherwise).
    for needle in [
        "rtc",
        "continuous",
        "chat_share",
        "goodput: rtc",
        "chat TTFT p50",
        "refills",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?}:\n{stdout}");
    }
}

/// The cluster sweep (dynamic fleet: autoscalers, cold starts, rate
/// profiles, trace replay) must be byte-identical across two runs under
/// the same seed. Runs at cheap settings to stay fast.
#[test]
fn serve_cluster_is_byte_deterministic() {
    let run = || {
        let out = cargo()
            .args([
                "run",
                "-p",
                "klotski-bench",
                "--bin",
                "serve_cluster",
                "--quiet",
            ])
            .env("KLOTSKI_CHEAP", "1")
            .output()
            .expect("spawning cargo");
        assert!(
            out.status.success(),
            "serve_cluster exited nonzero:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "serve_cluster output differs between runs");

    let stdout = String::from_utf8_lossy(&first);
    // All four autoscalers and both traffic shapes ran, and the bin's
    // replay gate passed (it exits nonzero otherwise).
    for needle in [
        "static_peak",
        "static_floor",
        "queue_reactive",
        "slo_reactive",
        "diurnal",
        "flash_crowd",
        "rep-hours",
        "trace replay reproduces the live diurnal run byte-for-byte",
    ] {
        assert!(stdout.contains(needle), "missing {needle:?}:\n{stdout}");
    }
}

/// The fault-tolerance walkthrough (seeded fault plan, three recovery
/// postures) must run end-to-end and be byte-identical across two runs —
/// fault injection, crash recovery, and shedding are all deterministic.
#[test]
fn serve_faults_example_is_byte_deterministic() {
    let run = || {
        let out = cargo()
            .args(["run", "--example", "serve_faults", "--quiet"])
            .output()
            .expect("spawning cargo");
        assert!(
            out.status.success(),
            "serve_faults example exited nonzero:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "serve_faults output differs between runs");

    let stdout = String::from_utf8_lossy(&first);
    // All three postures report, and the fault ledger shows real damage:
    // the naive row must lose work while the tolerant rows drop nothing.
    for needle in ["naive", "retry+health", "full", "crash(es)", "wasted busy"] {
        assert!(stdout.contains(needle), "missing {needle:?}:\n{stdout}");
    }
    assert!(
        stdout.contains("dropped  0"),
        "tolerant postures must drop nothing:\n{stdout}"
    );
}
