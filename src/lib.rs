//! # Klotski
//!
//! A from-scratch Rust reproduction of *Klotski: Efficient Mixture-of-Expert
//! Inference via Expert-Aware Multi-Batch Pipeline* (ASPLOS 2025).
//!
//! Klotski is an MoE inference engine for resource-constrained environments:
//! it offloads model tensors across a GPU/CPU/disk memory hierarchy and
//! eliminates pipeline bubbles by (1) sharing each loaded layer across a
//! *group* of batches, (2) prefetching only the gate plus the *hot* experts,
//! and (3) re-ordering expert computations expert-major — hot experts first,
//! the rest in transfer-completion order — so cold-expert I/O hides under
//! hot-expert compute.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`sim`] — deterministic discrete-event substrate (streams, links,
//!   memory pools) the engines run on.
//! * [`model`] — model/hardware specifications, the calibrated cost model,
//!   workloads, and the gating-trace generator.
//! * [`tensor`] — dense `f32` kernels and group-wise quantization for the
//!   native execution path.
//! * [`moe`] — a real (tiny) MoE transformer used as numerical ground truth.
//! * [`core`] — the paper's contribution: the expert-aware multi-batch
//!   pipeline, the constraint-sensitive I/O-compute planner, the
//!   correlation-aware expert prefetcher, adaptive tensor placement, and the
//!   simulated + native engines.
//! * [`baselines`] — faithful re-implementations of the five comparators
//!   (Accelerate, DeepSpeed-FastGen, FlexGen, MoE-Infinity, Fiddler).
//! * [`serve`] — the online serving front-end: traffic generation,
//!   continuous batch-group formation (admission policies), and
//!   request-level SLO metrics over any engine.
//!
//! ## Quickstart
//!
//! ```
//! use klotski::core::engine::{KlotskiConfig, KlotskiEngine};
//! use klotski::core::scenario::{Engine, Scenario};
//! use klotski::model::hardware::HardwareSpec;
//! use klotski::model::spec::ModelSpec;
//! use klotski::model::workload::Workload;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = Scenario::generate(
//!     ModelSpec::mixtral_8x7b(),
//!     HardwareSpec::env1_rtx3090(),
//!     Workload::new(16, 4, 128, 4), // batch 16 × 4 batches, prompt 128, gen 4
//!     42,
//! );
//! let engine = KlotskiEngine::new(KlotskiConfig::full());
//! let report = engine.run(&scenario)?;
//! println!("throughput: {:.2} tok/s", report.throughput_tps());
//! # Ok(())
//! # }
//! ```

pub use klotski_baselines as baselines;
pub use klotski_core as core;
pub use klotski_model as model;
pub use klotski_moe as moe;
pub use klotski_serve as serve;
pub use klotski_sim as sim;
pub use klotski_tensor as tensor;
