//! Serving Mixtral-8×7B online: a Poisson request stream through the
//! Klotski engine under the three admission policies, plus a closed-loop
//! (fixed client pool) run.
//!
//! The offline experiments hand the engine perfectly formed batch groups;
//! here groups are formed *online* from arrivals, so the numbers that
//! differ across policies are request-level: time to first token, time per
//! output token, end-to-end latency, and goodput under an SLO.
//!
//! ```sh
//! cargo run --release --example serve_mixtral
//! ```

use klotski::core::engine::{KlotskiConfig, KlotskiEngine};
use klotski::model::hardware::HardwareSpec;
use klotski::model::spec::ModelSpec;
use klotski::serve::admission::AdmissionPolicy;
use klotski::serve::metrics::{summarize, SloSpec};
use klotski::serve::server::{serve, ServeConfig, Traffic};
use klotski::serve::traffic::{generate, Arrivals, LengthDist, TrafficConfig};
use klotski::sim::time::SimDuration;

fn main() {
    let spec = ModelSpec::mixtral_8x7b();
    let hw = HardwareSpec::env1_rtx3090();
    let engine = KlotskiEngine::new(KlotskiConfig::full());
    let slo = SloSpec {
        ttft: SimDuration::from_secs(60),
        tpot: SimDuration::from_secs(8),
    };

    // 32 requests at 0.1 req/s — an *underloaded* server, where admission
    // policy (not pipeline depth) decides the latency profile.
    let stream = generate(
        Arrivals::Poisson { rate: 0.1 },
        &TrafficConfig {
            num_requests: 32,
            prompt: LengthDist::Uniform { lo: 128, hi: 256 },
            gen: LengthDist::Uniform { lo: 4, hi: 16 },
            seed: 7,
        },
    );

    println!("== open loop: 32 Poisson requests at 0.1 req/s, bs 4 ==");
    println!("SLO: TTFT <= {}, TPOT <= {}\n", slo.ttft, slo.tpot);
    for policy in [
        AdmissionPolicy::FixedN { n: 4 },
        AdmissionPolicy::Deadline {
            n: 4,
            deadline: SimDuration::from_secs(15),
        },
        AdmissionPolicy::CostAware {
            max_n: 4,
            slo_e2e: SimDuration::from_secs(120),
        },
    ] {
        let report = serve(
            &engine,
            &spec,
            &hw,
            &Traffic::Open(stream.clone()),
            &ServeConfig {
                batch_size: 4,
                policy,
                seed: 7,
            },
        )
        .expect("serve");
        let s = summarize(&report, &slo);
        println!(
            "{:<10}  groups {:>2}  TTFT p50 {:>7.2}s  p99 {:>7.2}s  e2e p99 {:>7.2}s  \
             SLO {:>2}/{}  goodput {:.2} tok/s",
            policy.label(),
            report.groups.len(),
            s.ttft.p50.as_secs_f64(),
            s.ttft.p99.as_secs_f64(),
            s.e2e.p99.as_secs_f64(),
            s.slo_met,
            s.requests,
            s.goodput_tps,
        );
    }

    // Closed loop: 8 clients, each thinking 5 s between requests. Load now
    // tracks service speed — the faster the engine drains, the faster new
    // requests arrive (no open-loop backlog explosions).
    println!("\n== closed loop: 8 clients, 5 s think time, 32 requests ==");
    let report = serve(
        &engine,
        &spec,
        &hw,
        &Traffic::Closed {
            clients: 8,
            think: SimDuration::from_secs(5),
            cfg: TrafficConfig::fixed(32, 192, 8, 7),
        },
        &ServeConfig {
            batch_size: 4,
            policy: AdmissionPolicy::CostAware {
                max_n: 4,
                slo_e2e: SimDuration::from_secs(120),
            },
            seed: 7,
        },
    )
    .expect("serve");
    let s = summarize(&report, &slo);
    println!(
        "cost_aware  groups {:>2}  TTFT p50 {:>7.2}s  e2e p99 {:>7.2}s  SLO {:>2}/{}  \
         sustained {:.2} tok/s over {}",
        report.groups.len(),
        s.ttft.p50.as_secs_f64(),
        s.e2e.p99.as_secs_f64(),
        s.slo_met,
        s.requests,
        s.throughput_tps,
        report.makespan,
    );
}
