//! Sparse KV-cache strategies on the native model: dense attention vs
//! StreamingLLM (sinks + window, §7 of the paper) vs the heavy-hitter
//! policy implemented as the paper's §9.8 future-work extension.
//!
//! ```sh
//! cargo run --release --example sparse_kv
//! ```

use klotski::moe::attention::{attend_one, AttnMask};
use klotski::moe::config::MoeConfig;
use klotski::moe::h2o::{attend_one_h2o, H2oConfig, H2oState};
use klotski::moe::kv::KvCache;
use klotski::moe::model::MoeModel;

fn main() {
    let model = MoeModel::new(MoeConfig::small(7));
    let cfg = *model.config();
    let seq_len = 48;
    let budget = 12;
    let tokens: Vec<u32> = (0..seq_len)
        .map(|t| ((t * 17 + 3) % cfg.vocab) as u32)
        .collect();

    // Drive layer 0's attention with each policy over the same stream.
    let w = &model.weights().layers[0].attn;
    let mut dense_cache = KvCache::new(cfg.n_layers, cfg.d_model);
    let mut stream_cache = KvCache::new(cfg.n_layers, cfg.d_model);
    let mut h2o_cache = KvCache::new(cfg.n_layers, cfg.d_model);
    let mut h2o = H2oState::new(cfg.n_layers, H2oConfig { budget, sinks: 2 });
    let stream_mask = AttnMask::Streaming {
        sinks: 2,
        window: budget - 2,
    };

    let mut stream_err_max = 0.0f32;
    let mut h2o_err_max = 0.0f32;
    for (pos, &tok) in tokens.iter().enumerate() {
        let x = model.embed(tok, pos);
        let normed = model.moe_norm(0, &x); // any fixed preprocessing works here
        let dense = attend_one(
            w,
            0,
            &normed,
            &mut dense_cache,
            cfg.n_heads,
            cfg.head_dim,
            AttnMask::Dense,
        );
        let stream = attend_one(
            w,
            0,
            &normed,
            &mut stream_cache,
            cfg.n_heads,
            cfg.head_dim,
            stream_mask,
        );
        let heavy = attend_one_h2o(
            w,
            0,
            &normed,
            &mut h2o_cache,
            &mut h2o,
            cfg.n_heads,
            cfg.head_dim,
        );
        let err = |a: &[f32], b: &[f32]| {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max)
        };
        stream_err_max = stream_err_max.max(err(&dense, &stream));
        h2o_err_max = h2o_err_max.max(err(&dense, &heavy));
    }

    println!("sequence length {seq_len}, KV budget {budget} (sinks 2)");
    println!(
        "kept positions under heavy-hitter policy: {:?}",
        h2o.kept(0)
    );
    println!("max |Δ| vs dense attention:");
    println!("  StreamingLLM (recency window): {stream_err_max:.4}");
    println!("  heavy-hitter (H2O-style):      {h2o_err_max:.4}");
    println!();
    println!(
        "both policies keep exactly {budget} of {seq_len} KV entries (a {:.0}% cut),",
        (1.0 - budget as f64 / seq_len as f64) * 100.0
    );
    println!("but the heavy-hitter set is chosen by accumulated attention mass rather");
    println!("than recency — the direction the paper names for eliminating the KV-load");
    println!("bubbles that appear at large n (§9.8).");
}
