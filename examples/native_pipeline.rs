//! The native execution path: run Klotski's two-thread pipeline **for
//! real** on a tiny CPU MoE model and verify bit-exactness against the
//! sequential reference runner.
//!
//! ```sh
//! cargo run --release --example native_pipeline
//! ```

use klotski::core::native::{run_pipeline, NativePipelineConfig};
use klotski::moe::attention::AttnMask;
use klotski::moe::config::MoeConfig;
use klotski::moe::model::MoeModel;
use klotski::tensor::quant::QuantConfig;

fn main() {
    let model = MoeModel::new(MoeConfig::small(2024));
    let cfg = model.config();
    println!(
        "model: {} layers × {} experts (top-{}), d_model {}",
        cfg.n_layers, cfg.n_experts, cfg.top_k, cfg.d_model
    );

    let prompts: Vec<Vec<u32>> = (0..8)
        .map(|s| {
            (0..16)
                .map(|p| ((s * 37 + p * 11 + 5) % cfg.vocab) as u32)
                .collect()
        })
        .collect();
    let gen_len = 8;

    // Sequential reference (the numerical ground truth).
    let t0 = std::time::Instant::now();
    let reference = model.generate(&prompts, gen_len, AttnMask::Dense);
    let ref_elapsed = t0.elapsed();

    // Klotski's pipelined execution: I/O thread stages experts through a
    // bounded slot pool; inference thread computes in arrival order.
    let piped = run_pipeline(&model, &prompts, gen_len, &NativePipelineConfig::default());

    println!("\n== bit-exactness ==");
    println!("tokens match:        {}", piped.tokens == reference.tokens);
    println!(
        "hidden states match: {} (bit-for-bit)",
        piped.final_hidden == reference.final_hidden
    );
    assert_eq!(piped.tokens, reference.tokens);
    assert_eq!(piped.final_hidden, reference.final_hidden);

    println!("\n== pipeline statistics ==");
    println!("expert fetches:   {}", piped.expert_fetches);
    println!(
        "prefetch hits:    {} / {} ({:.0}%)",
        piped.prefetch_hits,
        piped.prefetch_hits + piped.prefetch_misses,
        100.0 * piped.prefetch_hits as f64
            / (piped.prefetch_hits + piped.prefetch_misses).max(1) as f64
    );
    println!(
        "wall time:        reference {ref_elapsed:?} vs pipelined {:?}",
        piped.elapsed
    );

    // Quantized expert store: numerics drift within the HQQ error bound.
    let qcfg = NativePipelineConfig {
        quant: Some(QuantConfig::paper_default()),
        ..Default::default()
    };
    let quantized = run_pipeline(&model, &prompts, gen_len, &qcfg);
    let max_drift: f32 = quantized
        .final_hidden
        .iter()
        .zip(&reference.final_hidden)
        .flat_map(|(a, b)| a.iter().zip(b).map(|(x, y)| (x - y).abs()))
        .fold(0.0, f32::max);
    println!("\n== 4-bit quantized store ==");
    println!("max hidden-state drift: {max_drift:.4}");
    println!(
        "tokens still match: {}",
        quantized.tokens == reference.tokens
    );
}
