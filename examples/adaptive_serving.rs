//! The prefetcher's serving lifecycle (§6.2 + §8 of the paper):
//!
//! 1. warm the expert-correlation table once with a pre-run on sample data
//!    and persist it (the paper tabulates it as JSON; here, the canonical
//!    text codec);
//! 2. for each incoming task, load the *saved* table and let online
//!    updates adapt the in-memory copy to that task's routing tendencies;
//! 3. never write the updates back — "to prevent the prefetching
//!    tendencies of other tasks from influencing current tasks".
//!
//! ```sh
//! cargo run --release --example adaptive_serving
//! ```

use klotski::core::prefetcher::{measure_accuracy, CorrelationTable};
use klotski::core::prefetcher_io::{parse_table, serialize_table};
use klotski::model::spec::ModelSpec;
use klotski::model::trace::{GatingModel, TraceConfig};

fn main() {
    let spec = ModelSpec::mixtral_8x7b();
    let cfg = TraceConfig::for_model(&spec, 11);
    let base = GatingModel::new(&cfg);

    // (1) Offline: warm up and persist.
    let mut warm = CorrelationTable::new(cfg.n_moe_layers, cfg.n_experts);
    warm.warm_up(&base, 8 * 512, 1); // batch 8 × seq 512, as in §8
    let saved = serialize_table(&warm);
    println!(
        "warm-up table: {} routing events, serialized to {} bytes",
        warm.total_records(),
        saved.len()
    );

    // (2) Online: three tasks with different data tendencies (drift).
    for task in 0..3u64 {
        let task_model = base.drifted(cfg.drift, 100 + task);
        let trace = task_model.generate_trace(120, 256, 16, 200 + task);
        // Each task starts from the SAME persisted table.
        let table = parse_table(&saved).expect("reload persisted table");
        drop(table); // measure_accuracy warms its own copy identically:
        let acc = measure_accuracy(&base, &trace, spec.top_k, 8 * 512);
        println!(
            "task {task}: participation {:.1}%, really-hot {:.1}% \
             (online updates adapt the copy; the saved table is untouched)",
            acc.avg_participation * 100.0,
            acc.avg_really_hot * 100.0,
        );
    }

    // (3) The persisted artifact is immutable across tasks.
    assert_eq!(serialize_table(&warm), saved);
    println!("persisted table unchanged after serving three tasks ✓");
}
