//! Render the actual execution pipeline as an ASCII Gantt chart — the
//! paper's Fig. 15 comparison of a simple-overlap pipeline (riddled with
//! bubbles) against Klotski's expert-aware multi-batch pipeline.
//!
//! ```sh
//! cargo run --release --example pipeline_timeline
//! ```

use klotski::core::engine::{KlotskiConfig, KlotskiEngine};
use klotski::core::scenario::{Engine, Scenario};
use klotski::model::hardware::HardwareSpec;
use klotski::model::spec::ModelSpec;
use klotski::model::workload::Workload;
use klotski::sim::time::SimTime;

fn render(label: &str, cfg: KlotskiConfig, sc: &Scenario) {
    let mut cfg = cfg;
    cfg.record_timeline = true;
    let report = KlotskiEngine::new(cfg).run(sc).expect("engine run");
    println!("\n== {label} ==");
    println!(
        "total {} | GPU busy {} | bubbles {} ({:.0}%)",
        report.total_time,
        report.gpu_busy,
        report.gpu_bubble,
        report.bubble_fraction() * 100.0
    );
    let metrics = report.metrics.expect("timeline recorded");
    // Show a window from the middle of the decode phase (steady state).
    let mid = SimTime::from_nanos(report.total_time.as_nanos() * 3 / 4);
    let to = SimTime::from_nanos(
        (report.total_time.as_nanos() * 3 / 4) + report.total_time.as_nanos() / 20,
    );
    println!("steady-state window ({mid} … {to}):");
    print!("{}", metrics.render_ascii(mid, to, 100));
    println!("legend: A attention, G gate, E expert, W/G/E-loads on h2d, K kv");
}

fn main() {
    // A small but representative slice: Mixtral-8×7B, batch 16 × n batches.
    let wl = Workload::new(16, 6, 256, 6);
    let sc = Scenario::generate(
        ModelSpec::mixtral_8x7b(),
        HardwareSpec::env1_rtx3090(),
        wl,
        42,
    );

    render(
        "Simple overlap (single batch, whole-layer prefetch)",
        KlotskiConfig::ablation_simple_pipeline(),
        &sc,
    );
    render(
        "Klotski (expert-aware multi-batch)",
        KlotskiConfig::full(),
        &sc,
    );
}
