//! Serving Mixtral-8×7B across engine replicas: one bursty, heavy-tailed
//! request stream sharded over `R` Klotski engines under the three
//! dispatch policies.
//!
//! The single-engine serving loop (see `serve_mixtral`) compares *admission*
//! policies; here admission is fixed and the question is placement: with
//! several identical replicas, does it matter *where* each request goes?
//! Round-robin is blind; join-shortest-queue reads backlog tokens;
//! cost-aware placement asks the cost model which replica would finish the
//! request earliest — and thereby clusters shape-compatible requests, so
//! one heavy prompt does not pad every group it touches.
//!
//! ```sh
//! cargo run --release --example serve_replicas
//! ```

use klotski::core::engine::{KlotskiConfig, KlotskiEngine};
use klotski::model::hardware::HardwareSpec;
use klotski::model::spec::ModelSpec;
use klotski::serve::admission::AdmissionPolicy;
use klotski::serve::dispatcher::{serve_scaled, DispatchPolicy, ScaleConfig};
use klotski::serve::metrics::{summarize, summarize_replica, SloSpec};
use klotski::serve::server::{ServeConfig, Traffic};
use klotski::serve::traffic::{generate, Arrivals, LengthDist, TrafficConfig};
use klotski::sim::time::SimDuration;

fn main() {
    let spec = ModelSpec::mixtral_8x7b();
    let hw = HardwareSpec::env1_rtx3090();
    let engine = KlotskiEngine::new(KlotskiConfig::full());
    let slo = SloSpec {
        ttft: SimDuration::from_secs(60),
        tpot: SimDuration::from_secs(8),
    };
    let serve_cfg = ServeConfig {
        batch_size: 4,
        policy: AdmissionPolicy::Deadline {
            n: 4,
            deadline: SimDuration::from_secs(15),
        },
        seed: 7,
    };

    // 48 requests in bursts of 4; most prompts are light, a fifth are
    // heavy — the shape that separates the dispatch policies.
    let stream = generate(
        Arrivals::Bursty {
            rate: 0.6,
            burst: 4,
        },
        &TrafficConfig {
            num_requests: 48,
            prompt: LengthDist::HeavyTail {
                lo: 32,
                hi: 64,
                heavy: 512,
                heavy_pct: 20,
            },
            gen: LengthDist::Uniform { lo: 2, hi: 6 },
            seed: 7,
        },
    );

    println!("== 48 bursty heavy-tailed requests at 0.6 req/s, bs 4, deadline admission ==");
    println!("SLO: TTFT <= {}, TPOT <= {}\n", slo.ttft, slo.tpot);
    for replicas in [1u32, 2, 4] {
        println!("-- {replicas} replica(s) --");
        for dispatch in DispatchPolicy::ALL {
            let report = serve_scaled(
                &engine,
                &spec,
                &hw,
                &Traffic::Open(stream.clone()),
                &ScaleConfig {
                    serve: serve_cfg,
                    replicas,
                    dispatch,
                },
            )
            .expect("serve_scaled");
            let s = summarize(&report, &slo);
            let util: Vec<String> = report
                .replicas
                .iter()
                .map(|r| format!("{:.0}%", 100.0 * r.utilization))
                .collect();
            println!(
                "{:<12} TTFT p50 {:>6.1}s  e2e p99 {:>6.1}s  SLO {:>2}/{}  \
                 goodput {:>5.2} tok/s  util [{}]",
                dispatch.label(),
                s.ttft.p50.as_secs_f64(),
                s.e2e.p99.as_secs_f64(),
                s.slo_met,
                s.requests,
                s.goodput_tps,
                util.join(" "),
            );
        }
        println!();
    }

    // Per-replica breakdown of the most interesting cell: cost-aware
    // placement at R = 4 (rates use the shared makespan, so they sum to
    // the merged report's).
    let report = serve_scaled(
        &engine,
        &spec,
        &hw,
        &Traffic::Open(stream),
        &ScaleConfig {
            serve: serve_cfg,
            replicas: 4,
            dispatch: DispatchPolicy::CostAware,
        },
    )
    .expect("serve_scaled");
    println!("-- cost_aware @ R=4, per replica --");
    for ru in &report.replicas {
        let s = summarize_replica(&report, &slo, ru.replica);
        println!(
            "replica {}: {:>2} requests in {:>2} groups, busy {:>7}, util {:>3.0}%, \
             SLO {:>2}/{}",
            ru.replica,
            ru.requests,
            ru.groups,
            format!("{}", ru.busy),
            100.0 * ru.utilization,
            s.slo_met,
            s.requests,
        );
    }
}
