//! Continuous batching in five minutes: the same saturated heavy-tailed
//! stream served run-to-completion and with step-level slot refill, plus a
//! chat/batch priority split.
//!
//! Run-to-completion pads every batch group to its slowest member — a few
//! 32-token requests hold slots that 2-token neighbours vacated long ago.
//! The continuous scheduler refills those slots at step boundaries, chunks
//! prefill so interactive arrivals can jump ahead, and both sides price
//! their steps with the *same* calibrated cost model (summed step costs
//! equal the atomic group cost exactly), so the gap is pure scheduling.
//!
//! ```sh
//! cargo run --release --example serve_continuous
//! ```

use klotski::model::hardware::HardwareSpec;
use klotski::model::spec::ModelSpec;
use klotski::serve::admission::AdmissionPolicy;
use klotski::serve::continuous::{
    serve_continuous, ClassAssign, ContinuousConfig, CostEngine, RequestClass,
};
use klotski::serve::metrics::{summarize, summarize_where, SloSpec};
use klotski::serve::server::{ServeConfig, Traffic};
use klotski::serve::traffic::{generate, Arrivals, LengthDist, TrafficConfig};
use klotski::sim::time::SimDuration;

fn main() {
    let spec = ModelSpec::mixtral_8x7b();
    let hw = HardwareSpec::env1_rtx3090();
    let engine = CostEngine::new(&spec, &hw);
    let slo = SloSpec {
        ttft: SimDuration::from_secs(120),
        tpot: SimDuration::from_secs(10),
    };

    // 48 requests in bursts at 4 req/s: far faster than one engine drains,
    // with heavy-tailed output lengths — the padding-waste regime.
    let stream = || {
        generate(
            Arrivals::Bursty {
                rate: 4.0,
                burst: 4,
            },
            &TrafficConfig {
                num_requests: 48,
                prompt: LengthDist::Uniform { lo: 32, hi: 128 },
                gen: LengthDist::HeavyTail {
                    lo: 2,
                    hi: 4,
                    heavy: 32,
                    heavy_pct: 25,
                },
                seed: 7,
            },
        )
    };
    let cfg = |refill: bool, classes: ClassAssign| ContinuousConfig {
        serve: ServeConfig {
            batch_size: 4,
            policy: AdmissionPolicy::Deadline {
                n: 2,
                deadline: SimDuration::from_secs(2),
            },
            seed: 7,
        },
        refill,
        prefill_chunk: 32,
        classes,
    };

    println!("== 48 bursty requests, heavy-tailed outputs, 8 slots (bs 4 x n 2) ==");
    println!("SLO: TTFT <= {}, TPOT <= {}\n", slo.ttft, slo.tpot);
    for (label, refill) in [("run-to-completion", false), ("continuous", true)] {
        let report = serve_continuous(
            &engine,
            &spec,
            &hw,
            &Traffic::Open(stream()),
            &cfg(refill, ClassAssign::Uniform),
        )
        .expect("serve_continuous");
        let s = summarize(&report.serve, &slo);
        println!(
            "{:<17}  TTFT p50 {:>7.2}s  e2e p99 {:>7.2}s  SLO {:>2}/{}  goodput {:>5.2} tok/s  \
             occupancy {:.2}  refills {:>2}",
            label,
            s.ttft.p50.as_secs_f64(),
            s.e2e.p99.as_secs_f64(),
            s.slo_met,
            s.requests,
            s.goodput_tps,
            report.occupancy,
            report.refills,
        );
    }

    // Priority classes: 30% of the same stream is interactive chat; chat
    // admissions go ahead of batch work and may park a batch prefill
    // between chunks. Compare the same chat ids with and without priority.
    let share = ClassAssign::ChatShare { chat_pct: 30 };
    println!("\n== priority classes: 30% chat share vs uniform queue ==");
    for (label, classes) in [("uniform", ClassAssign::Uniform), ("chat_share", share)] {
        let report = serve_continuous(
            &engine,
            &spec,
            &hw,
            &Traffic::Open(stream()),
            &cfg(true, classes),
        )
        .expect("serve_continuous");
        let chat = summarize_where(&report.serve, &slo, &|o| {
            share.class_of(o.id) == RequestClass::Chat
        });
        println!(
            "{:<10}  chat TTFT p50 {:>6.2}s  p99 {:>7.2}s  chat SLO {:>2}/{}  preemptions {}",
            label,
            chat.ttft.p50.as_secs_f64(),
            chat.ttft.p99.as_secs_f64(),
            chat.slo_met,
            chat.requests,
            report.preemptions,
        );
    }
}
