//! Explore the constraint-sensitive I/O-compute planner (§7): how the
//! minimal batch-group size `n` responds to batch size, link bandwidth and
//! quantization.
//!
//! ```sh
//! cargo run --release --example planner_explore
//! ```

use klotski::core::compress::Compression;
use klotski::core::planner::Planner;
use klotski::model::cost::CostModel;
use klotski::model::hardware::HardwareSpec;
use klotski::model::spec::ModelSpec;
use klotski::model::trace::{GatingModel, TraceConfig};
use klotski::model::workload::Workload;

fn main() {
    let spec = ModelSpec::mixtral_8x7b();
    let gating = GatingModel::new(&TraceConfig::for_model(&spec, 7));

    println!("== n vs batch size (Env 1, no compression) ==");
    let planner = Planner::new(
        CostModel::new(spec.clone(), HardwareSpec::env1_rtx3090()),
        Compression::none(),
    );
    for bs in [4u32, 8, 16, 32, 64] {
        let plan = planner.plan(&Workload::paper_default(bs), Some(&gating));
        println!(
            "  batch {bs:>3} → n = {:>2} (memory-capped: {})",
            plan.n, plan.memory_capped
        );
    }

    println!("\n== inequality slacks at batch 16 (ms; negative = violated) ==");
    println!("      (4) gate    (5) +hot   (6) +1 cold (7) full queue");
    for n in [5u32, 10, 20, 40] {
        let s = planner.slacks(n, 16, Some(&gating));
        println!(
            "  n={n:<3} {:>9.1} {:>10.1} {:>11.1} {:>13.1}",
            s[0] * 1e3,
            s[1] * 1e3,
            s[2] * 1e3,
            s[3] * 1e3
        );
    }

    println!("\n== n vs link bandwidth (batch 16) ==");
    for scale in [0.5, 1.0, 2.0, 4.0] {
        let hw = HardwareSpec::env1_rtx3090().with_link_scale(scale);
        let planner = Planner::new(CostModel::new(spec.clone(), hw), Compression::none());
        let plan = planner.plan(&Workload::paper_default(16), Some(&gating));
        println!("  PCIe ×{scale:<4} → n = {:>2}", plan.n);
    }

    println!("\n== n with 4-bit quantization (batch 16) ==");
    for (label, comp) in [
        ("bf16    ", Compression::none()),
        ("4-bit   ", Compression::quantized()),
    ] {
        let planner = Planner::new(
            CostModel::new(spec.clone(), HardwareSpec::env1_rtx3090()),
            comp,
        );
        let plan = planner.plan(&Workload::paper_default(16), Some(&gating));
        println!("  {label} → n = {:>2}", plan.n);
    }

    println!("\n== the memory cap in action: Mixtral-8x22B on Env 1 ==");
    let big = ModelSpec::mixtral_8x22b();
    let gating_big = GatingModel::new(&TraceConfig::for_model(&big, 7));
    let planner = Planner::new(
        CostModel::new(big, HardwareSpec::env1_rtx3090()),
        Compression::none(),
    );
    for bs in [16u32, 64] {
        let plan = planner.plan(&Workload::paper_default(bs), Some(&gating_big));
        println!(
            "  batch {bs:>3} → required n = {:>2}, chosen n = {:>2} (memory-capped: {})",
            plan.required_n, plan.n, plan.memory_capped
        );
    }
}
