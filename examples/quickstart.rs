//! Quickstart: run Klotski on Mixtral-8×7B under an RTX-3090-class
//! environment and print the planner's decision plus the run report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use klotski::core::engine::{KlotskiConfig, KlotskiEngine};
use klotski::core::scenario::{Engine, Scenario};
use klotski::model::hardware::HardwareSpec;
use klotski::model::spec::ModelSpec;
use klotski::model::workload::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelSpec::mixtral_8x7b();
    let hw = HardwareSpec::env1_rtx3090();
    println!("model:    {model}");
    println!("hardware: {}", hw.name);

    // The paper's workload shape: prompt 512, 32 generated tokens.
    let workload = Workload::paper_default(16);

    // Ask the constraint-sensitive planner for the batch-group size n.
    let engine = KlotskiEngine::new(KlotskiConfig::full());
    let scenario = Scenario::generate(model.clone(), hw.clone(), workload, 42);
    let plan = engine
        .planner(&scenario)
        .plan(&workload, scenario.task_gating.as_ref());
    println!(
        "planner:  n = {} (required {}, satisfied: {}, memory-capped: {})",
        plan.n, plan.required_n, plan.satisfied, plan.memory_capped
    );
    println!(
        "profile:  attention {} | gate {} | expert transfer {} | gate transfer {}",
        plan.profile.t_c_attn,
        plan.profile.t_c_gate,
        plan.profile.t_io_expert,
        plan.profile.t_io_gate,
    );

    // Run the planned batch group end to end.
    let scenario = Scenario::generate(model, hw, workload.with_batches(plan.n), 42);
    let report = engine.run(&scenario)?;
    println!("result:   {report}");
    println!(
        "          prefill {} + decode {}",
        report.prefill_time, report.decode_time
    );
    Ok(())
}
