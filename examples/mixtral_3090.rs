//! Mixtral-8×7B on a single RTX 3090: Klotski versus all five baselines —
//! a one-screen version of the paper's Fig. 10 (left panel).
//!
//! ```sh
//! cargo run --release --example mixtral_3090
//! ```

use klotski::baselines::{Accelerate, FastGen, Fiddler, FlexGen, MoeInfinity};
use klotski::core::engine::{KlotskiConfig, KlotskiEngine};
use klotski::core::scenario::{Engine, Scenario};
use klotski::model::hardware::HardwareSpec;
use klotski::model::spec::ModelSpec;
use klotski::model::workload::Workload;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 15; // the paper's best n for this scenario (Fig. 14)
    println!("Mixtral-8x7B, Env 1 (RTX 3090), n = {n}, prompt 512, gen 32");
    println!(
        "{:>6} {:>12} {:>9} {:>9} {:>13} {:>9} {:>9} {:>12}",
        "batch",
        "Accelerate",
        "FastGen",
        "FlexGen",
        "MoE-Infinity",
        "Fiddler",
        "Klotski",
        "Klotski (q)"
    );

    for bs in [4u32, 8, 16, 32, 64] {
        let wl = Workload::paper_default(bs).with_batches(n);
        let sc = Scenario::generate(
            ModelSpec::mixtral_8x7b(),
            HardwareSpec::env1_rtx3090(),
            wl,
            42,
        );
        let engines: Vec<Box<dyn Engine>> = vec![
            Box::new(Accelerate),
            Box::new(FastGen),
            Box::new(FlexGen),
            Box::new(MoeInfinity),
            Box::new(Fiddler),
            Box::new(KlotskiEngine::new(KlotskiConfig::full())),
            Box::new(KlotskiEngine::new(KlotskiConfig::quantized())),
        ];
        print!("{bs:>6}");
        for engine in engines {
            let report = engine.run(&sc)?;
            if report.succeeded() {
                print!(" {:>11.2}", report.throughput_tps());
            } else {
                print!(" {:>11}", "OOM");
            }
        }
        println!();
    }
    println!("\n(throughput in generated tokens per second; higher is better)");
    Ok(())
}
