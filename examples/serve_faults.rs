//! Fault-tolerant cluster serving: one bursty request stream, one seeded
//! fault plan (replica crashes, a straggler window, cold-start trouble),
//! three recovery postures.
//!
//! The fault plan is data, not chance: `FaultPlan::generate` draws crash
//! instants and victims from a seed, and the cluster loop replays them as
//! ordinary simulation events — so every row below is byte-reproducible.
//! The postures:
//!
//! * `naive` — fault-oblivious: crash-lost requests are dropped on the
//!   spot, stragglers keep receiving load.
//! * `retry+health` — lost requests re-enqueue with capped exponential
//!   backoff; suspected stragglers (observed/estimated service EWMA) are
//!   excluded from dispatch while healthy replicas exist.
//! * `full` — additionally hedges stuck chat-class requests off suspect
//!   replicas and sheds batch-class work at admission when the backlog
//!   passes a watermark.
//!
//! ```sh
//! cargo run --release --example serve_faults
//! ```

use klotski::core::engine::{KlotskiConfig, KlotskiEngine};
use klotski::model::hardware::HardwareSpec;
use klotski::model::spec::ModelSpec;
use klotski::serve::admission::AdmissionPolicy;
use klotski::serve::cluster::{
    serve_cluster_faulty, ClusterConfig, ColdStartModel, DegradationPolicy, FaultPlan,
    FaultScenario, QueueDepthReactive, ToleranceConfig,
};
use klotski::serve::continuous::ClassAssign;
use klotski::serve::dispatcher::DispatchPolicy;
use klotski::serve::metrics::{summarize, SloSpec};
use klotski::serve::server::{ServeConfig, Traffic};
use klotski::serve::traffic::{generate, Arrivals, LengthDist, TrafficConfig};
use klotski::sim::time::SimDuration;

fn main() {
    let spec = ModelSpec::mixtral_8x7b();
    let hw = HardwareSpec::env1_rtx3090();
    let engine = KlotskiEngine::new(KlotskiConfig::full());
    let slo = SloSpec {
        ttft: SimDuration::from_secs(90),
        tpot: SimDuration::from_secs(8),
    };
    let cfg = ClusterConfig {
        serve: ServeConfig {
            batch_size: 4,
            policy: AdmissionPolicy::Deadline {
                n: 4,
                deadline: SimDuration::from_secs(15),
            },
            seed: 7,
        },
        dispatch: DispatchPolicy::JoinShortestQueue,
        coldstart: ColdStartModel::Fixed(SimDuration::from_secs(20)),
        tick: SimDuration::from_secs(10),
        slo,
    };

    // 48 bursty requests — enough pressure that losing a replica hurts.
    let stream = generate(
        Arrivals::Bursty {
            rate: 0.6,
            burst: 4,
        },
        &TrafficConfig {
            num_requests: 48,
            prompt: LengthDist::Uniform { lo: 32, hi: 96 },
            gen: LengthDist::Uniform { lo: 2, hi: 6 },
            seed: 7,
        },
    );

    // Two crashes (each replaced after 30 s), one 3× straggler window,
    // and a stalled cold start, all inside the arrival span.
    let plan = FaultPlan::generate(&FaultScenario {
        seed: 42,
        horizon: SimDuration::from_secs(70),
        crashes: 2,
        restart_after: Some(SimDuration::from_secs(30)),
        degraded: 1,
        slowdown_pct: 300,
        degrade_width: SimDuration::from_secs(40),
        coldstart_stalls: 1,
        coldstart_stall: SimDuration::from_secs(15),
        coldstart_fails: 0,
    });

    let naive = ToleranceConfig::naive();
    let retry_health = ToleranceConfig::default();
    let full = ToleranceConfig {
        hedge_after: Some(SimDuration::from_secs(20)),
        degradation: DegradationPolicy::ShedBatchOver {
            backlog_per_replica: 600,
        },
        classes: ClassAssign::ChatShare { chat_pct: 60 },
        ..ToleranceConfig::default()
    };

    println!("== 48 bursty requests, 2 crashes + 1 straggler window + 1 stalled cold start ==");
    println!("SLO: TTFT <= {}, TPOT <= {}\n", slo.ttft, slo.tpot);
    for (label, tol) in [
        ("naive", &naive),
        ("retry+health", &retry_health),
        ("full", &full),
    ] {
        let report = serve_cluster_faulty(
            &engine,
            &spec,
            &hw,
            &Traffic::Open(stream.clone()),
            &cfg,
            &mut QueueDepthReactive::new(2, 5, 2_000, 400, 2),
            &plan,
            tol,
        )
        .expect("serve_cluster_faulty");
        let s = summarize(&report.serve, &slo);
        let f = report.faults;
        println!(
            "{label:<13} served {:>2}/{}  dropped {:>2}  shed {:>2}  retried {:>2}  \
             SLO {:>2}/{}  goodput {:>5.2} tok/s",
            s.requests - s.dropped - s.shed,
            s.requests,
            s.dropped,
            s.shed,
            s.retried,
            s.slo_met,
            s.requests,
            s.goodput_tps,
        );
        println!(
            "              faults: {} crash(es), {} lost in-flight, {} lost queued, \
             {} restart(s), {} hedge(s), wasted busy {}",
            f.crashes, f.lost_inflight, f.lost_queued, f.restarts, f.hedges, f.wasted_busy,
        );
    }

    println!(
        "\nThe naive posture loses every crash-hit request; retry+health re-serves \
         them (exactly once) and routes around the straggler; the full stack \
         additionally trades batch-class work for chat latency under pressure."
    );
}
