//! Expert-popularity heatmap (the paper's Fig. 5): which experts receive
//! most tokens, per layer, under the synthetic gating model.
//!
//! ```sh
//! cargo run --release --example expert_heatmap
//! ```

use klotski::model::spec::ModelSpec;
use klotski::model::trace::{GatingModel, TraceConfig};

fn heatmap(name: &str, spec: &ModelSpec, seqs: u32) {
    let cfg = TraceConfig::for_model(spec, 17);
    let gating = GatingModel::new(&cfg);
    let trace = gating.generate_trace(seqs, 256, 8, 99);

    println!("\n== {name}: token share per (expert, layer) ==");
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];
    let layers = trace.n_moe_layers();
    let experts = trace.n_experts().min(16);
    print!("      ");
    for l in 0..layers {
        print!("{}", if l % 4 == 0 { '|' } else { ' ' });
    }
    println!("  (layers 0..{layers})");
    for e in 0..experts {
        print!("e{e:<4} ");
        for l in 0..layers {
            let counts = trace.popularity_counts(l);
            let total: u64 = counts.iter().sum();
            let share = counts[e as usize] as f64 / total.max(1) as f64;
            let idx = ((share * experts as f64).min(1.0) * (shades.len() - 1) as f64) as usize;
            print!("{}", shades[idx]);
        }
        println!();
    }
    // The paper's observation: top-K experts cover the majority of tokens.
    let k = spec.top_k.max(1);
    let mut shares = Vec::new();
    for l in 0..layers {
        let counts = trace.popularity_counts(l);
        let total: u64 = counts.iter().sum();
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let topk: u64 = sorted.iter().take(k as usize).sum();
        shares.push(topk as f64 / total.max(1) as f64);
    }
    let avg = shares.iter().sum::<f64>() / shares.len() as f64;
    println!(
        "top-{k} experts cover {:.1}% of routed tokens on average",
        avg * 100.0
    );
}

fn main() {
    heatmap("Mixtral-8x7B", &ModelSpec::mixtral_8x7b(), 64);
    heatmap(
        "switch-base-8 (decoder part)",
        &ModelSpec::switch_base(8),
        64,
    );
    heatmap(
        "switch-base-16 (decoder part)",
        &ModelSpec::switch_base(16),
        64,
    );
}
