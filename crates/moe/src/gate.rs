//! The top-k router (gate).
//!
//! Mixtral-style routing: logits from a linear gate, top-k selection,
//! softmax *over the selected logits* for the combination weights.

use klotski_tensor::matrix::Matrix;
use klotski_tensor::ops::{softmax_inplace, top_k_into};

/// One token's routing decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Routing {
    /// Selected experts with their combination weights, in gate-rank order
    /// (highest logit first). Weights sum to 1.
    pub picks: Vec<(usize, f32)>,
}

impl Routing {
    /// The selected expert indices, rank order.
    pub fn experts(&self) -> Vec<usize> {
        self.picks.iter().map(|&(e, _)| e).collect()
    }

    /// The weight assigned to `expert`, or 0.
    pub fn weight_of(&self, expert: usize) -> f32 {
        self.picks
            .iter()
            .find(|&&(e, _)| e == expert)
            .map_or(0.0, |&(_, w)| w)
    }
}

/// Routes one (normalized) token hidden state through the gate.
///
/// # Panics
///
/// Panics if `x` does not match the gate's input width or `k` is zero or
/// exceeds the expert count.
pub fn route(gate: &Matrix, x: &[f32], k: usize) -> Routing {
    let mut scratch = RouteScratch::default();
    let mut routing = Routing { picks: Vec::new() };
    route_into(gate, x, k, &mut routing, &mut scratch);
    routing
}

/// Reusable buffers for [`route_into`]: per-expert logits, top-k sort
/// scratch, and the selected logits awaiting softmax. One per decode
/// loop; every buffer reaches its steady-state capacity after the first
/// call.
#[derive(Debug, Clone, Default)]
pub struct RouteScratch {
    logits: Vec<f32>,
    idx: Vec<usize>,
    picks: Vec<(usize, f32)>,
    weights: Vec<f32>,
}

/// [`route`] into a reused [`Routing`] and [`RouteScratch`] — the
/// allocation-free form the native pipeline's gate step uses. Selection,
/// weights, and ordering are bit-identical to [`route`].
///
/// # Panics
///
/// Panics if `x` does not match the gate's input width or `k` is zero or
/// exceeds the expert count.
// analyze: no_alloc
pub fn route_into(gate: &Matrix, x: &[f32], k: usize, out: &mut Routing, s: &mut RouteScratch) {
    assert_eq!(x.len(), gate.cols(), "gate input width mismatch");
    assert!(k > 0 && k <= gate.rows(), "invalid top-k");
    s.logits.clear();
    s.logits.resize(gate.rows(), 0.0);
    for (e, logit) in s.logits.iter_mut().enumerate() {
        let row = gate.row(e);
        *logit = row.iter().zip(x).map(|(w, v)| w * v).sum();
    }
    top_k_into(&s.logits, k, &mut s.idx, &mut s.picks);
    s.weights.clear();
    s.weights.extend(s.picks.iter().map(|&(_, l)| l));
    softmax_inplace(&mut s.weights);
    out.picks.clear();
    out.picks
        .extend(s.picks.iter().zip(&s.weights).map(|(&(e, _), &w)| (e, w)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_tensor::init::xavier_matrix;

    #[test]
    fn routing_weights_sum_to_one() {
        let gate = xavier_matrix(8, 16, 3);
        let x: Vec<f32> = (0..16).map(|i| (i as f32).sin()).collect();
        let r = route(&gate, &x, 2);
        assert_eq!(r.picks.len(), 2);
        let sum: f32 = r.picks.iter().map(|&(_, w)| w).sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(r.picks[0].1 >= r.picks[1].1, "rank order by weight");
    }

    #[test]
    fn routing_is_deterministic_and_data_dependent() {
        let gate = xavier_matrix(8, 16, 3);
        let x1: Vec<f32> = (0..16).map(|i| (i as f32).sin()).collect();
        let x2: Vec<f32> = (0..16).map(|i| (i as f32 + 0.5).cos()).collect();
        assert_eq!(route(&gate, &x1, 2), route(&gate, &x1, 2));
        // Over a spread of inputs the selected set must vary.
        let mut sets = std::collections::HashSet::new();
        for t in 0..32 {
            let x: Vec<f32> = (0..16).map(|i| ((i + t * 3) as f32).sin()).collect();
            sets.insert(route(&gate, &x, 2).experts());
        }
        assert!(sets.len() > 1, "gate must be input-sensitive");
        let _ = x2;
    }

    #[test]
    fn weight_of_matches_picks() {
        let gate = xavier_matrix(4, 8, 5);
        let x = vec![0.25f32; 8];
        let r = route(&gate, &x, 2);
        let (top_e, top_w) = r.picks[0];
        assert_eq!(r.weight_of(top_e), top_w);
        let unused = (0..4).find(|e| !r.experts().contains(e)).unwrap();
        assert_eq!(r.weight_of(unused), 0.0);
    }

    #[test]
    fn top1_takes_all_weight() {
        let gate = xavier_matrix(4, 8, 7);
        let x = vec![0.1f32; 8];
        let r = route(&gate, &x, 1);
        assert_eq!(r.picks.len(), 1);
        assert!((r.picks[0].1 - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "invalid top-k")]
    fn oversized_k_rejected() {
        let gate = xavier_matrix(4, 8, 7);
        let _ = route(&gate, &[0.0; 8], 5);
    }
}
