//! Configuration of the native (really-executed) MoE model.

/// Shape of a small Mixtral-style MoE decoder.
///
/// The native path exists to validate the *algorithm* — reordered
/// multi-batch execution must be bit-identical to the reference — so the
/// model is architecturally faithful (RMSNorm, GQA-free multi-head
/// attention, SwiGLU experts, softmax-top-k gate) but small enough to run
/// in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoeConfig {
    /// Number of decoder blocks (each: attention + MoE).
    pub n_layers: usize,
    /// Hidden width.
    pub d_model: usize,
    /// Expert FFN inner width.
    pub d_ff: usize,
    /// Attention heads (`d_model = n_heads × head_dim`).
    pub n_heads: usize,
    /// Per-head width.
    pub head_dim: usize,
    /// Experts per layer.
    pub n_experts: usize,
    /// Experts activated per token.
    pub top_k: usize,
    /// Vocabulary size (embeddings are tied with the LM head).
    pub vocab: usize,
    /// Master weight seed.
    pub seed: u64,
}

impl MoeConfig {
    /// A tiny but non-trivial model: 4 layers, width 32, 6 experts top-2.
    pub fn tiny(seed: u64) -> Self {
        MoeConfig {
            n_layers: 4,
            d_model: 32,
            d_ff: 64,
            n_heads: 4,
            head_dim: 8,
            n_experts: 6,
            top_k: 2,
            vocab: 96,
            seed,
        }
    }

    /// A slightly larger model for integration tests and examples.
    pub fn small(seed: u64) -> Self {
        MoeConfig {
            n_layers: 6,
            d_model: 64,
            d_ff: 128,
            n_heads: 8,
            head_dim: 8,
            n_experts: 8,
            top_k: 2,
            vocab: 128,
            seed,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if `d_model ≠ n_heads × head_dim`, `top_k` is zero or exceeds
    /// `n_experts`, or any dimension is zero.
    pub fn validate(&self) {
        assert!(self.n_layers > 0, "n_layers must be positive");
        assert_eq!(
            self.d_model,
            self.n_heads * self.head_dim,
            "d_model must equal n_heads × head_dim"
        );
        assert!(self.d_ff > 0, "d_ff must be positive");
        assert!(
            self.top_k > 0 && self.top_k <= self.n_experts,
            "top_k must be in 1..=n_experts"
        );
        assert!(self.vocab > 1, "vocab must exceed 1");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        MoeConfig::tiny(0).validate();
        MoeConfig::small(0).validate();
    }

    #[test]
    #[should_panic(expected = "d_model must equal")]
    fn inconsistent_heads_rejected() {
        let mut c = MoeConfig::tiny(0);
        c.head_dim = 7;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "top_k")]
    fn excessive_top_k_rejected() {
        let mut c = MoeConfig::tiny(0);
        c.top_k = 99;
        c.validate();
    }
}
