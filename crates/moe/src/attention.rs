//! Multi-head causal attention with optional StreamingLLM masking.
//!
//! One token is processed at a time against a per-sequence [`KvCache`] —
//! the token's K/V are appended first, then the query attends over the
//! cached (visible) positions. [`AttnMask`] selects which positions are
//! visible: everything (dense causal) or the StreamingLLM pattern of
//! attention sinks plus a recent window (§7 "Sparse Attention").

use klotski_tensor::ops::softmax_inplace;

use crate::kv::KvCache;
use crate::weights::AttnWeights;

/// Which cached positions a query may attend to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttnMask {
    /// Full causal attention over every cached position.
    Dense,
    /// StreamingLLM: the first `sinks` positions plus the last `window`
    /// positions are visible.
    Streaming {
        /// Always-visible initial positions ("attention sinks").
        sinks: usize,
        /// Most recent visible positions.
        window: usize,
    },
}

impl AttnMask {
    /// Whether `pos` is visible out of `len` cached positions.
    pub fn visible(&self, pos: usize, len: usize) -> bool {
        match *self {
            AttnMask::Dense => true,
            AttnMask::Streaming { sinks, window } => pos < sinks || pos + window >= len,
        }
    }

    /// Number of visible positions out of `len`.
    pub fn visible_count(&self, len: usize) -> usize {
        match *self {
            AttnMask::Dense => len,
            AttnMask::Streaming { sinks, window } => {
                if len <= sinks + window {
                    len
                } else {
                    sinks + window
                }
            }
        }
    }
}

/// Runs one token through `layer`'s attention: appends its K/V to `cache`
/// and returns the attention output (pre-`wo` residual *not* applied; the
/// caller owns norms and residuals).
///
/// `x` is the *normalized* hidden state of the token.
///
/// # Panics
///
/// Panics if `x` is not `d_model` long.
pub fn attend_one(
    w: &AttnWeights,
    layer: usize,
    x: &[f32],
    cache: &mut KvCache,
    n_heads: usize,
    head_dim: usize,
    mask: AttnMask,
) -> Vec<f32> {
    let d_model = n_heads * head_dim;
    assert_eq!(x.len(), d_model, "attention input width mismatch");

    let q = project(&w.wq, x);
    let k = project(&w.wk, x);
    let v = project(&w.wv, x);
    cache.append(layer, &k, &v);

    let len = cache.len(layer);
    let scale = 1.0 / (head_dim as f32).sqrt();
    let mut attended = vec![0.0f32; d_model];
    let visible: Vec<usize> = (0..len).filter(|&p| mask.visible(p, len)).collect();

    for h in 0..n_heads {
        let q_h = &q[h * head_dim..(h + 1) * head_dim];
        // Scores over visible positions.
        let mut scores: Vec<f32> = visible
            .iter()
            .map(|&p| {
                let k_p = &cache.key_at(layer, p)[h * head_dim..(h + 1) * head_dim];
                dot(q_h, k_p) * scale
            })
            .collect();
        softmax_inplace(&mut scores);
        let out_h = &mut attended[h * head_dim..(h + 1) * head_dim];
        for (&p, &s) in visible.iter().zip(&scores) {
            let v_p = &cache.value_at(layer, p)[h * head_dim..(h + 1) * head_dim];
            for (o, &vv) in out_h.iter_mut().zip(v_p) {
                *o += s * vv;
            }
        }
    }

    project(&w.wo, &attended)
}

/// `w · x` through the blocked matvec kernel — bit-identical to per-row
/// sequential dots (f32 multiplication commutes bitwise), several× faster
/// than one latency-bound accumulator chain per row.
fn project(w: &klotski_tensor::matrix::Matrix, x: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; w.rows()];
    w.matvec_into(x, &mut out);
    out
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MoeConfig;
    use crate::weights::AttnWeights;

    fn setup() -> (MoeConfig, AttnWeights, KvCache) {
        let cfg = MoeConfig::tiny(3);
        let w = AttnWeights::seeded(&cfg, 0);
        let cache = KvCache::new(cfg.n_layers, cfg.d_model);
        (cfg, w, cache)
    }

    #[test]
    fn first_token_attends_only_to_itself() {
        let (cfg, w, mut cache) = setup();
        let x = vec![0.3f32; cfg.d_model];
        let out = attend_one(
            &w,
            0,
            &x,
            &mut cache,
            cfg.n_heads,
            cfg.head_dim,
            AttnMask::Dense,
        );
        assert_eq!(out.len(), cfg.d_model);
        assert_eq!(cache.len(0), 1);
        // With a single position, attention weights are 1.0: output is
        // wo · v deterministically.
        let v = project(&w.wv, &x);
        let expect = project(&w.wo, &v);
        for (a, b) in out.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn attention_depends_on_history() {
        let (cfg, w, mut cache) = setup();
        let x1 = vec![0.3f32; cfg.d_model];
        let x2 = vec![-0.2f32; cfg.d_model];
        let _ = attend_one(
            &w,
            0,
            &x1,
            &mut cache,
            cfg.n_heads,
            cfg.head_dim,
            AttnMask::Dense,
        );
        let with_history = attend_one(
            &w,
            0,
            &x2,
            &mut cache,
            cfg.n_heads,
            cfg.head_dim,
            AttnMask::Dense,
        );
        let mut fresh = KvCache::new(cfg.n_layers, cfg.d_model);
        let without = attend_one(
            &w,
            0,
            &x2,
            &mut fresh,
            cfg.n_heads,
            cfg.head_dim,
            AttnMask::Dense,
        );
        let diff: f32 = with_history
            .iter()
            .zip(&without)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(diff > 1e-6, "history must influence the output");
    }

    #[test]
    fn streaming_mask_visibility_pattern() {
        let m = AttnMask::Streaming {
            sinks: 2,
            window: 3,
        };
        let len = 10;
        let visible: Vec<usize> = (0..len).filter(|&p| m.visible(p, len)).collect();
        assert_eq!(visible, vec![0, 1, 7, 8, 9]);
        assert_eq!(m.visible_count(10), 5);
        assert_eq!(m.visible_count(4), 4);
        assert_eq!(AttnMask::Dense.visible_count(10), 10);
    }

    #[test]
    fn streaming_equals_dense_below_budget() {
        let (cfg, w, _) = setup();
        let mask = AttnMask::Streaming {
            sinks: 4,
            window: 8,
        };
        let mut dense_cache = KvCache::new(cfg.n_layers, cfg.d_model);
        let mut stream_cache = KvCache::new(cfg.n_layers, cfg.d_model);
        // 10 tokens < 4 + 8 budget: the masks coincide.
        for t in 0..10 {
            let x: Vec<f32> = (0..cfg.d_model)
                .map(|i| ((t * 7 + i) as f32).sin())
                .collect();
            let a = attend_one(
                &w,
                0,
                &x,
                &mut dense_cache,
                cfg.n_heads,
                cfg.head_dim,
                AttnMask::Dense,
            );
            let b = attend_one(
                &w,
                0,
                &x,
                &mut stream_cache,
                cfg.n_heads,
                cfg.head_dim,
                mask,
            );
            assert_eq!(a, b, "token {t}");
        }
    }

    #[test]
    fn streaming_diverges_beyond_budget() {
        let (cfg, w, _) = setup();
        let mask = AttnMask::Streaming {
            sinks: 1,
            window: 2,
        };
        let mut dense_cache = KvCache::new(cfg.n_layers, cfg.d_model);
        let mut stream_cache = KvCache::new(cfg.n_layers, cfg.d_model);
        let mut diverged = false;
        for t in 0..8 {
            let x: Vec<f32> = (0..cfg.d_model)
                .map(|i| ((t * 3 + i) as f32).cos())
                .collect();
            let a = attend_one(
                &w,
                0,
                &x,
                &mut dense_cache,
                cfg.n_heads,
                cfg.head_dim,
                AttnMask::Dense,
            );
            let b = attend_one(
                &w,
                0,
                &x,
                &mut stream_cache,
                cfg.n_heads,
                cfg.head_dim,
                mask,
            );
            if a != b {
                diverged = true;
            }
        }
        assert!(diverged, "sparse attention must differ once len > budget");
    }
}
