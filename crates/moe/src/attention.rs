//! Multi-head causal attention with optional StreamingLLM masking.
//!
//! One token is processed at a time against a per-sequence [`KvCache`] —
//! the token's K/V are appended first, then the query attends over the
//! cached (visible) positions. [`AttnMask`] selects which positions are
//! visible: everything (dense causal) or the StreamingLLM pattern of
//! attention sinks plus a recent window (§7 "Sparse Attention").
//!
//! Two execution shapes produce **bit-identical** outputs:
//!
//! * [`attend_one`] — one token of one sequence, four blocked matvecs plus
//!   scalar score/AV loops (the reference arithmetic);
//! * [`attend_batch`] — a whole batch group at once: the group's
//!   normalized hidden states are stacked `[n_active × d_model]` and Q, K,
//!   V (and the output projection after attention) become single GEMMs
//!   through the blocked `nt` kernels, while per-sequence scores/AV run
//!   through the strided kernels
//!   ([`matvec_strided_into`]/[`weighted_rows_into`]) over each sequence's
//!   contiguous KV slab. The same in-batch weight-amortization motif that
//!   batches the expert GEMMs applies: the projection weights are shared
//!   by every sequence in the group, so projecting the group is one GEMM,
//!   not `n_active` latency-bound matvecs. All buffers live in a reusable
//!   [`AttnScratch`], so steady-state decode performs no heap allocation
//!   in the attention block.

use klotski_tensor::matrix::{matvec_strided_into, weighted_rows_into, Matrix, StridedRows};
use klotski_tensor::ops::softmax_inplace;

use crate::kv::KvCache;
use crate::weights::AttnWeights;

/// Which cached positions a query may attend to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttnMask {
    /// Full causal attention over every cached position.
    Dense,
    /// StreamingLLM: the first `sinks` positions plus the last `window`
    /// positions are visible.
    Streaming {
        /// Always-visible initial positions ("attention sinks").
        sinks: usize,
        /// Most recent visible positions.
        window: usize,
    },
}

impl AttnMask {
    /// Whether `pos` is visible out of `len` cached positions.
    pub fn visible(&self, pos: usize, len: usize) -> bool {
        match *self {
            AttnMask::Dense => true,
            AttnMask::Streaming { sinks, window } => pos < sinks || pos + window >= len,
        }
    }

    /// Number of visible positions out of `len`.
    pub fn visible_count(&self, len: usize) -> usize {
        match *self {
            AttnMask::Dense => len,
            AttnMask::Streaming { sinks, window } => {
                if len <= sinks + window {
                    len
                } else {
                    sinks + window
                }
            }
        }
    }
}

/// Runs one token through `layer`'s attention: appends its K/V to `cache`
/// and returns the attention output (pre-`wo` residual *not* applied; the
/// caller owns norms and residuals).
///
/// `x` is the *normalized* hidden state of the token.
///
/// # Panics
///
/// Panics if `x` is not `d_model` long.
pub fn attend_one(
    w: &AttnWeights,
    layer: usize,
    x: &[f32],
    cache: &mut KvCache,
    n_heads: usize,
    head_dim: usize,
    mask: AttnMask,
) -> Vec<f32> {
    let d_model = n_heads * head_dim;
    assert_eq!(x.len(), d_model, "attention input width mismatch");

    let q = project(&w.wq, x);
    let k = project(&w.wk, x);
    let v = project(&w.wv, x);
    cache.append(layer, &k, &v);

    let len = cache.len(layer);
    let mut attended = vec![0.0f32; d_model];
    match mask {
        // Dense visibility is the contiguous 0..len range: iterate it
        // directly instead of materializing an index Vec per call.
        AttnMask::Dense => attend_heads(&q, cache, layer, 0..len, n_heads, head_dim, &mut attended),
        AttnMask::Streaming { .. } => {
            let visible: Vec<usize> = (0..len).filter(|&p| mask.visible(p, len)).collect();
            attend_heads(
                &q,
                cache,
                layer,
                visible.iter().copied(),
                n_heads,
                head_dim,
                &mut attended,
            );
        }
    }

    project(&w.wo, &attended)
}

/// The per-head scores → softmax → AV core of [`attend_one`], generic
/// over the visible-position walk so the dense case needs no index
/// allocation. Per-score dots and per-output-element AXPY accumulation run
/// in ascending-position order — the accumulation order every batched or
/// blocked variant must replicate exactly.
fn attend_heads<I>(
    q: &[f32],
    cache: &KvCache,
    layer: usize,
    visible: I,
    n_heads: usize,
    head_dim: usize,
    attended: &mut [f32],
) where
    I: Iterator<Item = usize> + Clone,
{
    let scale = 1.0 / (head_dim as f32).sqrt();
    for h in 0..n_heads {
        let q_h = &q[h * head_dim..(h + 1) * head_dim];
        // Scores over visible positions.
        let mut scores: Vec<f32> = visible
            .clone()
            .map(|p| {
                let k_p = &cache.key_at(layer, p)[h * head_dim..(h + 1) * head_dim];
                dot(q_h, k_p) * scale
            })
            .collect();
        softmax_inplace(&mut scores);
        let out_h = &mut attended[h * head_dim..(h + 1) * head_dim];
        for (p, &s) in visible.clone().zip(&scores) {
            let v_p = &cache.value_at(layer, p)[h * head_dim..(h + 1) * head_dim];
            for (o, &vv) in out_h.iter_mut().zip(v_p) {
                *o += s * vv;
            }
        }
    }
}

/// Reusable buffers for [`attend_batch`]: the group's stacked
/// normalized/Q/K/V/attended/output matrices plus the per-sequence scores
/// and visible-index buffers. Owned by the caller (the native pipeline
/// keeps one for the whole run) so steady-state decode allocates nothing
/// in the attention block — [`AttnScratch::reserve`] pre-sizes everything
/// to the run's high-water shapes.
#[derive(Debug, Clone)]
pub struct AttnScratch {
    n_heads: usize,
    head_dim: usize,
    /// The staged group input (one normalized hidden state per row).
    pub(crate) normed: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    attended: Matrix,
    /// The group's attention output (post-`wo`, pre-residual).
    pub(crate) out: Matrix,
    scores: Vec<f32>,
    visible: Vec<usize>,
}

impl AttnScratch {
    /// Fresh (empty) scratch for a model with `n_heads` heads of
    /// `head_dim`.
    pub fn new(n_heads: usize, head_dim: usize) -> Self {
        AttnScratch {
            n_heads,
            head_dim,
            normed: Matrix::zeros(0, 0),
            q: Matrix::zeros(0, 0),
            k: Matrix::zeros(0, 0),
            v: Matrix::zeros(0, 0),
            attended: Matrix::zeros(0, 0),
            out: Matrix::zeros(0, 0),
            scores: Vec::new(),
            visible: Vec::new(),
        }
    }

    /// Pre-sizes every buffer for groups of up to `rows` sequences and
    /// caches of up to `positions` entries, so no later
    /// [`AttnScratch::input_mut`] or [`attend_batch`] call allocates.
    pub fn reserve(&mut self, rows: usize, positions: usize) {
        self.input_mut(rows);
        self.scores.reserve(positions);
        self.visible.reserve(positions);
    }

    /// Stages a group of `rows` sequences: resizes the per-row matrices
    /// (buffer-reusing) and returns the input matrix for the caller to
    /// fill, one **normalized** hidden state per row.
    pub fn input_mut(&mut self, rows: usize) -> &mut Matrix {
        let d_model = self.n_heads * self.head_dim;
        self.q.resize(rows, d_model);
        self.k.resize(rows, d_model);
        self.v.resize(rows, d_model);
        self.attended.resize(rows, d_model);
        self.out.resize(rows, d_model);
        self.normed.resize(rows, d_model);
        &mut self.normed
    }

    /// The group's attention output after [`attend_batch`] (one row per
    /// staged sequence; pre-residual, like [`attend_one`]'s return).
    pub fn output(&self) -> &Matrix {
        &self.out
    }
}

/// Runs one step of attention for a whole batch group: row `r` of the
/// staged input (see [`AttnScratch::input_mut`]) is the normalized hidden
/// state of the sequence `caches[seqs[r]]`, whose K/V are appended before
/// the row's query attends over its visible cached positions.
///
/// Bit-identical to calling [`attend_one`] per sequence: the Q/K/V/O
/// GEMMs compute each row with the same ascending-k sequential dots as the
/// per-token matvec, and the strided scores/AV kernels replicate the
/// scalar loops' per-element accumulation order exactly. Only wall-clock
/// changes — the projection weights are streamed once per group instead
/// of once per token, and nothing is allocated.
///
/// # Panics
///
/// Panics if the staged input's shape does not match `seqs.len()` rows of
/// `n_heads × head_dim`, or any cache width differs.
// analyze: no_alloc
pub fn attend_batch(
    w: &AttnWeights,
    layer: usize,
    caches: &mut [KvCache],
    seqs: &[usize],
    mask: AttnMask,
    scratch: &mut AttnScratch,
) {
    let n = seqs.len();
    let d_model = scratch.n_heads * scratch.head_dim;
    assert_eq!(
        (scratch.normed.rows(), scratch.normed.cols()),
        (n, d_model),
        "group not staged: call input_mut(seqs.len()) and fill it first"
    );
    if n == 0 {
        return;
    }

    // Q/K/V for the whole group as single GEMMs (weights streamed once).
    // Deliberately single-threaded: spawning a scoped thread team per call
    // would heap-allocate in the decode hot loop (breaking the
    // zero-allocation contract) and fight the caller's own parallelism —
    // the native pipeline already keeps its worker pool busy with expert
    // GEMMs while the inference thread attends.
    scratch.normed.matmul_nt_into(&w.wq, &mut scratch.q);
    scratch.normed.matmul_nt_into(&w.wk, &mut scratch.k);
    scratch.normed.matmul_nt_into(&w.wv, &mut scratch.v);
    for (r, &s) in seqs.iter().enumerate() {
        caches[s].append(layer, scratch.k.row(r), scratch.v.row(r));
    }

    // Per-sequence scores/AV over each cache's contiguous KV slab. The
    // caches are independent, so sequence order is irrelevant; positions
    // within a sequence accumulate in ascending order (the exactness pin).
    let AttnScratch {
        n_heads,
        head_dim,
        ref q,
        ref mut attended,
        ref mut scores,
        ref mut visible,
        ..
    } = *scratch;
    let scale = 1.0 / (head_dim as f32).sqrt();
    for (r, &s) in seqs.iter().enumerate() {
        let cache = &caches[s];
        let len = cache.len(layer);
        visible.clear();
        visible.extend((0..len).filter(|&p| mask.visible(p, len)));
        scores.resize(visible.len(), 0.0);
        let keys = cache.keys(layer);
        let vals = cache.values(layer);
        let attended_row = attended.row_mut(r);
        for h in 0..n_heads {
            let off = h * head_dim;
            let q_h = &q.row(r)[off..off + head_dim];
            let k_rows = StridedRows::new(keys, d_model, off, head_dim);
            matvec_strided_into(q_h, &k_rows, visible, scores);
            for sv in scores.iter_mut() {
                *sv *= scale;
            }
            softmax_inplace(scores);
            let v_rows = StridedRows::new(vals, d_model, off, head_dim);
            weighted_rows_into(
                scores,
                &v_rows,
                visible,
                &mut attended_row[off..off + head_dim],
            );
        }
    }

    // Output projection for the whole group as one GEMM.
    scratch.attended.matmul_nt_into(&w.wo, &mut scratch.out);
}

/// `w · x` through the blocked matvec kernel — bit-identical to per-row
/// sequential dots (f32 multiplication commutes bitwise), several× faster
/// than one latency-bound accumulator chain per row.
fn project(w: &klotski_tensor::matrix::Matrix, x: &[f32]) -> Vec<f32> {
    let mut out = vec![0.0f32; w.rows()];
    w.matvec_into(x, &mut out);
    out
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MoeConfig;
    use crate::weights::AttnWeights;

    fn setup() -> (MoeConfig, AttnWeights, KvCache) {
        let cfg = MoeConfig::tiny(3);
        let w = AttnWeights::seeded(&cfg, 0);
        let cache = KvCache::new(cfg.n_layers, cfg.d_model);
        (cfg, w, cache)
    }

    #[test]
    fn first_token_attends_only_to_itself() {
        let (cfg, w, mut cache) = setup();
        let x = vec![0.3f32; cfg.d_model];
        let out = attend_one(
            &w,
            0,
            &x,
            &mut cache,
            cfg.n_heads,
            cfg.head_dim,
            AttnMask::Dense,
        );
        assert_eq!(out.len(), cfg.d_model);
        assert_eq!(cache.len(0), 1);
        // With a single position, attention weights are 1.0: output is
        // wo · v deterministically.
        let v = project(&w.wv, &x);
        let expect = project(&w.wo, &v);
        for (a, b) in out.iter().zip(&expect) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn attention_depends_on_history() {
        let (cfg, w, mut cache) = setup();
        let x1 = vec![0.3f32; cfg.d_model];
        let x2 = vec![-0.2f32; cfg.d_model];
        let _ = attend_one(
            &w,
            0,
            &x1,
            &mut cache,
            cfg.n_heads,
            cfg.head_dim,
            AttnMask::Dense,
        );
        let with_history = attend_one(
            &w,
            0,
            &x2,
            &mut cache,
            cfg.n_heads,
            cfg.head_dim,
            AttnMask::Dense,
        );
        let mut fresh = KvCache::new(cfg.n_layers, cfg.d_model);
        let without = attend_one(
            &w,
            0,
            &x2,
            &mut fresh,
            cfg.n_heads,
            cfg.head_dim,
            AttnMask::Dense,
        );
        let diff: f32 = with_history
            .iter()
            .zip(&without)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(diff > 1e-6, "history must influence the output");
    }

    #[test]
    fn streaming_mask_visibility_pattern() {
        let m = AttnMask::Streaming {
            sinks: 2,
            window: 3,
        };
        let len = 10;
        let visible: Vec<usize> = (0..len).filter(|&p| m.visible(p, len)).collect();
        assert_eq!(visible, vec![0, 1, 7, 8, 9]);
        assert_eq!(m.visible_count(10), 5);
        assert_eq!(m.visible_count(4), 4);
        assert_eq!(AttnMask::Dense.visible_count(10), 10);
    }

    #[test]
    fn streaming_equals_dense_below_budget() {
        let (cfg, w, _) = setup();
        let mask = AttnMask::Streaming {
            sinks: 4,
            window: 8,
        };
        let mut dense_cache = KvCache::new(cfg.n_layers, cfg.d_model);
        let mut stream_cache = KvCache::new(cfg.n_layers, cfg.d_model);
        // 10 tokens < 4 + 8 budget: the masks coincide.
        for t in 0..10 {
            let x: Vec<f32> = (0..cfg.d_model)
                .map(|i| ((t * 7 + i) as f32).sin())
                .collect();
            let a = attend_one(
                &w,
                0,
                &x,
                &mut dense_cache,
                cfg.n_heads,
                cfg.head_dim,
                AttnMask::Dense,
            );
            let b = attend_one(
                &w,
                0,
                &x,
                &mut stream_cache,
                cfg.n_heads,
                cfg.head_dim,
                mask,
            );
            assert_eq!(a, b, "token {t}");
        }
    }

    fn token(seq: usize, t: usize, d: usize) -> Vec<f32> {
        (0..d)
            .map(|i| ((seq * 29 + t * 13 + i * 7) as f32 * 0.1).sin())
            .collect()
    }

    /// Warms two identical cache sets via `attend_one`, then runs `steps`
    /// group steps through `attend_batch` against per-sequence
    /// `attend_one`, asserting outputs AND cache contents stay bitwise
    /// equal throughout.
    fn check_batch_vs_one(warm: &[usize], group: &[usize], mask: AttnMask, steps: usize) {
        let cfg = MoeConfig::tiny(7);
        let layer = 1;
        let w = AttnWeights::seeded(&cfg, layer);
        let n = warm.len();
        let mut ref_caches: Vec<KvCache> = (0..n)
            .map(|_| KvCache::new(cfg.n_layers, cfg.d_model))
            .collect();
        let mut batch_caches = ref_caches.clone();
        for (s, &len) in warm.iter().enumerate() {
            for t in 0..len {
                let x = token(s, t, cfg.d_model);
                for cache in [&mut ref_caches[s], &mut batch_caches[s]] {
                    let _ = attend_one(&w, layer, &x, cache, cfg.n_heads, cfg.head_dim, mask);
                }
            }
        }
        let mut scratch = AttnScratch::new(cfg.n_heads, cfg.head_dim);
        for step in 0..steps {
            let xs: Vec<Vec<f32>> = group
                .iter()
                .map(|&s| token(s, 100 + step, cfg.d_model))
                .collect();
            let normed = scratch.input_mut(group.len());
            for (r, x) in xs.iter().enumerate() {
                normed.row_mut(r).copy_from_slice(x);
            }
            attend_batch(&w, layer, &mut batch_caches, group, mask, &mut scratch);
            for (r, &s) in group.iter().enumerate() {
                let expect = attend_one(
                    &w,
                    layer,
                    &xs[r],
                    &mut ref_caches[s],
                    cfg.n_heads,
                    cfg.head_dim,
                    mask,
                );
                assert_eq!(
                    scratch.output().row(r),
                    &expect[..],
                    "step {step} seq {s}: batched attention diverged"
                );
                assert_eq!(
                    ref_caches[s], batch_caches[s],
                    "step {step} seq {s}: cached K/V diverged"
                );
            }
        }
    }

    #[test]
    fn attend_batch_matches_attend_one_dense_ragged() {
        // Ragged warm-up lengths (incl. an empty cache), full group.
        check_batch_vs_one(&[0, 3, 1, 5], &[0, 1, 2, 3], AttnMask::Dense, 4);
    }

    #[test]
    fn attend_batch_matches_with_partial_group() {
        // Only a subset of sequences is active (non-contiguous mapping).
        check_batch_vs_one(&[2, 4, 6, 1], &[0, 2], AttnMask::Dense, 3);
    }

    #[test]
    fn attend_batch_matches_group_of_one() {
        check_batch_vs_one(&[4], &[0], AttnMask::Dense, 3);
    }

    #[test]
    fn attend_batch_matches_streaming_beyond_budget() {
        // Warm past sinks + window so the mask actually bites.
        let mask = AttnMask::Streaming {
            sinks: 1,
            window: 3,
        };
        check_batch_vs_one(&[9, 2, 12], &[0, 1, 2], mask, 4);
    }

    #[test]
    fn attend_batch_empty_group_is_noop() {
        let cfg = MoeConfig::tiny(7);
        let w = AttnWeights::seeded(&cfg, 0);
        let mut caches = vec![KvCache::new(cfg.n_layers, cfg.d_model)];
        let (k, v) = (vec![1.0; cfg.d_model], vec![2.0; cfg.d_model]);
        caches[0].append(0, &k, &v);
        let before = caches.clone();
        let mut scratch = AttnScratch::new(cfg.n_heads, cfg.head_dim);
        scratch.input_mut(0);
        attend_batch(&w, 0, &mut caches, &[], AttnMask::Dense, &mut scratch);
        assert_eq!(scratch.output().rows(), 0);
        assert_eq!(caches, before, "empty group must not touch any cache");
    }

    #[test]
    #[should_panic(expected = "group not staged")]
    fn attend_batch_rejects_unstaged_group() {
        let cfg = MoeConfig::tiny(7);
        let w = AttnWeights::seeded(&cfg, 0);
        let mut caches = vec![KvCache::new(cfg.n_layers, cfg.d_model)];
        let mut scratch = AttnScratch::new(cfg.n_heads, cfg.head_dim);
        attend_batch(&w, 0, &mut caches, &[0], AttnMask::Dense, &mut scratch);
    }

    #[test]
    fn streaming_diverges_beyond_budget() {
        let (cfg, w, _) = setup();
        let mask = AttnMask::Streaming {
            sinks: 1,
            window: 2,
        };
        let mut dense_cache = KvCache::new(cfg.n_layers, cfg.d_model);
        let mut stream_cache = KvCache::new(cfg.n_layers, cfg.d_model);
        let mut diverged = false;
        for t in 0..8 {
            let x: Vec<f32> = (0..cfg.d_model)
                .map(|i| ((t * 3 + i) as f32).cos())
                .collect();
            let a = attend_one(
                &w,
                0,
                &x,
                &mut dense_cache,
                cfg.n_heads,
                cfg.head_dim,
                AttnMask::Dense,
            );
            let b = attend_one(
                &w,
                0,
                &x,
                &mut stream_cache,
                cfg.n_heads,
                cfg.head_dim,
                mask,
            );
            if a != b {
                diverged = true;
            }
        }
        assert!(diverged, "sparse attention must differ once len > budget");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::config::MoeConfig;
    use proptest::prelude::*;

    fn token(seq: usize, t: usize, d: usize, salt: usize) -> Vec<f32> {
        (0..d)
            .map(|i| ((seq * 29 + t * 13 + i * 7 + salt) as f32 * 0.13).sin())
            .collect()
    }

    proptest! {
        /// `attend_batch` is bit-identical to per-sequence `attend_one`
        /// for random group sizes (including 1 and the empty group),
        /// ragged cache lengths, and dense or streaming masks — outputs
        /// and appended K/V alike.
        #[test]
        fn attend_batch_is_bit_identical_to_attend_one(
            n_seqs in 0usize..5,
            warm_raw in proptest::collection::vec(0usize..9, 5),
            streaming in 0usize..2,
            sinks in 0usize..3,
            window in 1usize..4,
            salt in 0usize..1000,
            steps in 1usize..3,
        ) {
            let cfg = MoeConfig::tiny(17);
            let layer = 0;
            let w = AttnWeights::seeded(&cfg, 0);
            let mask = if streaming == 1 {
                AttnMask::Streaming { sinks, window }
            } else {
                AttnMask::Dense
            };
            let mut ref_caches: Vec<KvCache> = (0..n_seqs)
                .map(|_| KvCache::new(cfg.n_layers, cfg.d_model))
                .collect();
            let mut batch_caches = ref_caches.clone();
            for (s, &len) in warm_raw.iter().take(n_seqs).enumerate() {
                for t in 0..len {
                    let x = token(s, t, cfg.d_model, salt);
                    for cache in [&mut ref_caches[s], &mut batch_caches[s]] {
                        let _ = attend_one(&w, layer, &x, cache, cfg.n_heads, cfg.head_dim, mask);
                    }
                }
            }
            let group: Vec<usize> = (0..n_seqs).collect();
            let mut scratch = AttnScratch::new(cfg.n_heads, cfg.head_dim);
            for step in 0..steps {
                let xs: Vec<Vec<f32>> = group
                    .iter()
                    .map(|&s| token(s, 50 + step, cfg.d_model, salt))
                    .collect();
                let normed = scratch.input_mut(group.len());
                for (r, x) in xs.iter().enumerate() {
                    normed.row_mut(r).copy_from_slice(x);
                }
                attend_batch(&w, layer, &mut batch_caches, &group, mask, &mut scratch);
                for (r, &s) in group.iter().enumerate() {
                    let expect = attend_one(
                        &w,
                        layer,
                        &xs[r],
                        &mut ref_caches[s],
                        cfg.n_heads,
                        cfg.head_dim,
                        mask,
                    );
                    prop_assert_eq!(scratch.output().row(r), &expect[..]);
                    prop_assert_eq!(&ref_caches[s], &batch_caches[s]);
                }
            }
        }
    }
}
