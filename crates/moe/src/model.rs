//! The model: block primitives + the reference sequential runner.
//!
//! Both the reference runner (here) and Klotski's native pipelined executor
//! (`klotski-core`) are built from the *same* primitives — `attn_block`,
//! `moe_norm`, `route_token`, `expert_out`, `combine` — and `combine` sums
//! expert contributions in fixed expert-index order. Any execution order of
//! the expert computations therefore produces **bit-identical** hidden
//! states, which is exactly the property that lets the expert-aware
//! reordering of the paper be validated end-to-end on real numerics.

use klotski_tensor::ops::{argmax, rmsnorm_inplace};

use crate::attention::{attend_batch, attend_one, AttnMask, AttnScratch};
use crate::config::MoeConfig;
use crate::gate::{route, route_into, RouteScratch, Routing};
use crate::kv::KvCache;
use crate::weights::MoeWeights;

/// RMSNorm epsilon (Mixtral's value).
const NORM_EPS: f32 = 1e-5;

/// A complete native MoE model.
#[derive(Debug, Clone)]
pub struct MoeModel {
    cfg: MoeConfig,
    weights: MoeWeights,
}

/// Which phase a routing event was recorded in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Prompt ingestion; `step` is the prompt position.
    Prefill,
    /// Autoregressive generation; `step` is the decode step.
    Decode,
}

/// Everything that identifies one token's trip through the model: the
/// token and its position, the attention mask in force, and where the trip
/// is recorded in the routing trace (phase/step/sequence).
///
/// Bundled as a params struct so [`MoeModel::forward_token`] and the MoE
/// block stay within clippy's argument budget without an `#[allow]`.
#[derive(Debug, Clone, Copy)]
pub struct TokenCtx {
    /// The input token id.
    pub token: u32,
    /// Its absolute position in the sequence.
    pub pos: usize,
    /// Attention mask (dense or StreamingLLM).
    pub mask: AttnMask,
    /// Prefill or decode (for the routing trace).
    pub phase: Phase,
    /// Prompt position or decode step (for the routing trace).
    pub step: usize,
    /// Sequence index within the batch (for the routing trace).
    pub seq: usize,
}

/// Reusable buffers for [`MoeModel::logits_into`]: the normalized hidden
/// state and the logits, both allocated once and reused across every
/// decoded token.
#[derive(Debug, Clone)]
pub struct LogitsScratch {
    normed: Vec<f32>,
    logits: Vec<f32>,
}

/// One recorded routing decision.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingEvent {
    /// Prefill or decode.
    pub phase: Phase,
    /// Prompt position or decode step.
    pub step: usize,
    /// Sequence index within the batch.
    pub seq: usize,
    /// Layer index.
    pub layer: usize,
    /// Selected experts, gate-rank order.
    pub experts: Vec<usize>,
}

/// Output of a reference generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationResult {
    /// Generated tokens per sequence.
    pub tokens: Vec<Vec<u32>>,
    /// The final hidden state of every sequence (pre-logits), for
    /// bit-exact comparison against pipelined executors.
    pub final_hidden: Vec<Vec<f32>>,
    /// Every routing decision made during the run.
    pub routing: Vec<RoutingEvent>,
}

impl MoeModel {
    /// Builds a model with seeded weights.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is inconsistent (see [`MoeConfig::validate`]).
    pub fn new(cfg: MoeConfig) -> Self {
        cfg.validate();
        MoeModel {
            weights: MoeWeights::seeded(&cfg),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MoeConfig {
        &self.cfg
    }

    /// The weights (read access for offloading executors).
    pub fn weights(&self) -> &MoeWeights {
        &self.weights
    }

    /// Embeds `token` at position `pos` (token embedding + sinusoidal
    /// positional signal).
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of vocabulary.
    pub fn embed(&self, token: u32, pos: usize) -> Vec<f32> {
        let mut h = Vec::new();
        self.embed_into(token, pos, &mut h);
        h
    }

    /// [`MoeModel::embed`] into a reused buffer — the allocation-free form
    /// the native pipeline's per-step hot loop uses.
    ///
    /// # Panics
    ///
    /// Panics if `token` is out of vocabulary.
    pub fn embed_into(&self, token: u32, pos: usize, out: &mut Vec<f32>) {
        assert!((token as usize) < self.cfg.vocab, "token out of vocabulary");
        out.clear();
        out.extend_from_slice(self.weights.embed.row(token as usize));
        for (i, v) in out.iter_mut().enumerate() {
            let rate = 1.0 / 10_000f32.powf(i as f32 / self.cfg.d_model as f32);
            *v += 0.1 * (pos as f32 * rate).sin();
        }
    }

    /// `h + attention(rmsnorm1(h))` for one token of one sequence.
    pub fn attn_block(
        &self,
        layer: usize,
        h: &[f32],
        cache: &mut KvCache,
        mask: AttnMask,
    ) -> Vec<f32> {
        let lw = &self.weights.layers[layer];
        let mut normed = h.to_vec();
        rmsnorm_inplace(&mut normed, &lw.attn.norm1, NORM_EPS);
        let attn_out = attend_one(
            &lw.attn,
            layer,
            &normed,
            cache,
            self.cfg.n_heads,
            self.cfg.head_dim,
            mask,
        );
        h.iter().zip(&attn_out).map(|(a, b)| a + b).collect()
    }

    /// Fresh reusable buffers for [`MoeModel::attn_block_batch`].
    pub fn attn_scratch(&self) -> AttnScratch {
        AttnScratch::new(self.cfg.n_heads, self.cfg.head_dim)
    }

    /// `h + attention(rmsnorm1(h))` for one token of **every** active
    /// sequence at once — the batched form of [`MoeModel::attn_block`],
    /// bit-identical to calling it per sequence (see
    /// [`attend_batch`]). `active` selects which rows of `hs`/`caches`
    /// participate; their hidden states are updated in place. All
    /// intermediate state lives in `scratch`, so the call is
    /// allocation-free once the scratch has been
    /// [reserved](AttnScratch::reserve).
    pub fn attn_block_batch(
        &self,
        layer: usize,
        hs: &mut [Vec<f32>],
        active: &[usize],
        caches: &mut [KvCache],
        mask: AttnMask,
        scratch: &mut AttnScratch,
    ) {
        let lw = &self.weights.layers[layer];
        let normed = scratch.input_mut(active.len());
        for (r, &s) in active.iter().enumerate() {
            let row = normed.row_mut(r);
            row.copy_from_slice(&hs[s]);
            rmsnorm_inplace(row, &lw.attn.norm1, NORM_EPS);
        }
        attend_batch(&lw.attn, layer, caches, active, mask, scratch);
        for (r, &s) in active.iter().enumerate() {
            for (hv, &o) in hs[s].iter_mut().zip(scratch.output().row(r)) {
                *hv += o;
            }
        }
    }

    /// `h + attention(rmsnorm1(h))` under the heavy-hitter KV policy
    /// (see [`crate::h2o`]), updating the per-sequence `state`.
    pub fn attn_block_h2o(
        &self,
        layer: usize,
        h: &[f32],
        cache: &mut KvCache,
        state: &mut crate::h2o::H2oState,
    ) -> Vec<f32> {
        let lw = &self.weights.layers[layer];
        let mut normed = h.to_vec();
        rmsnorm_inplace(&mut normed, &lw.attn.norm1, NORM_EPS);
        let attn_out = crate::h2o::attend_one_h2o(
            &lw.attn,
            layer,
            &normed,
            cache,
            state,
            self.cfg.n_heads,
            self.cfg.head_dim,
        );
        h.iter().zip(&attn_out).map(|(a, b)| a + b).collect()
    }

    /// The pre-MoE normalized hidden state.
    pub fn moe_norm(&self, layer: usize, h: &[f32]) -> Vec<f32> {
        let mut normed = Vec::new();
        self.moe_norm_into(layer, h, &mut normed);
        normed
    }

    /// [`MoeModel::moe_norm`] into a reused buffer (allocation-free form).
    pub fn moe_norm_into(&self, layer: usize, h: &[f32], out: &mut Vec<f32>) {
        let lw = &self.weights.layers[layer];
        out.clear();
        out.extend_from_slice(h);
        rmsnorm_inplace(out, &lw.attn.norm2, NORM_EPS);
    }

    /// Routes one normalized token through `layer`'s gate.
    pub fn route_token(&self, layer: usize, normed: &[f32]) -> Routing {
        route(&self.weights.layers[layer].gate, normed, self.cfg.top_k)
    }

    /// [`MoeModel::route_token`] into reused buffers — the
    /// allocation-free form the native pipeline's gate step uses.
    // analyze: no_alloc
    pub fn route_token_into(
        &self,
        layer: usize,
        normed: &[f32],
        out: &mut Routing,
        scratch: &mut RouteScratch,
    ) {
        route_into(
            &self.weights.layers[layer].gate,
            normed,
            self.cfg.top_k,
            out,
            scratch,
        );
    }

    /// One expert's output for one normalized token.
    pub fn expert_out(&self, layer: usize, expert: usize, normed: &[f32]) -> Vec<f32> {
        self.weights.layers[layer].experts[expert].forward(normed)
    }

    /// `h + Σ wᵢ · outᵢ`, summed in **expert-index order** regardless of the
    /// order contributions were produced in — the bit-exactness anchor.
    pub fn combine(&self, h: &[f32], contributions: &mut [(usize, f32, Vec<f32>)]) -> Vec<f32> {
        contributions.sort_by_key(|&(e, _, _)| e);
        let mut out = h.to_vec();
        for (_, w, expert_out) in contributions.iter() {
            for (o, &x) in out.iter_mut().zip(expert_out) {
                *o += w * x;
            }
        }
        out
    }

    /// Full MoE block for one token (gate → experts → combine), recording
    /// the routing into `events`.
    fn moe_block(
        &self,
        layer: usize,
        h: &[f32],
        ctx: TokenCtx,
        events: &mut Vec<RoutingEvent>,
    ) -> Vec<f32> {
        let normed = self.moe_norm(layer, h);
        let routing = self.route_token(layer, &normed);
        events.push(RoutingEvent {
            phase: ctx.phase,
            step: ctx.step,
            seq: ctx.seq,
            layer,
            experts: routing.experts(),
        });
        let mut contributions: Vec<(usize, f32, Vec<f32>)> = routing
            .picks
            .iter()
            .map(|&(e, w)| (e, w, self.expert_out(layer, e, &normed)))
            .collect();
        self.combine(h, &mut contributions)
    }

    /// One token through every layer (the canonical forward pass). The
    /// per-token state travels in a [`TokenCtx`].
    pub fn forward_token(
        &self,
        ctx: TokenCtx,
        cache: &mut KvCache,
        events: &mut Vec<RoutingEvent>,
    ) -> Vec<f32> {
        let mut h = self.embed(ctx.token, ctx.pos);
        for layer in 0..self.cfg.n_layers {
            h = self.attn_block(layer, &h, cache, ctx.mask);
            h = self.moe_block(layer, &h, ctx, events);
        }
        h
    }

    /// Fresh reusable buffers for [`MoeModel::logits_into`].
    pub fn logits_scratch(&self) -> LogitsScratch {
        LogitsScratch {
            normed: vec![0.0; self.cfg.d_model],
            logits: vec![0.0; self.cfg.vocab],
        }
    }

    /// Logits of hidden state `h` (final norm + tied LM head) into reused
    /// scratch buffers: one blocked matvec of the embedding matrix against
    /// the normalized hidden state, instead of a per-vocab-entry scalar
    /// loop with a fresh `Vec`. Bit-identical to the old loop (same
    /// ascending-k sequential dot per vocab entry).
    ///
    /// # Panics
    ///
    /// Panics if `h.len()` is not `d_model`.
    pub fn logits_into<'s>(&self, h: &[f32], scratch: &'s mut LogitsScratch) -> &'s [f32] {
        assert_eq!(h.len(), scratch.normed.len(), "hidden width mismatch");
        scratch.normed.copy_from_slice(h);
        rmsnorm_inplace(&mut scratch.normed, &self.weights.final_norm, NORM_EPS);
        self.weights
            .embed
            .matvec_into(&scratch.normed, &mut scratch.logits);
        &scratch.logits
    }

    /// Logits of hidden state `h` (allocating convenience form).
    pub fn logits(&self, h: &[f32]) -> Vec<f32> {
        let mut scratch = self.logits_scratch();
        self.logits_into(h, &mut scratch);
        scratch.logits
    }

    /// Greedy next token from hidden state `h`, reusing `scratch` — the
    /// allocation-free form for decode loops.
    pub fn next_token_with(&self, h: &[f32], scratch: &mut LogitsScratch) -> u32 {
        argmax(self.logits_into(h, scratch)).expect("non-empty vocabulary") as u32
    }

    /// Greedy next token from hidden state `h`.
    pub fn next_token(&self, h: &[f32]) -> u32 {
        self.next_token_with(h, &mut self.logits_scratch())
    }

    /// A fresh KV cache sized for this model.
    pub fn new_cache(&self) -> KvCache {
        KvCache::new(self.cfg.n_layers, self.cfg.d_model)
    }

    /// A fresh KV cache whose per-layer slabs already hold room for
    /// `positions` entries — decode loops that know `prompt_len + gen_len`
    /// upfront use this so appends never reallocate mid-run.
    pub fn new_cache_with_capacity(&self, positions: usize) -> KvCache {
        KvCache::with_capacity(self.cfg.n_layers, self.cfg.d_model, positions)
    }

    /// Reference generation: prompts processed sequentially, one token at a
    /// time, in canonical (batch-major) order — the numerical ground truth.
    ///
    /// # Panics
    ///
    /// Panics if any prompt is empty or contains out-of-vocabulary tokens.
    pub fn generate(
        &self,
        prompts: &[Vec<u32>],
        gen_len: usize,
        mask: AttnMask,
    ) -> GenerationResult {
        let mut tokens = Vec::with_capacity(prompts.len());
        let mut final_hidden = Vec::with_capacity(prompts.len());
        let mut routing = Vec::new();
        let mut scratch = self.logits_scratch();
        for (seq, prompt) in prompts.iter().enumerate() {
            assert!(!prompt.is_empty(), "empty prompt for sequence {seq}");
            let mut cache = self.new_cache_with_capacity(prompt.len() + gen_len);
            let mut h = Vec::new();
            for (pos, &tok) in prompt.iter().enumerate() {
                let ctx = TokenCtx {
                    token: tok,
                    pos,
                    mask,
                    phase: Phase::Prefill,
                    step: pos,
                    seq,
                };
                h = self.forward_token(ctx, &mut cache, &mut routing);
            }
            let mut generated = Vec::with_capacity(gen_len);
            for step in 0..gen_len {
                let next = self.next_token_with(&h, &mut scratch);
                generated.push(next);
                let ctx = TokenCtx {
                    token: next,
                    pos: prompt.len() + step,
                    mask,
                    phase: Phase::Decode,
                    step,
                    seq,
                };
                h = self.forward_token(ctx, &mut cache, &mut routing);
            }
            tokens.push(generated);
            final_hidden.push(h);
        }
        GenerationResult {
            tokens,
            final_hidden,
            routing,
        }
    }

    /// Reference generation under the heavy-hitter KV policy — the ground
    /// truth for pipelined execution with [`crate::h2o`] enabled. Each
    /// sequence carries its own fresh [`H2oState`](crate::h2o::H2oState).
    ///
    /// # Panics
    ///
    /// Panics if any prompt is empty or `cfg` is invalid.
    pub fn generate_h2o(
        &self,
        prompts: &[Vec<u32>],
        gen_len: usize,
        cfg: crate::h2o::H2oConfig,
    ) -> GenerationResult {
        cfg.validate();
        let mut tokens = Vec::with_capacity(prompts.len());
        let mut final_hidden = Vec::with_capacity(prompts.len());
        let mut routing = Vec::new();
        let mut scratch = self.logits_scratch();
        for (seq, prompt) in prompts.iter().enumerate() {
            assert!(!prompt.is_empty(), "empty prompt for sequence {seq}");
            let mut cache = self.new_cache_with_capacity(prompt.len() + gen_len);
            let mut state = crate::h2o::H2oState::new(self.cfg.n_layers, cfg);
            // The H2O path replaces the mask with stateful selection, so
            // `ctx.mask` is unused here; Dense is a placeholder.
            let forward = |ctx: TokenCtx,
                           cache: &mut KvCache,
                           state: &mut crate::h2o::H2oState,
                           routing: &mut Vec<RoutingEvent>| {
                let mut h = self.embed(ctx.token, ctx.pos);
                for layer in 0..self.cfg.n_layers {
                    h = self.attn_block_h2o(layer, &h, cache, state);
                    h = self.moe_block(layer, &h, ctx, routing);
                }
                h
            };
            let mut h = Vec::new();
            for (pos, &tok) in prompt.iter().enumerate() {
                let ctx = TokenCtx {
                    token: tok,
                    pos,
                    mask: AttnMask::Dense,
                    phase: Phase::Prefill,
                    step: pos,
                    seq,
                };
                h = forward(ctx, &mut cache, &mut state, &mut routing);
            }
            let mut generated = Vec::with_capacity(gen_len);
            for step in 0..gen_len {
                let next = self.next_token_with(&h, &mut scratch);
                generated.push(next);
                let ctx = TokenCtx {
                    token: next,
                    pos: prompt.len() + step,
                    mask: AttnMask::Dense,
                    phase: Phase::Decode,
                    step,
                    seq,
                };
                h = forward(ctx, &mut cache, &mut state, &mut routing);
            }
            tokens.push(generated);
            final_hidden.push(h);
        }
        GenerationResult {
            tokens,
            final_hidden,
            routing,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MoeModel {
        MoeModel::new(MoeConfig::tiny(11))
    }

    fn prompts(n: usize, len: usize) -> Vec<Vec<u32>> {
        (0..n)
            .map(|s| (0..len).map(|p| ((s * 31 + p * 7) % 96) as u32).collect())
            .collect()
    }

    #[test]
    fn generation_is_deterministic() {
        let m = model();
        let p = prompts(3, 8);
        let a = m.generate(&p, 4, AttnMask::Dense);
        let b = m.generate(&p, 4, AttnMask::Dense);
        assert_eq!(a, b);
        assert_eq!(a.tokens.len(), 3);
        assert!(a.tokens.iter().all(|t| t.len() == 4));
    }

    #[test]
    fn different_prompts_generate_differently() {
        let m = model();
        let a = m.generate(&prompts(1, 8), 6, AttnMask::Dense);
        let other = vec![(0..8).map(|p| ((p * 13 + 5) % 96) as u32).collect()];
        let b = m.generate(&other, 6, AttnMask::Dense);
        assert_ne!(a.tokens, b.tokens);
    }

    #[test]
    fn routing_events_cover_all_layers_and_steps() {
        let m = model();
        let p = prompts(2, 5);
        let r = m.generate(&p, 3, AttnMask::Dense);
        let cfg = m.config();
        let expected = 2 * (5 + 3) * cfg.n_layers;
        assert_eq!(r.routing.len(), expected);
        assert!(r
            .routing
            .iter()
            .all(|e| e.experts.len() == cfg.top_k && e.layer < cfg.n_layers));
        let decode_events = r
            .routing
            .iter()
            .filter(|e| e.phase == Phase::Decode)
            .count();
        assert_eq!(decode_events, 2 * 3 * cfg.n_layers);
    }

    #[test]
    fn combine_order_independence_is_bit_exact() {
        let m = model();
        let h = vec![0.2f32; m.config().d_model];
        let normed = m.moe_norm(0, &h);
        let a = m.expert_out(0, 1, &normed);
        let b = m.expert_out(0, 4, &normed);
        let mut fwd = vec![(1usize, 0.6f32, a.clone()), (4usize, 0.4f32, b.clone())];
        let mut rev = vec![(4usize, 0.4f32, b), (1usize, 0.6f32, a)];
        let out1 = m.combine(&h, &mut fwd);
        let out2 = m.combine(&h, &mut rev);
        assert_eq!(out1, out2, "combine must be order-insensitive bit-exactly");
    }

    #[test]
    fn gate_uses_multiple_experts_across_tokens() {
        let m = model();
        let r = m.generate(&prompts(4, 12), 2, AttnMask::Dense);
        let mut used = std::collections::HashSet::new();
        for e in &r.routing {
            if e.layer == 0 {
                used.extend(e.experts.iter().copied());
            }
        }
        assert!(used.len() >= 3, "layer 0 used only {used:?}");
    }

    #[test]
    fn streaming_mask_changes_long_generations() {
        let m = model();
        let p = prompts(1, 24);
        let dense = m.generate(&p, 6, AttnMask::Dense);
        let sparse = m.generate(
            &p,
            6,
            AttnMask::Streaming {
                sinks: 2,
                window: 4,
            },
        );
        assert_ne!(
            dense.final_hidden, sparse.final_hidden,
            "long context must be affected by the streaming mask"
        );
    }

    #[test]
    fn attn_block_batch_matches_attn_block_bitwise() {
        let m = model();
        let cfg = *m.config();
        let n = 3;
        let mut ref_caches: Vec<KvCache> = (0..n).map(|_| m.new_cache()).collect();
        let mut batch_caches = ref_caches.clone();
        let mut ref_h: Vec<Vec<f32>> = (0..n)
            .map(|s| {
                (0..cfg.d_model)
                    .map(|i| ((s * 7 + i) as f32 * 0.1).sin())
                    .collect()
            })
            .collect();
        let mut batch_h = ref_h.clone();
        let active: Vec<usize> = (0..n).collect();
        let mut scratch = m.attn_scratch();
        for step in 0..3 {
            for layer in 0..cfg.n_layers {
                m.attn_block_batch(
                    layer,
                    &mut batch_h,
                    &active,
                    &mut batch_caches,
                    AttnMask::Dense,
                    &mut scratch,
                );
                for s in 0..n {
                    ref_h[s] = m.attn_block(layer, &ref_h[s], &mut ref_caches[s], AttnMask::Dense);
                }
                assert_eq!(ref_h, batch_h, "step {step} layer {layer}");
            }
        }
        assert_eq!(ref_caches, batch_caches);
    }

    #[test]
    fn logits_are_finite_and_vocab_sized() {
        let m = model();
        let h = m.embed(5, 0);
        let logits = m.logits(&h);
        assert_eq!(logits.len(), m.config().vocab);
        assert!(logits.iter().all(|x| x.is_finite()));
        assert!((m.next_token(&h) as usize) < m.config().vocab);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_token_rejected() {
        let m = model();
        let _ = m.embed(9999, 0);
    }
}
