//! Per-sequence KV caches.

/// The key/value cache of one sequence across all layers.
///
/// Entries are appended in position order; the attention kernel reads a
/// contiguous `[positions × d_model]` view per layer.
#[derive(Debug, Clone, PartialEq)]
pub struct KvCache {
    n_layers: usize,
    width: usize,
    keys: Vec<Vec<f32>>,
    values: Vec<Vec<f32>>,
}

impl KvCache {
    /// An empty cache for `n_layers` layers of `width`-wide keys/values.
    pub fn new(n_layers: usize, width: usize) -> Self {
        KvCache {
            n_layers,
            width,
            keys: vec![Vec::new(); n_layers],
            values: vec![Vec::new(); n_layers],
        }
    }

    /// An empty cache whose per-layer slabs can hold `positions` entries
    /// without reallocating — the form decode loops that know their
    /// `prompt_len + gen_len` upfront should use, so appends never move
    /// the slab mid-run.
    pub fn with_capacity(n_layers: usize, width: usize, positions: usize) -> Self {
        let mut cache = KvCache::new(n_layers, width);
        cache.reserve(positions);
        cache
    }

    /// Ensures every layer's key/value slab can hold `positions` entries
    /// in total without reallocating.
    pub fn reserve(&mut self, positions: usize) {
        let want = positions * self.width;
        for (k, v) in self.keys.iter_mut().zip(&mut self.values) {
            k.reserve(want.saturating_sub(k.len()));
            v.reserve(want.saturating_sub(v.len()));
        }
    }

    /// Smallest per-layer slab capacity, in positions (how many entries
    /// every layer is guaranteed to hold without reallocating).
    pub fn capacity(&self) -> usize {
        self.keys
            .iter()
            .zip(&self.values)
            .map(|(k, v)| k.capacity().min(v.capacity()) / self.width)
            .min()
            .unwrap_or(0)
    }

    /// Cached positions at `layer`.
    pub fn len(&self, layer: usize) -> usize {
        self.keys[layer].len() / self.width
    }

    /// Whether `layer` has no cached positions.
    pub fn is_empty(&self, layer: usize) -> bool {
        self.keys[layer].is_empty()
    }

    /// Appends one position's key and value at `layer`.
    ///
    /// # Panics
    ///
    /// Panics if `k`/`v` are not `width` long or `layer` is out of range.
    pub fn append(&mut self, layer: usize, k: &[f32], v: &[f32]) {
        assert!(layer < self.n_layers, "layer out of range");
        assert_eq!(k.len(), self.width, "key width mismatch");
        assert_eq!(v.len(), self.width, "value width mismatch");
        self.keys[layer].extend_from_slice(k);
        self.values[layer].extend_from_slice(v);
    }

    /// All cached keys at `layer` (`len × width`, row-major).
    pub fn keys(&self, layer: usize) -> &[f32] {
        &self.keys[layer]
    }

    /// All cached values at `layer`.
    pub fn values(&self, layer: usize) -> &[f32] {
        &self.values[layer]
    }

    /// The key of `pos` at `layer`.
    pub fn key_at(&self, layer: usize, pos: usize) -> &[f32] {
        &self.keys[layer][pos * self.width..(pos + 1) * self.width]
    }

    /// The value of `pos` at `layer`.
    pub fn value_at(&self, layer: usize, pos: usize) -> &[f32] {
        &self.values[layer][pos * self.width..(pos + 1) * self.width]
    }

    /// Width of each key/value vector.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total cached bytes (both keys and values, all layers).
    pub fn bytes(&self) -> usize {
        self.keys
            .iter()
            .zip(&self.values)
            .map(|(k, v)| (k.len() + v.len()) * std::mem::size_of::<f32>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_grows_per_layer_independently() {
        let mut c = KvCache::new(3, 4);
        c.append(0, &[1.0; 4], &[2.0; 4]);
        c.append(0, &[3.0; 4], &[4.0; 4]);
        c.append(2, &[5.0; 4], &[6.0; 4]);
        assert_eq!(c.len(0), 2);
        assert_eq!(c.len(1), 0);
        assert!(c.is_empty(1));
        assert_eq!(c.len(2), 1);
        assert_eq!(c.key_at(0, 1), &[3.0; 4]);
        assert_eq!(c.value_at(2, 0), &[6.0; 4]);
    }

    #[test]
    fn bytes_counts_everything() {
        let mut c = KvCache::new(2, 8);
        c.append(0, &[0.0; 8], &[0.0; 8]);
        c.append(1, &[0.0; 8], &[0.0; 8]);
        assert_eq!(c.bytes(), 2 * 2 * 8 * 4);
    }

    #[test]
    #[should_panic(expected = "key width mismatch")]
    fn wrong_width_rejected() {
        let mut c = KvCache::new(1, 4);
        c.append(0, &[0.0; 3], &[0.0; 3]);
    }

    #[test]
    fn with_capacity_appends_never_reallocate() {
        let mut c = KvCache::with_capacity(2, 4, 10);
        assert!(c.capacity() >= 10);
        let raw_caps: Vec<usize> = (0..2).map(|l| c.keys[l].capacity()).collect();
        for t in 0..10 {
            for layer in 0..2 {
                c.append(layer, &[t as f32; 4], &[t as f32; 4]);
            }
        }
        for (layer, &cap) in raw_caps.iter().enumerate() {
            assert_eq!(c.len(layer), 10);
            assert_eq!(
                c.keys[layer].capacity(),
                cap,
                "layer {layer} slab moved mid-decode"
            );
        }
    }

    #[test]
    fn reserve_tops_up_a_partially_filled_cache() {
        let mut c = KvCache::new(1, 4);
        c.append(0, &[1.0; 4], &[2.0; 4]);
        c.reserve(8);
        assert!(c.capacity() >= 8);
        assert_eq!(c.key_at(0, 0), &[1.0; 4], "reserve must not disturb data");
    }
}
