//! Heavy-hitter ("H2O"-style) sparse KV cache — the paper's future work.
//!
//! §9.8 closes with: "We aim to address this in future work by developing a
//! generalized and efficient sparse KV cache strategy for Klotski". This
//! module implements the natural candidate the paper cites alongside
//! StreamingLLM: heavy-hitter selection [H2O, NeurIPS'23]. Instead of a
//! fixed sinks+window pattern, each layer keeps the positions whose
//! *accumulated attention mass* is largest, evicting the coldest position
//! whenever the per-layer budget is exceeded (attention sinks are always
//! kept).
//!
//! Unlike [`AttnMask`](crate::attention::AttnMask), the policy is
//! *stateful* — scores accumulate across decoding steps — so it lives in an
//! [`H2oState`] owned by the caller per sequence.

use klotski_tensor::ops::softmax_inplace;

use crate::kv::KvCache;
use crate::weights::AttnWeights;

/// Configuration of the heavy-hitter policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct H2oConfig {
    /// Maximum kept positions per layer (≥ `sinks + 1`).
    pub budget: usize,
    /// Always-kept initial positions.
    pub sinks: usize,
}

impl H2oConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the budget cannot hold the sinks plus the current token.
    pub fn validate(&self) {
        assert!(
            self.budget > self.sinks,
            "budget must exceed the sink count"
        );
    }
}

/// Per-sequence heavy-hitter state: the kept set and accumulated scores.
#[derive(Debug, Clone)]
pub struct H2oState {
    cfg: H2oConfig,
    /// Kept position indices per layer, ascending.
    kept: Vec<Vec<usize>>,
    /// Accumulated attention mass per kept position (parallel to `kept`).
    scores: Vec<Vec<f32>>,
}

impl H2oState {
    /// Fresh state for `n_layers` layers.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid.
    pub fn new(n_layers: usize, cfg: H2oConfig) -> Self {
        cfg.validate();
        H2oState {
            cfg,
            kept: vec![Vec::new(); n_layers],
            scores: vec![Vec::new(); n_layers],
        }
    }

    /// The kept positions at `layer` (ascending).
    pub fn kept(&self, layer: usize) -> &[usize] {
        &self.kept[layer]
    }

    /// The policy configuration.
    pub fn config(&self) -> H2oConfig {
        self.cfg
    }

    fn admit(&mut self, layer: usize, pos: usize) {
        self.kept[layer].push(pos);
        self.scores[layer].push(0.0);
    }

    fn accumulate_and_evict(&mut self, layer: usize, step_scores: &[f32]) {
        for (acc, &s) in self.scores[layer].iter_mut().zip(step_scores) {
            *acc += s;
        }
        if self.kept[layer].len() <= self.cfg.budget {
            return;
        }
        // Evict the coldest non-sink, non-current position.
        let last = self.kept[layer].len() - 1;
        let victim = self.kept[layer]
            .iter()
            .enumerate()
            .filter(|&(i, &pos)| pos >= self.cfg.sinks && i != last)
            .min_by(|a, b| {
                self.scores[layer][a.0]
                    .total_cmp(&self.scores[layer][b.0])
                    .then(a.1.cmp(b.1))
            })
            .map(|(i, _)| i)
            .expect("budget > sinks guarantees an evictable position");
        self.kept[layer].remove(victim);
        self.scores[layer].remove(victim);
    }
}

/// One token of attention under the heavy-hitter policy: appends the
/// token's K/V, attends over the kept set, accumulates attention mass and
/// evicts down to budget. Returns the `wo`-projected attention output
/// (residual handling belongs to the caller, as in
/// [`attend_one`](crate::attention::attend_one)).
///
/// While the sequence is shorter than the budget this is *exactly* dense
/// attention.
///
/// # Panics
///
/// Panics if `x` is not `n_heads × head_dim` long.
pub fn attend_one_h2o(
    w: &AttnWeights,
    layer: usize,
    x: &[f32],
    cache: &mut KvCache,
    state: &mut H2oState,
    n_heads: usize,
    head_dim: usize,
) -> Vec<f32> {
    let d_model = n_heads * head_dim;
    assert_eq!(x.len(), d_model, "attention input width mismatch");

    let q = project(&w.wq, x);
    let k = project(&w.wk, x);
    let v = project(&w.wv, x);
    let pos = cache.len(layer);
    cache.append(layer, &k, &v);
    state.admit(layer, pos);

    let kept = state.kept(layer).to_vec();
    let scale = 1.0 / (head_dim as f32).sqrt();
    let mut attended = vec![0.0f32; d_model];
    // Per-position attention mass summed over heads (the H2O statistic).
    let mut mass = vec![0.0f32; kept.len()];

    for h in 0..n_heads {
        let q_h = &q[h * head_dim..(h + 1) * head_dim];
        let mut scores: Vec<f32> = kept
            .iter()
            .map(|&p| {
                let k_p = &cache.key_at(layer, p)[h * head_dim..(h + 1) * head_dim];
                dot(q_h, k_p) * scale
            })
            .collect();
        softmax_inplace(&mut scores);
        let out_h = &mut attended[h * head_dim..(h + 1) * head_dim];
        for ((&p, &s), m) in kept.iter().zip(&scores).zip(mass.iter_mut()) {
            *m += s;
            let v_p = &cache.value_at(layer, p)[h * head_dim..(h + 1) * head_dim];
            for (o, &vv) in out_h.iter_mut().zip(v_p) {
                *o += s * vv;
            }
        }
    }

    state.accumulate_and_evict(layer, &mass);
    project(&w.wo, &attended)
}

fn project(w: &klotski_tensor::matrix::Matrix, x: &[f32]) -> Vec<f32> {
    let rows = w.rows();
    let mut out = vec![0.0f32; rows];
    for (i, o) in out.iter_mut().enumerate() {
        *o = dot(w.row(i), x);
    }
    out
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::{attend_one, AttnMask};
    use crate::config::MoeConfig;

    fn setup() -> (MoeConfig, AttnWeights) {
        let cfg = MoeConfig::tiny(8);
        (cfg, AttnWeights::seeded(&cfg, 0))
    }

    fn token(t: usize, d: usize) -> Vec<f32> {
        (0..d)
            .map(|i| ((t * 13 + i * 7) as f32 * 0.1).sin())
            .collect()
    }

    #[test]
    fn matches_dense_within_budget() {
        let (cfg, w) = setup();
        let h2o_cfg = H2oConfig {
            budget: 16,
            sinks: 2,
        };
        let mut dense_cache = KvCache::new(cfg.n_layers, cfg.d_model);
        let mut h2o_cache = KvCache::new(cfg.n_layers, cfg.d_model);
        let mut state = H2oState::new(cfg.n_layers, h2o_cfg);
        for t in 0..10 {
            let x = token(t, cfg.d_model);
            let a = attend_one(
                &w,
                0,
                &x,
                &mut dense_cache,
                cfg.n_heads,
                cfg.head_dim,
                AttnMask::Dense,
            );
            let b = attend_one_h2o(
                &w,
                0,
                &x,
                &mut h2o_cache,
                &mut state,
                cfg.n_heads,
                cfg.head_dim,
            );
            assert_eq!(a, b, "token {t}: under budget, H2O must equal dense");
        }
    }

    #[test]
    fn budget_is_enforced_and_sinks_survive() {
        let (cfg, w) = setup();
        let h2o_cfg = H2oConfig {
            budget: 6,
            sinks: 2,
        };
        let mut cache = KvCache::new(cfg.n_layers, cfg.d_model);
        let mut state = H2oState::new(cfg.n_layers, h2o_cfg);
        for t in 0..24 {
            let x = token(t, cfg.d_model);
            let _ = attend_one_h2o(&w, 0, &x, &mut cache, &mut state, cfg.n_heads, cfg.head_dim);
            assert!(state.kept(0).len() <= h2o_cfg.budget, "token {t}");
        }
        let kept = state.kept(0);
        assert!(
            kept.contains(&0) && kept.contains(&1),
            "sinks evicted: {kept:?}"
        );
        // The latest position always survives its own step.
        assert!(kept.contains(&23), "current token evicted: {kept:?}");
    }

    #[test]
    fn diverges_from_dense_beyond_budget() {
        let (cfg, w) = setup();
        let h2o_cfg = H2oConfig {
            budget: 5,
            sinks: 1,
        };
        let mut dense_cache = KvCache::new(cfg.n_layers, cfg.d_model);
        let mut h2o_cache = KvCache::new(cfg.n_layers, cfg.d_model);
        let mut state = H2oState::new(cfg.n_layers, h2o_cfg);
        let mut diverged = false;
        for t in 0..16 {
            let x = token(t, cfg.d_model);
            let a = attend_one(
                &w,
                0,
                &x,
                &mut dense_cache,
                cfg.n_heads,
                cfg.head_dim,
                AttnMask::Dense,
            );
            let b = attend_one_h2o(
                &w,
                0,
                &x,
                &mut h2o_cache,
                &mut state,
                cfg.n_heads,
                cfg.head_dim,
            );
            if a != b {
                diverged = true;
            }
        }
        assert!(diverged, "eviction must eventually change the output");
    }

    #[test]
    fn keeps_heavy_hitters_not_just_recency() {
        // Construct a stream where one early position keeps receiving
        // attention: H2O must retain it while StreamingLLM's window would
        // have dropped it. We approximate by checking that the kept set is
        // not simply the last (budget − sinks) positions.
        let (cfg, w) = setup();
        let h2o_cfg = H2oConfig {
            budget: 8,
            sinks: 1,
        };
        let mut cache = KvCache::new(cfg.n_layers, cfg.d_model);
        let mut state = H2oState::new(cfg.n_layers, h2o_cfg);
        // Repeat the same token often so its (identical) early keys gather
        // mass.
        for t in 0..32 {
            let x = if t % 2 == 0 {
                token(0, cfg.d_model)
            } else {
                token(t, cfg.d_model)
            };
            let _ = attend_one_h2o(&w, 0, &x, &mut cache, &mut state, cfg.n_heads, cfg.head_dim);
        }
        let kept = state.kept(0);
        let window_start = 32 - (h2o_cfg.budget - h2o_cfg.sinks);
        let pure_recency = kept.iter().all(|&p| p < h2o_cfg.sinks || p >= window_start);
        assert!(
            !pure_recency,
            "H2O degenerated to a recency window: {kept:?}"
        );
    }

    #[test]
    #[should_panic(expected = "budget must exceed")]
    fn degenerate_budget_rejected() {
        let _ = H2oState::new(
            1,
            H2oConfig {
                budget: 2,
                sinks: 2,
            },
        );
    }
}
