//! # klotski-moe — the native reference MoE transformer
//!
//! A real (tiny) Mixtral-style decoder executed on the CPU: RMSNorm,
//! multi-head causal attention with per-sequence KV caches and optional
//! StreamingLLM masking, softmax-top-k gating, SwiGLU experts, tied LM
//! head, greedy decoding.
//!
//! Its purpose in the reproduction is *ground truth*: the reference runner
//! ([`model::MoeModel::generate`]) executes tokens in canonical order, and
//! Klotski's pipelined native executor must produce **bit-identical**
//! hidden states despite reordering expert computations across batches —
//! which holds because [`model::MoeModel::combine`] sums contributions in
//! fixed expert-index order.
//!
//! ```
//! use klotski_moe::attention::AttnMask;
//! use klotski_moe::config::MoeConfig;
//! use klotski_moe::model::MoeModel;
//!
//! let model = MoeModel::new(MoeConfig::tiny(42));
//! let prompts = vec![vec![1, 2, 3, 4]];
//! let out = model.generate(&prompts, 4, AttnMask::Dense);
//! assert_eq!(out.tokens[0].len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod attention;
pub mod config;
pub mod gate;
pub mod h2o;
pub mod kv;
pub mod model;
pub mod weights;

/// Convenience re-exports of the most used types.
pub mod prelude {
    pub use crate::attention::AttnMask;
    pub use crate::config::MoeConfig;
    pub use crate::gate::Routing;
    pub use crate::kv::KvCache;
    pub use crate::model::{GenerationResult, MoeModel, Phase, RoutingEvent};
    pub use crate::weights::{
        AttnWeights, ExpertWeights, LayerWeights, MoeWeights, QuantizedExpertWeights,
    };
}
