//! Model weights: seeded, reproducible, addressable per tensor.
//!
//! Weight matrices are stored `[out_features, in_features]` and applied as
//! `y = W · x` on column-vector views (`x · Wᵀ` on row batches), matching
//! the usual checkpoint layout so the offloading layer can treat each
//! matrix as an opaque transferable blob.

use klotski_tensor::init::{norm_weight, sub_seed, xavier_matrix};
use klotski_tensor::matrix::{auto_threads, Matrix};
use klotski_tensor::ops::silu;
use klotski_tensor::quant::{QuantConfig, QuantizedMatrix};

use crate::config::MoeConfig;

/// Seed-space tags for tensor classes (stable addressing for every tensor).
mod tags {
    pub const WQ: u64 = 1;
    pub const WK: u64 = 2;
    pub const WV: u64 = 3;
    pub const WO: u64 = 4;
    pub const NORM1: u64 = 5;
    pub const NORM2: u64 = 6;
    pub const GATE: u64 = 7;
    pub const W1: u64 = 8;
    pub const W2: u64 = 9;
    pub const W3: u64 = 10;
    pub const EMBED: u64 = 11;
    pub const FINAL_NORM: u64 = 12;
}

/// One expert: a SwiGLU FFN (`w2 · (silu(w1·x) ⊙ w3·x)`).
#[derive(Debug, Clone, PartialEq)]
pub struct ExpertWeights {
    /// Gate projection `[d_ff, d_model]`.
    pub w1: Matrix,
    /// Down projection `[d_model, d_ff]`.
    pub w2: Matrix,
    /// Up projection `[d_ff, d_model]`.
    pub w3: Matrix,
}

impl ExpertWeights {
    /// An empty (0-sized) expert — a placeholder buffer for staging pools
    /// that fill it via [`klotski_tensor::matrix::Matrix::copy_from`].
    pub fn placeholder() -> Self {
        ExpertWeights {
            w1: Matrix::zeros(0, 0),
            w2: Matrix::zeros(0, 0),
            w3: Matrix::zeros(0, 0),
        }
    }

    /// Builds the expert at (`layer`, `expert`) of the model seeded `root`.
    pub fn seeded(cfg: &MoeConfig, layer: usize, expert: usize) -> Self {
        let idx = (layer * cfg.n_experts + expert) as u64;
        ExpertWeights {
            w1: xavier_matrix(cfg.d_ff, cfg.d_model, sub_seed(cfg.seed, tags::W1, idx)),
            w2: xavier_matrix(cfg.d_model, cfg.d_ff, sub_seed(cfg.seed, tags::W2, idx)),
            w3: xavier_matrix(cfg.d_ff, cfg.d_model, sub_seed(cfg.seed, tags::W3, idx)),
        }
    }

    /// Applies the expert to one hidden vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` does not match `d_model`.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.w1.cols(), "expert input width mismatch");
        let d_ff = self.w1.rows();
        let mut inner = vec![0.0f32; d_ff];
        for (i, slot) in inner.iter_mut().enumerate() {
            let mut g = 0.0f32;
            let mut u = 0.0f32;
            let w1_row = self.w1.row(i);
            let w3_row = self.w3.row(i);
            for (j, &xj) in x.iter().enumerate() {
                g += w1_row[j] * xj;
                u += w3_row[j] * xj;
            }
            *slot = silu(g) * u;
        }
        let d_model = self.w2.rows();
        let mut out = vec![0.0f32; d_model];
        for (i, o) in out.iter_mut().enumerate() {
            let w2_row = self.w2.row(i);
            let mut acc = 0.0f32;
            for (j, &inj) in inner.iter().enumerate() {
                acc += w2_row[j] * inj;
            }
            *o = acc;
        }
        out
    }

    /// Applies the expert to a whole batch of hidden vectors at once —
    /// `xs` is `[n_tokens, d_model]` row-major, one routed token per row.
    ///
    /// This is the Klotski aggregation payoff: the expert's three weight
    /// matrices are streamed **once per batch** (two GEMMs + activation)
    /// instead of once per token. Each output row is **bit-identical** to
    /// [`ExpertWeights::forward`] of the same input row: the GEMM kernels
    /// accumulate every element in the same ascending-k order as the
    /// per-token matvec, so batching is numerics-neutral and the
    /// pipeline-vs-reference exactness tests keep holding.
    ///
    /// # Panics
    ///
    /// Panics if `xs.cols()` does not match `d_model`.
    pub fn forward_batch(&self, xs: &Matrix) -> Matrix {
        let threads = auto_threads(xs.rows() * self.w1.rows() * self.w1.cols());
        self.forward_batch_threaded(xs, threads)
    }

    /// [`ExpertWeights::forward_batch`] into a reused output matrix and
    /// [`FfnScratch`] — the allocation-free form for decode hot loops.
    /// Bit-identical to the allocating form. Picks the same automatic
    /// intra-GEMM thread count as [`ExpertWeights::forward_batch`]; below
    /// the parallel threshold (every decode-sized batch) the GEMMs run
    /// inline with no thread spawns.
    ///
    /// # Panics
    ///
    /// Panics if `xs.cols()` does not match `d_model`.
    pub fn forward_batch_into(&self, xs: &Matrix, out: &mut Matrix, scratch: &mut FfnScratch) {
        let threads = auto_threads(xs.rows() * self.w1.rows() * self.w1.cols());
        self.forward_batch_threaded_into(xs, out, scratch, threads);
    }

    /// [`ExpertWeights::forward_batch_threaded`] into a reused output
    /// matrix and [`FfnScratch`]. With pre-reserved buffers (see
    /// [`FfnScratch::reserve`]) the call performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `xs.cols()` does not match `d_model`.
    // analyze: no_alloc
    pub fn forward_batch_threaded_into(
        &self,
        xs: &Matrix,
        out: &mut Matrix,
        scratch: &mut FfnScratch,
        threads: usize,
    ) {
        assert_eq!(xs.cols(), self.w1.cols(), "expert input width mismatch");
        let n_tokens = xs.rows();
        let d_ff = self.w1.rows();
        let d_model = self.w2.rows();
        scratch.gate.resize(n_tokens, d_ff);
        xs.matmul_nt_into_threaded(&self.w1, &mut scratch.gate, threads);
        scratch.up.resize(n_tokens, d_ff);
        xs.matmul_nt_into_threaded(&self.w3, &mut scratch.up, threads);
        for (g, &u) in scratch
            .gate
            .as_mut_slice()
            .iter_mut()
            .zip(scratch.up.as_slice())
        {
            *g = silu(*g) * u;
        }
        out.resize(n_tokens, d_model);
        scratch.gate.matmul_nt_into_threaded(&self.w2, out, threads);
    }

    /// [`ExpertWeights::forward_batch`] with an explicit GEMM thread count
    /// (1 = fully serial). Callers that already provide parallelism at the
    /// expert level — e.g. the native pipeline's compute worker pool —
    /// should pass 1, otherwise each worker spawning its own row-parallel
    /// team oversubscribes the machine. Output is bit-identical at any
    /// thread count.
    ///
    /// # Panics
    ///
    /// Panics if `xs.cols()` does not match `d_model`.
    pub fn forward_batch_threaded(&self, xs: &Matrix, threads: usize) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        let mut scratch = FfnScratch::default();
        self.forward_batch_threaded_into(xs, &mut out, &mut scratch, threads);
        out
    }

    /// Total parameter count.
    pub fn n_params(&self) -> usize {
        self.w1.rows() * self.w1.cols()
            + self.w2.rows() * self.w2.cols()
            + self.w3.rows() * self.w3.cols()
    }
}

/// Reusable intermediates for the batched SwiGLU forward: the `gate` and
/// `up` projection matrices. One per compute site (the native pipeline's
/// inference thread and each compute worker keep their own); after
/// [`FfnScratch::reserve`] — or the first call at the high-water batch
/// shape — every `forward_batch_*_into` call is allocation-free.
#[derive(Debug, Clone, Default)]
pub struct FfnScratch {
    gate: Matrix,
    up: Matrix,
}

impl FfnScratch {
    /// Pre-sizes both intermediates for batches of up to `rows` tokens
    /// against experts with `d_ff` hidden width, so no later
    /// `forward_batch_*_into` call allocates.
    pub fn reserve(&mut self, rows: usize, d_ff: usize) {
        self.gate.resize(rows, d_ff);
        self.up.resize(rows, d_ff);
    }
}

/// One expert kept in its packed quantized form — the three SwiGLU
/// matrices as [`QuantizedMatrix`] — with a batched forward that computes
/// straight off the packed codes via the fused quantized GEMM. No
/// full-precision staging matrix exists on this path: a VRAM slot holding
/// one of these is `bits/8 + metadata` bytes per parameter instead of 4.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedExpertWeights {
    /// Gate projection, packed.
    pub w1: QuantizedMatrix,
    /// Down projection, packed.
    pub w2: QuantizedMatrix,
    /// Up projection, packed.
    pub w3: QuantizedMatrix,
}

impl QuantizedExpertWeights {
    /// Quantizes a full-precision expert.
    ///
    /// # Panics
    ///
    /// Panics if `config` is invalid (see [`QuantConfig`]).
    pub fn quantize(expert: &ExpertWeights, config: QuantConfig) -> Self {
        QuantizedExpertWeights {
            w1: QuantizedMatrix::quantize(&expert.w1, config),
            w2: QuantizedMatrix::quantize(&expert.w2, config),
            w3: QuantizedMatrix::quantize(&expert.w3, config),
        }
    }

    /// An empty packed expert — a placeholder buffer for slot pools that
    /// fill it via [`QuantizedExpertWeights::copy_from`].
    pub fn placeholder(config: QuantConfig) -> Self {
        QuantizedExpertWeights::quantize(&ExpertWeights::placeholder(), config)
    }

    /// Reconstructs the full-precision expert into reused buffers — the
    /// staging path this type exists to avoid, kept for tests and for
    /// callers that need dense weights.
    pub fn dequantize_into(&self, out: &mut ExpertWeights) {
        self.w1.dequantize_into(&mut out.w1);
        self.w2.dequantize_into(&mut out.w2);
        self.w3.dequantize_into(&mut out.w3);
    }

    /// Becomes a copy of `src`, reusing the packed buffers when capacity
    /// allows — the transfer-into-a-resident-slot primitive.
    pub fn copy_from(&mut self, src: &QuantizedExpertWeights) {
        self.w1.copy_from(&src.w1);
        self.w2.copy_from(&src.w2);
        self.w3.copy_from(&src.w3);
    }

    /// Batched SwiGLU forward straight off the packed codes: both GEMM
    /// pairs run through [`QuantizedMatrix::matmul_nt_fused_into`], so
    /// dequantization happens a 64-code panel at a time in registers.
    /// Output is **bit-identical** to dequantizing this expert and calling
    /// [`ExpertWeights::forward_batch`] (the fused GEMM preserves both the
    /// dequant expression and every accumulation chain).
    ///
    /// # Panics
    ///
    /// Panics if `xs.cols()` does not match `d_model`.
    pub fn forward_batch(&self, xs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        let mut scratch = FfnScratch::default();
        self.forward_batch_into(xs, &mut out, &mut scratch);
        out
    }

    /// [`QuantizedExpertWeights::forward_batch`] into a reused output
    /// matrix and [`FfnScratch`] — the allocation-free form for decode
    /// hot loops. Bit-identical to the allocating form.
    ///
    /// # Panics
    ///
    /// Panics if `xs.cols()` does not match `d_model`.
    // analyze: no_alloc
    pub fn forward_batch_into(&self, xs: &Matrix, out: &mut Matrix, scratch: &mut FfnScratch) {
        assert_eq!(xs.cols(), self.w1.cols(), "expert input width mismatch");
        let n_tokens = xs.rows();
        let d_ff = self.w1.rows();
        let d_model = self.w2.rows();
        scratch.gate.resize(n_tokens, d_ff);
        self.w1.matmul_nt_fused_into(xs, &mut scratch.gate);
        scratch.up.resize(n_tokens, d_ff);
        self.w3.matmul_nt_fused_into(xs, &mut scratch.up);
        for (g, &u) in scratch
            .gate
            .as_mut_slice()
            .iter_mut()
            .zip(scratch.up.as_slice())
        {
            *g = silu(*g) * u;
        }
        out.resize(n_tokens, d_model);
        self.w2.matmul_nt_fused_into(&scratch.gate, out);
    }

    /// Actual stored bytes across the three matrices (codes + metadata).
    pub fn stored_bytes(&self) -> usize {
        self.w1.stored_bytes() + self.w2.stored_bytes() + self.w3.stored_bytes()
    }
}

/// Attention weights plus the block's two norm gains.
#[derive(Debug, Clone, PartialEq)]
pub struct AttnWeights {
    /// Query projection `[d_model, d_model]`.
    pub wq: Matrix,
    /// Key projection `[d_model, d_model]`.
    pub wk: Matrix,
    /// Value projection `[d_model, d_model]`.
    pub wv: Matrix,
    /// Output projection `[d_model, d_model]`.
    pub wo: Matrix,
    /// Pre-attention RMSNorm gain.
    pub norm1: Vec<f32>,
    /// Pre-MoE RMSNorm gain.
    pub norm2: Vec<f32>,
}

impl AttnWeights {
    /// Builds the attention stack of `layer`.
    pub fn seeded(cfg: &MoeConfig, layer: usize) -> Self {
        let idx = layer as u64;
        let d = cfg.d_model;
        AttnWeights {
            wq: xavier_matrix(d, d, sub_seed(cfg.seed, tags::WQ, idx)),
            wk: xavier_matrix(d, d, sub_seed(cfg.seed, tags::WK, idx)),
            wv: xavier_matrix(d, d, sub_seed(cfg.seed, tags::WV, idx)),
            wo: xavier_matrix(d, d, sub_seed(cfg.seed, tags::WO, idx)),
            norm1: norm_weight(d, sub_seed(cfg.seed, tags::NORM1, idx)),
            norm2: norm_weight(d, sub_seed(cfg.seed, tags::NORM2, idx)),
        }
    }
}

/// One decoder block's weights.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerWeights {
    /// Attention + norms.
    pub attn: AttnWeights,
    /// Router `[n_experts, d_model]`.
    pub gate: Matrix,
    /// The experts.
    pub experts: Vec<ExpertWeights>,
}

impl LayerWeights {
    /// Builds block `layer`.
    pub fn seeded(cfg: &MoeConfig, layer: usize) -> Self {
        LayerWeights {
            attn: AttnWeights::seeded(cfg, layer),
            gate: xavier_matrix(
                cfg.n_experts,
                cfg.d_model,
                sub_seed(cfg.seed, tags::GATE, layer as u64),
            ),
            experts: (0..cfg.n_experts)
                .map(|e| ExpertWeights::seeded(cfg, layer, e))
                .collect(),
        }
    }
}

/// The whole model's weights.
#[derive(Debug, Clone, PartialEq)]
pub struct MoeWeights {
    /// Token embedding `[vocab, d_model]` (tied with the LM head).
    pub embed: Matrix,
    /// Final RMSNorm gain.
    pub final_norm: Vec<f32>,
    /// Decoder blocks.
    pub layers: Vec<LayerWeights>,
}

impl MoeWeights {
    /// Builds all weights for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is inconsistent (see [`MoeConfig::validate`]).
    pub fn seeded(cfg: &MoeConfig) -> Self {
        cfg.validate();
        MoeWeights {
            embed: xavier_matrix(cfg.vocab, cfg.d_model, sub_seed(cfg.seed, tags::EMBED, 0)),
            final_norm: norm_weight(cfg.d_model, sub_seed(cfg.seed, tags::FINAL_NORM, 0)),
            layers: (0..cfg.n_layers)
                .map(|l| LayerWeights::seeded(cfg, l))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_reproducible() {
        let cfg = MoeConfig::tiny(5);
        let a = MoeWeights::seeded(&cfg);
        let b = MoeWeights::seeded(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn different_experts_have_different_weights() {
        let cfg = MoeConfig::tiny(5);
        let w = MoeWeights::seeded(&cfg);
        let e0 = &w.layers[0].experts[0];
        let e1 = &w.layers[0].experts[1];
        assert!(e0.w1.max_abs_diff(&e1.w1) > 0.0);
        let l1e0 = &w.layers[1].experts[0];
        assert!(e0.w1.max_abs_diff(&l1e0.w1) > 0.0);
    }

    #[test]
    fn expert_forward_shapes_and_determinism() {
        let cfg = MoeConfig::tiny(5);
        let e = ExpertWeights::seeded(&cfg, 2, 3);
        let x = vec![0.1f32; cfg.d_model];
        let y1 = e.forward(&x);
        let y2 = e.forward(&x);
        assert_eq!(y1.len(), cfg.d_model);
        assert_eq!(y1, y2);
        assert_eq!(e.n_params(), 3 * cfg.d_model * cfg.d_ff);
    }

    #[test]
    fn expert_forward_is_nonlinear() {
        let cfg = MoeConfig::tiny(5);
        let e = ExpertWeights::seeded(&cfg, 0, 0);
        let x = vec![0.5f32; cfg.d_model];
        let y = e.forward(&x);
        let x2: Vec<f32> = x.iter().map(|v| v * 2.0).collect();
        let y2 = e.forward(&x2);
        let linear: Vec<f32> = y.iter().map(|v| v * 2.0).collect();
        let diff: f32 = y2
            .iter()
            .zip(&linear)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(diff > 1e-6, "SwiGLU must not be linear");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn expert_rejects_wrong_width() {
        let cfg = MoeConfig::tiny(5);
        let e = ExpertWeights::seeded(&cfg, 0, 0);
        let _ = e.forward(&[0.0; 3]);
    }

    #[test]
    fn forward_batch_matches_forward_bitwise() {
        let cfg = MoeConfig::tiny(5);
        let e = ExpertWeights::seeded(&cfg, 1, 2);
        let xs = Matrix::from_fn(7, cfg.d_model, |r, c| {
            ((r * 13 + c * 7) as f32 * 0.09).sin()
        });
        let batched = e.forward_batch(&xs);
        assert_eq!(batched.rows(), 7);
        assert_eq!(batched.cols(), cfg.d_model);
        for r in 0..xs.rows() {
            let single = e.forward(xs.row(r));
            assert_eq!(batched.row(r), &single[..], "row {r} diverged");
        }
    }

    #[test]
    fn forward_batch_handles_empty_and_single_row() {
        let cfg = MoeConfig::tiny(5);
        let e = ExpertWeights::seeded(&cfg, 0, 1);
        let empty = e.forward_batch(&Matrix::zeros(0, cfg.d_model));
        assert_eq!((empty.rows(), empty.cols()), (0, cfg.d_model));
        let one = Matrix::from_fn(1, cfg.d_model, |_, c| (c as f32 * 0.3).cos());
        assert_eq!(e.forward_batch(&one).row(0), &e.forward(one.row(0))[..]);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn forward_batch_rejects_wrong_width() {
        let cfg = MoeConfig::tiny(5);
        let e = ExpertWeights::seeded(&cfg, 0, 0);
        let _ = e.forward_batch(&Matrix::zeros(2, 3));
    }

    #[test]
    fn quantized_expert_fused_forward_matches_staged_bitwise() {
        let cfg = MoeConfig::tiny(5);
        let e = ExpertWeights::seeded(&cfg, 1, 0);
        let q = QuantizedExpertWeights::quantize(&e, QuantConfig::paper_default());
        let mut staged = ExpertWeights::placeholder();
        q.dequantize_into(&mut staged);
        let xs = Matrix::from_fn(9, cfg.d_model, |r, c| {
            ((r * 17 + c * 3) as f32 * 0.07).sin()
        });
        assert_eq!(q.forward_batch(&xs), staged.forward_batch(&xs));
        // And the packed form really is smaller than dense f32.
        assert!(q.stored_bytes() < 4 * e.n_params());
    }

    #[test]
    fn quantized_expert_copy_from_round_trips() {
        let cfg = MoeConfig::tiny(5);
        let qcfg = QuantConfig::paper_default();
        let src = QuantizedExpertWeights::quantize(&ExpertWeights::seeded(&cfg, 0, 2), qcfg);
        let mut slot = QuantizedExpertWeights::placeholder(qcfg);
        slot.copy_from(&src);
        assert_eq!(slot, src);
        let xs = Matrix::from_fn(2, cfg.d_model, |_, c| (c as f32 * 0.2).cos());
        assert_eq!(slot.forward_batch(&xs), src.forward_batch(&xs));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Batched expert forward is bit-identical to the per-token matvec
        /// for random token groups of any size (including 0 and 1).
        #[test]
        fn forward_batch_is_bit_identical_to_forward(
            n_tokens in 0usize..6,
            layer in 0usize..2,
            expert in 0usize..3,
            raw in proptest::collection::vec(-2.0f32..2.0, 6 * 32),
        ) {
            let cfg = MoeConfig::tiny(31);
            let e = ExpertWeights::seeded(&cfg, layer, expert);
            let xs = Matrix::from_vec(
                n_tokens,
                cfg.d_model,
                raw[..n_tokens * cfg.d_model].to_vec(),
            );
            let batched = e.forward_batch(&xs);
            prop_assert_eq!(batched.rows(), n_tokens);
            for r in 0..n_tokens {
                let single = e.forward(xs.row(r));
                prop_assert_eq!(batched.row(r), &single[..]);
            }
        }
    }
}
