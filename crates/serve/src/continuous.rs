//! Continuous batching: step-level scheduling with slot refill,
//! preemptible chunked prefill, and priority classes.
//!
//! The run-to-completion loop in [`server`](crate::server) dispatches a
//! batch group and blocks until its slowest member drains: finished
//! requests idle in padding, and a long prefill walls off latency-critical
//! arrivals behind it. This module schedules the same traffic at *step*
//! granularity instead — the vLLM/Sarathi-style serving core, expressed in
//! the simulator:
//!
//! * **Slot refill** — the engine holds a pool of `batch_size × max_n`
//!   sequence slots; whenever a decode step finishes some sequences, the
//!   freed slots are refilled from the admission queue at the very next
//!   step boundary (recorded as [`GroupTrigger::Refill`] waves) instead of
//!   waiting for the whole group to drain.
//! * **Chunked, preemptible prefill** — a wave's prefill is split into
//!   fixed-size token chunks ([`ContinuousConfig::prefill_chunk`]); a
//!   chat-class arrival can park a batch-class prefill between chunks and
//!   jump ahead of it.
//! * **Priority classes** — requests are deterministically classified as
//!   interactive `Chat` or offline `Batch` ([`ClassAssign`]); chat
//!   admission preempts batch prefill, and
//!   [`summarize_where`](crate::metrics::summarize_where) reports SLO
//!   attainment per class.
//!
//! Cost accounting reuses the calibrated
//! [`estimate_step_service`](crate::admission::estimate_step_service)
//! decomposition, whose step sums equal
//! [`estimate_group_service`](crate::admission::estimate_group_service)
//! *exactly* — so a full group costs the same whether it runs atomically
//! or step-by-step, and any measured win is pure scheduling, not pricing.
//! The [`CostEngine`] baseline makes that comparison apples-to-apples.
//!
//! With [`ContinuousConfig::refill`] disabled the entry point falls back
//! to the run-to-completion loop (one replica, byte-identical to
//! [`serve`](crate::server::serve) — a proptest pins this), so the
//! continuous scheduler is a strict extension, never a fork.

use std::collections::VecDeque;

use klotski_core::report::InferenceReport;
use klotski_core::scenario::{Engine, EngineError, Scenario};
use klotski_model::cost::CostModel;
use klotski_model::hardware::HardwareSpec;
use klotski_model::spec::ModelSpec;
use klotski_model::workload::Workload;
use klotski_sim::time::{SimDuration, SimTime};

use crate::admission::{estimate_step_service, GroupTrigger, StepEstimate};
use crate::server::{
    formation_precedes, ArrivalSource, Completion, EngineCtx, GroupRecord, Replica,
    ReplicaUtilization, RequestOutcome, ServeConfig, ServeReport, Traffic,
};
use crate::traffic::Request;

/// The priority class of one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestClass {
    /// Interactive traffic: TTFT-sensitive, admitted ahead of batch work
    /// and allowed to preempt batch-class prefill between chunks.
    Chat,
    /// Offline/batch traffic: throughput-oriented, admitted only when no
    /// chat request is waiting for a slot.
    Batch,
}

/// How requests are assigned to priority classes.
///
/// Assignment is a pure function of the request id (a multiplicative hash,
/// not "the first N%"), so a share applies uniformly across the stream and
/// reruns are byte-deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassAssign {
    /// No class split: every request is `Chat` (single-queue scheduling).
    Uniform,
    /// `chat_pct`% of requests are `Chat`, the rest `Batch`.
    ChatShare {
        /// Percentage of requests classified as chat (0–100).
        chat_pct: u32,
    },
}

impl ClassAssign {
    /// The class of request `id`.
    pub fn class_of(&self, id: u64) -> RequestClass {
        match *self {
            ClassAssign::Uniform => RequestClass::Chat,
            ClassAssign::ChatShare { chat_pct } => {
                let h = id.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32;
                if h % 100 < u64::from(chat_pct) {
                    RequestClass::Chat
                } else {
                    RequestClass::Batch
                }
            }
        }
    }

    /// Short stable name for tables and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            ClassAssign::Uniform => "uniform",
            ClassAssign::ChatShare { .. } => "chat_share",
        }
    }
}

/// Configuration for [`serve_continuous`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContinuousConfig {
    /// The underlying serving configuration; `batch_size ×
    /// policy.max_batches()` is the slot capacity of the continuous
    /// scheduler.
    pub serve: ServeConfig,
    /// Enable step-level slot refill. When `false` the run-to-completion
    /// loop is used (byte-identical to [`serve`](crate::server::serve));
    /// `prefill_chunk` and `classes` are then inert.
    pub refill: bool,
    /// Prefill chunk size in prompt tokens (`0` = atomic prefill, never
    /// preempted mid-wave).
    pub prefill_chunk: u32,
    /// Priority-class assignment.
    pub classes: ClassAssign,
}

/// A [`ServeReport`] plus the continuous scheduler's own counters.
#[derive(Debug, Clone)]
pub struct ContinuousReport {
    /// The standard serving report (outcomes, waves as groups, makespan).
    pub serve: ServeReport,
    /// Batch-class prefill jobs parked by a chat admission.
    pub preemptions: u32,
    /// Requests admitted into freed slots of an already-running batch.
    pub refills: u32,
    /// Prefill chunks executed.
    pub prefill_chunks: u32,
    /// Slot-refill occupancy: the mean fraction of the slot capacity
    /// producing tokens per decode step (run-to-completion runs report the
    /// analogous padded-group number).
    pub occupancy: f64,
}

/// An [`Engine`] that *prices* scenarios with the calibrated
/// [`CostModel`] instead of simulating them: service time is
/// [`estimate_group_service`](crate::admission::estimate_group_service)
/// at the workload's shape, prefill its step-estimate prefill, and it
/// never OOMs.
///
/// This is the cost-parity baseline for continuous batching: the
/// continuous scheduler prices its steps with
/// [`estimate_step_service`](crate::admission::estimate_step_service),
/// whose step sums equal the group estimate exactly — so benchmarking
/// continuous against run-to-completion *with this engine* isolates the
/// scheduling policy from any pricing difference.
pub struct CostEngine {
    cost: CostModel,
}

impl CostEngine {
    /// A cost engine calibrated for `spec` on `hw`.
    pub fn new(spec: &ModelSpec, hw: &HardwareSpec) -> Self {
        CostEngine {
            cost: CostModel::new(spec.clone(), hw.clone()),
        }
    }
}

impl Engine for CostEngine {
    fn name(&self) -> String {
        "CostModel".into()
    }

    fn run(&self, scenario: &Scenario) -> Result<InferenceReport, EngineError> {
        let wl = scenario.workload;
        let est = estimate_step_service(
            &self.cost,
            wl.batch_size,
            wl.num_batches,
            wl.prompt_len,
            wl.gen_len,
        );
        let total = est.group(wl.gen_len);
        Ok(InferenceReport {
            engine: self.name(),
            model: scenario.spec.name.clone(),
            total_time: total,
            prefill_time: est.prefill,
            decode_time: total.saturating_sub(est.prefill),
            generated_tokens: wl.total_generated(),
            gpu_busy: total,
            gpu_bubble: SimDuration::ZERO,
            peak_vram: 0,
            peak_dram: 0,
            oom: None,
            metrics: None,
        })
    }
}

/// Serves `traffic` with the continuous-batching scheduler.
///
/// With `cfg.refill` enabled the engine is modeled as a pool of
/// `batch_size × max_batches` sequence slots advanced step by step (see
/// the module docs for the scheduling rules); step and prefill-chunk costs
/// come from the calibrated cost model, and `engine` contributes its name.
/// With `cfg.refill` disabled this is the run-to-completion loop on one
/// replica — byte-identical to [`serve`](crate::server::serve).
///
/// # Errors
///
/// Returns [`EngineError`] if the engine rejects a scenario as invalid
/// (run-to-completion mode only; the slot machine prices steps analytically
/// and cannot OOM).
///
/// # Panics
///
/// Panics if `cfg.serve.batch_size` is zero, the policy's group size is
/// zero, a `ChatShare` percentage exceeds 100, or closed-loop traffic
/// promises requests but has no clients to issue them.
pub fn serve_continuous(
    engine: &dyn Engine,
    spec: &ModelSpec,
    hw: &HardwareSpec,
    traffic: &Traffic,
    cfg: &ContinuousConfig,
) -> Result<ContinuousReport, EngineError> {
    assert!(cfg.serve.batch_size > 0, "batch_size must be positive");
    assert!(
        cfg.serve.policy.max_batches() > 0,
        "group size must be positive"
    );
    if let ClassAssign::ChatShare { chat_pct } = cfg.classes {
        assert!(chat_pct <= 100, "chat_pct must be a percentage");
    }
    if let Traffic::Closed {
        clients, cfg: tc, ..
    } = traffic
    {
        assert!(
            *clients > 0 || tc.num_requests == 0,
            "closed-loop traffic needs at least one client"
        );
    }
    if cfg.refill {
        Ok(run_slot_machine(engine, spec, hw, traffic, cfg))
    } else {
        run_to_completion(engine, spec, hw, traffic, cfg)
    }
}

/// The disabled-refill fallback: the run-to-completion loop on a single
/// replica, executing groups through the step-level engine boundary
/// exactly as [`serve`](crate::server::serve) does. Kept as its own loop
/// (rather than delegating) so the byte-identity proptest pins the
/// continuous entry point's interleave independently.
fn run_to_completion(
    engine: &dyn Engine,
    spec: &ModelSpec,
    hw: &HardwareSpec,
    traffic: &Traffic,
    cfg: &ContinuousConfig,
) -> Result<ContinuousReport, EngineError> {
    let scfg = &cfg.serve;
    let mut source = ArrivalSource::new(traffic);
    let mut replica = Replica::new(0, scfg.seed);
    let ctx = EngineCtx::new(engine, spec, hw, scfg);
    let mut outcomes: Vec<RequestOutcome> = Vec::new();
    let mut groups: Vec<GroupRecord> = Vec::new();
    let mut last_arrival = SimTime::ZERO;

    loop {
        let next_arrival = source.peek();
        let eos = next_arrival.is_none();
        let next_form = replica.next_form_time(scfg, eos, last_arrival);
        let Some(form_first) = formation_precedes(next_arrival, next_form) else {
            break;
        };
        if form_first {
            let t_form = next_form.expect("formation event");
            let done = replica.run_group(t_form, eos, &ctx, &mut outcomes, &mut groups)?;
            for c in &done {
                source.on_complete(c.finished, c.failed);
            }
        } else {
            let r = source.pop();
            last_arrival = last_arrival.max(r.arrival);
            replica.enqueue(r);
        }
    }

    outcomes.sort_by_key(|o| o.id);
    let first_arrival = outcomes
        .iter()
        .map(|o| o.arrival)
        .min()
        .unwrap_or(SimTime::ZERO);
    let last_finish = outcomes
        .iter()
        .map(|o| o.finished)
        .max()
        .unwrap_or(SimTime::ZERO);
    let makespan = last_finish.saturating_since(first_arrival);
    let capacity = u64::from(scfg.batch_size) * u64::from(scfg.policy.max_batches());
    // Padded-group occupancy: useful decode-step slots over the slot
    // capacity across every group's decode steps — the number slot refill
    // exists to raise.
    let steps: u64 = groups
        .iter()
        .map(|g| u64::from(g.workload.gen_len.saturating_sub(1)))
        .sum();
    let occupied: u64 = outcomes
        .iter()
        .filter(|o| !o.failed)
        .map(|o| u64::from(o.gen_len.saturating_sub(1)))
        .sum();
    let occupancy = if steps == 0 {
        0.0
    } else {
        occupied as f64 / (steps * capacity) as f64
    };
    let replicas = vec![replica.stats(first_arrival, last_finish)];
    Ok(ContinuousReport {
        serve: ServeReport {
            engine: engine.name(),
            outcomes,
            groups,
            replicas,
            makespan,
        },
        preemptions: 0,
        refills: 0,
        prefill_chunks: 0,
        occupancy,
    })
}

/// One admission wave under construction (becomes a [`GroupRecord`] with
/// [`GroupTrigger::Refill`] once its last member finishes).
struct Wave {
    dispatched: SimTime,
    n: u32,
    prompt: u32,
    gen: u32,
    prefill: SimDuration,
    last_finish: SimTime,
}

/// A wave's prefill in progress; jobs form a stack, and a chat admission
/// parks a batch-class job by pushing on top of it.
struct PrefillJob {
    wave: usize,
    members: Vec<Request>,
    prompt: u32,
    done: u32,
    est: StepEstimate,
    chat: bool,
}

/// One sequence holding a slot through its decode steps.
struct ActiveSeq {
    req: Request,
    wave: usize,
    first_token: SimTime,
    remaining: u32,
}

struct SlotMachine<'a> {
    cost: &'a CostModel,
    batch_size: u32,
    capacity: usize,
    chunk: u32,
    classes: ClassAssign,
    chat_q: VecDeque<Request>,
    batch_q: VecDeque<Request>,
    jobs: Vec<PrefillJob>,
    active: Vec<ActiveSeq>,
    t_free: SimTime,
    waves: Vec<Wave>,
    outcomes: Vec<RequestOutcome>,
    busy: SimDuration,
    served: u32,
    tokens: u64,
    preemptions: u32,
    refills: u32,
    chunks: u32,
    occupied_steps: u64,
    decode_steps: u64,
}

impl<'a> SlotMachine<'a> {
    fn new(cost: &'a CostModel, cfg: &ContinuousConfig) -> Self {
        let capacity = cfg.serve.batch_size as usize * cfg.serve.policy.max_batches() as usize;
        SlotMachine {
            cost,
            batch_size: cfg.serve.batch_size,
            capacity,
            chunk: cfg.prefill_chunk,
            classes: cfg.classes,
            chat_q: VecDeque::new(),
            batch_q: VecDeque::new(),
            jobs: Vec::new(),
            active: Vec::new(),
            t_free: SimTime::ZERO,
            waves: Vec::new(),
            outcomes: Vec::new(),
            busy: SimDuration::ZERO,
            served: 0,
            tokens: 0,
            preemptions: 0,
            refills: 0,
            chunks: 0,
            occupied_steps: 0,
            decode_steps: 0,
        }
    }

    fn used_slots(&self) -> usize {
        self.active.len() + self.jobs.iter().map(|j| j.members.len()).sum::<usize>()
    }

    fn enqueue(&mut self, r: Request) {
        match self.classes.class_of(r.id) {
            RequestClass::Chat => self.chat_q.push_back(r),
            RequestClass::Batch => self.batch_q.push_back(r),
        }
    }

    /// The next instant the machine acts: the engine-free boundary while
    /// any work is in flight, otherwise the earliest queued arrival (the
    /// machine is work-conserving — an idle engine admits immediately).
    fn next_action_time(&self) -> Option<SimTime> {
        if !self.jobs.is_empty() || !self.active.is_empty() {
            return Some(self.t_free);
        }
        let front = match (self.chat_q.front(), self.batch_q.front()) {
            (Some(a), Some(b)) => Some(a.arrival.min(b.arrival)),
            (Some(a), None) => Some(a.arrival),
            (None, Some(b)) => Some(b.arrival),
            (None, None) => None,
        };
        front.map(|a| a.max(self.t_free))
    }

    /// Pricing shape for `m` co-resident sequences: one ragged batch below
    /// `batch_size`, whole batches (rounded up) beyond it — the same
    /// convention the run-to-completion groups use.
    fn shape(&self, m: usize) -> (u32, u32) {
        let m = m as u32;
        if m <= self.batch_size {
            (m.max(1), 1)
        } else {
            (self.batch_size, m.div_ceil(self.batch_size))
        }
    }

    /// Executes one scheduling action at `t` and returns the completions.
    ///
    /// Priority order: admit chat (parking a batch-class prefill between
    /// chunks), continue the current prefill, admit batch, decode one step.
    fn act(&mut self, t: SimTime) -> Vec<Completion> {
        let free = self.capacity - self.used_slots();
        let current_chat = self.jobs.last().map(|j| j.chat);
        if free > 0 && !self.chat_q.is_empty() && current_chat != Some(true) {
            if current_chat == Some(false) {
                // A batch-class prefill is mid-flight: park it between
                // chunks; the chat wave's job runs first.
                self.preemptions += 1;
            }
            self.admit_wave(t, RequestClass::Chat, free);
        } else if self.jobs.is_empty() && free > 0 && !self.batch_q.is_empty() {
            self.admit_wave(t, RequestClass::Batch, free);
        }
        if !self.jobs.is_empty() {
            self.run_chunk(t)
        } else if !self.active.is_empty() {
            self.decode_step(t)
        } else {
            Vec::new()
        }
    }

    fn admit_wave(&mut self, t: SimTime, class: RequestClass, free: usize) {
        let q = match class {
            RequestClass::Chat => &mut self.chat_q,
            RequestClass::Batch => &mut self.batch_q,
        };
        let m = free.min(q.len());
        debug_assert!(m > 0);
        let members: Vec<Request> = q.drain(..m).collect();
        let (prompt, gen) = members
            .iter()
            .fold((1, 1), |(p, g), r| (p.max(r.prompt_len), g.max(r.gen_len)));
        let (ebs, en) = self.shape(m);
        let est = estimate_step_service(self.cost, ebs, en, prompt, gen);
        if !self.active.is_empty() || !self.jobs.is_empty() {
            self.refills += m as u32;
        }
        let wave = self.waves.len();
        self.waves.push(Wave {
            dispatched: t,
            n: m as u32,
            prompt,
            gen,
            prefill: est.prefill,
            last_finish: t,
        });
        self.jobs.push(PrefillJob {
            wave,
            members,
            prompt,
            done: 0,
            est,
            chat: class == RequestClass::Chat,
        });
    }

    fn run_chunk(&mut self, t: SimTime) -> Vec<Completion> {
        let job = self.jobs.last_mut().expect("chunk needs a job");
        let remaining = job.prompt - job.done;
        let take = if self.chunk == 0 {
            remaining
        } else {
            self.chunk.min(remaining)
        };
        let d = job.est.prefill_chunk(job.done, take, job.prompt);
        job.done += take;
        self.chunks += 1;
        self.busy += d;
        self.t_free = t + d;
        let mut done = Vec::new();
        if job.done >= job.prompt {
            let job = self.jobs.pop().expect("job just ran");
            let first_token = self.t_free;
            for r in job.members {
                if r.gen_len <= 1 {
                    // First token is the last: the sequence leaves its slot
                    // at the end of its wave's prefill.
                    self.finish(r, job.wave, first_token, first_token, &mut done);
                } else {
                    self.active.push(ActiveSeq {
                        req: r,
                        wave: job.wave,
                        first_token,
                        remaining: r.gen_len - 1,
                    });
                }
            }
        }
        done
    }

    fn decode_step(&mut self, t: SimTime) -> Vec<Completion> {
        let m = self.active.len();
        let (prompt, gen) = self.active.iter().fold((1, 1), |(p, g), s| {
            (p.max(s.req.prompt_len), g.max(s.req.gen_len))
        });
        let (ebs, en) = self.shape(m);
        let d = estimate_step_service(self.cost, ebs, en, prompt, gen).decode_step;
        self.occupied_steps += m as u64;
        self.decode_steps += 1;
        self.busy += d;
        self.t_free = t + d;
        let finish_at = self.t_free;
        let mut done = Vec::new();
        let mut still = Vec::with_capacity(m);
        for mut s in std::mem::take(&mut self.active) {
            s.remaining -= 1;
            if s.remaining == 0 {
                self.finish(s.req, s.wave, s.first_token, finish_at, &mut done);
            } else {
                still.push(s);
            }
        }
        self.active = still;
        done
    }

    fn finish(
        &mut self,
        r: Request,
        wave: usize,
        first_token: SimTime,
        finished: SimTime,
        done: &mut Vec<Completion>,
    ) {
        let w = &mut self.waves[wave];
        w.last_finish = w.last_finish.max(finished);
        self.outcomes.push(RequestOutcome {
            id: r.id,
            arrival: r.arrival,
            dispatched: w.dispatched,
            first_token,
            finished,
            prompt_len: r.prompt_len,
            gen_len: r.gen_len,
            group: wave as u32,
            replica: 0,
            failed: false,
            retry: crate::server::RetryOutcome::FirstTry,
        });
        self.served += 1;
        self.tokens += u64::from(r.gen_len);
        done.push(Completion {
            finished,
            failed: false,
        });
    }
}

/// The refill-enabled scheduler: the engine as a slot pool advanced at
/// step granularity, priced by the calibrated cost model (the analytic
/// pricing cannot OOM, so this path is infallible).
fn run_slot_machine(
    engine: &dyn Engine,
    spec: &ModelSpec,
    hw: &HardwareSpec,
    traffic: &Traffic,
    cfg: &ContinuousConfig,
) -> ContinuousReport {
    let cost = CostModel::new(spec.clone(), hw.clone());
    let mut source = ArrivalSource::new(traffic);
    let mut machine = SlotMachine::new(&cost, cfg);

    loop {
        let next_arrival = source.peek();
        let next_act = machine.next_action_time();
        let Some(act_first) = formation_precedes(next_arrival, next_act) else {
            break;
        };
        if act_first {
            let t = next_act.expect("action event");
            let done = machine.act(t);
            for c in &done {
                source.on_complete(c.finished, c.failed);
            }
        } else {
            let r = source.pop();
            machine.enqueue(r);
        }
    }

    let SlotMachine {
        mut outcomes,
        waves,
        busy,
        served,
        tokens,
        preemptions,
        refills,
        chunks,
        occupied_steps,
        decode_steps,
        capacity,
        batch_size,
        ..
    } = machine;
    outcomes.sort_by_key(|o| o.id);
    let first_arrival = outcomes
        .iter()
        .map(|o| o.arrival)
        .min()
        .unwrap_or(SimTime::ZERO);
    let last_finish = outcomes
        .iter()
        .map(|o| o.finished)
        .max()
        .unwrap_or(SimTime::ZERO);
    let makespan = last_finish.saturating_since(first_arrival);
    let groups: Vec<GroupRecord> = waves
        .iter()
        .enumerate()
        .map(|(i, w)| {
            // The recorded workload is the wave's padded admission shape
            // (waves may overlap on the engine, unlike RTC groups).
            let wl = if w.n <= batch_size || w.n % batch_size != 0 {
                Workload::new(w.n.max(1), 1, w.prompt, w.gen)
            } else {
                Workload::new(batch_size, w.n / batch_size, w.prompt, w.gen)
            };
            GroupRecord {
                index: i as u32,
                replica: 0,
                dispatched: w.dispatched,
                workload: wl,
                n_requests: w.n,
                trigger: GroupTrigger::Refill,
                service_time: w.last_finish.saturating_since(w.dispatched),
                prefill_time: w.prefill,
                oom: false,
            }
        })
        .collect();
    let occupancy = if decode_steps == 0 {
        0.0
    } else {
        occupied_steps as f64 / (decode_steps * capacity as u64) as f64
    };
    let lifetime = makespan;
    let replicas = vec![ReplicaUtilization {
        replica: 0,
        groups: groups.len() as u32,
        requests: served,
        busy,
        tokens,
        spawned: SimTime::ZERO,
        retired: None,
        lifetime,
        utilization: if lifetime.is_zero() {
            0.0
        } else {
            busy.as_secs_f64() / lifetime.as_secs_f64()
        },
    }];
    ContinuousReport {
        serve: ServeReport {
            engine: engine.name(),
            outcomes,
            groups,
            replicas,
            makespan,
        },
        preemptions,
        refills,
        prefill_chunks: chunks,
        occupancy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionPolicy;
    use crate::traffic::{generate, Arrivals, LengthDist, TrafficConfig};

    fn spec() -> ModelSpec {
        ModelSpec::mixtral_8x7b()
    }

    fn hw() -> HardwareSpec {
        HardwareSpec::env1_rtx3090()
    }

    fn cfg(bs: u32, n: u32, refill: bool, chunk: u32, classes: ClassAssign) -> ContinuousConfig {
        ContinuousConfig {
            serve: ServeConfig {
                batch_size: bs,
                policy: AdmissionPolicy::CostAware {
                    max_n: n,
                    slo_e2e: SimDuration::from_secs(600),
                },
                seed: 7,
            },
            refill,
            prefill_chunk: chunk,
            classes,
        }
    }

    /// A saturating stream with heavy-tailed output lengths: most requests
    /// want a handful of tokens, a quarter want 32 — the padding-waste
    /// shape continuous batching exists for.
    fn heavy_stream(num: u32, seed: u64) -> Vec<Request> {
        generate(
            Arrivals::Poisson { rate: 2.0 },
            &TrafficConfig {
                num_requests: num,
                prompt: LengthDist::Uniform { lo: 16, hi: 96 },
                gen: LengthDist::HeavyTail {
                    lo: 2,
                    hi: 4,
                    heavy: 32,
                    heavy_pct: 25,
                },
                seed,
            },
        )
    }

    fn run(stream: Vec<Request>, c: &ContinuousConfig) -> ContinuousReport {
        serve_continuous(
            &CostEngine::new(&spec(), &hw()),
            &spec(),
            &hw(),
            &Traffic::Open(stream),
            c,
        )
        .expect("serve_continuous")
    }

    #[test]
    fn slot_machine_conserves_requests_and_is_deterministic() {
        let c = cfg(4, 2, true, 32, ClassAssign::ChatShare { chat_pct: 40 });
        let a = run(heavy_stream(24, 3), &c);
        let b = run(heavy_stream(24, 3), &c);
        let ids: Vec<u64> = a.serve.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..24).collect::<Vec<_>>());
        assert!(a.serve.outcomes.iter().all(|o| !o.failed));
        assert_eq!(a.serve.outcomes, b.serve.outcomes);
        assert_eq!(a.serve.groups, b.serve.groups);
        assert_eq!((a.refills, a.preemptions), (b.refills, b.preemptions));
        assert!((0.0..=1.0).contains(&a.occupancy), "{}", a.occupancy);
        // Every wave is a Refill-triggered record covering its members.
        let waved: u32 = a.serve.groups.iter().map(|g| g.n_requests).sum();
        assert_eq!(waved, 24);
        assert!(a
            .serve
            .groups
            .iter()
            .all(|g| g.trigger == GroupTrigger::Refill && !g.oom));
        // Per-request timing sanity.
        for o in &a.serve.outcomes {
            assert!(o.arrival <= o.dispatched);
            assert!(o.dispatched <= o.first_token);
            assert!(o.first_token <= o.finished);
        }
    }

    #[test]
    fn refill_beats_run_to_completion_under_padding_waste() {
        let rtc = run(
            heavy_stream(24, 5),
            &cfg(4, 2, false, 0, ClassAssign::Uniform),
        );
        let cont = run(
            heavy_stream(24, 5),
            &cfg(4, 2, true, 0, ClassAssign::Uniform),
        );
        assert!(
            cont.serve.makespan < rtc.serve.makespan,
            "continuous {} vs rtc {}",
            cont.serve.makespan,
            rtc.serve.makespan
        );
        assert!(cont.refills > 0, "saturated stream must refill slots");
    }

    #[test]
    fn closed_loop_clients_are_driven_to_completion() {
        let traffic = Traffic::Closed {
            clients: 3,
            think: SimDuration::from_secs(1),
            cfg: TrafficConfig {
                num_requests: 12,
                prompt: LengthDist::Uniform { lo: 16, hi: 64 },
                gen: LengthDist::Uniform { lo: 2, hi: 6 },
                seed: 9,
            },
        };
        let c = cfg(2, 2, true, 16, ClassAssign::Uniform);
        let r = serve_continuous(
            &CostEngine::new(&spec(), &hw()),
            &spec(),
            &hw(),
            &traffic,
            &c,
        )
        .expect("serve_continuous");
        assert_eq!(r.serve.outcomes.len(), 12);
        assert!(r.serve.outcomes.iter().all(|o| !o.failed));
    }

    fn id_of(class: RequestClass, assign: ClassAssign) -> u64 {
        (0..1000)
            .find(|&i| assign.class_of(i) == class)
            .expect("class representative")
    }

    #[test]
    fn chat_admission_preempts_batch_prefill_between_chunks() {
        let assign = ClassAssign::ChatShare { chat_pct: 50 };
        let chat = id_of(RequestClass::Chat, assign);
        let batch = id_of(RequestClass::Batch, assign);
        // A long batch-class prefill lands first; a short chat request
        // arrives right behind it.
        let stream = || {
            vec![
                Request {
                    id: batch,
                    arrival: SimTime::ZERO,
                    prompt_len: 4096,
                    gen_len: 4,
                },
                Request {
                    id: chat,
                    arrival: SimTime::ZERO + SimDuration::from_millis(1),
                    prompt_len: 32,
                    gen_len: 4,
                },
            ]
        };
        let classed = run(stream(), &cfg(4, 1, true, 64, assign));
        let fifo = run(stream(), &cfg(4, 1, true, 64, ClassAssign::Uniform));
        let ttft = |r: &ContinuousReport, id: u64| {
            r.serve.outcomes.iter().find(|o| o.id == id).unwrap().ttft()
        };
        assert!(classed.preemptions >= 1, "chat must park the batch prefill");
        assert!(
            ttft(&classed, chat) < ttft(&fifo, chat),
            "priority classes must cut chat TTFT: {} vs {}",
            ttft(&classed, chat),
            ttft(&fifo, chat)
        );
        // Work conservation: the batch request still completes.
        assert_eq!(classed.serve.outcomes.len(), 2);
    }

    #[test]
    fn chunking_is_cost_neutral_for_an_uncontended_wave() {
        // 509 is prime, so no chunk size divides the prompt evenly.
        let lone = vec![Request {
            id: 0,
            arrival: SimTime::ZERO,
            prompt_len: 509,
            gen_len: 5,
        }];
        let atomic = run(lone.clone(), &cfg(4, 1, true, 0, ClassAssign::Uniform));
        let chunked = run(lone, &cfg(4, 1, true, 7, ClassAssign::Uniform));
        assert_eq!(
            atomic.serve.outcomes, chunked.serve.outcomes,
            "prefix-difference chunking must not change uncontended timings"
        );
        assert_eq!(atomic.prefill_chunks, 1);
        assert_eq!(chunked.prefill_chunks, 509_u32.div_ceil(7));
    }

    #[test]
    fn single_token_requests_finish_at_their_waves_prefill_end() {
        let lone = vec![Request {
            id: 0,
            arrival: SimTime::ZERO,
            prompt_len: 64,
            gen_len: 1,
        }];
        let r = run(lone, &cfg(4, 1, true, 0, ClassAssign::Uniform));
        let o = &r.serve.outcomes[0];
        assert_eq!(o.first_token, o.finished);
        assert!(o.finished > o.dispatched);
        assert_eq!(r.serve.groups.len(), 1);
    }

    #[test]
    fn class_assignment_is_a_stable_share() {
        let assign = ClassAssign::ChatShare { chat_pct: 30 };
        let chat = (0..10_000u64)
            .filter(|&i| assign.class_of(i) == RequestClass::Chat)
            .count();
        // The hash split tracks the requested share within a few percent.
        assert!((2_500..3_500).contains(&chat), "chat share {chat}/10000");
        assert_eq!(
            ClassAssign::Uniform.class_of(42),
            RequestClass::Chat,
            "uniform assignment is single-class"
        );
    }
}
