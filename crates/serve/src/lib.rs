//! # klotski-serve — the online serving front-end
//!
//! The paper's multi-batch pipeline assumes a batch group of `n` batches
//! already exists; a server must *form* those groups from a live request
//! stream. This crate adds the request level on top of any
//! [`Engine`](klotski_core::scenario::Engine):
//!
//! * [`traffic`] — seeded open-loop (Poisson / paced) and closed-loop
//!   arrival processes with configurable prompt/output-length
//!   distributions;
//! * [`admission`] — the queue policies that cut batch groups online:
//!   fixed-`n`, deadline-triggered partial groups, and a cost-model-informed
//!   policy that sizes groups under a latency budget using
//!   [`CostModel`](klotski_model::cost::CostModel);
//! * [`server`] — the serving loop: drives an engine group-by-group over
//!   simulated time, carrying per-request queueing delay into the results;
//! * [`dispatcher`] — multi-replica serving: shards one request stream
//!   over `R` engine replicas (each with its own admission queue and
//!   serving loop) under a dispatch-policy axis — round-robin,
//!   join-shortest-queue, or cost-model-informed placement;
//! * [`metrics`] — request-level SLO metrics: TTFT / TPOT / end-to-end
//!   percentiles, goodput under an SLO, sustained throughput, per-replica
//!   breakdowns;
//! * [`cluster`] — cluster-scale serving: a dynamic fleet under a
//!   pluggable autoscaling policy, with cold starts derived from the
//!   cost model's weight-transfer times, drain-then-retire scale-down,
//!   and replica-hour accounting;
//! * [`continuous`] — continuous batching: step-level slot refill,
//!   chunked preemptible prefill, and chat/batch priority classes, with
//!   the run-to-completion loop retained as a byte-identical fallback.
//!
//! Everything is deterministic under a seed: the same traffic, policy, and
//! engine produce byte-identical reports (the `serve_sweep` and
//! `serve_scale` bench binaries assert this), and one replica behind any
//! dispatch policy reproduces the single-engine loop byte for byte.
//!
//! ```
//! use klotski_core::engine::{KlotskiConfig, KlotskiEngine};
//! use klotski_model::{hardware::HardwareSpec, spec::ModelSpec};
//! use klotski_serve::admission::AdmissionPolicy;
//! use klotski_serve::server::{serve, ServeConfig, Traffic};
//! use klotski_serve::traffic::{generate, Arrivals, TrafficConfig};
//! use klotski_sim::time::SimDuration;
//!
//! let stream = generate(
//!     Arrivals::Poisson { rate: 1.0 },
//!     &TrafficConfig::fixed(8, 64, 4, 7),
//! );
//! let report = serve(
//!     &KlotskiEngine::new(KlotskiConfig::full()),
//!     &ModelSpec::mixtral_8x7b(),
//!     &HardwareSpec::env1_rtx3090(),
//!     &Traffic::Open(stream),
//!     &ServeConfig {
//!         batch_size: 4,
//!         policy: AdmissionPolicy::CostAware {
//!             max_n: 4,
//!             slo_e2e: SimDuration::from_secs(120),
//!         },
//!         seed: 7,
//!     },
//! )
//! .unwrap();
//! assert_eq!(report.outcomes.len(), 8);
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod cluster;
pub mod continuous;
pub mod dispatcher;
pub mod metrics;
pub mod server;
pub mod traffic;

#[cfg(test)]
mod proptests {
    use crate::admission::AdmissionPolicy;
    use crate::continuous::{serve_continuous, ClassAssign, ContinuousConfig};
    use crate::dispatcher::{serve_scaled, DispatchPolicy, ScaleConfig};
    use crate::server::{serve, ServeConfig, Traffic};
    use crate::traffic::{generate, Arrivals, LengthDist, TrafficConfig};
    use klotski_core::engine::{KlotskiConfig, KlotskiEngine};
    use klotski_model::hardware::HardwareSpec;
    use klotski_model::spec::ModelSpec;
    use klotski_model::workload::Workload;
    use klotski_sim::time::SimDuration;
    use proptest::prelude::*;

    fn policy_for(selector: u8, n: u32) -> AdmissionPolicy {
        match selector % 3 {
            0 => AdmissionPolicy::FixedN { n },
            1 => AdmissionPolicy::Deadline {
                n,
                deadline: SimDuration::from_secs(2),
            },
            _ => AdmissionPolicy::CostAware {
                max_n: n,
                slo_e2e: SimDuration::from_secs(120),
            },
        }
    }

    fn dispatch_for(selector: u8) -> DispatchPolicy {
        DispatchPolicy::ALL[selector as usize % DispatchPolicy::ALL.len()]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]
        /// Admission never drops or duplicates a request, and every formed
        /// group respects the policy's batch bounds.
        #[test]
        fn admission_conserves_requests_and_bounds_groups(
            num in 1u32..40,
            bs in 1u32..6,
            n in 1u32..5,
            rate in 1u64..40,
            selector in 0u8..3,
            seed in 0u64..30,
        ) {
            let stream = generate(
                Arrivals::Poisson { rate: rate as f64 / 4.0 },
                &TrafficConfig {
                    num_requests: num,
                    prompt: LengthDist::Uniform { lo: 16, hi: 64 },
                    gen: LengthDist::Uniform { lo: 2, hi: 5 },
                    seed,
                },
            );
            let policy = policy_for(selector, n);
            let report = serve(
                &KlotskiEngine::new(KlotskiConfig::full()),
                &ModelSpec::mixtral_8x7b(),
                &HardwareSpec::env1_rtx3090(),
                &Traffic::Open(stream),
                &ServeConfig { batch_size: bs, policy, seed },
            ).expect("serve");

            // No drop, no duplicate: outcomes are exactly ids 0..num.
            let ids: Vec<u64> = report.outcomes.iter().map(|o| o.id).collect();
            prop_assert_eq!(ids, (0..num as u64).collect::<Vec<_>>());

            // Group shape bounds.
            for g in &report.groups {
                prop_assert!(g.workload.num_batches <= policy.max_batches());
                prop_assert!(g.workload.batch_size <= bs);
                prop_assert_eq!(g.n_requests as u64, g.workload.total_seqs());
            }
            // A request belongs to exactly one group.
            let grouped: u32 = report.groups.iter().map(|g| g.n_requests).sum();
            prop_assert_eq!(grouped, num);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// With a fixed-shape stream, the serving loop's per-request token
        /// counts add up to exactly the offline Workload totals for the
        /// same request set.
        #[test]
        fn token_counts_match_offline_workload(
            k in 1u32..5,
            bs in 1u32..5,
            n in 1u32..4,
            selector in 0u8..3,
            seed in 0u64..30,
        ) {
            let num = k * bs; // a whole number of batches
            let stream = generate(
                Arrivals::Poisson { rate: 2.0 },
                &TrafficConfig::fixed(num, 32, 3, seed),
            );
            let report = serve(
                &KlotskiEngine::new(KlotskiConfig::full()),
                &ModelSpec::mixtral_8x7b(),
                &HardwareSpec::env1_rtx3090(),
                &Traffic::Open(stream),
                &ServeConfig { batch_size: bs, policy: policy_for(selector, n), seed },
            ).expect("serve");

            let offline = Workload::new(bs, k, 32, 3);
            let served: u64 = report.outcomes.iter().map(|o| o.gen_len as u64).sum();
            prop_assert_eq!(served, offline.total_generated());
            // Fixed shapes make padding a no-op: the groups' padded totals
            // also add up exactly.
            let padded: u64 = report.groups.iter()
                .map(|g| g.workload.total_generated())
                .sum();
            prop_assert_eq!(padded, offline.total_generated());
            prop_assert!(report.outcomes.iter().all(|o| !o.failed));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// The dispatcher never drops or duplicates a request across
        /// replicas, every replica's groups respect the admission bounds,
        /// and no replica's groups overlap in time.
        #[test]
        fn dispatcher_conserves_requests_across_replicas(
            num in 1u32..30,
            bs in 1u32..5,
            n in 1u32..4,
            replicas in 1u32..4,
            dsel in 0u8..3,
            asel in 0u8..3,
            seed in 0u64..20,
        ) {
            let stream = generate(
                Arrivals::Poisson { rate: 4.0 },
                &TrafficConfig {
                    num_requests: num,
                    prompt: LengthDist::Uniform { lo: 16, hi: 64 },
                    gen: LengthDist::Uniform { lo: 2, hi: 5 },
                    seed,
                },
            );
            let policy = policy_for(asel, n);
            let report = serve_scaled(
                &KlotskiEngine::new(KlotskiConfig::full()),
                &ModelSpec::mixtral_8x7b(),
                &HardwareSpec::env1_rtx3090(),
                &Traffic::Open(stream),
                &ScaleConfig {
                    serve: ServeConfig { batch_size: bs, policy, seed },
                    replicas,
                    dispatch: dispatch_for(dsel),
                },
            ).expect("serve_scaled");

            // No drop, no duplicate: outcomes are exactly ids 0..num.
            let ids: Vec<u64> = report.outcomes.iter().map(|o| o.id).collect();
            prop_assert_eq!(ids, (0..num as u64).collect::<Vec<_>>());

            // Per-replica group bounds and non-overlap.
            prop_assert_eq!(report.replicas.len(), replicas as usize);
            for rid in 0..replicas {
                let mine: Vec<_> = report.groups.iter()
                    .filter(|g| g.replica == rid)
                    .collect();
                for g in &mine {
                    prop_assert!(g.workload.num_batches <= policy.max_batches());
                    prop_assert!(g.workload.batch_size <= bs);
                    prop_assert_eq!(g.n_requests as u64, g.workload.total_seqs());
                }
                for w in mine.windows(2) {
                    prop_assert!(
                        w[1].dispatched >= w[0].dispatched + w[0].service_time,
                        "replica {} groups overlap", rid
                    );
                }
                prop_assert_eq!(
                    report.replicas[rid as usize].groups as usize,
                    mine.len()
                );
            }
            // A request belongs to exactly one group on one replica.
            let grouped: u32 = report.groups.iter().map(|g| g.n_requests).sum();
            prop_assert_eq!(grouped, num);
            let served: u32 = report.replicas.iter().map(|r| r.requests).sum();
            prop_assert_eq!(served, num);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// One replica behind any dispatch policy reproduces the
        /// single-engine serving loop byte for byte.
        #[test]
        fn single_replica_dispatch_matches_serve(
            num in 1u32..25,
            bs in 1u32..5,
            n in 1u32..4,
            dsel in 0u8..3,
            asel in 0u8..3,
            seed in 0u64..20,
        ) {
            let stream = generate(
                Arrivals::Poisson { rate: 2.0 },
                &TrafficConfig {
                    num_requests: num,
                    prompt: LengthDist::Uniform { lo: 16, hi: 64 },
                    gen: LengthDist::Uniform { lo: 2, hi: 5 },
                    seed,
                },
            );
            let engine = KlotskiEngine::new(KlotskiConfig::full());
            let spec = ModelSpec::mixtral_8x7b();
            let hw = HardwareSpec::env1_rtx3090();
            let cfg = ServeConfig { batch_size: bs, policy: policy_for(asel, n), seed };
            let single = serve(&engine, &spec, &hw, &Traffic::Open(stream.clone()), &cfg)
                .expect("serve");
            let scaled = serve_scaled(
                &engine, &spec, &hw, &Traffic::Open(stream),
                &ScaleConfig { serve: cfg, replicas: 1, dispatch: dispatch_for(dsel) },
            ).expect("serve_scaled");
            prop_assert_eq!(&single.outcomes, &scaled.outcomes);
            prop_assert_eq!(&single.groups, &scaled.groups);
            prop_assert_eq!(&single.replicas, &scaled.replicas);
            prop_assert_eq!(single.makespan, scaled.makespan);
            // Merged token totals therefore match trivially — assert the
            // stronger fact anyway, since it is the acceptance contract.
            let tokens = |r: &crate::server::ServeReport| -> u64 {
                r.outcomes.iter().map(|o| o.gen_len as u64).sum()
            };
            prop_assert_eq!(tokens(&single), tokens(&scaled));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// Continuous mode with refill disabled is the run-to-completion
        /// loop byte for byte — the same degenerate-case contract as the
        /// R=1 dispatcher and static-fleet cluster pins. `prefill_chunk`
        /// and the class split must be inert in this mode.
        #[test]
        fn continuous_without_refill_matches_serve(
            num in 1u32..25,
            bs in 1u32..5,
            n in 1u32..4,
            asel in 0u8..3,
            chunk in 0u32..48,
            chat_pct in 0u32..101,
            seed in 0u64..20,
        ) {
            let stream = generate(
                Arrivals::Poisson { rate: 2.0 },
                &TrafficConfig {
                    num_requests: num,
                    prompt: LengthDist::Uniform { lo: 16, hi: 64 },
                    gen: LengthDist::Uniform { lo: 2, hi: 5 },
                    seed,
                },
            );
            let engine = KlotskiEngine::new(KlotskiConfig::full());
            let spec = ModelSpec::mixtral_8x7b();
            let hw = HardwareSpec::env1_rtx3090();
            let cfg = ServeConfig { batch_size: bs, policy: policy_for(asel, n), seed };
            let single = serve(&engine, &spec, &hw, &Traffic::Open(stream.clone()), &cfg)
                .expect("serve");
            let cont = serve_continuous(
                &engine, &spec, &hw, &Traffic::Open(stream),
                &ContinuousConfig {
                    serve: cfg,
                    refill: false,
                    prefill_chunk: chunk,
                    classes: ClassAssign::ChatShare { chat_pct },
                },
            ).expect("serve_continuous");
            prop_assert_eq!(&single.outcomes, &cont.serve.outcomes);
            prop_assert_eq!(&single.groups, &cont.serve.groups);
            prop_assert_eq!(&single.replicas, &cont.serve.replicas);
            prop_assert_eq!(single.makespan, cont.serve.makespan);
            prop_assert_eq!(cont.preemptions, 0);
            prop_assert_eq!(cont.refills, 0);
            prop_assert_eq!(cont.prefill_chunks, 0);
        }
    }
}
