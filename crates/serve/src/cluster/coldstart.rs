//! Replica cold-start cost: how long a freshly provisioned replica takes
//! before it can serve.
//!
//! The interesting model is [`ColdStartModel::WeightStreaming`]: a replica
//! is not usable until its weights have streamed onto the device through
//! the *same* calibrated transfer model the engine's prefetcher uses
//! ([`CostModel::h2d_time`] and friends), so cold-start time scales with
//! the model's actual byte footprint and the hardware's H2D bandwidth —
//! not a free constant. [`Prewarmed`](ColdStartModel::Prewarmed) and
//! [`Fixed`](ColdStartModel::Fixed) are the limiting cases baselines and
//! tests need.

use klotski_model::cost::CostModel;
use klotski_model::spec::ModelSpec;
use klotski_sim::time::SimDuration;

/// How long a newly spawned replica warms up before it is routable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ColdStartModel {
    /// Replicas are instantly usable (the classic simulator shortcut —
    /// useful as an upper-bound baseline and for byte-identity tests).
    Prewarmed,
    /// A flat provisioning delay, independent of the model being loaded.
    Fixed(SimDuration),
    /// Weights stream in through the calibrated cost model: a flat
    /// `provision` overhead (container/process start) plus the H2D time of
    /// the embeddings, every layer's attention weights, every MoE layer's
    /// gate, and `resident_experts_per_layer` experts per MoE layer — the
    /// working set a Klotski replica keeps resident, smaller than the full
    /// expert complement because cold experts stream on demand.
    WeightStreaming {
        /// Flat provisioning overhead before any transfer starts.
        provision: SimDuration,
        /// Experts per MoE layer pre-loaded during warm-up (clamped to the
        /// model's expert count).
        resident_experts_per_layer: u32,
    },
}

impl ColdStartModel {
    /// The warm-up delay between spawning a replica and it becoming
    /// routable.
    pub fn warmup(&self, cost: &CostModel, spec: &ModelSpec) -> SimDuration {
        match *self {
            ColdStartModel::Prewarmed => SimDuration::ZERO,
            ColdStartModel::Fixed(d) => d,
            ColdStartModel::WeightStreaming {
                provision,
                resident_experts_per_layer,
            } => {
                let resident = resident_experts_per_layer.min(spec.n_experts) as u64;
                let moe_layers = spec.n_moe_layers() as u64;
                provision
                    + cost.h2d_time(spec.embed_bytes())
                    + cost.attn_h2d_time(1.0) * spec.n_layers as u64
                    + (cost.gate_h2d_time() + cost.expert_h2d_time(1.0) * resident) * moe_layers
            }
        }
    }

    /// Short stable name for tables and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            ColdStartModel::Prewarmed => "prewarmed",
            ColdStartModel::Fixed(_) => "fixed",
            ColdStartModel::WeightStreaming { .. } => "weight_streaming",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_model::hardware::HardwareSpec;

    fn cost() -> (CostModel, ModelSpec) {
        let spec = ModelSpec::mixtral_8x7b();
        (
            CostModel::new(spec.clone(), HardwareSpec::env1_rtx3090()),
            spec,
        )
    }

    #[test]
    fn prewarmed_is_free_and_fixed_is_flat() {
        let (cost, spec) = cost();
        assert!(ColdStartModel::Prewarmed.warmup(&cost, &spec).is_zero());
        let d = SimDuration::from_secs(7);
        assert_eq!(ColdStartModel::Fixed(d).warmup(&cost, &spec), d);
    }

    #[test]
    fn weight_streaming_scales_with_resident_experts() {
        let (cost, spec) = cost();
        let warm = |resident| {
            ColdStartModel::WeightStreaming {
                provision: SimDuration::from_secs(1),
                resident_experts_per_layer: resident,
            }
            .warmup(&cost, &spec)
        };
        // More resident experts ⇒ strictly longer warm-up, by exactly the
        // per-expert transfer per MoE layer.
        let delta = warm(3).saturating_sub(warm(2));
        let expected = cost.expert_h2d_time(1.0) * spec.n_moe_layers() as u64;
        assert_eq!(delta, expected);
        // Clamped at the model's expert count.
        assert_eq!(warm(spec.n_experts), warm(spec.n_experts + 50));
        // And the floor is the dense skeleton: embeddings + attention +
        // gates, beyond the flat provision time.
        assert!(warm(0) > SimDuration::from_secs(1));
    }

    #[test]
    fn mixtral_warmup_is_seconds_not_hours() {
        // Sanity anchor: streaming a Mixtral-8×7B working set over the
        // RTX-3090 link must land in single-digit-to-tens of seconds —
        // comparable to real weight-loading, far below a diurnal period.
        let (cost, spec) = cost();
        let w = ColdStartModel::WeightStreaming {
            provision: SimDuration::from_secs(2),
            resident_experts_per_layer: 2,
        }
        .warmup(&cost, &spec);
        let secs = w.as_secs_f64();
        assert!((2.0..120.0).contains(&secs), "warmup = {secs} s");
    }
}
