//! Pluggable autoscaling policies for the cluster loop.
//!
//! At every evaluation tick the cluster builds a [`FleetObservation`] —
//! fleet composition, queue backlog, and the SLO attainment of requests
//! that finished since the previous tick — and asks the policy for a
//! desired replica count. The loop clamps the answer into
//! `[floor, cap]` and spawns (paying the cold start) or drains/cancels to
//! match. Policies are deliberately memoryless beyond their own fields:
//! everything they may react to is in the observation, which keeps runs
//! byte-deterministic.

use klotski_sim::time::SimTime;

/// What an [`AutoscalePolicy`] sees at an evaluation tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetObservation {
    /// The tick instant.
    pub now: SimTime,
    /// Replicas currently routable.
    pub warm: u32,
    /// Replicas still paying their cold start.
    pub warming: u32,
    /// Replicas draining toward retirement (still serving their queues,
    /// no longer routable).
    pub draining: u32,
    /// Requests queued on warm replicas.
    pub queued_requests: u32,
    /// Token backlog (queued + prorated in-flight) across warm replicas.
    pub backlog_tokens: u64,
    /// Requests that finished since the previous tick.
    pub window_finished: u32,
    /// Of those, how many met the SLO.
    pub window_slo_met: u32,
    /// Replicas lost to injected crashes so far (cumulative). Crashed
    /// capacity already vanished from `warm`/`warming`, so reactive
    /// policies replace it through their normal signals; this counter
    /// lets failure-aware policies distinguish "we scaled down" from
    /// "we lost a replica".
    pub crashed: u32,
    /// Requests shed at admission since the previous tick — the pressure
    /// signal a degradation policy exports to the autoscaler.
    pub window_shed: u32,
}

impl FleetObservation {
    /// Replicas the fleet is paying for that will (eventually) serve:
    /// warm plus warming. Draining replicas are on their way out and do
    /// not count toward the target.
    pub fn provisioned(&self) -> u32 {
        self.warm + self.warming
    }

    /// SLO attainment over the window, `1.0` when nothing finished (an
    /// idle window is not evidence of trouble).
    pub fn attainment(&self) -> f64 {
        if self.window_finished == 0 {
            1.0
        } else {
            f64::from(self.window_slo_met) / f64::from(self.window_finished)
        }
    }
}

/// Decides the fleet size at every evaluation tick.
///
/// `desired` returns the target provisioned count (warm + warming); the
/// cluster loop clamps it into `[floor().max(1), cap()]`, so policies can
/// return raw signals without worrying about bounds.
pub trait AutoscalePolicy {
    /// Short stable name for tables and JSON output.
    fn name(&self) -> &'static str;

    /// Minimum provisioned replicas (clamped to at least 1 by the loop).
    fn floor(&self) -> u32;

    /// Maximum provisioned replicas.
    fn cap(&self) -> u32;

    /// Target provisioned count given the current observation.
    fn desired(&mut self, obs: &FleetObservation) -> u32;

    /// Fleet size at t = 0, warm from the start (the floor by default).
    fn initial(&self) -> u32 {
        self.floor()
    }
}

/// A fixed-size fleet: the autoscaling no-op. With `replicas = R` and a
/// [`Prewarmed`](super::ColdStartModel::Prewarmed) cold start the cluster
/// loop reproduces [`serve_scaled`](crate::dispatcher::serve_scaled) byte
/// for byte — the equivalence the crate's proptests pin.
#[derive(Debug, Clone, Copy)]
pub struct StaticFleet {
    /// The fleet size, start to finish.
    pub replicas: u32,
}

impl AutoscalePolicy for StaticFleet {
    fn name(&self) -> &'static str {
        "static"
    }

    fn floor(&self) -> u32 {
        self.replicas
    }

    fn cap(&self) -> u32 {
        self.replicas
    }

    fn desired(&mut self, _obs: &FleetObservation) -> u32 {
        self.replicas
    }
}

/// Scale on queue pressure: grow when the token backlog per provisioned
/// replica exceeds `high`, shrink one replica after `patience` consecutive
/// calm ticks below `low`. The asymmetry (instant growth, damped shrink)
/// is the classic reactive-autoscaler shape: queues build in seconds but
/// confidence that load is gone takes sustained quiet.
#[derive(Debug, Clone, Copy)]
pub struct QueueDepthReactive {
    /// Minimum provisioned replicas.
    pub floor: u32,
    /// Maximum provisioned replicas.
    pub cap: u32,
    /// Backlog tokens per provisioned replica that trigger growth.
    pub high: u64,
    /// Backlog tokens per provisioned replica considered calm.
    pub low: u64,
    /// Consecutive calm ticks before shrinking by one.
    pub patience: u32,
    calm: u32,
}

impl QueueDepthReactive {
    /// A reactive policy scaling between `floor` and `cap` on per-replica
    /// backlog thresholds `high`/`low` (tokens), shrinking only after
    /// `patience` calm ticks.
    pub fn new(floor: u32, cap: u32, high: u64, low: u64, patience: u32) -> Self {
        assert!(high > 0, "high watermark must be positive");
        assert!(low <= high, "low watermark must not exceed high");
        QueueDepthReactive {
            floor,
            cap,
            high,
            low,
            patience,
            calm: 0,
        }
    }
}

impl AutoscalePolicy for QueueDepthReactive {
    fn name(&self) -> &'static str {
        "queue_reactive"
    }

    fn floor(&self) -> u32 {
        self.floor
    }

    fn cap(&self) -> u32 {
        self.cap
    }

    fn desired(&mut self, obs: &FleetObservation) -> u32 {
        let provisioned = obs.provisioned().max(1);
        let per_replica = obs.backlog_tokens / u64::from(provisioned);
        if per_replica >= self.high {
            self.calm = 0;
            // Proportional growth: enough replicas that the backlog would
            // sit at the high watermark, at least one more than now.
            let target = obs.backlog_tokens.div_ceil(self.high);
            u32::try_from(target)
                .unwrap_or(u32::MAX)
                .max(provisioned + 1)
        } else if per_replica <= self.low {
            self.calm += 1;
            if self.calm >= self.patience {
                self.calm = 0;
                provisioned.saturating_sub(1)
            } else {
                provisioned
            }
        } else {
            self.calm = 0;
            provisioned
        }
    }
}

/// Scale on the SLO itself: grow when windowed attainment drops below
/// `target`, shrink one replica after `patience` consecutive ticks at
/// full attainment with a calm backlog. Reacts to what operators actually
/// promise — latency — at the price of reacting *after* violations start,
/// one tick behind the queue-depth signal.
#[derive(Debug, Clone, Copy)]
pub struct SloReactive {
    /// Minimum provisioned replicas.
    pub floor: u32,
    /// Maximum provisioned replicas.
    pub cap: u32,
    /// Minimum acceptable windowed SLO attainment (e.g. `0.95`).
    pub target: f64,
    /// Consecutive fully-attaining ticks before shrinking by one.
    pub patience: u32,
    calm: u32,
}

impl SloReactive {
    /// An SLO-attainment policy scaling between `floor` and `cap` around
    /// attainment `target`, shrinking only after `patience` clean ticks.
    pub fn new(floor: u32, cap: u32, target: f64, patience: u32) -> Self {
        assert!(
            (0.0..=1.0).contains(&target),
            "attainment target must be in [0, 1]"
        );
        SloReactive {
            floor,
            cap,
            target,
            patience,
            calm: 0,
        }
    }
}

impl AutoscalePolicy for SloReactive {
    fn name(&self) -> &'static str {
        "slo_reactive"
    }

    fn floor(&self) -> u32 {
        self.floor
    }

    fn cap(&self) -> u32 {
        self.cap
    }

    fn desired(&mut self, obs: &FleetObservation) -> u32 {
        let provisioned = obs.provisioned().max(1);
        if obs.window_finished > 0 && obs.attainment() < self.target {
            self.calm = 0;
            // Grow proportionally to how far attainment missed: a bad miss
            // (half the window violating) adds replicas faster than a
            // marginal one.
            let miss = (self.target - obs.attainment()).max(0.0);
            let step = 1 + (miss * f64::from(provisioned)).floor() as u32;
            provisioned + step
        } else if obs.attainment() >= 1.0 && obs.queued_requests == 0 {
            self.calm += 1;
            if self.calm >= self.patience {
                self.calm = 0;
                provisioned.saturating_sub(1)
            } else {
                provisioned
            }
        } else {
            self.calm = 0;
            provisioned
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(warm: u32, backlog: u64, finished: u32, met: u32) -> FleetObservation {
        FleetObservation {
            now: SimTime::ZERO,
            warm,
            warming: 0,
            draining: 0,
            queued_requests: if backlog > 0 { 1 } else { 0 },
            backlog_tokens: backlog,
            window_finished: finished,
            window_slo_met: met,
            crashed: 0,
            window_shed: 0,
        }
    }

    #[test]
    fn static_fleet_never_moves() {
        let mut p = StaticFleet { replicas: 3 };
        assert_eq!(p.desired(&obs(3, 1_000_000, 10, 0)), 3);
        assert_eq!(p.desired(&obs(3, 0, 0, 0)), 3);
        assert_eq!((p.floor(), p.cap(), p.initial()), (3, 3, 3));
    }

    #[test]
    fn queue_reactive_grows_proportionally_and_shrinks_with_patience() {
        let mut p = QueueDepthReactive::new(1, 8, 1000, 100, 2);
        // 2 replicas, 5000 backlog tokens ⇒ 2500/replica ≫ high ⇒ grow to
        // ceil(5000/1000) = 5.
        assert_eq!(p.desired(&obs(2, 5000, 0, 0)), 5);
        // Calm ticks: hold, hold, then shrink on the second calm tick.
        assert_eq!(p.desired(&obs(5, 0, 0, 0)), 5);
        assert_eq!(p.desired(&obs(5, 0, 0, 0)), 4);
        // A busy tick resets patience.
        assert_eq!(p.desired(&obs(4, 500 * 4, 0, 0)), 4); // between low and high
        assert_eq!(p.desired(&obs(4, 0, 0, 0)), 4);
        assert_eq!(p.desired(&obs(4, 0, 0, 0)), 3);
    }

    #[test]
    fn slo_reactive_reacts_to_attainment() {
        let mut p = SloReactive::new(1, 8, 0.9, 2);
        // 10 finished, 4 violations: attainment 0.6 < 0.9 ⇒ grow; miss 0.3
        // over 2 provisioned ⇒ step 1.
        assert_eq!(p.desired(&obs(2, 0, 10, 6)), 3);
        // Empty window is not evidence: hold (and start calm counting with
        // an empty queue).
        assert_eq!(p.desired(&obs(3, 0, 0, 0)), 3);
        assert_eq!(p.desired(&obs(3, 0, 0, 0)), 2);
        // Full attainment but queued work: hold, reset calm.
        let busy = FleetObservation {
            queued_requests: 3,
            ..obs(2, 0, 5, 5)
        };
        assert_eq!(p.desired(&busy), 2);
    }

    #[test]
    #[should_panic(expected = "low watermark")]
    fn inverted_watermarks_rejected() {
        let _ = QueueDepthReactive::new(1, 4, 10, 20, 1);
    }
}
