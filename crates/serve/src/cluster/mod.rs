//! Cluster-scale serving: a dynamic fleet under an autoscaling policy.
//!
//! The static dispatcher ([`serve_scaled`](crate::dispatcher::serve_scaled))
//! answers "how does a fleet of `R` replicas behave?"; this module answers
//! the operator's question one level up: *how many replicas should exist,
//! when, and what does elasticity cost?* A [`serve_cluster`] run drives the
//! same per-replica serving state the whole crate shares ([`Replica`]),
//! but the fleet itself changes over time:
//!
//! * an [`AutoscalePolicy`] is evaluated every `tick` against a
//!   [`FleetObservation`] (fleet composition, token backlog, windowed SLO
//!   attainment) and returns a desired replica count;
//! * scale-up spawns replicas that pay a [`ColdStartModel`] warm-up —
//!   derived from the calibrated [`CostModel`](klotski_model::cost::CostModel)
//!   transfer times and the model's real weight bytes — before they are
//!   routable;
//! * scale-down cancels still-warming replicas first, then drains warm
//!   ones newest-first: a draining replica takes no new requests but
//!   flushes its queue, then retires.
//!
//! Arrivals route through the same [`DispatchPolicy`] axis as the static
//! dispatcher, restricted to warm replicas. Every event — arrival,
//! formation, warm-up completion, autoscaler tick — executes in global
//! simulated-time order with fixed tie rules, so runs are byte-
//! deterministic; with a [`StaticFleet`] policy and a
//! [`Prewarmed`](ColdStartModel::Prewarmed) cold start the loop reproduces
//! [`serve_scaled`](crate::dispatcher::serve_scaled) byte for byte (the
//! crate's proptests pin this).
//!
//! The cost of elasticity shows up in
//! [`ServeReport::replica_hours`](crate::server::ServeReport::replica_hours):
//! replica lifetimes span birth to retirement, so an autoscaled fleet that
//! tracks a diurnal load pays for far fewer replica-hours than a
//! peak-sized static fleet — the trade the `serve_cluster` bench sweeps.

pub mod autoscale;
pub mod coldstart;

pub use autoscale::{
    AutoscalePolicy, FleetObservation, QueueDepthReactive, SloReactive, StaticFleet,
};
pub use coldstart::ColdStartModel;

use klotski_core::scenario::{Engine, EngineError};
use klotski_model::hardware::HardwareSpec;
use klotski_model::spec::ModelSpec;
use klotski_sim::event::EventQueue;
use klotski_sim::time::{SimDuration, SimTime};

use crate::dispatcher::{route_pick, DispatchPolicy, RouterState};
use crate::metrics::SloSpec;
use crate::server::{
    formation_precedes, ArrivalSource, EngineCtx, Replica, ServeConfig, ServeReport, Traffic,
};

/// Cluster serving configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Per-replica serving configuration (batch size, admission policy,
    /// seed).
    pub serve: ServeConfig,
    /// How arrivals are routed over the *warm* fleet.
    pub dispatch: DispatchPolicy,
    /// What a freshly spawned replica pays before it is routable.
    pub coldstart: ColdStartModel,
    /// Autoscaler evaluation period (> 0).
    pub tick: SimDuration,
    /// The SLO that windowed attainment (and the report's attainment
    /// metrics) are measured against.
    pub slo: SloSpec,
}

/// One autoscaling decision that changed the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEvent {
    /// The tick instant.
    pub at: SimTime,
    /// Provisioned replicas (warm + warming) before the decision.
    pub from: u32,
    /// Provisioned replicas after (clamped into `[floor, cap]`).
    pub to: u32,
    /// Warm replicas at decision time.
    pub warm: u32,
    /// Token backlog across warm replicas at decision time.
    pub backlog_tokens: u64,
}

/// Everything a cluster run produced.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// The merged serving report (outcomes, groups, per-replica lifetimes).
    pub serve: ServeReport,
    /// Fleet-size changes, in tick order (empty for a static fleet).
    pub scale_events: Vec<ScaleEvent>,
    /// Fleet size at t = 0 (warm from the start).
    pub initial_replicas: u32,
    /// Peak provisioned (warm + warming) count over the run.
    pub peak_provisioned: u32,
    /// Total replicas that ever existed (initial + spawned).
    pub spawned_total: u32,
    /// The cold-start delay every mid-run spawn paid.
    pub warmup: SimDuration,
}

/// A fleet slot's lifecycle. Slots are append-only and replica ids are
/// never reused, so scenario seed streams stay stable across scale events.
enum SlotState {
    /// Paying the cold start; not routable. Cancelled (never-warmed)
    /// replicas retire straight from this state.
    Warming { ready_at: SimTime },
    /// Routable.
    Warm,
    /// No longer routable; flushes its queue as if at end-of-stream, then
    /// retires.
    Draining { since: SimTime },
    /// Done; excluded from every fleet computation.
    Retired,
}

struct Slot {
    rep: Replica,
    state: SlotState,
}

/// Retires a draining slot once its queue is flushed; the retirement
/// instant is drain-mark or engine-free, whichever is later, independent
/// of when the sweep runs.
fn sweep_slot(s: &mut Slot) {
    if let SlotState::Draining { since } = s.state {
        if s.rep.queue_len() == 0 {
            s.rep.retire(since.max(s.rep.t_free()));
            s.state = SlotState::Retired;
        }
    }
}

/// Snapshots the fleet for the autoscaler.
fn observe(now: SimTime, fleet: &[Slot], window: (u32, u32)) -> FleetObservation {
    let (mut warm, mut warming, mut draining) = (0, 0, 0);
    let mut queued_requests = 0u32;
    let mut backlog_tokens = 0u64;
    for s in fleet {
        match s.state {
            SlotState::Warm => {
                warm += 1;
                queued_requests += s.rep.queue_len() as u32;
                backlog_tokens += s.rep.backlog_tokens(now);
            }
            SlotState::Warming { .. } => warming += 1,
            SlotState::Draining { .. } => draining += 1,
            SlotState::Retired => {}
        }
    }
    FleetObservation {
        now,
        warm,
        warming,
        draining,
        queued_requests,
        backlog_tokens,
        window_finished: window.0,
        window_slo_met: window.1,
    }
}

/// Serves `traffic` over a dynamic fleet sized by `policy`.
///
/// The initial fleet ([`AutoscalePolicy::initial`], the floor by default)
/// is warm at t = 0 — the steady-state fleet an operator would already be
/// running; only mid-run spawns pay `cfg.coldstart`. Scale-down never
/// aborts work: draining replicas flush their queues before retiring, so
/// every request is served exactly once regardless of scale events.
///
/// # Errors
///
/// Returns [`EngineError`] if the engine rejects a scenario as invalid
/// (configuration errors — OOM is a per-group *result*, not an error).
///
/// # Panics
///
/// Panics if `cfg.tick` is zero, the policy's bounds are inverted
/// (`cap < floor.max(1)`), plus the same configuration panics as
/// [`serve`](crate::server::serve).
pub fn serve_cluster(
    engine: &dyn Engine,
    spec: &ModelSpec,
    hw: &HardwareSpec,
    traffic: &Traffic,
    cfg: &ClusterConfig,
    policy: &mut dyn AutoscalePolicy,
) -> Result<ClusterReport, EngineError> {
    assert!(cfg.serve.batch_size > 0, "batch_size must be positive");
    assert!(
        cfg.serve.policy.max_batches() > 0,
        "group size must be positive"
    );
    assert!(!cfg.tick.is_zero(), "autoscaler tick must be positive");
    let floor = policy.floor().max(1);
    let cap = policy.cap();
    assert!(cap >= floor, "autoscaler cap ({cap}) below floor ({floor})");
    if let Traffic::Closed {
        clients, cfg: tc, ..
    } = traffic
    {
        assert!(
            *clients > 0 || tc.num_requests == 0,
            "closed-loop traffic needs at least one client"
        );
    }

    let ctx = EngineCtx::new(engine, spec, hw, &cfg.serve);
    let warmup = cfg.coldstart.warmup(ctx.cost(), ctx.spec());
    let mut source = ArrivalSource::new(traffic);
    let initial = policy.initial().clamp(floor, cap);
    let mut fleet: Vec<Slot> = (0..initial)
        .map(|id| Slot {
            rep: Replica::new(id, cfg.serve.seed),
            state: SlotState::Warm,
        })
        .collect();
    let mut rr = RouterState::new();
    let mut warmups: EventQueue<usize> = EventQueue::new();
    // Per-request SLO verdicts keyed by finish time, drained into the
    // policy's attainment window at each tick.
    let mut finishes: EventQueue<bool> = EventQueue::new();
    let mut window = (0u32, 0u32);
    let mut next_tick = SimTime::ZERO + cfg.tick;
    let mut outcomes = Vec::new();
    let mut groups = Vec::new();
    let mut last_arrival = SimTime::ZERO;
    let mut scale_events: Vec<ScaleEvent> = Vec::new();
    let mut peak = initial;

    loop {
        let next_arrival = source.peek();
        let eos = next_arrival.is_none();
        // Warm replicas form groups under the admission policy; draining
        // replicas flush as if at end-of-stream (no more work is coming
        // *to them*), never backdated before the drain mark.
        let next_form = fleet
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                match s.state {
                    SlotState::Warm => s.rep.next_form_time(&cfg.serve, eos, last_arrival),
                    SlotState::Draining { since } => {
                        s.rep
                            .next_form_time(&cfg.serve, true, last_arrival.max(since))
                    }
                    _ => None,
                }
                .map(|t| (t, i))
            })
            .min();
        let Some(form_first) = formation_precedes(next_arrival, next_form.map(|(t, _)| t)) else {
            break;
        };
        let real_t = if form_first {
            next_form.expect("formation event").0
        } else {
            next_arrival.expect("arrival event")
        };

        // Control events run before the serving event at the same instant:
        // warm-up completions first (so a tick at the same tick sees the
        // replica warm), then the autoscaler tick (so it sees the fleet
        // *before* the arrival or formation lands).
        if let Some(tw) = warmups.peek_time() {
            if tw <= next_tick && tw <= real_t {
                let (t, i) = warmups.pop().expect("peeked warm-up");
                if let SlotState::Warming { ready_at } = fleet[i].state {
                    debug_assert_eq!(ready_at, t, "warm-up event drifted");
                    fleet[i].state = SlotState::Warm;
                }
                // A cancelled (retired-while-warming) slot just drops its
                // stale warm-up event.
                continue;
            }
        }
        if next_tick <= real_t {
            let now = next_tick;
            while finishes.peek_time().is_some_and(|t| t <= now) {
                let (_, met) = finishes.pop().expect("peeked finish");
                window.0 += 1;
                window.1 += u32::from(met);
            }
            for s in fleet.iter_mut() {
                sweep_slot(s);
            }
            let obs = observe(now, &fleet, window);
            let provisioned = obs.provisioned();
            let desired = policy.desired(&obs).clamp(floor, cap);
            if desired > provisioned {
                let mut grow = desired - provisioned;
                // Drain cancellation first: a scale-up landing while
                // replicas are still draining reclaims them — the engine
                // never unloaded, so flipping back to Warm skips the cold
                // start entirely. Newest-first, mirroring the drain order;
                // retired slots are never resurrected (ids and seed
                // streams stay append-only).
                for s in fleet.iter_mut().rev() {
                    if grow == 0 {
                        break;
                    }
                    if matches!(s.state, SlotState::Draining { .. }) {
                        s.state = SlotState::Warm;
                        grow -= 1;
                    }
                }
                for _ in 0..grow {
                    let i = fleet.len();
                    let rep = Replica::new_at(i as u32, cfg.serve.seed, now);
                    if warmup.is_zero() {
                        fleet.push(Slot {
                            rep,
                            state: SlotState::Warm,
                        });
                    } else {
                        let ready_at = now + warmup;
                        warmups.push(ready_at, i);
                        fleet.push(Slot {
                            rep,
                            state: SlotState::Warming { ready_at },
                        });
                    }
                }
            } else if desired < provisioned {
                let mut shrink = provisioned - desired;
                // Cancel replicas still paying their cold start first (no
                // work is lost, only the partial warm-up spend), newest
                // first; then drain warm replicas newest-first. Because
                // warming is exhausted before any warm replica drains and
                // `desired >= 1`, at least one warm replica always remains.
                for s in fleet.iter_mut().rev() {
                    if shrink == 0 {
                        break;
                    }
                    if matches!(s.state, SlotState::Warming { .. }) {
                        s.rep.retire(now);
                        s.state = SlotState::Retired;
                        shrink -= 1;
                    }
                }
                for s in fleet.iter_mut().rev() {
                    if shrink == 0 {
                        break;
                    }
                    if matches!(s.state, SlotState::Warm) {
                        s.state = SlotState::Draining { since: now };
                        sweep_slot(s);
                        shrink -= 1;
                    }
                }
            }
            if desired != provisioned {
                scale_events.push(ScaleEvent {
                    at: now,
                    from: provisioned,
                    to: desired,
                    warm: obs.warm,
                    backlog_tokens: obs.backlog_tokens,
                });
                peak = peak.max(desired);
            }
            window = (0, 0);
            next_tick = now + cfg.tick;
            continue;
        }

        if form_first {
            let (t_form, i) = next_form.expect("formation event");
            let slot_eos = matches!(fleet[i].state, SlotState::Draining { .. }) || eos;
            let n_before = outcomes.len();
            let done =
                fleet[i]
                    .rep
                    .run_group(t_form, slot_eos, &ctx, &mut outcomes, &mut groups)?;
            for c in &done {
                source.on_complete(c.finished, c.failed);
            }
            for o in &outcomes[n_before..] {
                let met = !o.failed && o.ttft() <= cfg.slo.ttft && o.tpot() <= cfg.slo.tpot;
                finishes.push(o.finished, met);
            }
            sweep_slot(&mut fleet[i]);
        } else {
            let r = source.pop();
            last_arrival = last_arrival.max(r.arrival);
            let candidates: Vec<(usize, &Replica)> = fleet
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s.state, SlotState::Warm))
                .map(|(i, s)| (i, &s.rep))
                .collect();
            let idx = route_pick(
                cfg.dispatch,
                &mut rr,
                &r,
                &candidates,
                ctx.cost(),
                &cfg.serve,
            );
            debug_assert!(
                matches!(fleet[idx].state, SlotState::Warm),
                "routed to a non-warm replica"
            );
            fleet[idx].rep.enqueue(r);
        }
    }

    // Replicas still draining at end-of-stream retire now (their queues
    // are flushed — the loop cannot end with queued work). Replicas still
    // *warming* at end-of-stream never served; they stay unretired and
    // their lifetime runs to the end of the run — provisioning that late
    // is a cost the policy rightly pays for.
    for s in fleet.iter_mut() {
        sweep_slot(s);
    }

    outcomes.sort_by_key(|o| o.id);
    let first_arrival = outcomes
        .iter()
        .map(|o| o.arrival)
        .min()
        .unwrap_or(SimTime::ZERO);
    let last_finish = outcomes
        .iter()
        .map(|o| o.finished)
        .max()
        .unwrap_or(SimTime::ZERO);
    let makespan = last_finish.saturating_since(first_arrival);
    let replicas = fleet
        .iter()
        .map(|s| s.rep.stats(first_arrival, last_finish))
        .collect();
    let spawned_total = fleet.len() as u32;
    Ok(ClusterReport {
        serve: ServeReport {
            engine: ctx.engine_name(),
            outcomes,
            groups,
            replicas,
            makespan,
        },
        scale_events,
        initial_replicas: initial,
        peak_provisioned: peak,
        spawned_total,
        warmup,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionPolicy;
    use crate::dispatcher::{serve_scaled, ScaleConfig};
    use crate::traffic::{generate, Arrivals, LengthDist, TrafficConfig};
    use klotski_core::report::InferenceReport;
    use klotski_core::scenario::Scenario;
    use proptest::prelude::*;

    /// Same stub as the server tests: service = 1 s + 1 s × num_batches.
    struct StubEngine;

    impl Engine for StubEngine {
        fn name(&self) -> String {
            "Stub".into()
        }

        fn run(&self, sc: &Scenario) -> Result<InferenceReport, EngineError> {
            let base = SimDuration::from_secs(1);
            let total = base + SimDuration::from_secs(1) * sc.workload.num_batches as u64;
            Ok(InferenceReport {
                engine: self.name(),
                model: sc.spec.name.clone(),
                total_time: total,
                prefill_time: base,
                decode_time: total - base,
                generated_tokens: sc.workload.total_generated(),
                gpu_busy: total,
                gpu_bubble: SimDuration::ZERO,
                peak_vram: 0,
                peak_dram: 0,
                oom: None,
                metrics: None,
            })
        }
    }

    fn mixtral() -> (ModelSpec, HardwareSpec) {
        (ModelSpec::mixtral_8x7b(), HardwareSpec::env1_rtx3090())
    }

    fn base_cfg(dispatch: DispatchPolicy, coldstart: ColdStartModel) -> ClusterConfig {
        ClusterConfig {
            serve: ServeConfig {
                batch_size: 4,
                policy: AdmissionPolicy::Deadline {
                    n: 2,
                    deadline: SimDuration::from_secs(1),
                },
                seed: 7,
            },
            dispatch,
            coldstart,
            tick: SimDuration::from_millis(500),
            slo: SloSpec::relaxed(),
        }
    }

    fn cluster(
        traffic: &Traffic,
        cfg: &ClusterConfig,
        policy: &mut dyn AutoscalePolicy,
    ) -> ClusterReport {
        let (spec, hw) = mixtral();
        serve_cluster(&StubEngine, &spec, &hw, traffic, cfg, policy).expect("serve_cluster")
    }

    /// A burst that overloads one replica: 40 requests in ~0.4 s against a
    /// ~2 s/group engine.
    fn burst() -> Vec<crate::traffic::Request> {
        generate(
            Arrivals::Poisson { rate: 100.0 },
            &TrafficConfig::fixed(40, 64, 4, 5),
        )
    }

    #[test]
    fn static_cluster_is_byte_identical_to_serve_scaled() {
        let stream = generate(
            Arrivals::Poisson { rate: 3.0 },
            &TrafficConfig {
                num_requests: 24,
                prompt: LengthDist::Uniform { lo: 16, hi: 96 },
                gen: LengthDist::Uniform { lo: 2, hi: 8 },
                seed: 13,
            },
        );
        let (spec, hw) = mixtral();
        for dispatch in DispatchPolicy::ALL {
            let cfg = base_cfg(dispatch, ColdStartModel::Prewarmed);
            let scaled = serve_scaled(
                &StubEngine,
                &spec,
                &hw,
                &Traffic::Open(stream.clone()),
                &ScaleConfig {
                    serve: cfg.serve,
                    replicas: 3,
                    dispatch,
                },
            )
            .expect("serve_scaled");
            let report = cluster(
                &Traffic::Open(stream.clone()),
                &cfg,
                &mut StaticFleet { replicas: 3 },
            );
            assert!(report.scale_events.is_empty(), "{}", dispatch.label());
            assert_eq!(
                scaled.outcomes,
                report.serve.outcomes,
                "{}",
                dispatch.label()
            );
            assert_eq!(scaled.groups, report.serve.groups, "{}", dispatch.label());
            assert_eq!(
                scaled.replicas,
                report.serve.replicas,
                "{}",
                dispatch.label()
            );
            assert_eq!(
                scaled.makespan,
                report.serve.makespan,
                "{}",
                dispatch.label()
            );
        }
    }

    #[test]
    fn burst_triggers_scale_up_then_drain_back() {
        let cfg = base_cfg(
            DispatchPolicy::JoinShortestQueue,
            ColdStartModel::Fixed(SimDuration::from_secs(1)),
        );
        let mut policy = QueueDepthReactive::new(1, 4, 300, 50, 2);
        // A burst, then a long quiet tail with two stragglers: the gap is
        // when the autoscaler sees calm ticks and shrinks the fleet.
        let mut stream = burst();
        for (i, at) in [(40u64, 120u64), (41, 150)] {
            stream.push(crate::traffic::Request {
                id: i,
                arrival: SimTime::ZERO + SimDuration::from_secs(at),
                prompt_len: 64,
                gen_len: 4,
            });
        }
        let report = cluster(&Traffic::Open(stream), &cfg, &mut policy);
        // All requests served exactly once.
        let ids: Vec<u64> = report.serve.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..42).collect::<Vec<_>>());
        // The burst forced growth beyond the floor…
        assert!(report.peak_provisioned > 1, "burst must trigger scale-up");
        assert!(!report.scale_events.is_empty());
        // …and the quiet tail drained the extras: someone retired.
        assert!(
            report.serve.replicas.iter().any(|r| r.retired.is_some()),
            "surplus replicas must retire after the burst"
        );
        // Replica-hours are strictly below peak × makespan: elasticity
        // saved fleet time.
        let peak_hours =
            report.peak_provisioned as f64 * report.serve.makespan.as_secs_f64() / 3600.0;
        assert!(report.serve.replica_hours() < peak_hours);
    }

    /// Scripted fleet sizes, one per tick (the last repeats): lets tests
    /// force exact scale transitions regardless of load signals.
    struct Scripted {
        sizes: Vec<u32>,
        i: usize,
    }

    impl AutoscalePolicy for Scripted {
        fn name(&self) -> &'static str {
            "scripted"
        }
        fn floor(&self) -> u32 {
            1
        }
        fn cap(&self) -> u32 {
            8
        }
        fn desired(&mut self, _obs: &FleetObservation) -> u32 {
            let v = self.sizes[self.i.min(self.sizes.len() - 1)];
            self.i += 1;
            v
        }
        fn initial(&self) -> u32 {
            self.sizes[0]
        }
    }

    #[test]
    fn scale_up_while_draining_reclaims_the_replica_without_a_cold_start() {
        // Cold starts cost 10 s; ticks land every 500 ms. The script holds
        // 2 replicas, drains one at tick 2 (t = 1 s), and scales back to 2
        // at tick 3 (t = 1.5 s) while the drained replica still has a deep
        // burst queue to flush — so the scale-up must reclaim it.
        let cfg = base_cfg(
            DispatchPolicy::JoinShortestQueue,
            ColdStartModel::Fixed(SimDuration::from_secs(10)),
        );
        let mut policy = Scripted {
            sizes: vec![2, 2, 1, 2],
            i: 0,
        };
        let report = cluster(&Traffic::Open(burst()), &cfg, &mut policy);
        // The cold start was skipped entirely: no third slot was ever
        // spawned (pre-reclaim behavior paid a fresh 10 s warm-up here).
        assert_eq!(
            report.spawned_total, 2,
            "scale-up over a draining replica must not spawn"
        );
        // The reclaimed replica went back to Warm instead of retiring.
        assert!(
            report.serve.replicas.iter().all(|r| r.retired.is_none()),
            "reclaimed replica must not retire"
        );
        // Both transitions were recorded…
        let moves: Vec<(u32, u32)> = report.scale_events.iter().map(|e| (e.from, e.to)).collect();
        assert!(moves.contains(&(2, 1)), "drain event missing: {moves:?}");
        assert!(moves.contains(&(1, 2)), "reclaim event missing: {moves:?}");
        // …and the reclaimed replica keeps serving well before a fresh
        // cold start could have finished (reclaim tick + 10 s warm-up).
        let reclaim_at = SimTime::ZERO + SimDuration::from_millis(1_500);
        assert!(
            report.serve.outcomes.iter().any(|o| o.replica == 1
                && o.dispatched > reclaim_at
                && o.dispatched < reclaim_at + report.warmup),
            "reclaimed replica must dispatch inside the skipped warm-up window"
        );
        // Work conservation across the whole dance.
        let ids: Vec<u64> = report.serve.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn cold_replicas_serve_nothing_before_warmup() {
        let cfg = base_cfg(
            DispatchPolicy::JoinShortestQueue,
            ColdStartModel::Fixed(SimDuration::from_secs(2)),
        );
        let mut policy = QueueDepthReactive::new(1, 4, 200, 50, 2);
        let report = cluster(&Traffic::Open(burst()), &cfg, &mut policy);
        assert!(report.spawned_total > report.initial_replicas);
        for o in &report.serve.outcomes {
            // Only mid-run spawns pay the cold start; the initial fleet is
            // warm at t = 0.
            if o.replica < report.initial_replicas {
                continue;
            }
            let rep = &report.serve.replicas[o.replica as usize];
            assert!(
                o.dispatched >= rep.spawned + report.warmup,
                "request {} dispatched at {} on replica {} warm at {}",
                o.id,
                o.dispatched,
                o.replica,
                rep.spawned + report.warmup
            );
        }
    }

    #[test]
    fn weight_streaming_coldstart_delays_first_service() {
        // Same run with a heavier cold start: the late spawns become
        // routable later, so makespan can only grow (and warm-up is the
        // calibrated weight-transfer time, seconds not nanos).
        let cfg_fast = base_cfg(DispatchPolicy::JoinShortestQueue, ColdStartModel::Prewarmed);
        let cfg_slow = base_cfg(
            DispatchPolicy::JoinShortestQueue,
            ColdStartModel::WeightStreaming {
                provision: SimDuration::from_secs(2),
                resident_experts_per_layer: 2,
            },
        );
        let fast = cluster(
            &Traffic::Open(burst()),
            &cfg_fast,
            &mut QueueDepthReactive::new(1, 4, 300, 50, 2),
        );
        let slow = cluster(
            &Traffic::Open(burst()),
            &cfg_slow,
            &mut QueueDepthReactive::new(1, 4, 300, 50, 2),
        );
        assert!(slow.warmup > SimDuration::from_secs(2));
        assert!(fast.warmup.is_zero());
        assert!(slow.serve.makespan >= fast.serve.makespan);
    }

    #[test]
    fn slo_reactive_grows_under_violations() {
        let cfg = base_cfg(DispatchPolicy::JoinShortestQueue, ColdStartModel::Prewarmed);
        // Tight SLO the overloaded single replica cannot hold.
        let cfg = ClusterConfig {
            slo: SloSpec {
                ttft: SimDuration::from_secs(3),
                tpot: SimDuration::from_secs(1),
            },
            ..cfg
        };
        let mut policy = SloReactive::new(1, 4, 0.95, 3);
        let report = cluster(&Traffic::Open(burst()), &cfg, &mut policy);
        assert!(
            report.peak_provisioned > 1,
            "SLO violations must trigger scale-up"
        );
    }

    #[test]
    fn closed_loop_traffic_works_with_scaling() {
        let cfg = base_cfg(
            DispatchPolicy::CostAware,
            ColdStartModel::Fixed(SimDuration::from_millis(500)),
        );
        let traffic = Traffic::Closed {
            clients: 6,
            think: SimDuration::from_millis(200),
            cfg: TrafficConfig::fixed(18, 64, 4, 5),
        };
        let report = cluster(
            &traffic,
            &cfg,
            &mut QueueDepthReactive::new(1, 3, 200, 50, 2),
        );
        let ids: Vec<u64> = report.serve.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..18).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn inverted_bounds_rejected() {
        struct Bad;
        impl AutoscalePolicy for Bad {
            fn name(&self) -> &'static str {
                "bad"
            }
            fn floor(&self) -> u32 {
                4
            }
            fn cap(&self) -> u32 {
                2
            }
            fn desired(&mut self, _obs: &FleetObservation) -> u32 {
                4
            }
        }
        let (spec, hw) = mixtral();
        let cfg = base_cfg(DispatchPolicy::RoundRobin, ColdStartModel::Prewarmed);
        let _ = serve_cluster(
            &StubEngine,
            &spec,
            &hw,
            &Traffic::Open(Vec::new()),
            &cfg,
            &mut Bad,
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// A static-policy cluster with no cold start is byte-identical to
        /// the static dispatcher for every fleet size, dispatch policy,
        /// and traffic seed — the cluster loop is a strict generalization.
        #[test]
        fn static_cluster_matches_serve_scaled(
            replicas in 1u32..4,
            dispatch_idx in 0usize..3,
            seed in 0u64..500,
            rate in 1.0f64..8.0,
            tick_ms in 100u64..3_000,
        ) {
            let dispatch = DispatchPolicy::ALL[dispatch_idx];
            let stream = generate(
                Arrivals::Poisson { rate },
                &TrafficConfig {
                    num_requests: 16,
                    prompt: LengthDist::Uniform { lo: 16, hi: 96 },
                    gen: LengthDist::Uniform { lo: 2, hi: 8 },
                    seed,
                },
            );
            let (spec, hw) = mixtral();
            let mut cfg = base_cfg(dispatch, ColdStartModel::Prewarmed);
            cfg.tick = SimDuration::from_millis(tick_ms);
            let scaled = serve_scaled(
                &StubEngine, &spec, &hw,
                &Traffic::Open(stream.clone()),
                &ScaleConfig { serve: cfg.serve, replicas, dispatch },
            ).expect("serve_scaled");
            let (spec2, hw2) = mixtral();
            let report = serve_cluster(
                &StubEngine, &spec2, &hw2,
                &Traffic::Open(stream),
                &cfg,
                &mut StaticFleet { replicas },
            ).expect("serve_cluster");
            prop_assert!(report.scale_events.is_empty());
            prop_assert_eq!(scaled.outcomes, report.serve.outcomes);
            prop_assert_eq!(scaled.groups, report.serve.groups);
            prop_assert_eq!(scaled.replicas, report.serve.replicas);
            prop_assert_eq!(scaled.makespan, report.serve.makespan);
        }

        /// Autoscaled runs preserve the request stream exactly (no drops,
        /// no duplicates), keep the fleet inside [floor, cap], never
        /// dispatch to a replica before its warm-up completes, and are
        /// fully deterministic.
        #[test]
        fn autoscaled_runs_keep_invariants(
            seed in 0u64..500,
            rate in 20.0f64..120.0,
            n in 10u32..40,
            floor in 1u32..3,
            extra in 1u32..4,
            coldstart_ms in 0u64..2_000,
        ) {
            let cap = floor + extra;
            let stream = generate(
                Arrivals::Poisson { rate },
                &TrafficConfig {
                    num_requests: n,
                    prompt: LengthDist::Uniform { lo: 16, hi: 96 },
                    gen: LengthDist::Uniform { lo: 2, hi: 8 },
                    seed,
                },
            );
            let cfg = base_cfg(
                DispatchPolicy::JoinShortestQueue,
                ColdStartModel::Fixed(SimDuration::from_millis(coldstart_ms)),
            );
            let run = |stream: Vec<crate::traffic::Request>| {
                let (spec, hw) = mixtral();
                serve_cluster(
                    &StubEngine, &spec, &hw,
                    &Traffic::Open(stream),
                    &cfg,
                    &mut QueueDepthReactive::new(floor, cap, 300, 50, 2),
                ).expect("serve_cluster")
            };
            let report = run(stream.clone());
            // Exactly-once service in id order.
            let ids: Vec<u64> = report.serve.outcomes.iter().map(|o| o.id).collect();
            prop_assert_eq!(ids, (0..u64::from(n)).collect::<Vec<_>>());
            // Fleet bounds at every decision.
            prop_assert!(report.peak_provisioned <= cap);
            for e in &report.scale_events {
                prop_assert!(e.to >= floor && e.to <= cap, "event {e:?} out of bounds");
            }
            // No dispatch before warm-up (mid-run spawns only; the initial
            // fleet is warm at t = 0).
            for o in &report.serve.outcomes {
                if o.replica < report.initial_replicas {
                    continue;
                }
                let rep = &report.serve.replicas[o.replica as usize];
                prop_assert!(o.dispatched >= rep.spawned + report.warmup);
            }
            // Retirement never precedes the replica's last dispatched work.
            for rep in &report.serve.replicas {
                if let Some(at) = rep.retired {
                    for o in report.serve.outcomes.iter().filter(|o| o.replica == rep.replica) {
                        prop_assert!(o.dispatched <= at);
                    }
                }
            }
            // Byte-determinism: an identical rerun reproduces everything.
            let again = run(stream);
            prop_assert_eq!(report.serve.outcomes, again.serve.outcomes);
            prop_assert_eq!(report.serve.groups, again.serve.groups);
            prop_assert_eq!(report.serve.replicas, again.serve.replicas);
            prop_assert_eq!(report.scale_events, again.scale_events);
        }
    }
}
