//! Cluster-scale serving: a dynamic fleet under an autoscaling policy.
//!
//! The static dispatcher ([`serve_scaled`](crate::dispatcher::serve_scaled))
//! answers "how does a fleet of `R` replicas behave?"; this module answers
//! the operator's question one level up: *how many replicas should exist,
//! when, and what does elasticity cost?* A [`serve_cluster`] run drives the
//! same per-replica serving state the whole crate shares ([`Replica`]),
//! but the fleet itself changes over time:
//!
//! * an [`AutoscalePolicy`] is evaluated every `tick` against a
//!   [`FleetObservation`] (fleet composition, token backlog, windowed SLO
//!   attainment) and returns a desired replica count;
//! * scale-up spawns replicas that pay a [`ColdStartModel`] warm-up —
//!   derived from the calibrated [`CostModel`](klotski_model::cost::CostModel)
//!   transfer times and the model's real weight bytes — before they are
//!   routable;
//! * scale-down cancels still-warming replicas first, then drains warm
//!   ones newest-first: a draining replica takes no new requests but
//!   flushes its queue, then retires.
//!
//! Arrivals route through the same [`DispatchPolicy`] axis as the static
//! dispatcher, restricted to warm replicas. Every event — arrival,
//! formation, warm-up completion, injected fault, autoscaler tick —
//! executes in global simulated-time order with fixed tie rules, so runs
//! are byte-deterministic; with a [`StaticFleet`] policy and a
//! [`Prewarmed`](ColdStartModel::Prewarmed) cold start the loop reproduces
//! [`serve_scaled`](crate::dispatcher::serve_scaled) byte for byte (the
//! crate's proptests pin this).
//!
//! The cost of elasticity shows up in
//! [`ServeReport::replica_hours`](crate::server::ServeReport::replica_hours):
//! replica lifetimes span birth to retirement, so an autoscaled fleet that
//! tracks a diurnal load pays for far fewer replica-hours than a
//! peak-sized static fleet — the trade the `serve_cluster` bench sweeps.
//!
//! # Fault tolerance
//!
//! [`serve_cluster_faulty`] extends the loop with a deterministic failure
//! axis (see [`faults`]): a seeded [`FaultPlan`] injects replica crashes,
//! straggler windows, and cold-start stalls/failures as simulation events,
//! and a [`ToleranceConfig`] chooses the recovery behavior — retry with
//! capped exponential backoff for crash-lost requests, health-aware
//! dispatch that excludes suspected stragglers, hedged redispatch of stuck
//! chat-class requests, and admission-time load shedding under a
//! [`DegradationPolicy`]. [`serve_cluster`] is the degenerate case
//! ([`FaultPlan::none()`] with the fault-oblivious
//! [`ToleranceConfig::naive`]) and stays byte-identical to the fault-free
//! loop — the crate's golden pins hold it there. Every fault-touched
//! request is accounted for explicitly in [`FaultStats`]: served after
//! retries, dropped when the budget ran out, or shed at admission — never
//! silently lost.

pub mod autoscale;
pub mod coldstart;
pub mod faults;

pub use autoscale::{
    AutoscalePolicy, FleetObservation, QueueDepthReactive, SloReactive, StaticFleet,
};
pub use coldstart::ColdStartModel;
pub use faults::{DegradationPolicy, Fault, FaultPlan, FaultScenario, FaultStats, ToleranceConfig};

use std::collections::{BTreeMap, BTreeSet};

use klotski_core::scenario::{Engine, EngineError};
use klotski_model::hardware::HardwareSpec;
use klotski_model::spec::ModelSpec;
use klotski_sim::event::EventQueue;
use klotski_sim::time::{SimDuration, SimTime};

use crate::admission::estimate_group_service;
use crate::continuous::RequestClass;
use crate::dispatcher::{route_pick, DispatchPolicy, RouterState};
use crate::metrics::SloSpec;
use crate::server::{
    formation_precedes, ArrivalSource, EngineCtx, Replica, RequestOutcome, RetryOutcome,
    ServeConfig, ServeReport, Traffic,
};
use crate::traffic::Request;

use faults::{ColdFault, FaultInjector, InjectorEvent};

/// Cluster serving configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Per-replica serving configuration (batch size, admission policy,
    /// seed).
    pub serve: ServeConfig,
    /// How arrivals are routed over the *warm* fleet.
    pub dispatch: DispatchPolicy,
    /// What a freshly spawned replica pays before it is routable.
    pub coldstart: ColdStartModel,
    /// Autoscaler evaluation period (> 0).
    pub tick: SimDuration,
    /// The SLO that windowed attainment (and the report's attainment
    /// metrics) are measured against.
    pub slo: SloSpec,
}

/// One autoscaling decision that changed the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEvent {
    /// The tick instant.
    pub at: SimTime,
    /// Provisioned replicas (warm + warming) before the decision.
    pub from: u32,
    /// Provisioned replicas after (clamped into `[floor, cap]`).
    pub to: u32,
    /// Warm replicas at decision time.
    pub warm: u32,
    /// Token backlog across warm replicas at decision time.
    pub backlog_tokens: u64,
}

/// Everything a cluster run produced.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// The merged serving report (outcomes, groups, per-replica lifetimes).
    pub serve: ServeReport,
    /// Fleet-size changes, in tick order (empty for a static fleet).
    pub scale_events: Vec<ScaleEvent>,
    /// Fleet size at t = 0 (warm from the start).
    pub initial_replicas: u32,
    /// Peak provisioned (warm + warming) count over the run.
    pub peak_provisioned: u32,
    /// Total replicas that ever existed (initial + spawned).
    pub spawned_total: u32,
    /// The cold-start delay every mid-run spawn paid.
    pub warmup: SimDuration,
    /// What the injected faults did (all-zero for a fault-free run).
    pub faults: FaultStats,
}

/// A fleet slot's lifecycle. Slots are append-only and replica ids are
/// never reused, so scenario seed streams stay stable across scale events.
enum SlotState {
    /// Paying the cold start; not routable. Cancelled (never-warmed)
    /// replicas retire straight from this state; a `doomed` warm-up is an
    /// injected cold-start failure — the slot retires at `ready_at`
    /// without ever serving.
    Warming { ready_at: SimTime, doomed: bool },
    /// Routable.
    Warm,
    /// No longer routable; flushes its queue as if at end-of-stream, then
    /// retires.
    Draining { since: SimTime },
    /// Done; excluded from every fleet computation.
    Retired,
}

struct Slot {
    rep: Replica,
    state: SlotState,
    /// Straggler-detector EWMA of observed/estimated group service time,
    /// in per-mille (1000 = exactly as estimated). Meaningless until
    /// `h_groups` reaches the detector's minimum sample count.
    ewma_pm: u64,
    /// Groups this slot has dispatched (the detector's sample count).
    h_groups: u32,
}

impl Slot {
    fn new(rep: Replica, state: SlotState) -> Self {
        Slot {
            rep,
            state,
            ewma_pm: 0,
            h_groups: 0,
        }
    }
}

/// Per-request bookkeeping for requests a fault (or stall/hedge) touched:
/// latency clocks must run from the original arrival even though the
/// request re-enters the queues at a later instant.
struct RetryMeta {
    orig_arrival: SimTime,
    attempts: u32,
}

/// Retires a draining slot once its queue is flushed; the retirement
/// instant is drain-mark or engine-free, whichever is later, independent
/// of when the sweep runs.
fn sweep_slot(s: &mut Slot) {
    if let SlotState::Draining { since } = s.state {
        if s.rep.queue_len() == 0 {
            s.rep.retire(since.max(s.rep.t_free()));
            s.state = SlotState::Retired;
        }
    }
}

/// Snapshots the fleet for the autoscaler.
fn observe(
    now: SimTime,
    fleet: &[Slot],
    window: (u32, u32),
    crashed: u32,
    window_shed: u32,
) -> FleetObservation {
    let (mut warm, mut warming, mut draining) = (0, 0, 0);
    let mut queued_requests = 0u32;
    let mut backlog_tokens = 0u64;
    for s in fleet {
        match s.state {
            SlotState::Warm => {
                warm += 1;
                queued_requests += s.rep.queue_len() as u32;
                backlog_tokens += s.rep.backlog_tokens(now);
            }
            SlotState::Warming { .. } => warming += 1,
            SlotState::Draining { .. } => draining += 1,
            SlotState::Retired => {}
        }
    }
    FleetObservation {
        now,
        warm,
        warming,
        draining,
        queued_requests,
        backlog_tokens,
        window_finished: window.0,
        window_slo_met: window.1,
        crashed,
        window_shed,
    }
}

/// Appends a fresh slot at `now` (autoscaler growth or crash
/// replacement), attaching any pending injected cold-start fault: a stall
/// extends the warm-up, a failure dooms the slot to retire at its
/// intended ready instant without ever serving.
fn spawn_slot(
    fleet: &mut Vec<Slot>,
    warmups: &mut EventQueue<usize>,
    injector: &mut FaultInjector,
    stats: &mut FaultStats,
    now: SimTime,
    warmup: SimDuration,
    seed: u64,
) {
    let i = fleet.len();
    let mut rep = Replica::new_at(i as u32, seed, now);
    let (extra, doomed) = match injector.on_spawn(now) {
        None => (SimDuration::ZERO, false),
        Some(ColdFault::Stall(extra)) => {
            stats.coldstart_stalls += 1;
            (extra, false)
        }
        Some(ColdFault::Fail) => {
            stats.coldstart_failures += 1;
            (SimDuration::ZERO, true)
        }
    };
    let total = warmup + extra;
    let state = if total.is_zero() {
        if doomed {
            rep.retire(now);
            SlotState::Retired
        } else {
            SlotState::Warm
        }
    } else {
        let ready_at = now + total;
        warmups.push(ready_at, i);
        SlotState::Warming { ready_at, doomed }
    };
    fleet.push(Slot::new(rep, state));
}

/// Warm slots currently suspected of straggling: their observed-vs-
/// estimated service-time EWMA is at least `suspect_pct`% of the
/// healthiest *qualified* warm replica's (one with enough completed
/// groups). Comparing against the fleet minimum rather than an absolute
/// threshold cancels any systematic engine-vs-cost-model bias — only
/// *relative* slowness marks a straggler. The healthiest qualified slot
/// is never suspect (the threshold is strictly above 100%), so filtering
/// suspects always leaves a routable candidate.
fn suspect_warm(fleet: &[Slot], tol: &ToleranceConfig) -> Vec<usize> {
    let mut fleet_min: Option<u64> = None;
    for s in fleet {
        if matches!(s.state, SlotState::Warm) && s.h_groups >= tol.min_groups {
            fleet_min = Some(fleet_min.map_or(s.ewma_pm, |m| m.min(s.ewma_pm)));
        }
    }
    let Some(best) = fleet_min else {
        return Vec::new();
    };
    if best == 0 {
        return Vec::new();
    }
    fleet
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            matches!(s.state, SlotState::Warm)
                && s.h_groups >= tol.min_groups
                && u128::from(s.ewma_pm) * 100 >= u128::from(best) * u128::from(tol.suspect_pct)
        })
        .map(|(i, _)| i)
        .collect()
}

/// Serves `traffic` over a dynamic fleet sized by `policy`.
///
/// The initial fleet ([`AutoscalePolicy::initial`], the floor by default)
/// is warm at t = 0 — the steady-state fleet an operator would already be
/// running; only mid-run spawns pay `cfg.coldstart`. Scale-down never
/// aborts work: draining replicas flush their queues before retiring, so
/// every request is served exactly once regardless of scale events.
///
/// This is the fault-free loop: equivalent to [`serve_cluster_faulty`]
/// with [`FaultPlan::none()`] and the inert [`ToleranceConfig::naive`]
/// (byte for byte — the golden pins hold it there).
///
/// # Errors
///
/// Returns [`EngineError`] if the engine rejects a scenario as invalid
/// (configuration errors — OOM is a per-group *result*, not an error).
///
/// # Panics
///
/// Panics if `cfg.tick` is zero, the policy's bounds are inverted
/// (`cap < floor.max(1)`), plus the same configuration panics as
/// [`serve`](crate::server::serve).
pub fn serve_cluster(
    engine: &dyn Engine,
    spec: &ModelSpec,
    hw: &HardwareSpec,
    traffic: &Traffic,
    cfg: &ClusterConfig,
    policy: &mut dyn AutoscalePolicy,
) -> Result<ClusterReport, EngineError> {
    serve_cluster_faulty(
        engine,
        spec,
        hw,
        traffic,
        cfg,
        policy,
        &FaultPlan::none(),
        &ToleranceConfig::naive(),
    )
}

/// Serves `traffic` over a dynamic fleet while `faults` injects replica
/// crashes, straggler windows, and cold-start failures, and `tol` chooses
/// the recovery behavior (retry/backoff, health-aware dispatch, hedging,
/// load shedding).
///
/// Fault events are merged into the loop's deterministic event order
/// (warm-up completions, then faults, then the autoscaler tick, then the
/// serving event at each instant), so any plan's reruns are
/// byte-identical. A crash loses the victim's queue and the unfinished
/// part of its in-flight group; lost requests are re-enqueued after a
/// capped exponential backoff until their retry budget runs out, at which
/// point they are recorded as [`RetryOutcome::Dropped`] — and with
/// `tol.max_retries == 0` (the [`naive`](ToleranceConfig::naive)
/// baseline) every lost request is dropped on the spot. Shed and dropped
/// requests carry sentinel outcomes (`group == u32::MAX`; a shed request
/// also has `replica == u32::MAX` — it was never assigned one).
///
/// # Errors
///
/// Returns [`EngineError`] if the engine rejects a scenario as invalid.
///
/// # Panics
///
/// Panics like [`serve_cluster`], plus if a non-empty plan is combined
/// with [`Traffic::Closed`] (revoking a crashed completion cannot un-issue
/// the closed-loop follow-up it already triggered), or if
/// `tol.health_aware` with `tol.suspect_pct <= 100` (the healthiest
/// replica would suspect itself).
#[allow(clippy::too_many_arguments)] // the fault axis is two orthogonal knobs
pub fn serve_cluster_faulty(
    engine: &dyn Engine,
    spec: &ModelSpec,
    hw: &HardwareSpec,
    traffic: &Traffic,
    cfg: &ClusterConfig,
    policy: &mut dyn AutoscalePolicy,
    faults: &FaultPlan,
    tol: &ToleranceConfig,
) -> Result<ClusterReport, EngineError> {
    assert!(cfg.serve.batch_size > 0, "batch_size must be positive");
    assert!(
        cfg.serve.policy.max_batches() > 0,
        "group size must be positive"
    );
    assert!(!cfg.tick.is_zero(), "autoscaler tick must be positive");
    let floor = policy.floor().max(1);
    let cap = policy.cap();
    assert!(cap >= floor, "autoscaler cap ({cap}) below floor ({floor})");
    if let Traffic::Closed {
        clients, cfg: tc, ..
    } = traffic
    {
        assert!(
            *clients > 0 || tc.num_requests == 0,
            "closed-loop traffic needs at least one client"
        );
        assert!(
            faults.is_none(),
            "fault injection requires open-loop traffic: revoking a crashed \
             completion cannot un-issue the follow-up request it triggered"
        );
    }
    if tol.health_aware {
        assert!(
            tol.suspect_pct > 100,
            "suspect threshold must exceed 100% of the fleet's best"
        );
    }

    let ctx = EngineCtx::new(engine, spec, hw, &cfg.serve);
    let warmup = cfg.coldstart.warmup(ctx.cost(), ctx.spec());
    let mut source = ArrivalSource::new(traffic);
    let mut injector = FaultInjector::new(faults);
    let mut stats = FaultStats::default();
    let initial = policy.initial().clamp(floor, cap);
    let mut fleet: Vec<Slot> = (0..initial)
        .map(|id| Slot::new(Replica::new(id, cfg.serve.seed), SlotState::Warm))
        .collect();
    let mut rr = RouterState::new();
    let mut warmups: EventQueue<usize> = EventQueue::new();
    // Per-request SLO verdicts keyed by finish time and tagged with the
    // request's serving attempt, drained into the policy's attainment
    // window at each tick; verdicts a crash revoked are skipped at drain.
    let mut finishes: EventQueue<(u64, u32, bool)> = EventQueue::new();
    let mut revoked: BTreeSet<(u64, u32)> = BTreeSet::new();
    // Crash-lost requests waiting out their backoff, keyed by the retry
    // instant. The queued Request carries that instant as its arrival, so
    // a redispatched request can never form a group before the crash that
    // necessitated it — retries are real arrivals, never backdated.
    let mut retries: EventQueue<Request> = EventQueue::new();
    // id → (original arrival, redispatch count) for every request a fault
    // touched; outcomes are rewritten from this before the report is cut.
    let mut meta: BTreeMap<u64, RetryMeta> = BTreeMap::new();
    let mut window = (0u32, 0u32);
    let mut window_shed = 0u32;
    let mut next_tick = SimTime::ZERO + cfg.tick;
    let mut outcomes = Vec::new();
    let mut groups = Vec::new();
    let mut last_arrival = SimTime::ZERO;
    let mut scale_events: Vec<ScaleEvent> = Vec::new();
    let mut peak = initial;

    loop {
        let next_source = source.peek();
        let next_retry = retries.peek_time();
        let eos = next_source.is_none() && next_retry.is_none();
        // A retry yields to a fresh arrival at the same instant, so the
        // fault-free arrival interleave is untouched.
        let pop_retry = match (next_source, next_retry) {
            (Some(s), Some(r)) => r < s,
            (None, Some(_)) => true,
            _ => false,
        };
        let next_arrival = match (next_source, next_retry) {
            (Some(s), Some(r)) => Some(s.min(r)),
            (s, r) => s.or(r),
        };
        // Warm replicas form groups under the admission policy; draining
        // replicas flush as if at end-of-stream (no more work is coming
        // *to them*), never backdated before the drain mark.
        let next_form = fleet
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                match s.state {
                    SlotState::Warm => s.rep.next_form_time(&cfg.serve, eos, last_arrival),
                    SlotState::Draining { since } => {
                        s.rep
                            .next_form_time(&cfg.serve, true, last_arrival.max(since))
                    }
                    _ => None,
                }
                .map(|t| (t, i))
            })
            .min();
        let serving = formation_precedes(next_arrival, next_form.map(|(t, _)| t));
        let real_t = serving.map(|form_first| {
            if form_first {
                next_form.expect("formation event").0
            } else {
                next_arrival.expect("arrival event")
            }
        });
        let next_fault = injector.peek();
        if serving.is_none() && next_fault.is_none() {
            break;
        }

        // Control events run before the serving event at the same instant:
        // warm-up completions first (so a fault or tick at the same
        // instant sees the replica warm), then injected faults (the
        // failure precedes the system's reaction), then the autoscaler
        // tick (so it sees the fleet *before* the arrival or formation
        // lands). Once the serving stream is drained, ticks stop but
        // pending faults still fire — a late crash can revive serving by
        // scheduling retries.
        if let Some(tw) = warmups.peek_time() {
            if next_fault.is_none_or(|tf| tw <= tf)
                && real_t.is_none_or(|t| tw <= t)
                && (serving.is_none() || tw <= next_tick)
            {
                let (t, i) = warmups.pop().expect("peeked warm-up");
                if let SlotState::Warming { ready_at, doomed } = fleet[i].state {
                    debug_assert_eq!(ready_at, t, "warm-up event drifted");
                    if doomed {
                        // Injected cold-start failure: the slot never
                        // becomes routable. The autoscaler sees the
                        // missing capacity at its next tick and replaces
                        // it through its normal signals.
                        fleet[i].rep.retire(t);
                        fleet[i].state = SlotState::Retired;
                    } else {
                        fleet[i].state = SlotState::Warm;
                    }
                }
                // A cancelled (retired-while-warming) slot just drops its
                // stale warm-up event.
                continue;
            }
        }
        if let Some(tf) = next_fault {
            if real_t.is_none_or(|t| tf <= t) && (serving.is_none() || tf <= next_tick) {
                let (t, ev) = injector.pop();
                debug_assert_eq!(tf, t, "fault event drifted");
                match ev {
                    InjectorEvent::Crash {
                        victim,
                        restart_after,
                    } => {
                        let crashable: Vec<usize> = fleet
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| {
                                matches!(s.state, SlotState::Warm | SlotState::Draining { .. })
                            })
                            .map(|(i, _)| i)
                            .collect();
                        if crashable.is_empty() {
                            stats.fizzled += 1;
                        } else {
                            let i = crashable[victim as usize % crashable.len()];
                            let loss = fleet[i].rep.crash(t);
                            fleet[i].state = SlotState::Retired;
                            stats.crashes += 1;
                            stats.lost_inflight += loss.inflight.len() as u32;
                            stats.lost_queued += loss.queued.len() as u32;
                            stats.wasted_busy += loss.wasted;
                            if !loss.inflight.is_empty() {
                                // Revoke the eagerly recorded outcomes of
                                // requests whose tokens died with the
                                // replica — and their windowed SLO
                                // verdicts, which the autoscaler must
                                // never count.
                                let lost: BTreeSet<u64> =
                                    loss.inflight.iter().map(|r| r.id).collect();
                                outcomes.retain(|o: &RequestOutcome| !lost.contains(&o.id));
                                for r in &loss.inflight {
                                    let attempt = meta.get(&r.id).map_or(0, |m| m.attempts);
                                    revoked.insert((r.id, attempt));
                                }
                            }
                            for r in loss.inflight.into_iter().chain(loss.queued) {
                                let (orig, attempts) = meta
                                    .get(&r.id)
                                    .map_or((r.arrival, 0), |m| (m.orig_arrival, m.attempts));
                                if attempts < tol.max_retries {
                                    let next = attempts + 1;
                                    let at = t + tol.backoff(next);
                                    meta.insert(
                                        r.id,
                                        RetryMeta {
                                            orig_arrival: orig,
                                            attempts: next,
                                        },
                                    );
                                    retries.push(at, Request { arrival: at, ..r });
                                    stats.retries += 1;
                                } else {
                                    stats.dropped += 1;
                                    outcomes.push(RequestOutcome {
                                        id: r.id,
                                        arrival: orig,
                                        dispatched: t,
                                        first_token: t,
                                        finished: t,
                                        prompt_len: r.prompt_len,
                                        gen_len: r.gen_len,
                                        group: u32::MAX,
                                        replica: i as u32,
                                        failed: true,
                                        retry: RetryOutcome::Dropped,
                                    });
                                }
                            }
                            if let Some(delay) = restart_after {
                                injector.push_restart(t + delay);
                            }
                        }
                    }
                    InjectorEvent::DegradeStart {
                        victim,
                        slowdown_pct,
                        until,
                    } => {
                        let warm: Vec<usize> = fleet
                            .iter()
                            .enumerate()
                            .filter(|(_, s)| matches!(s.state, SlotState::Warm))
                            .map(|(i, _)| i)
                            .collect();
                        if warm.is_empty() {
                            stats.fizzled += 1;
                        } else {
                            let i = warm[victim as usize % warm.len()];
                            fleet[i].rep.set_slowdown(slowdown_pct);
                            injector.push_degrade_end(until, i);
                            stats.degraded += 1;
                        }
                    }
                    InjectorEvent::DegradeEnd { slot } => {
                        // A crash may have retired the slot mid-window;
                        // clearing the multiplier is then a no-op.
                        fleet[slot].rep.set_slowdown(100);
                    }
                    InjectorEvent::Restart => {
                        stats.restarts += 1;
                        spawn_slot(
                            &mut fleet,
                            &mut warmups,
                            &mut injector,
                            &mut stats,
                            t,
                            warmup,
                            cfg.serve.seed,
                        );
                    }
                }
                continue;
            }
        }
        let Some(form_first) = serving else {
            // Only faults remained; they were handled above.
            continue;
        };
        let real_t = real_t.expect("serving event");

        if next_tick <= real_t {
            let now = next_tick;
            while finishes.peek_time().is_some_and(|t| t <= now) {
                let (_, (id, attempt, met)) = finishes.pop().expect("peeked finish");
                if revoked.contains(&(id, attempt)) {
                    continue;
                }
                window.0 += 1;
                window.1 += u32::from(met);
            }
            for s in fleet.iter_mut() {
                sweep_slot(s);
            }
            // Hedged redispatch: chat-class requests stuck on a suspect
            // replica for at least `hedge_after` move to the healthiest
            // warm replica before the policy observes the fleet. The
            // request *moves* — it is never duplicated — so service stays
            // exactly-once; its queue clock restarts at the tick (never
            // backdated), while its latency clock keeps running from the
            // original arrival via `meta`.
            if tol.health_aware {
                if let Some(hedge_after) = tol.hedge_after {
                    let sus = suspect_warm(&fleet, tol);
                    if !sus.is_empty() {
                        let target = fleet
                            .iter()
                            .enumerate()
                            .filter(|(i, s)| matches!(s.state, SlotState::Warm) && !sus.contains(i))
                            .min_by_key(|(i, s)| (s.rep.backlog_tokens(now), *i))
                            .map(|(i, _)| i);
                        if let Some(ti) = target {
                            let mut moved = Vec::new();
                            for &si in &sus {
                                moved.extend(fleet[si].rep.take_queued_where(&mut |r| {
                                    tol.classes.class_of(r.id) == RequestClass::Chat
                                        && now.saturating_since(r.arrival) >= hedge_after
                                }));
                            }
                            for r in moved {
                                stats.hedges += 1;
                                meta.entry(r.id).or_insert(RetryMeta {
                                    orig_arrival: r.arrival,
                                    attempts: 0,
                                });
                                fleet[ti].rep.enqueue(Request { arrival: now, ..r });
                            }
                        }
                    }
                }
            }
            let obs = observe(now, &fleet, window, stats.crashes, window_shed);
            let provisioned = obs.provisioned();
            let desired = policy.desired(&obs).clamp(floor, cap);
            if desired > provisioned {
                let mut grow = desired - provisioned;
                // Drain cancellation first: a scale-up landing while
                // replicas are still draining reclaims them — the engine
                // never unloaded, so flipping back to Warm skips the cold
                // start entirely. Newest-first, mirroring the drain order;
                // retired slots are never resurrected (ids and seed
                // streams stay append-only).
                for s in fleet.iter_mut().rev() {
                    if grow == 0 {
                        break;
                    }
                    if matches!(s.state, SlotState::Draining { .. }) {
                        s.state = SlotState::Warm;
                        grow -= 1;
                    }
                }
                for _ in 0..grow {
                    spawn_slot(
                        &mut fleet,
                        &mut warmups,
                        &mut injector,
                        &mut stats,
                        now,
                        warmup,
                        cfg.serve.seed,
                    );
                }
            } else if desired < provisioned {
                let mut shrink = provisioned - desired;
                // Cancel replicas still paying their cold start first (no
                // work is lost, only the partial warm-up spend), newest
                // first; then drain warm replicas newest-first. Because
                // warming is exhausted before any warm replica drains and
                // `desired >= 1`, at least one warm replica always remains.
                for s in fleet.iter_mut().rev() {
                    if shrink == 0 {
                        break;
                    }
                    if matches!(s.state, SlotState::Warming { .. }) {
                        s.rep.retire(now);
                        s.state = SlotState::Retired;
                        shrink -= 1;
                    }
                }
                for s in fleet.iter_mut().rev() {
                    if shrink == 0 {
                        break;
                    }
                    if matches!(s.state, SlotState::Warm) {
                        s.state = SlotState::Draining { since: now };
                        sweep_slot(s);
                        shrink -= 1;
                    }
                }
            }
            if desired != provisioned {
                scale_events.push(ScaleEvent {
                    at: now,
                    from: provisioned,
                    to: desired,
                    warm: obs.warm,
                    backlog_tokens: obs.backlog_tokens,
                });
                peak = peak.max(desired);
            }
            window = (0, 0);
            window_shed = 0;
            next_tick = now + cfg.tick;
            continue;
        }

        if form_first {
            let (t_form, i) = next_form.expect("formation event");
            let slot_eos = matches!(fleet[i].state, SlotState::Draining { .. }) || eos;
            let n_before = outcomes.len();
            let done =
                fleet[i]
                    .rep
                    .run_group(t_form, slot_eos, &ctx, &mut outcomes, &mut groups)?;
            for c in &done {
                source.on_complete(c.finished, c.failed);
            }
            for o in &outcomes[n_before..] {
                // A retried request's latency clock runs from its original
                // arrival, not the redispatch instant.
                let (arr, attempt) = meta
                    .get(&o.id)
                    .map_or((o.arrival, 0), |m| (m.orig_arrival, m.attempts));
                let ttft = o.first_token.saturating_since(arr);
                let met = !o.failed && ttft <= cfg.slo.ttft && o.tpot() <= cfg.slo.tpot;
                finishes.push(o.finished, (o.id, attempt, met));
            }
            // Straggler detection: fold the group's observed/estimated
            // service ratio into the slot's health EWMA. The ratio is
            // shape-normalized by the cost model, so a straggler stands
            // out however uneven the dispatch mix is.
            if tol.health_aware {
                let g = groups.last().expect("group just ran");
                if !g.oom {
                    let est = estimate_group_service(
                        ctx.cost(),
                        cfg.serve.batch_size,
                        g.workload.num_batches,
                        g.workload.prompt_len,
                        g.workload.gen_len,
                    );
                    let ratio_pm = (u128::from(g.service_time.as_nanos()) * 1000
                        / u128::from(est.as_nanos().max(1)))
                        as u64;
                    let s = &mut fleet[i];
                    s.ewma_pm = if s.h_groups == 0 {
                        ratio_pm
                    } else {
                        (3 * s.ewma_pm + ratio_pm) / 4
                    };
                    s.h_groups += 1;
                }
            }
            sweep_slot(&mut fleet[i]);
        } else {
            let r = if pop_retry {
                retries.pop().expect("retry event").1
            } else {
                source.pop()
            };
            last_arrival = last_arrival.max(r.arrival);
            // Graceful degradation is an admission decision on *fresh*
            // arrivals only: a retry already cost one service attempt and
            // is never shed.
            if !pop_retry {
                if let DegradationPolicy::ShedBatchOver {
                    backlog_per_replica,
                } = tol.degradation
                {
                    if tol.classes.class_of(r.id) == RequestClass::Batch {
                        let (mut warm_n, mut backlog) = (0u64, 0u64);
                        for s in &fleet {
                            if matches!(s.state, SlotState::Warm) {
                                warm_n += 1;
                                backlog += s.rep.backlog_tokens(r.arrival);
                            }
                        }
                        if warm_n > 0 && backlog / warm_n > backlog_per_replica {
                            stats.shed += 1;
                            window_shed += 1;
                            outcomes.push(RequestOutcome {
                                id: r.id,
                                arrival: r.arrival,
                                dispatched: r.arrival,
                                first_token: r.arrival,
                                finished: r.arrival,
                                prompt_len: r.prompt_len,
                                gen_len: r.gen_len,
                                group: u32::MAX,
                                replica: u32::MAX,
                                failed: true,
                                retry: RetryOutcome::Shed,
                            });
                            source.on_complete(r.arrival, true);
                            continue;
                        }
                    }
                }
            }
            let mut candidates: Vec<(usize, &Replica)> = fleet
                .iter()
                .enumerate()
                .filter(|(_, s)| matches!(s.state, SlotState::Warm))
                .map(|(i, s)| (i, &s.rep))
                .collect();
            if candidates.is_empty() {
                // Crashes outran the autoscaler: no routable replica
                // exists right now. Defer the arrival to the next instant
                // capacity can appear (a pending warm-up or the next
                // autoscaler tick) — stalled, never dropped.
                let defer_to = warmups
                    .peek_time()
                    .map_or(next_tick, |tw| tw.min(next_tick));
                stats.stalled += 1;
                meta.entry(r.id).or_insert(RetryMeta {
                    orig_arrival: r.arrival,
                    attempts: 0,
                });
                retries.push(
                    defer_to,
                    Request {
                        arrival: defer_to,
                        ..r
                    },
                );
                continue;
            }
            // Health-aware dispatch: exclude suspected stragglers while a
            // healthy candidate exists.
            if tol.health_aware && candidates.len() > 1 {
                let sus = suspect_warm(&fleet, tol);
                if !sus.is_empty() {
                    let healthy: Vec<(usize, &Replica)> = candidates
                        .iter()
                        .copied()
                        .filter(|(i, _)| !sus.contains(i))
                        .collect();
                    if !healthy.is_empty() {
                        candidates = healthy;
                    }
                }
            }
            let idx = route_pick(
                cfg.dispatch,
                &mut rr,
                &r,
                &candidates,
                ctx.cost(),
                &cfg.serve,
            );
            debug_assert!(
                matches!(fleet[idx].state, SlotState::Warm),
                "routed to a non-warm replica"
            );
            fleet[idx].rep.enqueue(r);
        }
    }

    // Replicas still draining at end-of-stream retire now (their queues
    // are flushed — the loop cannot end with queued work). Replicas still
    // *warming* at end-of-stream never served; they stay unretired and
    // their lifetime runs to the end of the run — provisioning that late
    // is a cost the policy rightly pays for.
    for s in fleet.iter_mut() {
        sweep_slot(s);
    }

    // Restore fault-touched requests: latency clocks run from the original
    // arrival, and the outcome records how many redispatches the request
    // survived. Dropped and shed outcomes already carry their final form.
    if !meta.is_empty() {
        for o in &mut outcomes {
            if let Some(m) = meta.get(&o.id) {
                if matches!(o.retry, RetryOutcome::FirstTry) {
                    o.arrival = m.orig_arrival;
                    if m.attempts > 0 {
                        o.retry = RetryOutcome::Retried(m.attempts);
                    }
                }
            }
        }
    }

    outcomes.sort_by_key(|o| o.id);
    let first_arrival = outcomes
        .iter()
        .map(|o| o.arrival)
        .min()
        .unwrap_or(SimTime::ZERO);
    let last_finish = outcomes
        .iter()
        .map(|o| o.finished)
        .max()
        .unwrap_or(SimTime::ZERO);
    let makespan = last_finish.saturating_since(first_arrival);
    let replicas = fleet
        .iter()
        .map(|s| s.rep.stats(first_arrival, last_finish))
        .collect();
    let spawned_total = fleet.len() as u32;
    Ok(ClusterReport {
        serve: ServeReport {
            engine: ctx.engine_name(),
            outcomes,
            groups,
            replicas,
            makespan,
        },
        scale_events,
        initial_replicas: initial,
        peak_provisioned: peak,
        spawned_total,
        warmup,
        faults: stats,
    })
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionPolicy;
    use crate::dispatcher::{serve_scaled, ScaleConfig};
    use crate::traffic::{generate, Arrivals, LengthDist, TrafficConfig};
    use klotski_core::report::InferenceReport;
    use klotski_core::scenario::Scenario;
    use proptest::prelude::*;

    /// Same stub as the server tests: service = 1 s + 1 s × num_batches.
    struct StubEngine;

    impl Engine for StubEngine {
        fn name(&self) -> String {
            "Stub".into()
        }

        fn run(&self, sc: &Scenario) -> Result<InferenceReport, EngineError> {
            let base = SimDuration::from_secs(1);
            let total = base + SimDuration::from_secs(1) * sc.workload.num_batches as u64;
            Ok(InferenceReport {
                engine: self.name(),
                model: sc.spec.name.clone(),
                total_time: total,
                prefill_time: base,
                decode_time: total - base,
                generated_tokens: sc.workload.total_generated(),
                gpu_busy: total,
                gpu_bubble: SimDuration::ZERO,
                peak_vram: 0,
                peak_dram: 0,
                oom: None,
                metrics: None,
            })
        }
    }

    fn mixtral() -> (ModelSpec, HardwareSpec) {
        (ModelSpec::mixtral_8x7b(), HardwareSpec::env1_rtx3090())
    }

    fn base_cfg(dispatch: DispatchPolicy, coldstart: ColdStartModel) -> ClusterConfig {
        ClusterConfig {
            serve: ServeConfig {
                batch_size: 4,
                policy: AdmissionPolicy::Deadline {
                    n: 2,
                    deadline: SimDuration::from_secs(1),
                },
                seed: 7,
            },
            dispatch,
            coldstart,
            tick: SimDuration::from_millis(500),
            slo: SloSpec::relaxed(),
        }
    }

    fn cluster(
        traffic: &Traffic,
        cfg: &ClusterConfig,
        policy: &mut dyn AutoscalePolicy,
    ) -> ClusterReport {
        let (spec, hw) = mixtral();
        serve_cluster(&StubEngine, &spec, &hw, traffic, cfg, policy).expect("serve_cluster")
    }

    /// A burst that overloads one replica: 40 requests in ~0.4 s against a
    /// ~2 s/group engine.
    fn burst() -> Vec<crate::traffic::Request> {
        generate(
            Arrivals::Poisson { rate: 100.0 },
            &TrafficConfig::fixed(40, 64, 4, 5),
        )
    }

    #[test]
    fn static_cluster_is_byte_identical_to_serve_scaled() {
        let stream = generate(
            Arrivals::Poisson { rate: 3.0 },
            &TrafficConfig {
                num_requests: 24,
                prompt: LengthDist::Uniform { lo: 16, hi: 96 },
                gen: LengthDist::Uniform { lo: 2, hi: 8 },
                seed: 13,
            },
        );
        let (spec, hw) = mixtral();
        for dispatch in DispatchPolicy::ALL {
            let cfg = base_cfg(dispatch, ColdStartModel::Prewarmed);
            let scaled = serve_scaled(
                &StubEngine,
                &spec,
                &hw,
                &Traffic::Open(stream.clone()),
                &ScaleConfig {
                    serve: cfg.serve,
                    replicas: 3,
                    dispatch,
                },
            )
            .expect("serve_scaled");
            let report = cluster(
                &Traffic::Open(stream.clone()),
                &cfg,
                &mut StaticFleet { replicas: 3 },
            );
            assert!(report.scale_events.is_empty(), "{}", dispatch.label());
            assert_eq!(
                scaled.outcomes,
                report.serve.outcomes,
                "{}",
                dispatch.label()
            );
            assert_eq!(scaled.groups, report.serve.groups, "{}", dispatch.label());
            assert_eq!(
                scaled.replicas,
                report.serve.replicas,
                "{}",
                dispatch.label()
            );
            assert_eq!(
                scaled.makespan,
                report.serve.makespan,
                "{}",
                dispatch.label()
            );
        }
    }

    #[test]
    fn burst_triggers_scale_up_then_drain_back() {
        let cfg = base_cfg(
            DispatchPolicy::JoinShortestQueue,
            ColdStartModel::Fixed(SimDuration::from_secs(1)),
        );
        let mut policy = QueueDepthReactive::new(1, 4, 300, 50, 2);
        // A burst, then a long quiet tail with two stragglers: the gap is
        // when the autoscaler sees calm ticks and shrinks the fleet.
        let mut stream = burst();
        for (i, at) in [(40u64, 120u64), (41, 150)] {
            stream.push(crate::traffic::Request {
                id: i,
                arrival: SimTime::ZERO + SimDuration::from_secs(at),
                prompt_len: 64,
                gen_len: 4,
            });
        }
        let report = cluster(&Traffic::Open(stream), &cfg, &mut policy);
        // All requests served exactly once.
        let ids: Vec<u64> = report.serve.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..42).collect::<Vec<_>>());
        // The burst forced growth beyond the floor…
        assert!(report.peak_provisioned > 1, "burst must trigger scale-up");
        assert!(!report.scale_events.is_empty());
        // …and the quiet tail drained the extras: someone retired.
        assert!(
            report.serve.replicas.iter().any(|r| r.retired.is_some()),
            "surplus replicas must retire after the burst"
        );
        // Replica-hours are strictly below peak × makespan: elasticity
        // saved fleet time.
        let peak_hours =
            report.peak_provisioned as f64 * report.serve.makespan.as_secs_f64() / 3600.0;
        assert!(report.serve.replica_hours() < peak_hours);
    }

    /// Scripted fleet sizes, one per tick (the last repeats): lets tests
    /// force exact scale transitions regardless of load signals.
    struct Scripted {
        sizes: Vec<u32>,
        i: usize,
    }

    impl AutoscalePolicy for Scripted {
        fn name(&self) -> &'static str {
            "scripted"
        }
        fn floor(&self) -> u32 {
            1
        }
        fn cap(&self) -> u32 {
            8
        }
        fn desired(&mut self, _obs: &FleetObservation) -> u32 {
            let v = self.sizes[self.i.min(self.sizes.len() - 1)];
            self.i += 1;
            v
        }
        fn initial(&self) -> u32 {
            self.sizes[0]
        }
    }

    #[test]
    fn scale_up_while_draining_reclaims_the_replica_without_a_cold_start() {
        // Cold starts cost 10 s; ticks land every 500 ms. The script holds
        // 2 replicas, drains one at tick 2 (t = 1 s), and scales back to 2
        // at tick 3 (t = 1.5 s) while the drained replica still has a deep
        // burst queue to flush — so the scale-up must reclaim it.
        let cfg = base_cfg(
            DispatchPolicy::JoinShortestQueue,
            ColdStartModel::Fixed(SimDuration::from_secs(10)),
        );
        let mut policy = Scripted {
            sizes: vec![2, 2, 1, 2],
            i: 0,
        };
        let report = cluster(&Traffic::Open(burst()), &cfg, &mut policy);
        // The cold start was skipped entirely: no third slot was ever
        // spawned (pre-reclaim behavior paid a fresh 10 s warm-up here).
        assert_eq!(
            report.spawned_total, 2,
            "scale-up over a draining replica must not spawn"
        );
        // The reclaimed replica went back to Warm instead of retiring.
        assert!(
            report.serve.replicas.iter().all(|r| r.retired.is_none()),
            "reclaimed replica must not retire"
        );
        // Both transitions were recorded…
        let moves: Vec<(u32, u32)> = report.scale_events.iter().map(|e| (e.from, e.to)).collect();
        assert!(moves.contains(&(2, 1)), "drain event missing: {moves:?}");
        assert!(moves.contains(&(1, 2)), "reclaim event missing: {moves:?}");
        // …and the reclaimed replica keeps serving well before a fresh
        // cold start could have finished (reclaim tick + 10 s warm-up).
        let reclaim_at = SimTime::ZERO + SimDuration::from_millis(1_500);
        assert!(
            report.serve.outcomes.iter().any(|o| o.replica == 1
                && o.dispatched > reclaim_at
                && o.dispatched < reclaim_at + report.warmup),
            "reclaimed replica must dispatch inside the skipped warm-up window"
        );
        // Work conservation across the whole dance.
        let ids: Vec<u64> = report.serve.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..40).collect::<Vec<_>>());
    }

    #[test]
    fn cold_replicas_serve_nothing_before_warmup() {
        let cfg = base_cfg(
            DispatchPolicy::JoinShortestQueue,
            ColdStartModel::Fixed(SimDuration::from_secs(2)),
        );
        let mut policy = QueueDepthReactive::new(1, 4, 200, 50, 2);
        let report = cluster(&Traffic::Open(burst()), &cfg, &mut policy);
        assert!(report.spawned_total > report.initial_replicas);
        for o in &report.serve.outcomes {
            // Only mid-run spawns pay the cold start; the initial fleet is
            // warm at t = 0.
            if o.replica < report.initial_replicas {
                continue;
            }
            let rep = &report.serve.replicas[o.replica as usize];
            assert!(
                o.dispatched >= rep.spawned + report.warmup,
                "request {} dispatched at {} on replica {} warm at {}",
                o.id,
                o.dispatched,
                o.replica,
                rep.spawned + report.warmup
            );
        }
    }

    #[test]
    fn weight_streaming_coldstart_delays_first_service() {
        // Same run with a heavier cold start: the late spawns become
        // routable later, so makespan can only grow (and warm-up is the
        // calibrated weight-transfer time, seconds not nanos).
        let cfg_fast = base_cfg(DispatchPolicy::JoinShortestQueue, ColdStartModel::Prewarmed);
        let cfg_slow = base_cfg(
            DispatchPolicy::JoinShortestQueue,
            ColdStartModel::WeightStreaming {
                provision: SimDuration::from_secs(2),
                resident_experts_per_layer: 2,
            },
        );
        let fast = cluster(
            &Traffic::Open(burst()),
            &cfg_fast,
            &mut QueueDepthReactive::new(1, 4, 300, 50, 2),
        );
        let slow = cluster(
            &Traffic::Open(burst()),
            &cfg_slow,
            &mut QueueDepthReactive::new(1, 4, 300, 50, 2),
        );
        assert!(slow.warmup > SimDuration::from_secs(2));
        assert!(fast.warmup.is_zero());
        assert!(slow.serve.makespan >= fast.serve.makespan);
    }

    #[test]
    fn slo_reactive_grows_under_violations() {
        let cfg = base_cfg(DispatchPolicy::JoinShortestQueue, ColdStartModel::Prewarmed);
        // Tight SLO the overloaded single replica cannot hold.
        let cfg = ClusterConfig {
            slo: SloSpec {
                ttft: SimDuration::from_secs(3),
                tpot: SimDuration::from_secs(1),
            },
            ..cfg
        };
        let mut policy = SloReactive::new(1, 4, 0.95, 3);
        let report = cluster(&Traffic::Open(burst()), &cfg, &mut policy);
        assert!(
            report.peak_provisioned > 1,
            "SLO violations must trigger scale-up"
        );
    }

    #[test]
    fn closed_loop_traffic_works_with_scaling() {
        let cfg = base_cfg(
            DispatchPolicy::CostAware,
            ColdStartModel::Fixed(SimDuration::from_millis(500)),
        );
        let traffic = Traffic::Closed {
            clients: 6,
            think: SimDuration::from_millis(200),
            cfg: TrafficConfig::fixed(18, 64, 4, 5),
        };
        let report = cluster(
            &traffic,
            &cfg,
            &mut QueueDepthReactive::new(1, 3, 200, 50, 2),
        );
        let ids: Vec<u64> = report.serve.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..18).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn inverted_bounds_rejected() {
        struct Bad;
        impl AutoscalePolicy for Bad {
            fn name(&self) -> &'static str {
                "bad"
            }
            fn floor(&self) -> u32 {
                4
            }
            fn cap(&self) -> u32 {
                2
            }
            fn desired(&mut self, _obs: &FleetObservation) -> u32 {
                4
            }
        }
        let (spec, hw) = mixtral();
        let cfg = base_cfg(DispatchPolicy::RoundRobin, ColdStartModel::Prewarmed);
        let _ = serve_cluster(
            &StubEngine,
            &spec,
            &hw,
            &Traffic::Open(Vec::new()),
            &cfg,
            &mut Bad,
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// A static-policy cluster with no cold start is byte-identical to
        /// the static dispatcher for every fleet size, dispatch policy,
        /// and traffic seed — the cluster loop is a strict generalization.
        #[test]
        fn static_cluster_matches_serve_scaled(
            replicas in 1u32..4,
            dispatch_idx in 0usize..3,
            seed in 0u64..500,
            rate in 1.0f64..8.0,
            tick_ms in 100u64..3_000,
        ) {
            let dispatch = DispatchPolicy::ALL[dispatch_idx];
            let stream = generate(
                Arrivals::Poisson { rate },
                &TrafficConfig {
                    num_requests: 16,
                    prompt: LengthDist::Uniform { lo: 16, hi: 96 },
                    gen: LengthDist::Uniform { lo: 2, hi: 8 },
                    seed,
                },
            );
            let (spec, hw) = mixtral();
            let mut cfg = base_cfg(dispatch, ColdStartModel::Prewarmed);
            cfg.tick = SimDuration::from_millis(tick_ms);
            let scaled = serve_scaled(
                &StubEngine, &spec, &hw,
                &Traffic::Open(stream.clone()),
                &ScaleConfig { serve: cfg.serve, replicas, dispatch },
            ).expect("serve_scaled");
            let (spec2, hw2) = mixtral();
            let report = serve_cluster(
                &StubEngine, &spec2, &hw2,
                &Traffic::Open(stream),
                &cfg,
                &mut StaticFleet { replicas },
            ).expect("serve_cluster");
            prop_assert!(report.scale_events.is_empty());
            prop_assert_eq!(scaled.outcomes, report.serve.outcomes);
            prop_assert_eq!(scaled.groups, report.serve.groups);
            prop_assert_eq!(scaled.replicas, report.serve.replicas);
            prop_assert_eq!(scaled.makespan, report.serve.makespan);
        }

        /// Autoscaled runs preserve the request stream exactly (no drops,
        /// no duplicates), keep the fleet inside [floor, cap], never
        /// dispatch to a replica before its warm-up completes, and are
        /// fully deterministic.
        #[test]
        fn autoscaled_runs_keep_invariants(
            seed in 0u64..500,
            rate in 20.0f64..120.0,
            n in 10u32..40,
            floor in 1u32..3,
            extra in 1u32..4,
            coldstart_ms in 0u64..2_000,
        ) {
            let cap = floor + extra;
            let stream = generate(
                Arrivals::Poisson { rate },
                &TrafficConfig {
                    num_requests: n,
                    prompt: LengthDist::Uniform { lo: 16, hi: 96 },
                    gen: LengthDist::Uniform { lo: 2, hi: 8 },
                    seed,
                },
            );
            let cfg = base_cfg(
                DispatchPolicy::JoinShortestQueue,
                ColdStartModel::Fixed(SimDuration::from_millis(coldstart_ms)),
            );
            let run = |stream: Vec<crate::traffic::Request>| {
                let (spec, hw) = mixtral();
                serve_cluster(
                    &StubEngine, &spec, &hw,
                    &Traffic::Open(stream),
                    &cfg,
                    &mut QueueDepthReactive::new(floor, cap, 300, 50, 2),
                ).expect("serve_cluster")
            };
            let report = run(stream.clone());
            // Exactly-once service in id order.
            let ids: Vec<u64> = report.serve.outcomes.iter().map(|o| o.id).collect();
            prop_assert_eq!(ids, (0..u64::from(n)).collect::<Vec<_>>());
            // Fleet bounds at every decision.
            prop_assert!(report.peak_provisioned <= cap);
            for e in &report.scale_events {
                prop_assert!(e.to >= floor && e.to <= cap, "event {e:?} out of bounds");
            }
            // No dispatch before warm-up (mid-run spawns only; the initial
            // fleet is warm at t = 0).
            for o in &report.serve.outcomes {
                if o.replica < report.initial_replicas {
                    continue;
                }
                let rep = &report.serve.replicas[o.replica as usize];
                prop_assert!(o.dispatched >= rep.spawned + report.warmup);
            }
            // Retirement never precedes the replica's last dispatched work.
            for rep in &report.serve.replicas {
                if let Some(at) = rep.retired {
                    for o in report.serve.outcomes.iter().filter(|o| o.replica == rep.replica) {
                        prop_assert!(o.dispatched <= at);
                    }
                }
            }
            // Byte-determinism: an identical rerun reproduces everything.
            let again = run(stream);
            prop_assert_eq!(report.serve.outcomes, again.serve.outcomes);
            prop_assert_eq!(report.serve.groups, again.serve.groups);
            prop_assert_eq!(report.serve.replicas, again.serve.replicas);
            prop_assert_eq!(report.scale_events, again.scale_events);
        }
    }

    // ---- fault tolerance ----

    use crate::continuous::ClassAssign;

    fn crash_plan() -> FaultPlan {
        FaultPlan {
            faults: vec![Fault::Crash {
                at: SimTime::ZERO + SimDuration::from_secs(2),
                victim: 0,
                restart_after: Some(SimDuration::from_millis(100)),
            }],
        }
    }

    fn cluster_faulty(
        traffic: &Traffic,
        cfg: &ClusterConfig,
        policy: &mut dyn AutoscalePolicy,
        plan: &FaultPlan,
        tol: &ToleranceConfig,
    ) -> ClusterReport {
        let (spec, hw) = mixtral();
        serve_cluster_faulty(&StubEngine, &spec, &hw, traffic, cfg, policy, plan, tol)
            .expect("serve_cluster_faulty")
    }

    #[test]
    fn none_plan_with_naive_tolerance_is_serve_cluster() {
        let cfg = base_cfg(DispatchPolicy::JoinShortestQueue, ColdStartModel::Prewarmed);
        let baseline = cluster(
            &Traffic::Open(burst()),
            &cfg,
            &mut QueueDepthReactive::new(1, 4, 300, 50, 2),
        );
        assert_eq!(baseline.faults, FaultStats::default());
        let faulty = cluster_faulty(
            &Traffic::Open(burst()),
            &cfg,
            &mut QueueDepthReactive::new(1, 4, 300, 50, 2),
            &FaultPlan::none(),
            &ToleranceConfig::naive(),
        );
        assert_eq!(baseline.serve.outcomes, faulty.serve.outcomes);
        assert_eq!(baseline.serve.groups, faulty.serve.groups);
        assert_eq!(baseline.serve.replicas, faulty.serve.replicas);
        assert_eq!(baseline.scale_events, faulty.scale_events);
    }

    #[test]
    fn crash_loses_inflight_and_retries_exactly_once() {
        let cfg = base_cfg(DispatchPolicy::JoinShortestQueue, ColdStartModel::Prewarmed);
        let report = cluster_faulty(
            &Traffic::Open(burst()),
            &cfg,
            &mut StaticFleet { replicas: 2 },
            &crash_plan(),
            &ToleranceConfig::default(),
        );
        let crash = SimTime::ZERO + SimDuration::from_secs(2);
        // Every request served exactly once despite the crash.
        let ids: Vec<u64> = report.serve.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..40).collect::<Vec<_>>());
        let f = report.faults;
        assert_eq!(f.crashes, 1);
        assert!(f.lost_inflight + f.lost_queued > 0, "crash must lose work");
        assert_eq!(f.retries, f.lost_inflight + f.lost_queued);
        assert_eq!(f.dropped, 0);
        assert_eq!(f.restarts, 1);
        // Retried outcomes keep the original arrival — a redispatch never
        // resets the latency clock.
        let retried: Vec<_> = report
            .serve
            .outcomes
            .iter()
            .filter(|o| matches!(o.retry, RetryOutcome::Retried(_)))
            .collect();
        assert_eq!(retried.len(), f.retries as usize);
        for o in &retried {
            assert!(o.arrival < crash, "retry must keep its original arrival");
            assert!(!o.failed);
        }
    }

    /// Regression: a redispatched request re-enters the queues *at the
    /// retry instant*, never at its original arrival. Re-enqueueing with
    /// the original arrival lets the admission policy form groups dated
    /// before the crash that necessitated the retry — backdated work on
    /// the post-crash drain path. This test fails against that variant.
    #[test]
    fn retries_never_dispatch_before_the_crash() {
        let cfg = base_cfg(DispatchPolicy::JoinShortestQueue, ColdStartModel::Prewarmed);
        let report = cluster_faulty(
            &Traffic::Open(burst()),
            &cfg,
            &mut StaticFleet { replicas: 2 },
            &crash_plan(),
            &ToleranceConfig::default(),
        );
        let crash = SimTime::ZERO + SimDuration::from_secs(2);
        for o in &report.serve.outcomes {
            if matches!(o.retry, RetryOutcome::Retried(_)) {
                assert!(
                    o.dispatched >= crash,
                    "request {} redispatched at {} before the crash at {}",
                    o.id,
                    o.dispatched,
                    crash
                );
            }
        }
    }

    #[test]
    fn naive_tolerance_drops_lost_requests() {
        let cfg = base_cfg(DispatchPolicy::JoinShortestQueue, ColdStartModel::Prewarmed);
        let report = cluster_faulty(
            &Traffic::Open(burst()),
            &cfg,
            &mut StaticFleet { replicas: 2 },
            &crash_plan(),
            &ToleranceConfig::naive(),
        );
        let crash = SimTime::ZERO + SimDuration::from_secs(2);
        let f = report.faults;
        assert!(f.dropped > 0, "the naive baseline must lose work");
        assert_eq!(f.dropped, f.lost_inflight + f.lost_queued);
        assert_eq!(f.retries, 0);
        // Every request is still accounted for — dropped explicitly with a
        // sentinel outcome, never silently lost.
        let ids: Vec<u64> = report.serve.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..40).collect::<Vec<_>>());
        let dropped: Vec<_> = report
            .serve
            .outcomes
            .iter()
            .filter(|o| matches!(o.retry, RetryOutcome::Dropped))
            .collect();
        assert_eq!(dropped.len(), f.dropped as usize);
        for o in &dropped {
            assert!(o.failed);
            assert_eq!(o.finished, crash);
            assert_eq!(o.group, u32::MAX);
        }
    }

    #[test]
    fn degraded_replica_is_detected_and_avoided() {
        let cfg = base_cfg(DispatchPolicy::JoinShortestQueue, ColdStartModel::Prewarmed);
        let plan = FaultPlan {
            faults: vec![Fault::Degrade {
                from: SimTime::ZERO,
                until: SimTime::ZERO + SimDuration::from_secs(10_000),
                victim: 1,
                slowdown_pct: 300,
            }],
        };
        let stream = generate(
            Arrivals::Poisson { rate: 3.0 },
            &TrafficConfig::fixed(60, 64, 4, 11),
        );
        let tol_health = ToleranceConfig {
            suspect_pct: 150,
            min_groups: 2,
            ..ToleranceConfig::default()
        };
        let run = |tol: &ToleranceConfig| {
            cluster_faulty(
                &Traffic::Open(stream.clone()),
                &cfg,
                &mut StaticFleet { replicas: 3 },
                &plan,
                tol,
            )
        };
        let health = run(&tol_health);
        let naive = run(&ToleranceConfig::naive());
        assert_eq!(health.faults.degraded, 1);
        // Both configurations serve everything…
        for r in [&health, &naive] {
            let ids: Vec<u64> = r.serve.outcomes.iter().map(|o| o.id).collect();
            assert_eq!(ids, (0..60).collect::<Vec<_>>());
        }
        // …but health-aware dispatch steers load off the straggler.
        let on_victim =
            |r: &ClusterReport| r.serve.outcomes.iter().filter(|o| o.replica == 1).count();
        assert!(
            on_victim(&health) < on_victim(&naive),
            "straggler served {} outcomes health-aware vs {} naive",
            on_victim(&health),
            on_victim(&naive)
        );
    }

    #[test]
    fn hedging_moves_stuck_chat_requests() {
        let cfg = base_cfg(DispatchPolicy::JoinShortestQueue, ColdStartModel::Prewarmed);
        let plan = FaultPlan {
            faults: vec![Fault::Degrade {
                from: SimTime::ZERO + SimDuration::from_secs(1),
                until: SimTime::ZERO + SimDuration::from_secs(10_000),
                victim: 0,
                slowdown_pct: 500,
            }],
        };
        let tol = ToleranceConfig {
            suspect_pct: 150,
            min_groups: 1,
            hedge_after: Some(SimDuration::from_millis(500)),
            ..ToleranceConfig::default()
        };
        let stream = burst();
        let report = cluster_faulty(
            &Traffic::Open(stream.clone()),
            &cfg,
            &mut StaticFleet { replicas: 2 },
            &plan,
            &tol,
        );
        assert!(report.faults.hedges > 0, "stuck chat requests must move");
        let ids: Vec<u64> = report.serve.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..40).collect::<Vec<_>>());
        // A hedge moves the request (exactly-once service) and keeps its
        // original arrival for latency purposes.
        for o in &report.serve.outcomes {
            let orig = stream.iter().find(|r| r.id == o.id).expect("id").arrival;
            assert_eq!(o.arrival, orig, "hedge must not reset the latency clock");
        }
    }

    #[test]
    fn shedding_rejects_batch_class_over_watermark() {
        let cfg = base_cfg(DispatchPolicy::JoinShortestQueue, ColdStartModel::Prewarmed);
        let tol = ToleranceConfig {
            degradation: DegradationPolicy::ShedBatchOver {
                backlog_per_replica: 200,
            },
            classes: ClassAssign::ChatShare { chat_pct: 50 },
            ..ToleranceConfig::default()
        };
        let report = cluster_faulty(
            &Traffic::Open(burst()),
            &cfg,
            &mut StaticFleet { replicas: 1 },
            &FaultPlan::none(),
            &tol,
        );
        let f = report.faults;
        assert!(f.shed > 0, "an overloaded replica must shed batch work");
        let ids: Vec<u64> = report.serve.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..40).collect::<Vec<_>>());
        let mut shed_seen = 0u32;
        for o in &report.serve.outcomes {
            if matches!(o.retry, RetryOutcome::Shed) {
                shed_seen += 1;
                assert!(o.failed);
                assert_eq!(o.replica, u32::MAX);
                assert_eq!(o.group, u32::MAX);
                assert_eq!(o.finished, o.arrival);
                // Only batch-class work is ever shed.
                assert_eq!(tol.classes.class_of(o.id), RequestClass::Batch);
            } else {
                assert!(!o.failed, "non-shed requests must be served");
            }
        }
        assert_eq!(shed_seen, f.shed);
    }

    #[test]
    fn coldstart_stall_and_fail_are_accounted() {
        let cfg = base_cfg(
            DispatchPolicy::JoinShortestQueue,
            ColdStartModel::Fixed(SimDuration::from_secs(2)),
        );
        let plan = FaultPlan {
            faults: vec![
                Fault::ColdStartStall {
                    at: SimTime::ZERO,
                    extra: SimDuration::from_secs(3),
                },
                Fault::ColdStartFail { at: SimTime::ZERO },
            ],
        };
        let mut stream = generate(
            Arrivals::Poisson { rate: 100.0 },
            &TrafficConfig::fixed(10, 64, 4, 5),
        );
        for (i, at) in [(10u64, 7u64), (11, 8)] {
            stream.push(crate::traffic::Request {
                id: i,
                arrival: SimTime::ZERO + SimDuration::from_secs(at),
                prompt_len: 64,
                gen_len: 4,
            });
        }
        // Scripted growth to 3 replicas: the two mid-run spawns consume the
        // pending cold-start faults (stall first — plan order).
        let mut policy = Scripted {
            sizes: vec![1, 1, 3],
            i: 0,
        };
        let report = cluster_faulty(
            &Traffic::Open(stream),
            &cfg,
            &mut policy,
            &plan,
            &ToleranceConfig::default(),
        );
        let f = report.faults;
        assert_eq!(f.coldstart_stalls, 1);
        assert_eq!(f.coldstart_failures, 1);
        // The failed cold start (second spawn, slot 2) never served; the
        // autoscaler replaced the missing capacity with a fresh spawn.
        assert!(report.serve.outcomes.iter().all(|o| o.replica != 2));
        assert_eq!(report.spawned_total, 4);
        let ids: Vec<u64> = report.serve.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn fault_runs_are_byte_deterministic() {
        let plan = FaultPlan::generate(&FaultScenario {
            seed: 42,
            horizon: SimDuration::from_secs(15),
            crashes: 2,
            restart_after: Some(SimDuration::from_secs(1)),
            degraded: 1,
            slowdown_pct: 250,
            degrade_width: SimDuration::from_secs(5),
            coldstart_stalls: 1,
            coldstart_stall: SimDuration::from_secs(1),
            coldstart_fails: 1,
        });
        let cfg = base_cfg(
            DispatchPolicy::JoinShortestQueue,
            ColdStartModel::Fixed(SimDuration::from_millis(500)),
        );
        let run = || {
            cluster_faulty(
                &Traffic::Open(burst()),
                &cfg,
                &mut QueueDepthReactive::new(1, 4, 300, 50, 2),
                &plan,
                &ToleranceConfig::default(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.serve.outcomes, b.serve.outcomes);
        assert_eq!(a.serve.groups, b.serve.groups);
        assert_eq!(a.serve.replicas, b.serve.replicas);
        assert_eq!(a.scale_events, b.scale_events);
        assert_eq!(a.faults, b.faults);
    }

    #[test]
    #[should_panic(expected = "open-loop")]
    fn closed_loop_with_faults_rejected() {
        let (spec, hw) = mixtral();
        let cfg = base_cfg(DispatchPolicy::RoundRobin, ColdStartModel::Prewarmed);
        let traffic = Traffic::Closed {
            clients: 2,
            think: SimDuration::from_millis(100),
            cfg: TrafficConfig::fixed(4, 64, 4, 5),
        };
        let _ = serve_cluster_faulty(
            &StubEngine,
            &spec,
            &hw,
            &traffic,
            &cfg,
            &mut StaticFleet { replicas: 1 },
            &crash_plan(),
            &ToleranceConfig::default(),
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Fault runs conserve the request stream: every id resolves
        /// exactly once (served, or explicitly dropped when the retry
        /// budget runs out), and reruns are byte-identical.
        #[test]
        fn faulty_runs_conserve_requests(
            seed in 0u64..200,
            fseed in 0u64..200,
            crashes in 0u32..3,
            rate in 20.0f64..120.0,
            n in 10u32..40,
            naive_bit in 0u32..2,
        ) {
            let stream = generate(
                Arrivals::Poisson { rate },
                &TrafficConfig {
                    num_requests: n,
                    prompt: LengthDist::Uniform { lo: 16, hi: 96 },
                    gen: LengthDist::Uniform { lo: 2, hi: 8 },
                    seed,
                },
            );
            let plan = FaultPlan::generate(&FaultScenario {
                seed: fseed,
                horizon: SimDuration::from_secs(10),
                crashes,
                restart_after: Some(SimDuration::from_secs(1)),
                degraded: 1,
                slowdown_pct: 200,
                degrade_width: SimDuration::from_secs(4),
                coldstart_stalls: 1,
                coldstart_stall: SimDuration::from_secs(1),
                coldstart_fails: 0,
            });
            let tol = if naive_bit == 1 {
                ToleranceConfig::naive()
            } else {
                ToleranceConfig::default()
            };
            let cfg = base_cfg(
                DispatchPolicy::JoinShortestQueue,
                ColdStartModel::Fixed(SimDuration::from_millis(500)),
            );
            let run = |stream: Vec<crate::traffic::Request>| {
                let (spec, hw) = mixtral();
                serve_cluster_faulty(
                    &StubEngine, &spec, &hw,
                    &Traffic::Open(stream),
                    &cfg,
                    &mut QueueDepthReactive::new(1, 4, 300, 50, 2),
                    &plan,
                    &tol,
                ).expect("serve_cluster_faulty")
            };
            let report = run(stream.clone());
            // Exactly-once resolution in id order, drops explicit.
            let ids: Vec<u64> = report.serve.outcomes.iter().map(|o| o.id).collect();
            prop_assert_eq!(ids, (0..u64::from(n)).collect::<Vec<_>>());
            let dropped = report.serve.outcomes.iter()
                .filter(|o| matches!(o.retry, RetryOutcome::Dropped)).count();
            prop_assert_eq!(dropped, report.faults.dropped as usize);
            // Byte-determinism under faults.
            let again = run(stream);
            prop_assert_eq!(report.serve.outcomes, again.serve.outcomes);
            prop_assert_eq!(report.serve.groups, again.serve.groups);
            prop_assert_eq!(report.scale_events, again.scale_events);
            prop_assert_eq!(report.faults, again.faults);
        }
    }
}
