//! Deterministic fault injection for the cluster loop.
//!
//! Real fleets fail constantly: replicas crash mid-group, stragglers run
//! at a fraction of nominal speed, and cold starts stall or never
//! complete. This module makes failure a first-class, *seeded* axis of
//! every cluster experiment: a [`FaultPlan`] is an explicit list of
//! [`Fault`]s (hand-written or generated from a [`FaultScenario`] with a
//! seed), and the [`FaultInjector`] replays it as simulation events merged
//! into [`serve_cluster`](super::serve_cluster)'s deterministic event
//! order. Reruns of the same plan are byte-identical, and
//! [`FaultPlan::none()`] leaves the loop byte-identical to the fault-free
//! cluster (golden-pinned).
//!
//! Fault targets are *hints*, not slot indices: a crash resolves its
//! victim against the live fleet at the fault instant (`hint % alive`),
//! so plans stay meaningful whatever the autoscaler did in the meantime.
//! A fault with no eligible victim fizzles and is counted, never
//! silently dropped.
//!
//! The recovery side lives in [`ToleranceConfig`]: crash-lost requests
//! are re-enqueued with capped exponential backoff under a per-request
//! retry budget, suspected stragglers are excluded from dispatch by an
//! observed-vs-estimated service-time detector (the request-level
//! analogue of capacity-aware expert routing), stuck chat-class requests
//! can be hedged off suspect replicas, and a [`DegradationPolicy`] sheds
//! batch-class load at admission under sustained failure pressure instead
//! of letting queues grow without bound.

use klotski_sim::event::EventQueue;
use klotski_sim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::continuous::ClassAssign;

/// One injected fault. Times are absolute simulation instants; victims
/// are hints resolved against the live fleet when the fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// At `at`, the `victim % alive`-th routable (warm or draining)
    /// replica crashes: its queue and the unfinished part of its
    /// in-flight group are lost, and it retires on the spot. With
    /// `restart_after`, a replacement slot spawns that much later and
    /// pays the configured cold start before becoming routable.
    Crash {
        /// Crash instant.
        at: SimTime,
        /// Victim hint, resolved modulo the crashable fleet at `at`.
        victim: u32,
        /// Delay until a replacement spawn, if any.
        restart_after: Option<SimDuration>,
    },
    /// From `from` until `until`, the chosen warm replica dispatches
    /// every group at `slowdown_pct`% of nominal service time (a
    /// straggler). The multiplier applies to groups *dispatched* inside
    /// the window; a group already running keeps its timing.
    Degrade {
        /// Degradation onset.
        from: SimTime,
        /// End of the window (the replica recovers).
        until: SimTime,
        /// Victim hint, resolved modulo the warm fleet at `from`.
        victim: u32,
        /// Service-time multiplier in percent (> 100).
        slowdown_pct: u32,
    },
    /// The first cold start that *begins* at or after `at` stalls: the
    /// replica becomes routable `extra` later than the cold-start model
    /// says.
    ColdStartStall {
        /// Earliest spawn instant this stall can attach to.
        at: SimTime,
        /// Extra warm-up delay.
        extra: SimDuration,
    },
    /// The first cold start that begins at or after `at` fails outright:
    /// the slot never becomes routable and retires at its intended ready
    /// instant. The autoscaler sees the missing capacity at its next
    /// tick and re-spawns through its normal signals.
    ColdStartFail {
        /// Earliest spawn instant this failure can attach to.
        at: SimTime,
    },
}

impl Fault {
    /// The instant the fault first matters (used for ordering).
    fn at(&self) -> SimTime {
        match *self {
            Fault::Crash { at, .. } => at,
            Fault::Degrade { from, .. } => from,
            Fault::ColdStartStall { at, .. } => at,
            Fault::ColdStartFail { at } => at,
        }
    }
}

/// A deterministic fault schedule: the complete list of faults a cluster
/// run will experience. Construct directly for tests, or generate a
/// seeded schedule from a [`FaultScenario`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The faults, in any order (the injector sorts by onset).
    pub faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: the cluster loop must be byte-identical to the
    /// fault-free path (golden-pinned).
    pub fn none() -> Self {
        FaultPlan { faults: Vec::new() }
    }

    /// Whether this plan injects nothing.
    pub fn is_none(&self) -> bool {
        self.faults.is_empty()
    }

    /// Generates a seeded schedule from a scenario: crash instants,
    /// degrade windows, and cold-start faults drawn uniformly over the
    /// horizon. Same scenario → same plan, always.
    pub fn generate(sc: &FaultScenario) -> Self {
        assert!(!sc.horizon.is_zero(), "fault horizon must be positive");
        let mut rng = StdRng::seed_from_u64(sc.seed);
        let span = sc.horizon.as_nanos();
        let mut faults = Vec::new();
        for _ in 0..sc.crashes {
            faults.push(Fault::Crash {
                at: SimTime::from_nanos(rng.gen_range(0..span)),
                victim: rng.gen_range(0..64u32),
                restart_after: sc.restart_after,
            });
        }
        for _ in 0..sc.degraded {
            let from = SimTime::from_nanos(rng.gen_range(0..span));
            faults.push(Fault::Degrade {
                from,
                until: from + sc.degrade_width,
                victim: rng.gen_range(0..64u32),
                slowdown_pct: sc.slowdown_pct,
            });
        }
        for _ in 0..sc.coldstart_stalls {
            faults.push(Fault::ColdStartStall {
                at: SimTime::from_nanos(rng.gen_range(0..span)),
                extra: sc.coldstart_stall,
            });
        }
        for _ in 0..sc.coldstart_fails {
            faults.push(Fault::ColdStartFail {
                at: SimTime::from_nanos(rng.gen_range(0..span)),
            });
        }
        FaultPlan { faults }
    }
}

/// Parameters for a seeded [`FaultPlan::generate`] schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultScenario {
    /// Seed for the fault-time/victim draws.
    pub seed: u64,
    /// Faults land uniformly in `[0, horizon)`.
    pub horizon: SimDuration,
    /// Number of replica crashes.
    pub crashes: u32,
    /// Replacement delay after each crash (`None`: capacity is gone for
    /// good and only the autoscaler can replace it).
    pub restart_after: Option<SimDuration>,
    /// Number of straggler windows.
    pub degraded: u32,
    /// Straggler service-time multiplier in percent (> 100).
    pub slowdown_pct: u32,
    /// Width of each straggler window.
    pub degrade_width: SimDuration,
    /// Cold starts that stall.
    pub coldstart_stalls: u32,
    /// Extra delay each stalled cold start pays.
    pub coldstart_stall: SimDuration,
    /// Cold starts that fail outright.
    pub coldstart_fails: u32,
}

/// Recovery behavior of the cluster loop under faults. The default is
/// the full tolerance stack (retries + health-aware dispatch); the
/// fault-*oblivious* baseline is [`ToleranceConfig::naive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ToleranceConfig {
    /// Redispatch budget per request after crashes lose it. `0` is the
    /// fault-oblivious baseline: lost work is dropped (and reported as
    /// [`RetryOutcome::Dropped`](crate::server::RetryOutcome::Dropped) —
    /// never silently).
    pub max_retries: u32,
    /// First retry delay; doubles per attempt.
    pub backoff_base: SimDuration,
    /// Upper bound on the backoff delay.
    pub backoff_cap: SimDuration,
    /// Exclude suspected stragglers from dispatch while healthy
    /// candidates exist.
    pub health_aware: bool,
    /// A replica is suspect when its observed/estimated service-time
    /// EWMA is at least this percentage of the healthiest warm replica's
    /// (e.g. `180` = 1.8× the fleet's best ratio).
    pub suspect_pct: u32,
    /// Completed groups a replica needs before the detector will judge
    /// it (and before it can anchor the fleet baseline).
    pub min_groups: u32,
    /// Hedged redispatch: at each autoscaler tick, chat-class requests
    /// queued on a *suspect* replica longer than this move to the
    /// healthiest warm replica (dispatch-time cancellation keeps service
    /// exactly-once). `None` disables hedging.
    pub hedge_after: Option<SimDuration>,
    /// Load shedding under failure pressure.
    pub degradation: DegradationPolicy,
    /// Chat/batch split used by hedging (chat is hedged) and shedding
    /// (batch is shed).
    pub classes: ClassAssign,
}

impl Default for ToleranceConfig {
    fn default() -> Self {
        ToleranceConfig {
            max_retries: 3,
            backoff_base: SimDuration::from_millis(50),
            backoff_cap: SimDuration::from_secs(2),
            health_aware: true,
            suspect_pct: 180,
            min_groups: 2,
            hedge_after: None,
            degradation: DegradationPolicy::None,
            classes: ClassAssign::Uniform,
        }
    }
}

impl ToleranceConfig {
    /// The fault-oblivious baseline: no retries, no health awareness, no
    /// hedging, no shedding — what a fleet that pretends failures don't
    /// happen delivers.
    pub fn naive() -> Self {
        ToleranceConfig {
            max_retries: 0,
            health_aware: false,
            ..ToleranceConfig::default()
        }
    }

    /// The retry delay before redispatch attempt `attempt` (1-based):
    /// `backoff_base × 2^(attempt-1)`, capped at `backoff_cap`.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let shift = attempt.saturating_sub(1).min(32);
        let nanos = u128::from(self.backoff_base.as_nanos()) << shift;
        let capped = nanos.min(u128::from(self.backoff_cap.as_nanos()));
        SimDuration::from_nanos(capped as u64)
    }
}

/// Graceful degradation under sustained failure pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationPolicy {
    /// Admit everything (queues may grow without bound).
    None,
    /// Reject batch-class arrivals at admission while the warm fleet's
    /// token backlog per warm replica exceeds the watermark; shed
    /// requests get an explicit
    /// [`RetryOutcome::Shed`](crate::server::RetryOutcome::Shed) outcome
    /// instead of an unbounded queue slot. Chat-class requests are always
    /// admitted.
    ShedBatchOver {
        /// Backlog tokens per warm replica above which batch arrivals
        /// are shed.
        backlog_per_replica: u64,
    },
}

/// What the injected faults did to a run — the failure-side ledger of a
/// [`ClusterReport`](super::ClusterReport). Lost work is never silent:
/// every lost request shows up as a retry, a drop, or a shed, and every
/// fault that found no victim is counted as fizzled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Replica crashes that found a victim.
    pub crashes: u32,
    /// Faults that fired with no eligible victim (fleet too small).
    pub fizzled: u32,
    /// Straggler windows that attached to a warm replica.
    pub degraded: u32,
    /// Replacement replicas spawned after crashes.
    pub restarts: u32,
    /// In-flight requests whose tokens were lost to a crash.
    pub lost_inflight: u32,
    /// Queued requests lost to a crash.
    pub lost_queued: u32,
    /// Re-dispatches scheduled for crash-lost requests.
    pub retries: u32,
    /// Requests abandoned after exhausting their retry budget.
    pub dropped: u32,
    /// Requests rejected at admission by the degradation policy.
    pub shed: u32,
    /// Queued requests moved off suspect replicas by hedged redispatch.
    pub hedges: u32,
    /// Arrivals that found no routable replica and had to wait for
    /// capacity (crashes outran the autoscaler).
    pub stalled: u32,
    /// Cold starts that paid an injected stall.
    pub coldstart_stalls: u32,
    /// Cold starts that failed outright (the slot never served).
    pub coldstart_failures: u32,
    /// Engine-busy time burned by groups a crash killed — work that
    /// produced nothing deliverable.
    pub wasted_busy: SimDuration,
}

/// What a crash/restart/degrade event tells the cluster loop to do.
/// Produced by [`FaultInjector::pop`] in deterministic time order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum InjectorEvent {
    /// Crash the `victim % crashable`-th routable replica now.
    Crash {
        victim: u32,
        restart_after: Option<SimDuration>,
    },
    /// Start degrading the `victim % warm`-th warm replica now.
    DegradeStart {
        victim: u32,
        slowdown_pct: u32,
        until: SimTime,
    },
    /// End the degradation of fleet slot `slot` (resolved at start).
    DegradeEnd { slot: usize },
    /// Spawn the replacement for an earlier crash now.
    Restart,
}

/// What the injector does to one cold start (consumed at spawn time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ColdFault {
    /// The warm-up takes `extra` longer than the model says.
    Stall(SimDuration),
    /// The warm-up never completes; the slot retires at its intended
    /// ready instant.
    Fail,
}

/// Replays a [`FaultPlan`] as timed events. Pure deterministic state: a
/// sorted timeline (the simulator's [`EventQueue`], FIFO among ties) plus
/// a sorted list of pending cold-start faults — no wall clock, no hashed
/// collections.
pub(crate) struct FaultInjector {
    timeline: EventQueue<InjectorEvent>,
    /// Cold-start faults not yet attached to a spawn, sorted by onset.
    cold: Vec<(SimTime, ColdFault)>,
}

impl FaultInjector {
    pub(crate) fn new(plan: &FaultPlan) -> Self {
        let mut timed: Vec<&Fault> = plan
            .faults
            .iter()
            .filter(|f| {
                !matches!(
                    f,
                    Fault::ColdStartStall { .. } | Fault::ColdStartFail { .. }
                )
            })
            .collect();
        // Stable sort by onset: plan order breaks ties, so a plan is its
        // own tie rule and regeneration is byte-stable.
        timed.sort_by_key(|f| f.at());
        let mut timeline = EventQueue::new();
        for f in timed {
            match *f {
                Fault::Crash {
                    at,
                    victim,
                    restart_after,
                } => timeline.push(
                    at,
                    InjectorEvent::Crash {
                        victim,
                        restart_after,
                    },
                ),
                Fault::Degrade {
                    from,
                    until,
                    victim,
                    slowdown_pct,
                } => {
                    assert!(slowdown_pct > 100, "a straggler must be slower than 100%");
                    assert!(until > from, "degrade window must be non-empty");
                    timeline.push(
                        from,
                        InjectorEvent::DegradeStart {
                            victim,
                            slowdown_pct,
                            until,
                        },
                    );
                }
                _ => unreachable!("cold-start faults filtered above"),
            }
        }
        let mut cold: Vec<(SimTime, ColdFault)> = plan
            .faults
            .iter()
            .filter_map(|f| match *f {
                Fault::ColdStartStall { at, extra } => Some((at, ColdFault::Stall(extra))),
                Fault::ColdStartFail { at } => Some((at, ColdFault::Fail)),
                _ => None,
            })
            .collect();
        cold.sort_by_key(|&(at, _)| at);
        FaultInjector { timeline, cold }
    }

    /// The next timed fault instant, if any.
    pub(crate) fn peek(&self) -> Option<SimTime> {
        self.timeline.peek_time()
    }

    /// Pops the earliest timed fault event.
    pub(crate) fn pop(&mut self) -> (SimTime, InjectorEvent) {
        self.timeline.pop().expect("pop on an empty fault timeline")
    }

    /// Schedules the end of a degradation resolved to `slot`.
    pub(crate) fn push_degrade_end(&mut self, until: SimTime, slot: usize) {
        self.timeline
            .push(until, InjectorEvent::DegradeEnd { slot });
    }

    /// Schedules a crash's replacement spawn.
    pub(crate) fn push_restart(&mut self, at: SimTime) {
        self.timeline.push(at, InjectorEvent::Restart);
    }

    /// A cold start begins at `now`: consume the earliest pending
    /// cold-start fault with onset ≤ `now`, if any.
    pub(crate) fn on_spawn(&mut self, now: SimTime) -> Option<ColdFault> {
        let idx = self.cold.iter().position(|&(at, _)| at <= now)?;
        Some(self.cold.remove(idx).1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(seed: u64) -> FaultScenario {
        FaultScenario {
            seed,
            horizon: SimDuration::from_secs(60),
            crashes: 3,
            restart_after: Some(SimDuration::from_secs(5)),
            degraded: 2,
            slowdown_pct: 300,
            degrade_width: SimDuration::from_secs(10),
            coldstart_stalls: 1,
            coldstart_stall: SimDuration::from_secs(2),
            coldstart_fails: 1,
        }
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::generate(&scenario(1));
        let b = FaultPlan::generate(&scenario(1));
        let c = FaultPlan::generate(&scenario(2));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.faults.len(), 7);
        assert!(!a.is_none());
        assert!(FaultPlan::none().is_none());
    }

    #[test]
    fn generated_faults_land_inside_the_horizon() {
        let sc = scenario(7);
        let plan = FaultPlan::generate(&sc);
        let end = SimTime::ZERO + sc.horizon;
        for f in &plan.faults {
            assert!(f.at() < end, "{f:?} outside horizon");
            if let Fault::Degrade { from, until, .. } = f {
                assert_eq!(*until, *from + sc.degrade_width);
            }
        }
    }

    #[test]
    fn injector_replays_timed_faults_in_onset_order() {
        let plan = FaultPlan {
            faults: vec![
                Fault::Degrade {
                    from: SimTime::from_nanos(500),
                    until: SimTime::from_nanos(900),
                    victim: 1,
                    slowdown_pct: 200,
                },
                Fault::Crash {
                    at: SimTime::from_nanos(100),
                    victim: 0,
                    restart_after: None,
                },
                Fault::ColdStartFail {
                    at: SimTime::from_nanos(50),
                },
            ],
        };
        let mut inj = FaultInjector::new(&plan);
        let (t1, e1) = inj.pop();
        assert_eq!(t1, SimTime::from_nanos(100));
        assert!(matches!(e1, InjectorEvent::Crash { victim: 0, .. }));
        let (t2, e2) = inj.pop();
        assert_eq!(t2, SimTime::from_nanos(500));
        assert!(matches!(e2, InjectorEvent::DegradeStart { .. }));
        assert!(inj.peek().is_none());
        // The cold-start fault attaches to the first spawn at/after its
        // onset, and only once.
        assert_eq!(inj.on_spawn(SimTime::from_nanos(10)), None);
        assert_eq!(inj.on_spawn(SimTime::from_nanos(60)), Some(ColdFault::Fail));
        assert_eq!(inj.on_spawn(SimTime::from_nanos(70)), None);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let tol = ToleranceConfig {
            backoff_base: SimDuration::from_millis(100),
            backoff_cap: SimDuration::from_millis(350),
            ..ToleranceConfig::default()
        };
        assert_eq!(tol.backoff(1), SimDuration::from_millis(100));
        assert_eq!(tol.backoff(2), SimDuration::from_millis(200));
        assert_eq!(tol.backoff(3), SimDuration::from_millis(350));
        assert_eq!(tol.backoff(30), SimDuration::from_millis(350));
    }

    #[test]
    #[should_panic(expected = "slower than 100%")]
    fn speedup_degrade_rejected() {
        let plan = FaultPlan {
            faults: vec![Fault::Degrade {
                from: SimTime::ZERO,
                until: SimTime::from_nanos(1),
                victim: 0,
                slowdown_pct: 50,
            }],
        };
        let _ = FaultInjector::new(&plan);
    }
}
