//! Request-level SLO metrics: latency percentiles, goodput, throughput.
//!
//! The offline [`InferenceReport`](klotski_core::report::InferenceReport)
//! measures one batch group; a server is judged on *request* latency
//! distributions under an SLO. This module folds a
//! [`ServeReport`](crate::server::ServeReport) into the numbers serving
//! papers quote: TTFT / TPOT / end-to-end at p50/p95/p99, goodput (tokens
//! per second from requests that met the SLO), and sustained throughput.
//! Multi-replica reports summarize identically (the outcomes are merged),
//! and [`summarize_replica`] breaks the same numbers out per replica.

use klotski_sim::time::SimDuration;

use crate::server::{RequestOutcome, ServeReport};

/// A per-request service-level objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSpec {
    /// Maximum acceptable time to first token.
    pub ttft: SimDuration,
    /// Maximum acceptable time per output token (after the first).
    pub tpot: SimDuration,
}

impl SloSpec {
    /// A loose interactive-serving SLO scaled to simulated offloading
    /// speeds (TTFT 20 s, TPOT 1 s).
    pub fn relaxed() -> Self {
        SloSpec {
            ttft: SimDuration::from_secs(20),
            tpot: SimDuration::from_secs(1),
        }
    }
}

/// p50/p95/p99 of one latency population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Percentiles {
    /// Median.
    pub p50: SimDuration,
    /// 95th percentile.
    pub p95: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
}

impl Percentiles {
    /// Nearest-rank percentiles of `values` (need not be sorted; empty
    /// populations report zero).
    pub fn of(values: &[SimDuration]) -> Self {
        if values.is_empty() {
            return Percentiles {
                p50: SimDuration::ZERO,
                p95: SimDuration::ZERO,
                p99: SimDuration::ZERO,
            };
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let rank = |p: f64| -> SimDuration {
            let n = sorted.len() as f64;
            let idx = (p / 100.0 * n).ceil() as usize;
            sorted[idx.clamp(1, sorted.len()) - 1]
        };
        Percentiles {
            p50: rank(50.0),
            p95: rank(95.0),
            p99: rank(99.0),
        }
    }
}

/// One serving run, summarized against an SLO.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSummary {
    /// Requests observed (failed ones included).
    pub requests: usize,
    /// Requests that completed *and* met both SLO components.
    pub slo_met: usize,
    /// Time-to-first-token percentiles.
    pub ttft: Percentiles,
    /// Time-per-output-token percentiles.
    pub tpot: Percentiles,
    /// End-to-end latency percentiles.
    pub e2e: Percentiles,
    /// Mean queueing delay.
    pub mean_queue_delay: SimDuration,
    /// Generated tokens of SLO-meeting requests per second of makespan.
    pub goodput_tps: f64,
    /// Generated tokens of all completed requests per second of makespan.
    pub throughput_tps: f64,
}

/// Summarizes a serving run against `slo`.
pub fn summarize(report: &ServeReport, slo: &SloSpec) -> SloSummary {
    summarize_outcomes(&report.outcomes.iter().collect::<Vec<_>>(), report, slo)
}

/// Summarizes only the requests served by `replica`, against `slo`.
///
/// Throughput and goodput keep the whole run's makespan as denominator,
/// so per-replica rates sum to the merged report's rates.
pub fn summarize_replica(report: &ServeReport, slo: &SloSpec, replica: u32) -> SloSummary {
    let mine: Vec<&RequestOutcome> = report
        .outcomes
        .iter()
        .filter(|o| o.replica == replica)
        .collect();
    summarize_outcomes(&mine, report, slo)
}

/// Summarizes only the outcomes selected by `keep` — e.g. one priority
/// class of a continuous-batching run — against `slo`.
///
/// Like [`summarize_replica`], rates keep the whole run's makespan as
/// denominator, so class summaries compose additively with each other.
pub fn summarize_where(
    report: &ServeReport,
    slo: &SloSpec,
    keep: &dyn Fn(&RequestOutcome) -> bool,
) -> SloSummary {
    let kept: Vec<&RequestOutcome> = report.outcomes.iter().filter(|o| keep(o)).collect();
    summarize_outcomes(&kept, report, slo)
}

fn summarize_outcomes(
    outcomes: &[&RequestOutcome],
    report: &ServeReport,
    slo: &SloSpec,
) -> SloSummary {
    let completed: Vec<_> = outcomes.iter().filter(|o| !o.failed).collect();
    let ttfts: Vec<SimDuration> = completed.iter().map(|o| o.ttft()).collect();
    let tpots: Vec<SimDuration> = completed.iter().map(|o| o.tpot()).collect();
    let e2es: Vec<SimDuration> = completed.iter().map(|o| o.e2e()).collect();

    let good: Vec<_> = completed
        .iter()
        .filter(|o| o.ttft() <= slo.ttft && o.tpot() <= slo.tpot)
        .collect();
    let good_tokens: u64 = good.iter().map(|o| o.gen_len as u64).sum();
    let goodput_tps = if report.makespan.is_zero() {
        0.0
    } else {
        good_tokens as f64 / report.makespan.as_secs_f64()
    };
    let mean_queue_delay = if completed.is_empty() {
        SimDuration::ZERO
    } else {
        completed
            .iter()
            .map(|o| o.queue_delay())
            .sum::<SimDuration>()
            / completed.len() as u64
    };

    let completed_tokens: u64 = completed.iter().map(|o| o.gen_len as u64).sum();
    let throughput_tps = if report.makespan.is_zero() {
        0.0
    } else {
        completed_tokens as f64 / report.makespan.as_secs_f64()
    };

    SloSummary {
        requests: outcomes.len(),
        slo_met: good.len(),
        ttft: Percentiles::of(&ttfts),
        tpot: Percentiles::of(&tpots),
        e2e: Percentiles::of(&e2es),
        mean_queue_delay,
        goodput_tps,
        throughput_tps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::RequestOutcome;
    use klotski_sim::time::SimTime;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn nearest_rank_percentiles() {
        let vals: Vec<SimDuration> = (1..=100).map(ms).collect();
        let p = Percentiles::of(&vals);
        assert_eq!(p.p50, ms(50));
        assert_eq!(p.p95, ms(95));
        assert_eq!(p.p99, ms(99));
        // Tiny populations: nearest rank, not interpolation.
        let p = Percentiles::of(&[ms(10), ms(20), ms(30)]);
        assert_eq!(p.p50, ms(20));
        assert_eq!(p.p99, ms(30));
        assert_eq!(Percentiles::of(&[]).p99, SimDuration::ZERO);
    }

    fn outcome(id: u64, wait_ms: u64, gen: u32, failed: bool) -> RequestOutcome {
        let arrival = SimTime::ZERO + ms(id * 10);
        let dispatched = arrival + ms(wait_ms);
        let first_token = dispatched + ms(100);
        RequestOutcome {
            id,
            arrival,
            dispatched,
            first_token,
            finished: first_token + ms(50) * gen.saturating_sub(1) as u64,
            prompt_len: 64,
            gen_len: gen,
            group: 0,
            replica: 0,
            failed,
        }
    }

    fn report(outcomes: Vec<RequestOutcome>) -> ServeReport {
        let makespan = outcomes
            .iter()
            .map(|o| o.finished)
            .max()
            .unwrap()
            .saturating_since(SimTime::ZERO);
        ServeReport {
            engine: "Stub".into(),
            outcomes,
            groups: Vec::new(),
            replicas: Vec::new(),
            makespan,
        }
    }

    #[test]
    fn goodput_counts_only_slo_met_requests() {
        // Two fast requests, one slow (10 s wait), one failed.
        let r = report(vec![
            outcome(0, 10, 4, false),
            outcome(1, 10, 4, false),
            outcome(2, 10_000, 4, false),
            outcome(3, 10, 4, true),
        ]);
        let slo = SloSpec {
            ttft: SimDuration::from_secs(1),
            tpot: SimDuration::from_secs(1),
        };
        let s = summarize(&r, &slo);
        assert_eq!(s.requests, 4);
        assert_eq!(s.slo_met, 2);
        assert!(s.goodput_tps < s.throughput_tps);
        let expected = 8.0 / r.makespan.as_secs_f64();
        assert!((s.goodput_tps - expected).abs() < 1e-9);
    }

    #[test]
    fn tighter_slo_never_increases_goodput() {
        let r = report((0..20).map(|i| outcome(i, i * 40, 4, false)).collect());
        let loose = summarize(
            &r,
            &SloSpec {
                ttft: SimDuration::from_secs(5),
                tpot: SimDuration::from_secs(5),
            },
        );
        let tight = summarize(
            &r,
            &SloSpec {
                ttft: ms(300),
                tpot: ms(40),
            },
        );
        assert!(tight.slo_met <= loose.slo_met);
        assert!(tight.goodput_tps <= loose.goodput_tps);
    }

    #[test]
    fn mean_queue_delay_averages_completed() {
        let r = report(vec![outcome(0, 100, 2, false), outcome(1, 300, 2, false)]);
        let s = summarize(&r, &SloSpec::relaxed());
        assert_eq!(s.mean_queue_delay, ms(200));
    }

    #[test]
    fn filtered_summaries_partition_like_replica_summaries() {
        let r = report((0..10).map(|i| outcome(i, i * 30, 4, false)).collect());
        let slo = SloSpec::relaxed();
        let total = summarize(&r, &slo);
        let even = summarize_where(&r, &slo, &|o| o.id % 2 == 0);
        let odd = summarize_where(&r, &slo, &|o| o.id % 2 == 1);
        assert_eq!(even.requests + odd.requests, total.requests);
        assert_eq!(even.slo_met + odd.slo_met, total.slo_met);
        assert!((even.goodput_tps + odd.goodput_tps - total.goodput_tps).abs() < 1e-9);
        // A predicate matching everything reproduces the plain summary.
        assert_eq!(summarize_where(&r, &slo, &|_| true), total);
    }

    #[test]
    fn replica_summaries_partition_the_merged_report() {
        let mut outcomes: Vec<RequestOutcome> =
            (0..10).map(|i| outcome(i, i * 30, 4, false)).collect();
        for o in outcomes.iter_mut() {
            o.replica = (o.id % 2) as u32;
        }
        let r = report(outcomes);
        let slo = SloSpec::relaxed();
        let total = summarize(&r, &slo);
        let r0 = summarize_replica(&r, &slo, 0);
        let r1 = summarize_replica(&r, &slo, 1);
        assert_eq!(r0.requests + r1.requests, total.requests);
        assert_eq!(r0.slo_met + r1.slo_met, total.slo_met);
        // Same makespan denominator, so rates compose additively.
        assert!((r0.throughput_tps + r1.throughput_tps - total.throughput_tps).abs() < 1e-9);
        assert!((r0.goodput_tps + r1.goodput_tps - total.goodput_tps).abs() < 1e-9);
        // A replica that served nothing reports an empty summary.
        let empty = summarize_replica(&r, &slo, 7);
        assert_eq!(empty.requests, 0);
        assert_eq!(empty.throughput_tps, 0.0);
    }
}
