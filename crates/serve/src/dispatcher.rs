//! Multi-replica dispatch: shard one request stream over `R` engine
//! replicas.
//!
//! Klotski's multi-batch pipeline maximizes weight sharing *inside* one
//! engine; under heavy request streams the request level must also scale
//! *across* engines. The dispatcher routes each arriving request to one of
//! `R` identical replicas, each running its own admission queue and
//! serving loop (the exact per-replica state the single-engine
//! [`serve`](crate::server::serve) loop uses). Placement policy — not just
//! per-engine speed — dominates SLO attainment under bursty load, so the
//! policy is a first-class axis:
//!
//! * [`DispatchPolicy::RoundRobin`] — cycle through replicas in arrival
//!   order, blind to their state (the baseline);
//! * [`DispatchPolicy::JoinShortestQueue`] — route to the replica with the
//!   fewest queued tokens, so slow groups do not pile a backlog onto one
//!   engine while others idle;
//! * [`DispatchPolicy::CostAware`] — route to the replica whose
//!   [`CostModel`]-estimated completion of the new request is earliest,
//!   reusing the same
//!   [`estimate_group_service`](crate::admission::estimate_group_service)
//!   machinery as cost-aware admission: it sees *how expensive* a queue
//!   is, not just how long.
//!
//! Results merge into one [`ServeReport`](crate::server::ServeReport) with
//! per-replica utilization, so the request-level SLO metrics work
//! unchanged. With `replicas == 1` every policy degenerates to the
//! single-engine loop and the report is byte-identical to [`serve`]'s —
//! the crate's proptests pin that equivalence.

use klotski_core::scenario::{Engine, EngineError};
use klotski_model::cost::CostModel;
use klotski_model::hardware::HardwareSpec;
use klotski_model::spec::ModelSpec;
use klotski_sim::time::SimTime;

use crate::admission::estimate_group_service;
use crate::server::{drive, Replica, ServeConfig, ServeReport, Traffic};
use crate::traffic::Request;

/// How arriving requests are sharded over replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchPolicy {
    /// Cycle through replicas in arrival order, ignoring their state.
    RoundRobin,
    /// Route to the replica with the fewest backlogged tokens: prompt plus
    /// requested output of every waiting request, plus the group still on
    /// the engine. Ties break toward the replica whose engine frees
    /// earliest, then the lowest id.
    JoinShortestQueue,
    /// Route to the replica whose cost-model-estimated completion of the
    /// new request is earliest: the replica frees, then serves one group
    /// holding its whole queue plus the new request.
    CostAware,
}

impl DispatchPolicy {
    /// All policies, in bench-sweep order.
    pub const ALL: [DispatchPolicy; 3] = [
        DispatchPolicy::RoundRobin,
        DispatchPolicy::JoinShortestQueue,
        DispatchPolicy::CostAware,
    ];

    /// Short stable name for tables and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            DispatchPolicy::RoundRobin => "round_robin",
            DispatchPolicy::JoinShortestQueue => "jsq",
            DispatchPolicy::CostAware => "cost_aware",
        }
    }
}

/// Multi-replica serving configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleConfig {
    /// Per-replica serving configuration (batch size, admission policy,
    /// seed).
    pub serve: ServeConfig,
    /// Number of engine replicas (> 0).
    pub replicas: u32,
    /// The dispatch policy sharding the stream.
    pub dispatch: DispatchPolicy,
}

/// Serves `traffic` over `cfg.replicas` replicas of `engine`, sharding the
/// stream with `cfg.dispatch`; every replica runs its own admission queue
/// and serving loop, and the merged report carries per-replica utilization.
///
/// # Errors
///
/// Returns [`EngineError`] if the engine rejects a scenario as invalid
/// (configuration errors — OOM is a per-group *result*, not an error).
///
/// # Panics
///
/// Panics if `cfg.replicas` is zero, plus the same configuration panics as
/// [`serve`](crate::server::serve).
pub fn serve_scaled(
    engine: &dyn Engine,
    spec: &ModelSpec,
    hw: &HardwareSpec,
    traffic: &Traffic,
    cfg: &ScaleConfig,
) -> Result<ServeReport, EngineError> {
    assert!(cfg.replicas > 0, "need at least one replica");
    let dispatch = cfg.dispatch;
    let serve_cfg = cfg.serve;
    let mut rr = RouterState::new();
    let mut route = move |r: &Request, reps: &[Replica], cost: &CostModel| -> usize {
        let candidates: Vec<(usize, &Replica)> = reps.iter().enumerate().collect();
        route_pick(dispatch, &mut rr, r, &candidates, cost, &serve_cfg)
    };
    drive(
        engine,
        spec,
        hw,
        traffic,
        &cfg.serve,
        cfg.replicas,
        &mut route,
    )
}

/// Mutable routing state that outlives individual decisions (the
/// round-robin cursor).
pub(crate) struct RouterState {
    next_rr: usize,
}

impl RouterState {
    pub(crate) fn new() -> Self {
        RouterState { next_rr: 0 }
    }
}

/// Picks a replica for `r` among `candidates` — `(index, replica)` pairs
/// where the index is whatever the caller routes by (position in a static
/// fleet, fleet-slot index for a cluster). Shared by [`serve_scaled`] and
/// the cluster loop: over a full static fleet the decisions are identical
/// to the pre-cluster dispatcher byte for byte.
///
/// # Panics
///
/// Panics if `candidates` is empty — the caller must guarantee at least
/// one routable replica.
pub(crate) fn route_pick(
    dispatch: DispatchPolicy,
    state: &mut RouterState,
    r: &Request,
    candidates: &[(usize, &Replica)],
    cost: &CostModel,
    cfg: &ServeConfig,
) -> usize {
    assert!(!candidates.is_empty(), "routing needs a candidate replica");
    match dispatch {
        DispatchPolicy::RoundRobin => {
            let i = candidates[state.next_rr % candidates.len()].0;
            state.next_rr += 1;
            i
        }
        DispatchPolicy::JoinShortestQueue => candidates
            .iter()
            .min_by_key(|(i, rep)| (rep.backlog_tokens(r.arrival), rep.t_free(), *i))
            .map(|(i, _)| *i)
            .expect("at least one candidate"),
        DispatchPolicy::CostAware => candidates
            .iter()
            .min_by_key(|(i, rep)| (estimated_completion(rep, r, cost, cfg), rep.t_free(), *i))
            .map(|(i, _)| *i)
            .expect("at least one candidate"),
    }
}

/// When `rep` would plausibly finish `r` if it joined `rep`'s queue now:
/// the replica frees, then serves one group holding its whole queue plus
/// `r`, padded to the joint shape — the same stage-1 estimate cost-aware
/// admission uses for group sizing.
fn estimated_completion(
    rep: &Replica,
    r: &Request,
    cost: &CostModel,
    cfg: &ServeConfig,
) -> SimTime {
    let bs = cfg.batch_size;
    let count = rep.queue_len() as u32 + 1;
    let n = count.div_ceil(bs).min(cfg.policy.max_batches()).max(1);
    let (p, g) = rep.queue_shape();
    let start = rep.t_free().max(r.arrival);
    start + estimate_group_service(cost, bs, n, p.max(r.prompt_len), g.max(r.gen_len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionPolicy;
    use crate::server::serve;
    use crate::traffic::{generate, Arrivals, LengthDist, TrafficConfig};
    use klotski_core::report::InferenceReport;
    use klotski_core::scenario::Scenario;
    use klotski_sim::time::SimDuration;

    /// Same stub as the server tests: service = 1 s + 1 s × num_batches.
    struct StubEngine;

    impl Engine for StubEngine {
        fn name(&self) -> String {
            "Stub".into()
        }

        fn run(&self, sc: &Scenario) -> Result<InferenceReport, EngineError> {
            let base = SimDuration::from_secs(1);
            let total = base + SimDuration::from_secs(1) * sc.workload.num_batches as u64;
            Ok(InferenceReport {
                engine: self.name(),
                model: sc.spec.name.clone(),
                total_time: total,
                prefill_time: base,
                decode_time: total - base,
                generated_tokens: sc.workload.total_generated(),
                gpu_busy: total,
                gpu_bubble: SimDuration::ZERO,
                peak_vram: 0,
                peak_dram: 0,
                oom: None,
                metrics: None,
            })
        }
    }

    fn mixtral() -> (ModelSpec, HardwareSpec) {
        (ModelSpec::mixtral_8x7b(), HardwareSpec::env1_rtx3090())
    }

    fn cost_aware_cfg(seed: u64) -> ServeConfig {
        ServeConfig {
            batch_size: 4,
            policy: AdmissionPolicy::CostAware {
                max_n: 4,
                slo_e2e: SimDuration::from_secs(3600),
            },
            seed,
        }
    }

    fn scaled(
        traffic: &Traffic,
        serve_cfg: ServeConfig,
        replicas: u32,
        dispatch: DispatchPolicy,
    ) -> ServeReport {
        let (spec, hw) = mixtral();
        serve_scaled(
            &StubEngine,
            &spec,
            &hw,
            traffic,
            &ScaleConfig {
                serve: serve_cfg,
                replicas,
                dispatch,
            },
        )
        .expect("serve_scaled")
    }

    #[test]
    fn round_robin_cycles_through_replicas() {
        // Sparse arrivals (each served before the next lands) so routing
        // order is purely arrival order.
        let stream = generate(
            Arrivals::Paced { rate: 0.1 },
            &TrafficConfig::fixed(6, 64, 4, 5),
        );
        let report = scaled(
            &Traffic::Open(stream),
            cost_aware_cfg(1),
            3,
            DispatchPolicy::RoundRobin,
        );
        let replicas: Vec<u32> = report.outcomes.iter().map(|o| o.replica).collect();
        assert_eq!(replicas, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(report.replicas.len(), 3);
        assert!(report.replicas.iter().all(|r| r.requests == 2));
    }

    #[test]
    fn jsq_avoids_the_busy_replica() {
        // Request 0 occupies replica 0; request 1 arrives while it is
        // busy and must go to the idle, empty-queued replica 1 — the
        // queued-token tie breaks toward the engine that frees earliest.
        let reqs = vec![
            Request {
                id: 0,
                arrival: SimTime::ZERO,
                prompt_len: 64,
                gen_len: 4,
            },
            Request {
                id: 1,
                arrival: SimTime::from_nanos(100_000_000),
                prompt_len: 64,
                gen_len: 4,
            },
        ];
        let jsq = scaled(
            &Traffic::Open(reqs.clone()),
            cost_aware_cfg(1),
            2,
            DispatchPolicy::JoinShortestQueue,
        );
        assert_eq!(jsq.outcomes[0].replica, 0);
        assert_eq!(jsq.outcomes[1].replica, 1, "jsq must pick the idle replica");
        // Neither request queues behind the other.
        assert!(jsq
            .outcomes
            .iter()
            .all(|o| o.queue_delay() == SimDuration::ZERO));
    }

    #[test]
    fn cost_aware_routes_around_expensive_queues() {
        // Fixed-n admission keeps queues waiting for a full group, so
        // replica 0 still *holds* the huge-prompt request when the small
        // one arrives. Both replicas are idle (t_free == 0); only the
        // cost-model view of replica 0's padded queue shape repels the
        // new request toward the empty replica.
        let reqs = vec![
            Request {
                id: 0,
                arrival: SimTime::ZERO,
                prompt_len: 2048,
                gen_len: 16,
            },
            Request {
                id: 1,
                arrival: SimTime::from_nanos(1_000_000),
                prompt_len: 32,
                gen_len: 2,
            },
        ];
        let report = scaled(
            &Traffic::Open(reqs),
            ServeConfig {
                batch_size: 2,
                policy: AdmissionPolicy::FixedN { n: 1 },
                seed: 1,
            },
            2,
            DispatchPolicy::CostAware,
        );
        assert_eq!(report.outcomes[0].replica, 0);
        assert_eq!(
            report.outcomes[1].replica, 1,
            "cost-aware must route the cheap request away from the expensive queue"
        );
    }

    #[test]
    fn replication_shrinks_the_makespan_under_overload() {
        // 16 requests at t≈0 against a ~2 s/group stub: one replica
        // serializes 4 groups, four replicas run them side by side.
        let stream = generate(
            Arrivals::Poisson { rate: 1000.0 },
            &TrafficConfig::fixed(16, 64, 4, 5),
        );
        let cfg = ServeConfig {
            batch_size: 4,
            policy: AdmissionPolicy::FixedN { n: 1 },
            seed: 1,
        };
        let r1 = scaled(
            &Traffic::Open(stream.clone()),
            cfg,
            1,
            DispatchPolicy::JoinShortestQueue,
        );
        let r4 = scaled(
            &Traffic::Open(stream),
            cfg,
            4,
            DispatchPolicy::JoinShortestQueue,
        );
        assert_eq!(r4.outcomes.len(), 16);
        assert!(
            r4.makespan.as_secs_f64() < 0.5 * r1.makespan.as_secs_f64(),
            "4 replicas must serve an overload substantially faster: {} vs {}",
            r4.makespan,
            r1.makespan
        );
        assert!(r4.throughput_tps() > 2.0 * r1.throughput_tps());
        // All four replicas actually worked.
        assert!(r4.replicas.iter().all(|r| r.groups > 0));
    }

    #[test]
    fn single_replica_is_byte_identical_to_serve() {
        let stream = generate(
            Arrivals::Poisson { rate: 2.0 },
            &TrafficConfig {
                num_requests: 20,
                prompt: LengthDist::Uniform { lo: 16, hi: 128 },
                gen: LengthDist::Uniform { lo: 2, hi: 8 },
                seed: 13,
            },
        );
        let (spec, hw) = mixtral();
        let cfg = cost_aware_cfg(9);
        let single = serve(
            &StubEngine,
            &spec,
            &hw,
            &Traffic::Open(stream.clone()),
            &cfg,
        )
        .expect("serve");
        for dispatch in DispatchPolicy::ALL {
            let rep = scaled(&Traffic::Open(stream.clone()), cfg, 1, dispatch);
            assert_eq!(single.outcomes, rep.outcomes, "{}", dispatch.label());
            assert_eq!(single.groups, rep.groups, "{}", dispatch.label());
            assert_eq!(single.replicas, rep.replicas, "{}", dispatch.label());
            assert_eq!(single.makespan, rep.makespan, "{}", dispatch.label());
        }
    }

    #[test]
    fn closed_loop_traffic_spans_replicas() {
        let traffic = Traffic::Closed {
            clients: 4,
            think: SimDuration::from_secs(1),
            cfg: TrafficConfig::fixed(12, 64, 4, 5),
        };
        let report = scaled(
            &traffic,
            cost_aware_cfg(1),
            2,
            DispatchPolicy::JoinShortestQueue,
        );
        assert_eq!(report.outcomes.len(), 12);
        let ids: Vec<u64> = report.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..12).collect::<Vec<_>>());
        // Both replicas served some of the stream.
        assert!(report.replicas.iter().all(|r| r.requests > 0));
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_rejected() {
        let (spec, hw) = mixtral();
        let _ = serve_scaled(
            &StubEngine,
            &spec,
            &hw,
            &Traffic::Open(Vec::new()),
            &ScaleConfig {
                serve: cost_aware_cfg(1),
                replicas: 0,
                dispatch: DispatchPolicy::RoundRobin,
            },
        );
    }
}
