//! Admission control: when to cut a batch group from the request queue.
//!
//! The offline engines assume a batch group of `n` batches already exists;
//! online, the admission controller *forms* those groups from a FIFO queue.
//! Three policies are compared:
//!
//! * [`AdmissionPolicy::FixedN`] — wait for exactly `n` full batches (the
//!   paper's offline shape, transplanted online). Maximal weight sharing,
//!   unbounded queueing delay at low load.
//! * [`AdmissionPolicy::Deadline`] — dispatch at `n` batches *or* when the
//!   oldest request has waited `deadline`, whichever comes first (partial
//!   groups trade pipeline depth for tail latency).
//! * [`AdmissionPolicy::CostAware`] — work-conserving: dispatch whatever is
//!   queued whenever the engine is free, but consult the
//!   [`CostModel`]-based service-time estimate to cap the group at the
//!   largest `n` whose estimated completion still fits the end-to-end
//!   latency budget.

use klotski_core::compress::Compression;
use klotski_core::planner::Planner;
use klotski_model::cost::CostModel;
use klotski_sim::time::SimDuration;

/// How batch groups are cut from the queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdmissionPolicy {
    /// Wait until `n` full batches are queued (flushes at end of stream).
    FixedN {
        /// Batch-group size.
        n: u32,
    },
    /// Dispatch at `n` full batches, or as a partial group once the oldest
    /// queued request has waited `deadline`.
    Deadline {
        /// Maximal batch-group size.
        n: u32,
        /// Oldest-request wait that triggers a partial group.
        deadline: SimDuration,
    },
    /// Work-conserving, cost-model-informed: dispatch whenever the engine
    /// is free, sized to the largest `n ≤ max_n` whose estimated service
    /// time (plus the wait already incurred) fits `slo_e2e`.
    CostAware {
        /// Upper bound on the batch-group size explored.
        max_n: u32,
        /// Per-request end-to-end latency budget.
        slo_e2e: SimDuration,
    },
}

/// Why a group was dispatched (recorded per group; the proptests assert
/// trigger/shape consistency).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupTrigger {
    /// The policy's full `n` batches were available.
    Full,
    /// The deadline expired on the oldest queued request.
    DeadlineExpired,
    /// End of stream: remaining requests flushed.
    Flush,
    /// Cost-aware dispatch (engine free, group sized by the cost model).
    CostAware,
    /// Continuous-mode admission wave: requests joined freed slots of a
    /// running batch at a step boundary (see
    /// [`serve_continuous`](crate::continuous::serve_continuous)).
    Refill,
}

impl AdmissionPolicy {
    /// The policy's cap on batches per group.
    pub fn max_batches(&self) -> u32 {
        match *self {
            AdmissionPolicy::FixedN { n } | AdmissionPolicy::Deadline { n, .. } => n,
            AdmissionPolicy::CostAware { max_n, .. } => max_n,
        }
    }

    /// Short stable name for tables and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            AdmissionPolicy::FixedN { .. } => "fixed_n",
            AdmissionPolicy::Deadline { .. } => "deadline",
            AdmissionPolicy::CostAware { .. } => "cost_aware",
        }
    }

    /// How many requests to drain for the group being cut, and why.
    ///
    /// Groups are always a whole number of `batch_size` batches, except
    /// when fewer than `batch_size` requests are taken — those form one
    /// ragged batch (a [`Workload`](klotski_model::workload::Workload) with
    /// `batch_size = count`).
    ///
    /// `estimate` maps a candidate group size `n` to the estimated service
    /// time (used by the cost-aware policy only).
    pub(crate) fn take(
        &self,
        queued: usize,
        oldest_wait: SimDuration,
        eos: bool,
        batch_size: u32,
        estimate: &dyn Fn(u32) -> SimDuration,
    ) -> (usize, GroupTrigger) {
        debug_assert!(queued > 0);
        let bs = batch_size as usize;
        let cap_batches = match *self {
            AdmissionPolicy::CostAware { max_n, slo_e2e } => {
                if oldest_wait + estimate(1) > slo_e2e {
                    // The oldest request misses the SLO no matter how the
                    // group is sized; stop optimizing its latency and
                    // drain the backlog at maximal batching instead.
                    max_n
                } else {
                    // Largest n whose estimated completion still fits the
                    // budget for the oldest (worst-off) request.
                    let mut best = 1u32;
                    for n in 2..=max_n {
                        if oldest_wait + estimate(n) <= slo_e2e {
                            best = n;
                        } else {
                            break;
                        }
                    }
                    best
                }
            }
            _ => self.max_batches(),
        };
        let cap = (cap_batches as usize) * bs;
        let count = if queued < bs {
            queued.min(cap) // one ragged batch
        } else {
            (queued / bs * bs).min(cap)
        };
        let trigger = match *self {
            AdmissionPolicy::CostAware { .. } => GroupTrigger::CostAware,
            AdmissionPolicy::FixedN { n } | AdmissionPolicy::Deadline { n, .. } => {
                if count == (n * batch_size) as usize {
                    GroupTrigger::Full
                } else if matches!(self, AdmissionPolicy::Deadline { .. })
                    && !eos
                    && oldest_wait >= self.deadline().unwrap_or(SimDuration::ZERO)
                {
                    GroupTrigger::DeadlineExpired
                } else {
                    GroupTrigger::Flush
                }
            }
        };
        (count, trigger)
    }

    fn deadline(&self) -> Option<SimDuration> {
        match *self {
            AdmissionPolicy::Deadline { deadline, .. } => Some(deadline),
            _ => None,
        }
    }
}

/// The per-step decomposition of [`estimate_group_service`]: the group's
/// prefill span and the cost of one decode step, from the same calibrated
/// [`CostModel`]. The group estimate is exactly
/// `prefill + decode_step × (gen_len − 1)` — the identity the continuous
/// scheduler's cost accounting relies on (and the tests pin), so a group
/// costs the same whether it is scheduled atomically or step by step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepEstimate {
    /// Estimated prefill span for the whole group.
    pub prefill: SimDuration,
    /// Estimated cost of one decode step over the whole group.
    pub decode_step: SimDuration,
}

impl StepEstimate {
    /// The group service estimate this decomposes:
    /// `prefill + decode_step × (gen_len − 1)`.
    pub fn group(&self, gen_len: u32) -> SimDuration {
        self.prefill + self.decode_step * gen_len.saturating_sub(1) as u64
    }

    /// The span of the prefill chunk covering prompt tokens
    /// `[done, done + take)` of a `prompt_len`-token prompt.
    ///
    /// Chunks are sliced by prefix difference —
    /// `prefill × (done + take)/prompt − prefill × done/prompt` in integer
    /// nanoseconds — so any chunking of the prompt sums to exactly
    /// [`StepEstimate::prefill`], preserving byte-level cost parity with
    /// the unchunked prefill.
    pub fn prefill_chunk(&self, done: u32, take: u32, prompt_len: u32) -> SimDuration {
        let p = self.prefill.as_nanos();
        let len = u64::from(prompt_len.max(1));
        let lo = u64::from(done.min(prompt_len));
        let hi = u64::from(done.saturating_add(take).min(prompt_len));
        SimDuration::from_nanos(p * hi / len - p * lo / len)
    }
}

/// Per-step analytic service estimate for one batch group — the cost-aware
/// policy's stage-1 "measurement", built from the same [`CostModel`] the
/// engines use. Per layer the pipeline runs compute and I/O concurrently,
/// so a layer costs the longer of the two; prefill activates essentially
/// every expert, decode the expected activated subset.
pub fn estimate_step_service(
    cost: &CostModel,
    batch_size: u32,
    n: u32,
    prompt_len: u32,
    gen_len: u32,
) -> StepEstimate {
    let spec = cost.spec();
    let bs = batch_size as u64;
    let nb = n as u64;
    let n_moe = spec.n_moe_layers() as u64;
    let n_dense = spec.n_layers as u64 - n_moe;
    let ctx = prompt_len as u64 + gen_len as u64 / 2;

    let planner = Planner::new(cost.clone(), Compression::none());
    let moe_layer = |new_tokens: u64, attn: SimDuration| -> SimDuration {
        let group_tokens = bs * nb * new_tokens;
        let selections = group_tokens * spec.top_k.max(1) as u64;
        let e_act = planner
            .expected_activated(group_tokens, None)
            .ceil()
            .max(1.0);
        let per_expert = (selections as f64 / e_act).ceil() as u64;
        let compute = attn * nb
            + cost.gate_time(bs * new_tokens) * nb
            + cost.expert_time(per_expert) * e_act as u64;
        let io = cost.gate_h2d_time()
            + SimDuration::from_secs_f64(cost.expert_h2d_time(1.0).as_secs_f64() * e_act)
            + cost.attn_h2d_time(1.0);
        compute.max(io)
    };
    let dense_layer = |new_tokens: u64, attn: SimDuration| -> SimDuration {
        let compute = (attn + cost.dense_ffn_time(bs * new_tokens)) * nb;
        compute.max(cost.attn_h2d_time(1.0))
    };

    let attn_prefill = cost.attention_prefill_time(bs, prompt_len as u64);
    let attn_decode = cost.attention_time(bs, 1, ctx);
    let prefill = moe_layer(prompt_len as u64, attn_prefill) * n_moe
        + dense_layer(prompt_len as u64, attn_prefill) * n_dense;
    let decode_step = moe_layer(1, attn_decode) * n_moe + dense_layer(1, attn_decode) * n_dense;
    StepEstimate {
        prefill,
        decode_step,
    }
}

/// Analytic service-time estimate for one whole batch group: the sum of
/// [`estimate_step_service`]'s prefill and `gen_len − 1` decode steps.
pub fn estimate_group_service(
    cost: &CostModel,
    batch_size: u32,
    n: u32,
    prompt_len: u32,
    gen_len: u32,
) -> SimDuration {
    estimate_step_service(cost, batch_size, n, prompt_len, gen_len).group(gen_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_model::hardware::HardwareSpec;
    use klotski_model::spec::ModelSpec;

    fn cm() -> CostModel {
        CostModel::new(ModelSpec::mixtral_8x7b(), HardwareSpec::env1_rtx3090())
    }

    const NO_EST: &dyn Fn(u32) -> SimDuration = &|_| SimDuration::ZERO;

    #[test]
    fn fixed_n_waits_for_full_groups() {
        let p = AdmissionPolicy::FixedN { n: 3 };
        let (count, trig) = p.take(14, SimDuration::ZERO, false, 4, NO_EST);
        assert_eq!((count, trig), (12, GroupTrigger::Full));
        let (count, trig) = p.take(6, SimDuration::ZERO, true, 4, NO_EST);
        assert_eq!((count, trig), (4, GroupTrigger::Flush));
        let (count, trig) = p.take(2, SimDuration::ZERO, true, 4, NO_EST);
        assert_eq!((count, trig), (2, GroupTrigger::Flush));
    }

    #[test]
    fn deadline_triggers_partial_groups() {
        let p = AdmissionPolicy::Deadline {
            n: 4,
            deadline: SimDuration::from_secs(2),
        };
        let (count, trig) = p.take(6, SimDuration::from_secs(2), false, 4, NO_EST);
        assert_eq!((count, trig), (4, GroupTrigger::DeadlineExpired));
        // A ragged sub-batch group when fewer than one batch is queued.
        let (count, trig) = p.take(3, SimDuration::from_secs(2), false, 4, NO_EST);
        assert_eq!((count, trig), (3, GroupTrigger::DeadlineExpired));
    }

    #[test]
    fn cost_aware_caps_n_under_the_budget() {
        let p = AdmissionPolicy::CostAware {
            max_n: 8,
            slo_e2e: SimDuration::from_secs(10),
        };
        // Estimated service: 2 s per batch — only 5 batches fit 10 s.
        let est = |n: u32| SimDuration::from_secs(2) * n as u64;
        let (count, trig) = p.take(40, SimDuration::ZERO, false, 4, &est);
        assert_eq!((count, trig), (20, GroupTrigger::CostAware));
        // Wait already incurred shrinks the remaining budget.
        let (count, _) = p.take(40, SimDuration::from_secs(6), false, 4, &est);
        assert_eq!(count, 8);
        // Over budget entirely: the oldest request is lost to the SLO
        // either way, so the policy drains at maximal batching.
        let (count, _) = p.take(40, SimDuration::from_secs(100), false, 4, &est);
        assert_eq!(count, 32);
    }

    #[test]
    fn groups_are_whole_batches() {
        let p = AdmissionPolicy::CostAware {
            max_n: 8,
            slo_e2e: SimDuration::from_secs(1000),
        };
        let (count, _) = p.take(11, SimDuration::ZERO, false, 4, NO_EST);
        assert_eq!(count, 8, "rounded down to whole batches");
        let (count, _) = p.take(3, SimDuration::ZERO, false, 4, NO_EST);
        assert_eq!(count, 3, "sub-batch queue forms one ragged batch");
    }

    #[test]
    fn estimate_grows_with_n_and_work() {
        let cm = cm();
        let t1 = estimate_group_service(&cm, 8, 1, 128, 8);
        let t4 = estimate_group_service(&cm, 8, 4, 128, 8);
        let t8 = estimate_group_service(&cm, 8, 8, 128, 8);
        assert!(t1 < t4 && t4 < t8, "{t1} {t4} {t8}");
        let long = estimate_group_service(&cm, 8, 4, 128, 32);
        assert!(long > t4);
    }

    #[test]
    fn summed_step_estimates_match_the_group_estimate() {
        let cm = cm();
        for &(bs, n, p, g) in &[(1, 1, 8, 1), (4, 2, 128, 8), (8, 4, 512, 32), (3, 1, 77, 5)] {
            let step = estimate_step_service(&cm, bs, n, p, g);
            let summed = step.prefill + step.decode_step * u64::from(g - 1);
            assert_eq!(
                summed,
                estimate_group_service(&cm, bs, n, p, g),
                "shape ({bs},{n},{p},{g})"
            );
            assert_eq!(step.group(g), summed);
        }
    }

    #[test]
    fn prefill_chunks_sum_to_the_whole_prefill() {
        let cm = cm();
        let step = estimate_step_service(&cm, 4, 2, 509, 8);
        // 509 is prime: no chunk size divides it, so every chunking
        // exercises the remainder path.
        for chunk in [1, 7, 64, 509, 1000] {
            let mut done = 0;
            let mut sum = SimDuration::ZERO;
            while done < 509 {
                let take = chunk.min(509 - done);
                sum += step.prefill_chunk(done, take, 509);
                done += take;
            }
            assert_eq!(sum, step.prefill, "chunk size {chunk}");
        }
        // Chunks are monotone slices: a later window never costs more than
        // the whole.
        assert!(step.prefill_chunk(100, 50, 509) <= step.prefill);
        assert_eq!(step.prefill_chunk(509, 10, 509), SimDuration::ZERO);
    }

    #[test]
    fn estimate_is_in_a_sane_range() {
        // One group at paper-ish scale must land between "instant" and
        // "minutes" for the budget comparison to be meaningful.
        let cm = cm();
        let t = estimate_group_service(&cm, 16, 8, 512, 32);
        let secs = t.as_secs_f64();
        assert!((1.0..600.0).contains(&secs), "estimate = {secs} s");
    }
}
