//! Request traffic: arrival processes and length distributions.
//!
//! The offline harness fixes one [`Workload`](klotski_model::workload::Workload)
//! shape up front; a server sees a *stream* of requests instead. This module
//! turns a seeded PRNG into that stream: open-loop arrivals (Poisson or
//! uniformly paced — load independent of service times) are pre-generated
//! here, while closed-loop traffic (each client waits for its previous
//! request) is driven by the serving loop as completions happen.
//!
//! Real production load is not stationary: request rates cycle with the
//! day and spike under flash crowds. [`RateProfile`]s compose a
//! time-varying rate multiplier over any base process
//! ([`generate_with_profile`] warps the base stream so its instantaneous
//! rate tracks the profile), and recorded
//! [`RequestTrace`](klotski_model::trace::RequestTrace)s replay verbatim
//! through [`replay`] — the cluster simulator's three load regimes.

use klotski_model::trace::RequestTrace;
use klotski_sim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One user request as the front-end sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Stable id, assigned in issue order.
    pub id: u64,
    /// When the request entered the system.
    pub arrival: SimTime,
    /// Prompt length in tokens.
    pub prompt_len: u32,
    /// Tokens the request wants generated.
    pub gen_len: u32,
}

/// A token-length distribution, sampled deterministically under a seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LengthDist {
    /// Every request has exactly this length.
    Fixed(u32),
    /// Uniform over `[lo, hi]` (inclusive).
    Uniform {
        /// Smallest length (≥ 1).
        lo: u32,
        /// Largest length.
        hi: u32,
    },
    /// Mostly light with a heavy tail: with probability `heavy_pct`% the
    /// length is exactly `heavy`, otherwise uniform over `[lo, hi]`. The
    /// serving-paper shape where per-request cost variance makes blind
    /// request-count balancing diverge from work balancing.
    HeavyTail {
        /// Smallest light length (≥ 1).
        lo: u32,
        /// Largest light length.
        hi: u32,
        /// The heavy length (typically ≫ `hi`).
        heavy: u32,
        /// Percentage of requests drawing the heavy length (0–100).
        heavy_pct: u32,
    },
}

impl LengthDist {
    /// Draws one length.
    ///
    /// # Panics
    ///
    /// Panics if the distribution can produce 0 or has `lo > hi` — every
    /// request must carry at least one prompt token and generate at least
    /// one token.
    pub fn sample(&self, rng: &mut StdRng) -> u32 {
        match *self {
            LengthDist::Fixed(v) => {
                assert!(v > 0, "lengths must be positive");
                v
            }
            LengthDist::Uniform { lo, hi } => {
                assert!(lo > 0 && lo <= hi, "need 1 <= lo <= hi");
                rng.gen_range(lo..=hi)
            }
            LengthDist::HeavyTail {
                lo,
                hi,
                heavy,
                heavy_pct,
            } => {
                assert!(lo > 0 && lo <= hi, "need 1 <= lo <= hi");
                assert!(heavy > 0, "lengths must be positive");
                assert!(heavy_pct <= 100, "heavy_pct is a percentage");
                if rng.gen_range(0..100u32) < heavy_pct {
                    heavy
                } else {
                    rng.gen_range(lo..=hi)
                }
            }
        }
    }

    /// The largest length the distribution can produce.
    pub fn max(&self) -> u32 {
        match *self {
            LengthDist::Fixed(v) => v,
            LengthDist::Uniform { hi, .. } => hi,
            LengthDist::HeavyTail { hi, heavy, .. } => hi.max(heavy),
        }
    }
}

/// Open-loop arrival processes (arrivals do not react to service times).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Poisson process: exponential inter-arrival gaps at `rate` req/s.
    Poisson {
        /// Mean arrival rate in requests per second (> 0).
        rate: f64,
    },
    /// Uniformly paced: one request every `1/rate` seconds exactly.
    Paced {
        /// Arrival rate in requests per second (> 0).
        rate: f64,
    },
    /// Bursty: `burst` requests land at the same instant, bursts arriving
    /// as a Poisson process at `rate / burst` so the long-run request rate
    /// is still `rate`. The serving-paper regime where dispatch policy —
    /// not average load — decides SLO attainment.
    Bursty {
        /// Mean arrival rate in requests per second (> 0).
        rate: f64,
        /// Requests per burst (> 0; `1` degenerates to Poisson).
        burst: u32,
    },
}

/// Shape of a request stream: how many requests, their lengths, the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficConfig {
    /// Total number of requests to issue.
    pub num_requests: u32,
    /// Prompt-length distribution.
    pub prompt: LengthDist,
    /// Output-length distribution.
    pub gen: LengthDist,
    /// PRNG seed; same seed ⇒ byte-identical stream.
    pub seed: u64,
}

impl TrafficConfig {
    /// A fixed-shape stream (every request identical) — the shape offline
    /// experiments use, so serve results can be cross-checked against
    /// [`Workload`](klotski_model::workload::Workload) totals.
    pub fn fixed(num_requests: u32, prompt_len: u32, gen_len: u32, seed: u64) -> Self {
        TrafficConfig {
            num_requests,
            prompt: LengthDist::Fixed(prompt_len),
            gen: LengthDist::Fixed(gen_len),
            seed,
        }
    }
}

/// Pre-generates an open-loop request stream, sorted by arrival time.
///
/// # Panics
///
/// Panics if the arrival rate is not positive.
pub fn generate(arrivals: Arrivals, cfg: &TrafficConfig) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut t = SimTime::ZERO;
    let mut out = Vec::with_capacity(cfg.num_requests as usize);
    for id in 0..cfg.num_requests as u64 {
        let gap = match arrivals {
            Arrivals::Poisson { rate } => {
                assert!(rate > 0.0, "arrival rate must be positive");
                // Inverse-CDF exponential; u ∈ [0, 1) keeps ln(1−u) finite.
                let u: f64 = rng.gen();
                SimDuration::from_secs_f64(-(1.0 - u).ln() / rate)
            }
            Arrivals::Paced { rate } => {
                assert!(rate > 0.0, "arrival rate must be positive");
                SimDuration::from_secs_f64(1.0 / rate)
            }
            Arrivals::Bursty { rate, burst } => {
                assert!(rate > 0.0, "arrival rate must be positive");
                assert!(burst > 0, "burst size must be positive");
                if id % burst as u64 == 0 {
                    // Exponential gap between bursts (mean burst/rate).
                    let u: f64 = rng.gen();
                    SimDuration::from_secs_f64(-(1.0 - u).ln() * burst as f64 / rate)
                } else {
                    SimDuration::ZERO
                }
            }
        };
        // The first request arrives at t = 0 so every run starts loaded.
        if id > 0 {
            t += gap;
        }
        out.push(Request {
            id,
            arrival: t,
            prompt_len: cfg.prompt.sample(&mut rng),
            gen_len: cfg.gen.sample(&mut rng),
        });
    }
    out
}

/// A time-varying multiplier on a base arrival process's instantaneous
/// rate. Profiles compose multiplicatively (pass several to
/// [`generate_with_profile`]), so a flash crowd can ride on a diurnal
/// cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RateProfile {
    /// A day-like cycle: the rate multiplier swings sinusoidally between
    /// `trough` (at `t = 0`) and `peak` (half a period later) with the
    /// given period.
    Diurnal {
        /// Cycle length (> 0).
        period: SimDuration,
        /// Rate multiplier at the cycle's low point (> 0).
        trough: f64,
        /// Rate multiplier at the cycle's high point (≥ `trough`).
        peak: f64,
    },
    /// A flash crowd: the rate jumps to `magnitude ×` base inside
    /// `[at, at + width)` and is unchanged elsewhere.
    FlashCrowd {
        /// When the crowd hits.
        at: SimTime,
        /// How long it lasts (> 0).
        width: SimDuration,
        /// Rate multiplier during the spike (> 0).
        magnitude: f64,
    },
}

impl RateProfile {
    /// The rate multiplier at instant `t`.
    ///
    /// # Panics
    ///
    /// Panics on non-positive parameters (`period`, `trough`, `width`,
    /// `magnitude`) or `peak < trough`.
    pub fn multiplier(&self, t: SimTime) -> f64 {
        match *self {
            RateProfile::Diurnal {
                period,
                trough,
                peak,
            } => {
                assert!(!period.is_zero(), "diurnal period must be positive");
                assert!(trough > 0.0 && peak >= trough, "need 0 < trough <= peak");
                let phase = t.saturating_since(SimTime::ZERO).as_secs_f64() / period.as_secs_f64();
                trough + (peak - trough) * 0.5 * (1.0 - (2.0 * std::f64::consts::PI * phase).cos())
            }
            RateProfile::FlashCrowd {
                at,
                width,
                magnitude,
            } => {
                assert!(!width.is_zero(), "flash-crowd width must be positive");
                assert!(magnitude > 0.0, "flash-crowd magnitude must be positive");
                if t >= at && t < at + width {
                    magnitude
                } else {
                    1.0
                }
            }
        }
    }

    /// Short stable name for tables and JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            RateProfile::Diurnal { .. } => "diurnal",
            RateProfile::FlashCrowd { .. } => "flash_crowd",
        }
    }

    /// The finest time scale the profile varies on — the warp's
    /// integration step divides it so piecewise-constant integration
    /// tracks the profile closely.
    fn scale(&self) -> SimDuration {
        match *self {
            RateProfile::Diurnal { period, .. } => period / 512,
            RateProfile::FlashCrowd { width, .. } => width / 64,
        }
    }
}

/// Pre-generates an open-loop stream whose instantaneous rate is the base
/// process's rate times the product of the `profiles`' multipliers.
///
/// The base stream from [`generate`] is warped by deterministic
/// area-consumption: arrival `i` lands at the instant `t` where
/// `∫₀ᵗ m(s) ds` equals its base arrival time, with `m` integrated
/// piecewise-constant at a step well below every profile's time scale.
/// High-multiplier intervals therefore compress inter-arrival gaps
/// (higher rate) and low-multiplier intervals stretch them, while request
/// ids, lengths, ordering, and same-instant bursts are all preserved. An
/// empty profile list returns the base stream unchanged.
///
/// # Panics
///
/// Panics on invalid profile parameters or a non-positive base rate.
pub fn generate_with_profile(
    arrivals: Arrivals,
    cfg: &TrafficConfig,
    profiles: &[RateProfile],
) -> Vec<Request> {
    let mut reqs = generate(arrivals, cfg);
    if profiles.is_empty() {
        return reqs;
    }
    let step = profiles
        .iter()
        .map(|p| p.scale())
        .min()
        .expect("non-empty profiles")
        .max(SimDuration::from_nanos(1_000))
        .as_secs_f64();
    let multiplier = |t: f64| -> f64 {
        profiles
            .iter()
            .map(|p| p.multiplier(SimTime::ZERO + SimDuration::from_secs_f64(t)))
            .product()
    };
    // Walk the warped timeline slot by slot, consuming base-time "area";
    // the walk state persists across requests, so equal base arrivals map
    // to equal warped arrivals and ordering is preserved.
    let mut slot_start = 0.0_f64;
    let mut area = 0.0_f64;
    let mut m_slot = multiplier(0.0);
    for r in reqs.iter_mut() {
        let target = r.arrival.saturating_since(SimTime::ZERO).as_secs_f64();
        while area + m_slot * step < target {
            area += m_slot * step;
            slot_start += step;
            m_slot = multiplier(slot_start);
        }
        let t = slot_start + (target - area) / m_slot;
        r.arrival = SimTime::ZERO + SimDuration::from_secs_f64(t);
    }
    reqs
}

/// Records an open-loop stream as a replayable
/// [`RequestTrace`](klotski_model::trace::RequestTrace).
///
/// # Panics
///
/// Panics if `requests` is not in arrival order (see
/// [`RequestTrace::record`]).
pub fn to_trace(requests: &[Request]) -> RequestTrace {
    RequestTrace::record(
        requests
            .iter()
            .map(|r| (r.arrival, r.prompt_len, r.gen_len)),
    )
}

/// Replays a recorded trace as an open-loop stream: one request per row,
/// ids assigned in row order — [`to_trace`] then [`replay`] reproduces the
/// original stream exactly.
pub fn replay(trace: &RequestTrace) -> Vec<Request> {
    trace
        .rows
        .iter()
        .enumerate()
        .map(|(id, row)| Request {
            id: id as u64,
            arrival: row.at,
            prompt_len: row.prompt_len,
            gen_len: row.gen_len,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let cfg = TrafficConfig {
            num_requests: 50,
            prompt: LengthDist::Uniform { lo: 32, hi: 512 },
            gen: LengthDist::Uniform { lo: 4, hi: 32 },
            seed: 9,
        };
        let a = generate(Arrivals::Poisson { rate: 2.0 }, &cfg);
        let b = generate(Arrivals::Poisson { rate: 2.0 }, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn arrivals_are_sorted_and_start_at_zero() {
        let cfg = TrafficConfig::fixed(40, 128, 8, 3);
        let reqs = generate(Arrivals::Poisson { rate: 1.0 }, &cfg);
        assert_eq!(reqs.len(), 40);
        assert_eq!(reqs[0].arrival, SimTime::ZERO);
        for w in reqs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
            assert_eq!(w[0].id + 1, w[1].id);
        }
    }

    #[test]
    fn poisson_rate_scales_the_span() {
        let cfg = TrafficConfig::fixed(200, 128, 8, 7);
        let slow = generate(Arrivals::Poisson { rate: 1.0 }, &cfg);
        let fast = generate(Arrivals::Poisson { rate: 8.0 }, &cfg);
        let span = |v: &[Request]| v.last().unwrap().arrival.as_secs_f64();
        // 200 arrivals at 8 req/s land ~8× sooner than at 1 req/s.
        let ratio = span(&slow) / span(&fast);
        assert!((4.0..16.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn paced_arrivals_are_evenly_spaced() {
        let cfg = TrafficConfig::fixed(5, 128, 8, 1);
        let reqs = generate(Arrivals::Paced { rate: 4.0 }, &cfg);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.arrival.as_nanos(), i as u64 * 250_000_000);
        }
    }

    #[test]
    fn uniform_lengths_stay_in_bounds() {
        let cfg = TrafficConfig {
            num_requests: 300,
            prompt: LengthDist::Uniform { lo: 10, hi: 20 },
            gen: LengthDist::Uniform { lo: 2, hi: 4 },
            seed: 5,
        };
        let reqs = generate(Arrivals::Paced { rate: 1.0 }, &cfg);
        assert!(reqs.iter().all(|r| (10..=20).contains(&r.prompt_len)));
        assert!(reqs.iter().all(|r| (2..=4).contains(&r.gen_len)));
        // Both endpoints are actually hit.
        assert!(reqs.iter().any(|r| r.prompt_len == 10));
        assert!(reqs.iter().any(|r| r.prompt_len == 20));
    }

    #[test]
    fn heavy_tail_mixes_two_populations() {
        let dist = LengthDist::HeavyTail {
            lo: 16,
            hi: 32,
            heavy: 1024,
            heavy_pct: 20,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<u32> = (0..400).map(|_| dist.sample(&mut rng)).collect();
        let heavies = samples.iter().filter(|&&v| v == 1024).count();
        assert!(samples.iter().all(|&v| v == 1024 || (16..=32).contains(&v)));
        // ~20% ± sampling noise.
        assert!((40..=160).contains(&heavies), "heavies = {heavies}");
        assert_eq!(dist.max(), 1024);
    }

    #[test]
    fn bursty_arrivals_land_together() {
        let cfg = TrafficConfig::fixed(40, 128, 8, 9);
        let reqs = generate(
            Arrivals::Bursty {
                rate: 2.0,
                burst: 8,
            },
            &cfg,
        );
        // Requests within one burst share an arrival instant…
        for chunk in reqs.chunks(8) {
            assert!(chunk.iter().all(|r| r.arrival == chunk[0].arrival));
        }
        // …and distinct bursts are separated (an exponential gap is
        // almost surely nonzero).
        let mut instants: Vec<_> = reqs.iter().map(|r| r.arrival).collect();
        instants.dedup();
        assert_eq!(instants.len(), 5, "five bursts of eight");
        // Long-run rate matches the Poisson process of the same rate to
        // within sampling noise: 40 requests at 2 req/s span ~20 s.
        let span = reqs.last().unwrap().arrival.as_secs_f64();
        assert!((5.0..80.0).contains(&span), "span = {span}");
    }

    #[test]
    fn burst_of_one_is_poisson() {
        let cfg = TrafficConfig::fixed(30, 128, 8, 4);
        let a = generate(
            Arrivals::Bursty {
                rate: 3.0,
                burst: 1,
            },
            &cfg,
        );
        let b = generate(Arrivals::Poisson { rate: 3.0 }, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let cfg = TrafficConfig::fixed(1, 128, 8, 0);
        let _ = generate(Arrivals::Poisson { rate: 0.0 }, &cfg);
    }

    #[test]
    fn empty_profile_list_is_identity() {
        let cfg = TrafficConfig::fixed(20, 64, 4, 3);
        let base = generate(Arrivals::Poisson { rate: 2.0 }, &cfg);
        let warped = generate_with_profile(Arrivals::Poisson { rate: 2.0 }, &cfg, &[]);
        assert_eq!(base, warped);
    }

    #[test]
    fn unit_profile_is_near_identity() {
        let cfg = TrafficConfig::fixed(30, 64, 4, 3);
        let base = generate(Arrivals::Poisson { rate: 2.0 }, &cfg);
        let warped = generate_with_profile(
            Arrivals::Poisson { rate: 2.0 },
            &cfg,
            &[RateProfile::Diurnal {
                period: SimDuration::from_secs(60),
                trough: 1.0,
                peak: 1.0,
            }],
        );
        // A constant multiplier of 1 only accumulates float slack from the
        // slot walk — well under a microsecond over this span.
        for (b, w) in base.iter().zip(&warped) {
            let diff = w
                .arrival
                .saturating_since(b.arrival)
                .max(b.arrival.saturating_since(w.arrival));
            assert!(diff < SimDuration::from_nanos(1_000), "drift {diff}");
        }
    }

    #[test]
    fn warp_preserves_shape_order_and_bursts() {
        let cfg = TrafficConfig {
            num_requests: 48,
            prompt: LengthDist::Uniform { lo: 16, hi: 64 },
            gen: LengthDist::Uniform { lo: 2, hi: 8 },
            seed: 11,
        };
        let arrivals = Arrivals::Bursty {
            rate: 2.0,
            burst: 8,
        };
        let base = generate(arrivals, &cfg);
        let warped = generate_with_profile(
            arrivals,
            &cfg,
            &[RateProfile::Diurnal {
                period: SimDuration::from_secs(30),
                trough: 0.2,
                peak: 4.0,
            }],
        );
        assert_eq!(warped.len(), base.len());
        for (b, w) in base.iter().zip(&warped) {
            assert_eq!(
                (b.id, b.prompt_len, b.gen_len),
                (w.id, w.prompt_len, w.gen_len)
            );
        }
        for w in warped.windows(2) {
            assert!(w[0].arrival <= w[1].arrival, "warp must preserve order");
        }
        // Bursts stay simultaneous through the warp.
        for chunk in warped.chunks(8) {
            assert!(chunk.iter().all(|r| r.arrival == chunk[0].arrival));
        }
    }

    #[test]
    fn flash_crowd_compresses_the_window() {
        // A paced stream at 1 req/s, spiked 10× over [10 s, 20 s) of the
        // *warped* timeline: base arrivals that land in the window get
        // 100 ms gaps instead of 1 s gaps.
        let cfg = TrafficConfig::fixed(60, 64, 4, 1);
        let warped = generate_with_profile(
            Arrivals::Paced { rate: 1.0 },
            &cfg,
            &[RateProfile::FlashCrowd {
                at: SimTime::from_nanos(10_000_000_000),
                width: SimDuration::from_secs(10),
                magnitude: 10.0,
            }],
        );
        let in_window = warped
            .iter()
            .filter(|r| {
                r.arrival >= SimTime::from_nanos(10_000_000_000)
                    && r.arrival < SimTime::from_nanos(20_000_000_000)
            })
            .count();
        // 10 warped seconds at 10× a 1 req/s base ≈ 100 arrivals; the
        // stream only has 60, so most of it lands inside the window.
        assert!(in_window > 40, "only {in_window} arrivals in the spike");
    }

    #[test]
    fn diurnal_peak_attracts_arrivals() {
        let cfg = TrafficConfig::fixed(400, 64, 4, 5);
        let period = SimDuration::from_secs(100);
        let warped = generate_with_profile(
            Arrivals::Poisson { rate: 4.0 },
            &cfg,
            &[RateProfile::Diurnal {
                period,
                trough: 0.2,
                peak: 3.0,
            }],
        );
        // Within the first full cycle, the peak half-period [P/4, 3P/4)
        // must hold clearly more arrivals than the trough half.
        let (mut peak_half, mut trough_half) = (0, 0);
        for r in &warped {
            let t = r.arrival.saturating_since(SimTime::ZERO).as_secs_f64();
            if t >= 100.0 {
                continue;
            }
            if (25.0..75.0).contains(&t) {
                peak_half += 1;
            } else {
                trough_half += 1;
            }
        }
        assert!(
            peak_half > 2 * trough_half.max(1),
            "peak {peak_half} vs trough {trough_half}"
        );
    }

    #[test]
    fn trace_record_replay_round_trip() {
        let cfg = TrafficConfig {
            num_requests: 25,
            prompt: LengthDist::Uniform { lo: 16, hi: 64 },
            gen: LengthDist::Uniform { lo: 2, hi: 8 },
            seed: 7,
        };
        let stream = generate_with_profile(
            Arrivals::Poisson { rate: 3.0 },
            &cfg,
            &[RateProfile::Diurnal {
                period: SimDuration::from_secs(20),
                trough: 0.5,
                peak: 2.0,
            }],
        );
        let trace = to_trace(&stream);
        // Through the text format and back: still the exact stream.
        let parsed = klotski_model::trace::RequestTrace::parse(&trace.to_text()).expect("parse");
        assert_eq!(replay(&parsed), stream);
    }

    #[test]
    #[should_panic(expected = "trough")]
    fn invalid_diurnal_rejected() {
        let p = RateProfile::Diurnal {
            period: SimDuration::from_secs(10),
            trough: 2.0,
            peak: 1.0,
        };
        let _ = p.multiplier(SimTime::ZERO);
    }
}
