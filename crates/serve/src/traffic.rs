//! Request traffic: arrival processes and length distributions.
//!
//! The offline harness fixes one [`Workload`](klotski_model::workload::Workload)
//! shape up front; a server sees a *stream* of requests instead. This module
//! turns a seeded PRNG into that stream: open-loop arrivals (Poisson or
//! uniformly paced — load independent of service times) are pre-generated
//! here, while closed-loop traffic (each client waits for its previous
//! request) is driven by the serving loop as completions happen.

use klotski_sim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One user request as the front-end sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Stable id, assigned in issue order.
    pub id: u64,
    /// When the request entered the system.
    pub arrival: SimTime,
    /// Prompt length in tokens.
    pub prompt_len: u32,
    /// Tokens the request wants generated.
    pub gen_len: u32,
}

/// A token-length distribution, sampled deterministically under a seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LengthDist {
    /// Every request has exactly this length.
    Fixed(u32),
    /// Uniform over `[lo, hi]` (inclusive).
    Uniform {
        /// Smallest length (≥ 1).
        lo: u32,
        /// Largest length.
        hi: u32,
    },
    /// Mostly light with a heavy tail: with probability `heavy_pct`% the
    /// length is exactly `heavy`, otherwise uniform over `[lo, hi]`. The
    /// serving-paper shape where per-request cost variance makes blind
    /// request-count balancing diverge from work balancing.
    HeavyTail {
        /// Smallest light length (≥ 1).
        lo: u32,
        /// Largest light length.
        hi: u32,
        /// The heavy length (typically ≫ `hi`).
        heavy: u32,
        /// Percentage of requests drawing the heavy length (0–100).
        heavy_pct: u32,
    },
}

impl LengthDist {
    /// Draws one length.
    ///
    /// # Panics
    ///
    /// Panics if the distribution can produce 0 or has `lo > hi` — every
    /// request must carry at least one prompt token and generate at least
    /// one token.
    pub fn sample(&self, rng: &mut StdRng) -> u32 {
        match *self {
            LengthDist::Fixed(v) => {
                assert!(v > 0, "lengths must be positive");
                v
            }
            LengthDist::Uniform { lo, hi } => {
                assert!(lo > 0 && lo <= hi, "need 1 <= lo <= hi");
                rng.gen_range(lo..=hi)
            }
            LengthDist::HeavyTail {
                lo,
                hi,
                heavy,
                heavy_pct,
            } => {
                assert!(lo > 0 && lo <= hi, "need 1 <= lo <= hi");
                assert!(heavy > 0, "lengths must be positive");
                assert!(heavy_pct <= 100, "heavy_pct is a percentage");
                if rng.gen_range(0..100u32) < heavy_pct {
                    heavy
                } else {
                    rng.gen_range(lo..=hi)
                }
            }
        }
    }

    /// The largest length the distribution can produce.
    pub fn max(&self) -> u32 {
        match *self {
            LengthDist::Fixed(v) => v,
            LengthDist::Uniform { hi, .. } => hi,
            LengthDist::HeavyTail { hi, heavy, .. } => hi.max(heavy),
        }
    }
}

/// Open-loop arrival processes (arrivals do not react to service times).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Poisson process: exponential inter-arrival gaps at `rate` req/s.
    Poisson {
        /// Mean arrival rate in requests per second (> 0).
        rate: f64,
    },
    /// Uniformly paced: one request every `1/rate` seconds exactly.
    Paced {
        /// Arrival rate in requests per second (> 0).
        rate: f64,
    },
    /// Bursty: `burst` requests land at the same instant, bursts arriving
    /// as a Poisson process at `rate / burst` so the long-run request rate
    /// is still `rate`. The serving-paper regime where dispatch policy —
    /// not average load — decides SLO attainment.
    Bursty {
        /// Mean arrival rate in requests per second (> 0).
        rate: f64,
        /// Requests per burst (> 0; `1` degenerates to Poisson).
        burst: u32,
    },
}

/// Shape of a request stream: how many requests, their lengths, the seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficConfig {
    /// Total number of requests to issue.
    pub num_requests: u32,
    /// Prompt-length distribution.
    pub prompt: LengthDist,
    /// Output-length distribution.
    pub gen: LengthDist,
    /// PRNG seed; same seed ⇒ byte-identical stream.
    pub seed: u64,
}

impl TrafficConfig {
    /// A fixed-shape stream (every request identical) — the shape offline
    /// experiments use, so serve results can be cross-checked against
    /// [`Workload`](klotski_model::workload::Workload) totals.
    pub fn fixed(num_requests: u32, prompt_len: u32, gen_len: u32, seed: u64) -> Self {
        TrafficConfig {
            num_requests,
            prompt: LengthDist::Fixed(prompt_len),
            gen: LengthDist::Fixed(gen_len),
            seed,
        }
    }
}

/// Pre-generates an open-loop request stream, sorted by arrival time.
///
/// # Panics
///
/// Panics if the arrival rate is not positive.
pub fn generate(arrivals: Arrivals, cfg: &TrafficConfig) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut t = SimTime::ZERO;
    let mut out = Vec::with_capacity(cfg.num_requests as usize);
    for id in 0..cfg.num_requests as u64 {
        let gap = match arrivals {
            Arrivals::Poisson { rate } => {
                assert!(rate > 0.0, "arrival rate must be positive");
                // Inverse-CDF exponential; u ∈ [0, 1) keeps ln(1−u) finite.
                let u: f64 = rng.gen();
                SimDuration::from_secs_f64(-(1.0 - u).ln() / rate)
            }
            Arrivals::Paced { rate } => {
                assert!(rate > 0.0, "arrival rate must be positive");
                SimDuration::from_secs_f64(1.0 / rate)
            }
            Arrivals::Bursty { rate, burst } => {
                assert!(rate > 0.0, "arrival rate must be positive");
                assert!(burst > 0, "burst size must be positive");
                if id % burst as u64 == 0 {
                    // Exponential gap between bursts (mean burst/rate).
                    let u: f64 = rng.gen();
                    SimDuration::from_secs_f64(-(1.0 - u).ln() * burst as f64 / rate)
                } else {
                    SimDuration::ZERO
                }
            }
        };
        // The first request arrives at t = 0 so every run starts loaded.
        if id > 0 {
            t += gap;
        }
        out.push(Request {
            id,
            arrival: t,
            prompt_len: cfg.prompt.sample(&mut rng),
            gen_len: cfg.gen.sample(&mut rng),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let cfg = TrafficConfig {
            num_requests: 50,
            prompt: LengthDist::Uniform { lo: 32, hi: 512 },
            gen: LengthDist::Uniform { lo: 4, hi: 32 },
            seed: 9,
        };
        let a = generate(Arrivals::Poisson { rate: 2.0 }, &cfg);
        let b = generate(Arrivals::Poisson { rate: 2.0 }, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn arrivals_are_sorted_and_start_at_zero() {
        let cfg = TrafficConfig::fixed(40, 128, 8, 3);
        let reqs = generate(Arrivals::Poisson { rate: 1.0 }, &cfg);
        assert_eq!(reqs.len(), 40);
        assert_eq!(reqs[0].arrival, SimTime::ZERO);
        for w in reqs.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
            assert_eq!(w[0].id + 1, w[1].id);
        }
    }

    #[test]
    fn poisson_rate_scales_the_span() {
        let cfg = TrafficConfig::fixed(200, 128, 8, 7);
        let slow = generate(Arrivals::Poisson { rate: 1.0 }, &cfg);
        let fast = generate(Arrivals::Poisson { rate: 8.0 }, &cfg);
        let span = |v: &[Request]| v.last().unwrap().arrival.as_secs_f64();
        // 200 arrivals at 8 req/s land ~8× sooner than at 1 req/s.
        let ratio = span(&slow) / span(&fast);
        assert!((4.0..16.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn paced_arrivals_are_evenly_spaced() {
        let cfg = TrafficConfig::fixed(5, 128, 8, 1);
        let reqs = generate(Arrivals::Paced { rate: 4.0 }, &cfg);
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.arrival.as_nanos(), i as u64 * 250_000_000);
        }
    }

    #[test]
    fn uniform_lengths_stay_in_bounds() {
        let cfg = TrafficConfig {
            num_requests: 300,
            prompt: LengthDist::Uniform { lo: 10, hi: 20 },
            gen: LengthDist::Uniform { lo: 2, hi: 4 },
            seed: 5,
        };
        let reqs = generate(Arrivals::Paced { rate: 1.0 }, &cfg);
        assert!(reqs.iter().all(|r| (10..=20).contains(&r.prompt_len)));
        assert!(reqs.iter().all(|r| (2..=4).contains(&r.gen_len)));
        // Both endpoints are actually hit.
        assert!(reqs.iter().any(|r| r.prompt_len == 10));
        assert!(reqs.iter().any(|r| r.prompt_len == 20));
    }

    #[test]
    fn heavy_tail_mixes_two_populations() {
        let dist = LengthDist::HeavyTail {
            lo: 16,
            hi: 32,
            heavy: 1024,
            heavy_pct: 20,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<u32> = (0..400).map(|_| dist.sample(&mut rng)).collect();
        let heavies = samples.iter().filter(|&&v| v == 1024).count();
        assert!(samples.iter().all(|&v| v == 1024 || (16..=32).contains(&v)));
        // ~20% ± sampling noise.
        assert!((40..=160).contains(&heavies), "heavies = {heavies}");
        assert_eq!(dist.max(), 1024);
    }

    #[test]
    fn bursty_arrivals_land_together() {
        let cfg = TrafficConfig::fixed(40, 128, 8, 9);
        let reqs = generate(
            Arrivals::Bursty {
                rate: 2.0,
                burst: 8,
            },
            &cfg,
        );
        // Requests within one burst share an arrival instant…
        for chunk in reqs.chunks(8) {
            assert!(chunk.iter().all(|r| r.arrival == chunk[0].arrival));
        }
        // …and distinct bursts are separated (an exponential gap is
        // almost surely nonzero).
        let mut instants: Vec<_> = reqs.iter().map(|r| r.arrival).collect();
        instants.dedup();
        assert_eq!(instants.len(), 5, "five bursts of eight");
        // Long-run rate matches the Poisson process of the same rate to
        // within sampling noise: 40 requests at 2 req/s span ~20 s.
        let span = reqs.last().unwrap().arrival.as_secs_f64();
        assert!((5.0..80.0).contains(&span), "span = {span}");
    }

    #[test]
    fn burst_of_one_is_poisson() {
        let cfg = TrafficConfig::fixed(30, 128, 8, 4);
        let a = generate(
            Arrivals::Bursty {
                rate: 3.0,
                burst: 1,
            },
            &cfg,
        );
        let b = generate(Arrivals::Poisson { rate: 3.0 }, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let cfg = TrafficConfig::fixed(1, 128, 8, 0);
        let _ = generate(Arrivals::Poisson { rate: 0.0 }, &cfg);
    }
}
