//! The serving loop: requests in, batch groups through an engine, timed
//! outcomes out.
//!
//! The loop is built from replica-local state: a [`Replica`] owns one
//! engine's admission queue and clock, forms batch groups with the
//! [`AdmissionPolicy`], and runs them over simulated time. The shared
//! [`drive`] event loop interleaves request arrivals with group
//! formations in global time order, routing each arrival to a replica
//! through a pluggable router. The single-engine [`serve`] entry point is
//! one replica behind a trivial router; the multi-replica
//! [`dispatcher`](crate::dispatcher) shards the same stream over `R`
//! replicas — both paths execute the identical per-replica code, so their
//! results are directly comparable.
//!
//! While a group runs, new requests queue; when the engine frees, the
//! admission policy decides when to cut the next group and how large. Each
//! group becomes one [`Workload`] (padded to its longest prompt/output) and
//! one [`Scenario`], so Klotski and every baseline engine can serve the
//! same traffic and be compared policy-for-policy.
//!
//! Per-request timings carry the queueing delay the offline harness never
//! sees: `TTFT = wait + group prefill`, and a request's last token lands at
//! its own `gen_len` (shorter requests in a padded group finish earlier,
//! while the pace-setting requests finish exactly when the engine frees).

use std::collections::VecDeque;

use klotski_core::scenario::{Engine, EngineError, Scenario, StepEngine};
use klotski_model::cost::CostModel;
use klotski_model::hardware::HardwareSpec;
use klotski_model::spec::ModelSpec;
use klotski_model::workload::Workload;
use klotski_sim::event::EventQueue;
use klotski_sim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::admission::{estimate_group_service, AdmissionPolicy, GroupTrigger};
use crate::traffic::{Request, TrafficConfig};

/// Traffic fed to the serving loop.
#[derive(Debug, Clone)]
pub enum Traffic {
    /// Open loop: a pre-generated arrival stream (see
    /// [`traffic::generate`](crate::traffic::generate)).
    Open(Vec<Request>),
    /// Closed loop: `clients` concurrent users; each issues its next
    /// request `think` after its previous one completes, until
    /// `cfg.num_requests` have been issued in total.
    Closed {
        /// Concurrent clients (all issue their first request at t = 0).
        clients: u32,
        /// Think time between a completion and the next request.
        think: SimDuration,
        /// Stream shape (lengths + total request count + seed).
        cfg: TrafficConfig,
    },
}

/// Serving-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Sequences per batch within a group.
    pub batch_size: u32,
    /// The admission policy forming batch groups.
    pub policy: AdmissionPolicy,
    /// Seed for per-group scenario generation (gating traces).
    pub seed: u64,
}

/// How a request's service concluded under the fault-tolerance machinery
/// (see [`cluster::faults`](crate::cluster::faults)). Fault-free paths
/// always record [`RetryOutcome::FirstTry`], so adding this field changes
/// no existing byte-identity: every pinned path produces identical values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryOutcome {
    /// Served on its first dispatch — the only value non-fault runs emit.
    FirstTry,
    /// Served after this many crash-driven redispatches (≥ 1).
    Retried(u32),
    /// Rejected at admission by the degradation policy; never served.
    /// Timing fields all equal the arrival instant and `failed` is set.
    Shed,
    /// Lost to a crash with its retry budget exhausted. Timing fields all
    /// equal the crash instant and `failed` is set.
    Dropped,
}

impl RetryOutcome {
    /// Whether the request was actually served (first try or retried).
    pub fn served(&self) -> bool {
        matches!(self, RetryOutcome::FirstTry | RetryOutcome::Retried(_))
    }
}

/// One served request with its full timing breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Request id (stable from the traffic stream).
    pub id: u64,
    /// Arrival time.
    pub arrival: SimTime,
    /// When the request's group was dispatched to the engine.
    pub dispatched: SimTime,
    /// When the request's first generated token landed (end of the group's
    /// prefill).
    pub first_token: SimTime,
    /// When the request's *own* last token landed.
    pub finished: SimTime,
    /// Prompt tokens.
    pub prompt_len: u32,
    /// Generated tokens.
    pub gen_len: u32,
    /// Index of the group that served this request.
    pub group: u32,
    /// Replica that served this request (0 for single-engine [`serve`]).
    pub replica: u32,
    /// Whether the request failed: its group aborted (OOM), it was shed at
    /// admission, or it was dropped after a crash — timings are then
    /// meaningless and the request counts as an SLO violation.
    pub failed: bool,
    /// Retry/shed disposition ([`RetryOutcome::FirstTry`] on every
    /// fault-free path).
    pub retry: RetryOutcome,
}

impl RequestOutcome {
    /// Time spent queued before dispatch.
    pub fn queue_delay(&self) -> SimDuration {
        self.dispatched.saturating_since(self.arrival)
    }

    /// Time to first token (queueing delay + group prefill).
    pub fn ttft(&self) -> SimDuration {
        self.first_token.saturating_since(self.arrival)
    }

    /// Time per output token after the first (zero for 1-token outputs).
    pub fn tpot(&self) -> SimDuration {
        if self.gen_len <= 1 {
            return SimDuration::ZERO;
        }
        self.finished.saturating_since(self.first_token) / (self.gen_len - 1) as u64
    }

    /// End-to-end latency (arrival → own last token).
    pub fn e2e(&self) -> SimDuration {
        self.finished.saturating_since(self.arrival)
    }
}

/// One dispatched batch group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupRecord {
    /// Group index, in dispatch order across all replicas.
    pub index: u32,
    /// Replica that ran the group (0 for single-engine [`serve`]).
    pub replica: u32,
    /// Dispatch (= formation) time.
    pub dispatched: SimTime,
    /// The padded workload handed to the engine.
    pub workload: Workload,
    /// Requests in the group (`= workload.total_seqs()`).
    pub n_requests: u32,
    /// What cut the group.
    pub trigger: GroupTrigger,
    /// The engine's service time for the group.
    pub service_time: SimDuration,
    /// The group's prefill span.
    pub prefill_time: SimDuration,
    /// Whether the engine aborted with OOM.
    pub oom: bool,
}

/// How one replica spent a serving run.
///
/// Static fleets ([`serve`] / [`serve_scaled`](crate::dispatcher::serve_scaled))
/// report `spawned == SimTime::ZERO`, `retired == None`, and
/// `lifetime == makespan`; cluster runs
/// ([`serve_cluster`](crate::cluster::serve_cluster)) report the actual
/// birth/retirement span, so `utilization` is always busy time over the
/// window the replica *existed*, not over the whole run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaUtilization {
    /// Replica id (always 0 for single-engine [`serve`]).
    pub replica: u32,
    /// Groups this replica dispatched.
    pub groups: u32,
    /// Requests this replica served (failed ones included).
    pub requests: u32,
    /// Engine-busy time: the sum of this replica's group service times.
    pub busy: SimDuration,
    /// Generated tokens of this replica's completed (non-OOM) requests.
    pub tokens: u64,
    /// When the replica was born (`ZERO` for static fleets).
    pub spawned: SimTime,
    /// When the replica retired (`None` if it outlived the run).
    pub retired: Option<SimTime>,
    /// The span the replica existed within the run: birth (or first
    /// arrival, whichever is later) → retirement (or run end). Equals the
    /// makespan for static fleets.
    pub lifetime: SimDuration,
    /// `busy` over `lifetime` (0 when the lifetime is zero).
    pub utilization: f64,
}

/// Everything one serving run produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Engine name.
    pub engine: String,
    /// Per-request outcomes, in request-id order.
    pub outcomes: Vec<RequestOutcome>,
    /// Per-group records, in dispatch order (interleaved across replicas).
    pub groups: Vec<GroupRecord>,
    /// Per-replica utilization, in replica-id order (one entry for
    /// single-engine [`serve`]).
    pub replicas: Vec<ReplicaUtilization>,
    /// First arrival → last completed token.
    pub makespan: SimDuration,
}

impl ServeReport {
    /// Total replica-hours consumed: the sum of every replica's lifetime,
    /// in hours — the fleet-cost metric autoscaling trades against SLO
    /// attainment. For a static fleet this is `R × makespan`.
    pub fn replica_hours(&self) -> f64 {
        self.replicas
            .iter()
            .map(|r| r.lifetime.as_secs_f64() / 3600.0)
            .sum()
    }

    /// Sustained throughput: generated tokens of completed requests over
    /// the makespan.
    pub fn throughput_tps(&self) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        let tokens: u64 = self
            .outcomes
            .iter()
            .filter(|o| !o.failed)
            .map(|o| o.gen_len as u64)
            .sum();
        tokens as f64 / self.makespan.as_secs_f64()
    }
}

/// Drives `engine` over `traffic` and returns per-request outcomes.
///
/// # Errors
///
/// Returns [`EngineError`] if the engine rejects a scenario as invalid
/// (configuration errors — OOM is a per-group *result*, not an error).
///
/// # Panics
///
/// Panics if `cfg.batch_size` is zero, the policy's group size is zero,
/// or closed-loop traffic promises requests but has no clients to issue
/// them.
pub fn serve(
    engine: &dyn Engine,
    spec: &ModelSpec,
    hw: &HardwareSpec,
    traffic: &Traffic,
    cfg: &ServeConfig,
) -> Result<ServeReport, EngineError> {
    drive(engine, spec, hw, traffic, cfg, 1, &mut |_, _, _| 0)
}

/// Everything [`Replica::run_group`] needs beyond replica-local state.
pub(crate) struct EngineCtx<'a> {
    engine: &'a dyn Engine,
    spec: &'a ModelSpec,
    hw: &'a HardwareSpec,
    cost: CostModel,
    cfg: &'a ServeConfig,
}

impl<'a> EngineCtx<'a> {
    pub(crate) fn new(
        engine: &'a dyn Engine,
        spec: &'a ModelSpec,
        hw: &'a HardwareSpec,
        cfg: &'a ServeConfig,
    ) -> Self {
        EngineCtx {
            engine,
            spec,
            hw,
            cost: CostModel::new(spec.clone(), hw.clone()),
            cfg,
        }
    }

    pub(crate) fn engine_name(&self) -> String {
        self.engine.name()
    }

    pub(crate) fn cost(&self) -> &CostModel {
        &self.cost
    }

    pub(crate) fn spec(&self) -> &ModelSpec {
        self.spec
    }
}

/// A completed request, reported back so closed-loop clients can react.
pub(crate) struct Completion {
    pub(crate) finished: SimTime,
    pub(crate) failed: bool,
}

/// The serving interleave's single tie rule: does the earliest pending
/// group formation run before the earliest pending arrival? At equal
/// instants the arrival is ingested first, so a request arriving exactly
/// when an engine frees still joins that group. `None` means neither event
/// exists — the run is over. Shared by [`drive`] and the cluster loop so
/// both layers order events identically.
pub(crate) fn formation_precedes(
    next_arrival: Option<SimTime>,
    next_form: Option<SimTime>,
) -> Option<bool> {
    match (next_arrival, next_form) {
        (None, None) => None,
        (Some(at), Some(tf)) => Some(tf < at),
        (Some(_), None) => Some(false),
        (None, Some(_)) => Some(true),
    }
}

/// The shared serving event loop behind [`serve`] and the dispatcher.
///
/// Interleaves arrivals and group formations in global simulated-time
/// order. Every arrival is routed through `route`, which sees the
/// replicas' queues and clocks exactly as of the arrival instant (groups
/// that would form earlier have already run). Arrivals at the same instant
/// as a formation are ingested first, so a request arriving exactly when
/// the engine frees still joins that group — the same ingest-then-cut
/// order the single-engine loop has always had.
pub(crate) fn drive(
    engine: &dyn Engine,
    spec: &ModelSpec,
    hw: &HardwareSpec,
    traffic: &Traffic,
    cfg: &ServeConfig,
    n_replicas: u32,
    route: &mut dyn FnMut(&Request, &[Replica], &CostModel) -> usize,
) -> Result<ServeReport, EngineError> {
    assert!(cfg.batch_size > 0, "batch_size must be positive");
    assert!(cfg.policy.max_batches() > 0, "group size must be positive");
    assert!(n_replicas > 0, "need at least one replica");
    if let Traffic::Closed {
        clients, cfg: tc, ..
    } = traffic
    {
        assert!(
            *clients > 0 || tc.num_requests == 0,
            "closed-loop traffic needs at least one client"
        );
    }

    let mut source = ArrivalSource::new(traffic);
    let mut replicas: Vec<Replica> = (0..n_replicas)
        .map(|id| Replica::new(id, cfg.seed))
        .collect();
    let ctx = EngineCtx::new(engine, spec, hw, cfg);
    let mut outcomes: Vec<RequestOutcome> = Vec::new();
    let mut groups: Vec<GroupRecord> = Vec::new();
    // The instant end-of-stream became knowable: a flush can be cut no
    // earlier than the last arrival that proved the queue complete.
    let mut last_arrival = SimTime::ZERO;

    loop {
        let next_arrival = source.peek();
        // "End of stream" means no *known* future arrival; a closed-loop
        // completion may still push more, exactly as in the single-engine
        // loop, where flushes between think-time gaps are intended.
        let eos = next_arrival.is_none();
        let next_form = replicas
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.next_form_time(cfg, eos, last_arrival).map(|t| (t, i)))
            .min();
        let Some(form_first) = formation_precedes(next_arrival, next_form.map(|(t, _)| t)) else {
            break;
        };
        if form_first {
            let (t_form, i) = next_form.expect("formation event");
            let done = replicas[i].run_group(t_form, eos, &ctx, &mut outcomes, &mut groups)?;
            for c in &done {
                source.on_complete(c.finished, c.failed);
            }
        } else {
            let r = source.pop();
            last_arrival = last_arrival.max(r.arrival);
            let idx = route(&r, &replicas, &ctx.cost);
            assert!(
                idx < replicas.len(),
                "router picked replica {idx} of {}",
                replicas.len()
            );
            replicas[idx].enqueue(r);
        }
    }

    outcomes.sort_by_key(|o| o.id);
    let first_arrival = outcomes
        .iter()
        .map(|o| o.arrival)
        .min()
        .unwrap_or(SimTime::ZERO);
    let last_finish = outcomes
        .iter()
        .map(|o| o.finished)
        .max()
        .unwrap_or(SimTime::ZERO);
    let makespan = last_finish.saturating_since(first_arrival);
    let replicas = replicas
        .iter()
        .map(|r| r.stats(first_arrival, last_finish))
        .collect();
    Ok(ServeReport {
        engine: engine.name(),
        outcomes,
        groups,
        replicas,
        makespan,
    })
}

/// One engine replica's serving state: its admission queue, its clock, and
/// its running utilization totals. Shared verbatim between the
/// single-engine loop and the multi-replica dispatcher.
pub(crate) struct Replica {
    id: u32,
    /// Per-replica scenario-seed base (replica 0 preserves the
    /// single-engine seed stream exactly).
    seed: u64,
    queue: VecDeque<Request>,
    t_free: SimTime,
    queued_tokens: u64,
    /// Tokens of the group currently on the engine (count toward the
    /// backlog until `t_free`, prorated by remaining service time).
    inflight_tokens: u64,
    /// Service time of the group currently on the engine.
    inflight_service: SimDuration,
    /// Dispatch instant of the group currently on the engine.
    inflight_at: SimTime,
    /// Requests of the group currently on the engine with their own
    /// finish instants — what a crash loses (see [`Replica::crash`]).
    inflight: Vec<(Request, SimTime)>,
    /// Injected straggler multiplier in percent; 100 is healthy and takes
    /// the exact pre-fault arithmetic path.
    slowdown_pct: u32,
    local_groups: u64,
    busy: SimDuration,
    served: u32,
    tokens: u64,
    /// Birth instant (`ZERO` for static fleets).
    spawned: SimTime,
    /// Retirement instant, once the cluster loop drains and retires it.
    retired: Option<SimTime>,
}

impl Replica {
    pub(crate) fn new(id: u32, seed: u64) -> Self {
        Replica::new_at(id, seed, SimTime::ZERO)
    }

    /// A replica born mid-run (cluster scale-up); its scenario seed stream
    /// depends only on `(id, seed)`, never on the birth time, so a static
    /// cluster reproduces `serve_scaled` exactly.
    pub(crate) fn new_at(id: u32, seed: u64, spawned: SimTime) -> Self {
        let salt = u64::from(id).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        Replica {
            id,
            seed: seed.wrapping_add(salt),
            queue: VecDeque::new(),
            t_free: spawned,
            queued_tokens: 0,
            inflight_tokens: 0,
            inflight_service: SimDuration::ZERO,
            inflight_at: spawned,
            inflight: Vec::new(),
            slowdown_pct: 100,
            local_groups: 0,
            busy: SimDuration::ZERO,
            served: 0,
            tokens: 0,
            spawned,
            retired: None,
        }
    }

    /// Marks the replica retired at `at` (drained, engine free).
    pub(crate) fn retire(&mut self, at: SimTime) {
        debug_assert!(self.queue.is_empty(), "retiring with queued work");
        self.retired = Some(at);
    }

    /// When this replica's engine frees (or freed).
    pub(crate) fn t_free(&self) -> SimTime {
        self.t_free
    }

    /// Requests waiting in the admission queue.
    pub(crate) fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Tokens (prompt + requested output) in the system as of `at`: the
    /// admission queue plus the *unserved remainder* of the group still on
    /// the engine — the join-shortest-queue dispatch metric. Counting
    /// in-flight work keeps a busy engine with a freshly drained queue
    /// from dogpiling; prorating it by remaining service time keeps a
    /// nearly finished group from repelling work it no longer represents.
    pub(crate) fn backlog_tokens(&self, at: SimTime) -> u64 {
        let inflight = if self.t_free > at && !self.inflight_service.is_zero() {
            let remaining = self.t_free.saturating_since(at).as_nanos() as u128;
            let service = self.inflight_service.as_nanos() as u128;
            (self.inflight_tokens as u128 * remaining.min(service) / service) as u64
        } else {
            0
        };
        self.queued_tokens + inflight
    }

    /// Padded shape (max prompt, max gen) of the current queue; `(1, 1)`
    /// when empty.
    pub(crate) fn queue_shape(&self) -> (u32, u32) {
        self.queue
            .iter()
            .fold((1, 1), |(p, g), r| (p.max(r.prompt_len), g.max(r.gen_len)))
    }

    pub(crate) fn enqueue(&mut self, r: Request) {
        self.queued_tokens += u64::from(r.prompt_len) + u64::from(r.gen_len);
        self.queue.push_back(r);
    }

    /// The earliest instant at which this replica would cut a group, given
    /// the requests routed to it so far — `None` while the policy is
    /// waiting on arrivals that have not happened yet. An end-of-stream
    /// flush is never backdated before `last_arrival`, the instant the
    /// stream was known to be drained.
    pub(crate) fn next_form_time(
        &self,
        cfg: &ServeConfig,
        eos: bool,
        last_arrival: SimTime,
    ) -> Option<SimTime> {
        let front = self.queue.front()?;
        let bs = cfg.batch_size as usize;
        // The instant the queue first held `n` full batches (the requests
        // only leave at formation, so it is the n·bs-th arrival).
        let full_at = |n: u32| self.queue.get(n as usize * bs - 1).map(|r| r.arrival);
        let ready_at = if eos {
            Some(front.arrival.max(last_arrival))
        } else {
            match cfg.policy {
                AdmissionPolicy::FixedN { n } => full_at(n),
                AdmissionPolicy::Deadline { n, deadline } => {
                    let by_deadline = front.arrival + deadline;
                    Some(full_at(n).map_or(by_deadline, |t| t.min(by_deadline)))
                }
                AdmissionPolicy::CostAware { .. } => Some(front.arrival),
            }
        };
        ready_at.map(|t| t.max(self.t_free))
    }

    /// Cuts a group at `t_form`, runs it through the engine, and records
    /// outcomes; returns the completions so closed-loop clients can issue
    /// their next requests.
    pub(crate) fn run_group(
        &mut self,
        t_form: SimTime,
        eos: bool,
        ctx: &EngineCtx<'_>,
        outcomes: &mut Vec<RequestOutcome>,
        groups: &mut Vec<GroupRecord>,
    ) -> Result<Vec<Completion>, EngineError> {
        let cfg = ctx.cfg;
        let front = self.queue.front().expect("formation needs a queue");
        let wait = t_form.saturating_since(front.arrival);
        // Padded shape of the group actually being cut: only the front of
        // the queue (up to the policy's cap) is dispatchable, so requests
        // beyond it must not inflate the estimate.
        let horizon = (cfg.policy.max_batches() as usize) * cfg.batch_size as usize;
        let (prompt, gen) = self
            .queue
            .iter()
            .take(horizon)
            .fold((1, 1), |(p, g), r| (p.max(r.prompt_len), g.max(r.gen_len)));
        let estimate = |n: u32| estimate_group_service(&ctx.cost, cfg.batch_size, n, prompt, gen);
        let (count, trigger) =
            cfg.policy
                .take(self.queue.len(), wait, eos, cfg.batch_size, &estimate);
        // A ragged drain beyond one batch cannot be represented by the
        // padded workload shape; defer the tail to a trailing partial
        // group instead of silently dropping it from the engine's work.
        let count = clamp_drain(count, cfg.batch_size as usize);
        let batch: Vec<Request> = self.queue.drain(..count).collect();
        let batch_tokens: u64 = batch
            .iter()
            .map(|r| u64::from(r.prompt_len) + u64::from(r.gen_len))
            .sum();
        self.queued_tokens -= batch_tokens;
        self.inflight_tokens = batch_tokens;
        let wl = group_workload(&batch, cfg.batch_size);
        let seed = self.seed.wrapping_add(3 * self.local_groups);
        let scenario = Scenario::generate(ctx.spec.clone(), ctx.hw.clone(), wl, seed);
        // The engine/serve boundary is step-level: the run is consumed as a
        // StepPlan (prefill + uniform decode steps, remainder pinned to the
        // last step), with each request finishing at its own step boundary.
        // The blanket plan derives from the atomic run, so this
        // run-to-completion path is byte-identical to executing run()
        // directly — the golden pins hold it there.
        let plan = ctx.engine.plan_steps(&scenario)?;
        let oom = plan.oom;
        let (service, prefill) = if oom {
            (SimDuration::ZERO, SimDuration::ZERO)
        } else {
            (plan.total(), plan.prefill)
        };
        // An injected straggler runs every span of the group at the
        // multiplier; 100% bypasses the scaling entirely so healthy
        // replicas keep the exact pre-fault arithmetic (golden-pinned).
        let pct = self.slowdown_pct;
        let (service, prefill) = (scale_pct(service, pct), scale_pct(prefill, pct));
        let first_token = t_form + prefill;
        let group_end = t_form + service;
        // Decode pace of the padded group; each request stops at its own
        // gen_len. The step quantum truncates, so pace-setting requests
        // (gen_len == padded) are pinned to the exact engine-free instant
        // rather than drifting early by the accumulated remainder.
        let padded_gen = wl.gen_len;
        let mut done = Vec::with_capacity(batch.len());
        let mut latest = SimTime::ZERO;
        self.inflight.clear();
        for r in &batch {
            let finished = if oom {
                t_form
            } else {
                t_form + scale_pct(plan.finish_offset(r.gen_len, padded_gen), pct)
            };
            latest = latest.max(finished);
            outcomes.push(RequestOutcome {
                id: r.id,
                arrival: r.arrival,
                dispatched: t_form,
                first_token,
                finished,
                prompt_len: r.prompt_len,
                gen_len: r.gen_len,
                group: groups.len() as u32,
                replica: self.id,
                failed: oom,
                retry: RetryOutcome::FirstTry,
            });
            done.push(Completion {
                finished,
                failed: oom,
            });
            self.inflight.push((*r, finished));
        }
        assert!(
            oom || latest == group_end,
            "finish times must span the engine-busy horizon \
             (max finished {latest} != group end {group_end})"
        );
        groups.push(GroupRecord {
            index: groups.len() as u32,
            replica: self.id,
            dispatched: t_form,
            workload: wl,
            n_requests: batch.len() as u32,
            trigger,
            service_time: service,
            prefill_time: prefill,
            oom,
        });
        self.t_free = group_end;
        self.inflight_service = service;
        self.inflight_at = t_form;
        self.local_groups += 1;
        self.busy += service;
        self.served += batch.len() as u32;
        if !oom {
            self.tokens += batch.iter().map(|r| u64::from(r.gen_len)).sum::<u64>();
        }
        Ok(done)
    }

    /// Sets the injected straggler multiplier (percent; 100 = healthy).
    /// Applies to groups *dispatched* while the multiplier is in force.
    pub(crate) fn set_slowdown(&mut self, pct: u32) {
        assert!(pct >= 100, "slowdown below 100% would speed the engine up");
        self.slowdown_pct = pct;
    }

    /// The engine dies at `at`. Every queued request and every in-flight
    /// request whose own last token had not landed by `at` is lost — the
    /// group's KV state and any partially generated tokens are gone, so
    /// lost requests must be re-served from scratch. Requests whose last
    /// token landed at or before `at` stay served. The replica's counters
    /// are rolled back to what it really delivered: busy time is cut at
    /// the crash instant, and lost in-flight requests no longer count as
    /// served. The replica retires at `at` and must not be routed to
    /// again.
    pub(crate) fn crash(&mut self, at: SimTime) -> CrashLoss {
        let mut inflight = Vec::new();
        let mut wasted = SimDuration::ZERO;
        if self.t_free > at {
            wasted = at.saturating_since(self.inflight_at);
            self.busy = self.busy.saturating_sub(self.t_free.saturating_since(at));
            let oom = self.inflight_service.is_zero();
            for &(r, finished) in &self.inflight {
                if finished > at {
                    inflight.push(r);
                    self.served -= 1;
                    if !oom {
                        self.tokens -= u64::from(r.gen_len);
                    }
                }
            }
        }
        let queued: Vec<Request> = self.queue.drain(..).collect();
        self.queued_tokens = 0;
        self.inflight.clear();
        self.inflight_tokens = 0;
        self.inflight_service = SimDuration::ZERO;
        self.t_free = at;
        self.retired = Some(at);
        CrashLoss {
            inflight,
            queued,
            wasted,
        }
    }

    /// Removes every queued request matching `pred` (queue order kept for
    /// the rest) — the hedged-redispatch extraction path.
    pub(crate) fn take_queued_where(
        &mut self,
        pred: &mut dyn FnMut(&Request) -> bool,
    ) -> Vec<Request> {
        let mut taken = Vec::new();
        let mut kept = VecDeque::with_capacity(self.queue.len());
        for r in self.queue.drain(..) {
            if pred(&r) {
                self.queued_tokens -= u64::from(r.prompt_len) + u64::from(r.gen_len);
                taken.push(r);
            } else {
                kept.push_back(r);
            }
        }
        self.queue = kept;
        taken
    }

    /// Folds the replica's counters into a [`ReplicaUtilization`].
    ///
    /// `origin` is the run's first arrival and `run_end` its last finish:
    /// the lifetime spans birth (or `origin`, whichever is later) to
    /// retirement (or `run_end`), so a never-retired replica born at
    /// `ZERO` reports exactly the run makespan — static fleets are
    /// unchanged byte for byte.
    pub(crate) fn stats(&self, origin: SimTime, run_end: SimTime) -> ReplicaUtilization {
        let born = self.spawned.max(origin);
        let lifetime = self.retired.unwrap_or(run_end).saturating_since(born);
        ReplicaUtilization {
            replica: self.id,
            groups: self.local_groups as u32,
            requests: self.served,
            busy: self.busy,
            tokens: self.tokens,
            spawned: self.spawned,
            retired: self.retired,
            lifetime,
            utilization: if lifetime.is_zero() {
                0.0
            } else {
                self.busy.as_secs_f64() / lifetime.as_secs_f64()
            },
        }
    }
}

/// What a crash took from a replica (see [`Replica::crash`]).
pub(crate) struct CrashLoss {
    /// In-flight requests whose last token had not landed at the crash.
    pub(crate) inflight: Vec<Request>,
    /// Requests still waiting in the admission queue.
    pub(crate) queued: Vec<Request>,
    /// Engine-busy time the killed group burned before the crash — work
    /// that produced nothing deliverable.
    pub(crate) wasted: SimDuration,
}

/// Scales a duration by an integer percentage (exact in nanoseconds,
/// truncating). `pct == 100` is the identity by construction — the scaled
/// value never re-rounds, so healthy replicas are byte-identical to the
/// pre-fault arithmetic.
fn scale_pct(d: SimDuration, pct: u32) -> SimDuration {
    if pct == 100 {
        return d;
    }
    SimDuration::from_nanos((u128::from(d.as_nanos()) * u128::from(pct) / 100) as u64)
}

/// Clamps a requested drain to a shape [`group_workload`] represents
/// exactly: sub-batch drains pass through (one ragged batch), anything
/// larger rounds down to whole batches so the remainder stays queued for a
/// trailing partial group instead of being silently dropped.
pub(crate) fn clamp_drain(count: usize, batch_size: usize) -> usize {
    if count <= batch_size {
        count
    } else {
        count / batch_size * batch_size
    }
}

/// Pads a drained batch into one engine workload: whole batches of
/// `batch_size` when possible, otherwise a single ragged batch.
///
/// # Panics
///
/// Panics on a ragged multi-batch drain (`count > batch_size` and not a
/// whole number of batches): the padded shape cannot represent it, and
/// truncating `count / batch_size` would silently drop the remainder
/// requests from the engine's work while still emitting outcomes for them.
fn group_workload(batch: &[Request], batch_size: u32) -> Workload {
    let count = batch.len() as u32;
    let prompt = batch.iter().map(|r| r.prompt_len).max().expect("non-empty");
    let gen = batch.iter().map(|r| r.gen_len).max().expect("non-empty");
    if count < batch_size {
        Workload::new(count, 1, prompt, gen)
    } else {
        assert_eq!(
            count % batch_size,
            0,
            "drains beyond one batch must be whole batches"
        );
        Workload::new(batch_size, count / batch_size, prompt, gen)
    }
}

/// The request stream feeding [`drive`] and the cluster loop:
/// pre-generated open-loop arrivals plus the closed-loop state that issues
/// follow-up requests as completions happen.
///
/// Built on the simulator's [`EventQueue`], whose FIFO-among-ties rule is
/// the one ordering definition the whole tree uses. Same-instant arrivals
/// come out in request-id order because they are pushed in id order: open
/// streams are sorted by `(arrival, id)` before insertion, and closed-loop
/// follow-ups mint monotonically increasing ids as they are pushed.
pub(crate) struct ArrivalSource {
    /// Future arrivals, earliest first.
    future: EventQueue<(u64, u32, u32)>, // (id, prompt, gen)
    /// Closed-loop state: requests still to issue, lengths, think time.
    closed: Option<ClosedState>,
}

struct ClosedState {
    remaining: u32,
    think: SimDuration,
    cfg: TrafficConfig,
    rng: StdRng,
    next_id: u64,
}

impl ArrivalSource {
    pub(crate) fn new(traffic: &Traffic) -> Self {
        let mut future = EventQueue::new();
        let mut closed = None;
        match traffic {
            Traffic::Open(requests) => {
                // Push in (arrival, id) order so the queue's FIFO-at-ties
                // rule reproduces the id order the loop always ingested
                // same-instant arrivals in.
                let mut sorted: Vec<&Request> = requests.iter().collect();
                sorted.sort_by_key(|r| (r.arrival, r.id));
                for r in sorted {
                    future.push(r.arrival, (r.id, r.prompt_len, r.gen_len));
                }
            }
            Traffic::Closed {
                clients,
                think,
                cfg: tc,
            } => {
                let mut rng = StdRng::seed_from_u64(tc.seed);
                let initial = (*clients).min(tc.num_requests);
                for id in 0..initial as u64 {
                    let prompt = tc.prompt.sample(&mut rng);
                    let gen = tc.gen.sample(&mut rng);
                    future.push(SimTime::ZERO, (id, prompt, gen));
                }
                closed = Some(ClosedState {
                    remaining: tc.num_requests - initial,
                    think: *think,
                    cfg: *tc,
                    rng,
                    next_id: initial as u64,
                });
            }
        }
        ArrivalSource { future, closed }
    }

    /// The next arrival instant, if any request is already in flight.
    pub(crate) fn peek(&self) -> Option<SimTime> {
        self.future.peek_time()
    }

    /// Pops the earliest pending arrival (FIFO among ties — request-id
    /// order, the same order the single-engine queue always ingested them).
    pub(crate) fn pop(&mut self) -> Request {
        let (at, (id, prompt, gen)) = self.future.pop().expect("pop on an empty source");
        Request {
            id,
            arrival: at,
            prompt_len: prompt,
            gen_len: gen,
        }
    }

    /// A request completed at `finished`; in closed-loop mode its client
    /// issues the next request after thinking (unless the group failed —
    /// a failed client walks away, which also guarantees progress).
    pub(crate) fn on_complete(&mut self, finished: SimTime, failed: bool) {
        let Some(state) = self.closed.as_mut() else {
            return;
        };
        if failed || state.remaining == 0 {
            return;
        }
        state.remaining -= 1;
        let arrival = finished + state.think;
        let prompt = state.cfg.prompt.sample(&mut state.rng);
        let gen = state.cfg.gen.sample(&mut state.rng);
        self.future.push(arrival, (state.next_id, prompt, gen));
        state.next_id += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{generate, Arrivals, LengthDist};
    use klotski_core::report::InferenceReport;
    use proptest::prelude::*;

    /// A stub engine with a fixed per-batch cost: service = base +
    /// per_batch × num_batches, prefill = base. Makes queueing arithmetic
    /// exact in tests without running the simulator.
    struct StubEngine {
        base: SimDuration,
        per_batch: SimDuration,
    }

    impl StubEngine {
        fn new() -> Self {
            StubEngine {
                base: SimDuration::from_secs(1),
                per_batch: SimDuration::from_secs(1),
            }
        }
    }

    impl Engine for StubEngine {
        fn name(&self) -> String {
            "Stub".into()
        }

        fn run(&self, sc: &Scenario) -> Result<InferenceReport, EngineError> {
            let total = self.base + self.per_batch * sc.workload.num_batches as u64;
            Ok(InferenceReport {
                engine: self.name(),
                model: sc.spec.name.clone(),
                total_time: total,
                prefill_time: self.base,
                decode_time: total - self.base,
                generated_tokens: sc.workload.total_generated(),
                gpu_busy: total,
                gpu_bubble: SimDuration::ZERO,
                peak_vram: 0,
                peak_dram: 0,
                oom: None,
                metrics: None,
            })
        }
    }

    fn mixtral() -> (ModelSpec, HardwareSpec) {
        (ModelSpec::mixtral_8x7b(), HardwareSpec::env1_rtx3090())
    }

    fn serve_stub(traffic: &Traffic, cfg: &ServeConfig) -> ServeReport {
        let (spec, hw) = mixtral();
        serve(&StubEngine::new(), &spec, &hw, traffic, cfg).expect("serve")
    }

    #[test]
    fn all_requests_served_exactly_once() {
        let stream = generate(
            Arrivals::Poisson { rate: 4.0 },
            &TrafficConfig::fixed(37, 64, 4, 5),
        );
        let report = serve_stub(
            &Traffic::Open(stream),
            &ServeConfig {
                batch_size: 4,
                policy: AdmissionPolicy::FixedN { n: 3 },
                seed: 1,
            },
        );
        assert_eq!(report.outcomes.len(), 37);
        let ids: Vec<u64> = report.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..37).collect::<Vec<_>>());
        let grouped: u32 = report.groups.iter().map(|g| g.n_requests).sum();
        assert_eq!(grouped, 37);
        // One replica served everything.
        assert_eq!(report.replicas.len(), 1);
        assert_eq!(report.replicas[0].requests, 37);
        assert!(report.outcomes.iter().all(|o| o.replica == 0));
    }

    #[test]
    fn timings_are_causally_ordered() {
        let stream = generate(
            Arrivals::Poisson { rate: 2.0 },
            &TrafficConfig {
                num_requests: 20,
                prompt: LengthDist::Uniform { lo: 16, hi: 64 },
                gen: LengthDist::Uniform { lo: 2, hi: 8 },
                seed: 11,
            },
        );
        let report = serve_stub(
            &Traffic::Open(stream.clone()),
            &ServeConfig {
                batch_size: 4,
                policy: AdmissionPolicy::Deadline {
                    n: 4,
                    deadline: SimDuration::from_secs(2),
                },
                seed: 1,
            },
        );
        for o in &report.outcomes {
            assert!(o.dispatched >= o.arrival);
            assert!(o.first_token >= o.dispatched);
            assert!(o.finished >= o.first_token);
            assert!(o.ttft() >= o.queue_delay());
            assert!(o.e2e() >= o.ttft());
        }
        // Groups are dispatched in time order and never overlap.
        for w in report.groups.windows(2) {
            assert!(w[1].dispatched >= w[0].dispatched + w[0].service_time);
        }
    }

    #[test]
    fn fixed_n_groups_are_full_until_the_flush() {
        let stream = generate(
            Arrivals::Poisson { rate: 100.0 },
            &TrafficConfig::fixed(30, 64, 4, 5),
        );
        let report = serve_stub(
            &Traffic::Open(stream),
            &ServeConfig {
                batch_size: 4,
                policy: AdmissionPolicy::FixedN { n: 2 },
                seed: 1,
            },
        );
        for g in &report.groups {
            assert!(g.workload.num_batches <= 2);
            assert_eq!(g.n_requests as u64, g.workload.total_seqs());
            match g.trigger {
                GroupTrigger::Full => assert_eq!(g.n_requests, 8),
                GroupTrigger::Flush => assert!(g.n_requests < 8),
                other => panic!("unexpected trigger {other:?}"),
            }
        }
    }

    #[test]
    fn deadline_bounds_queue_delay_when_engine_is_idle() {
        // 1 request at t=0, nothing else until t=100 s: the deadline (2 s)
        // must dispatch a partial group at exactly t=2 s.
        let reqs = vec![
            Request {
                id: 0,
                arrival: SimTime::ZERO,
                prompt_len: 64,
                gen_len: 4,
            },
            Request {
                id: 1,
                arrival: SimTime::from_nanos(100_000_000_000),
                prompt_len: 64,
                gen_len: 4,
            },
        ];
        let report = serve_stub(
            &Traffic::Open(reqs),
            &ServeConfig {
                batch_size: 4,
                policy: AdmissionPolicy::Deadline {
                    n: 4,
                    deadline: SimDuration::from_secs(2),
                },
                seed: 1,
            },
        );
        assert_eq!(report.groups.len(), 2);
        assert_eq!(report.outcomes[0].queue_delay(), SimDuration::from_secs(2));
        assert_eq!(report.groups[0].trigger, GroupTrigger::DeadlineExpired);
        // The straggler is flushed as end-of-stream.
        assert_eq!(report.groups[1].trigger, GroupTrigger::Flush);
    }

    #[test]
    fn padding_lets_short_requests_finish_early() {
        let reqs = vec![
            Request {
                id: 0,
                arrival: SimTime::ZERO,
                prompt_len: 64,
                gen_len: 2,
            },
            Request {
                id: 1,
                arrival: SimTime::ZERO,
                prompt_len: 32,
                gen_len: 8,
            },
        ];
        let report = serve_stub(
            &Traffic::Open(reqs),
            &ServeConfig {
                batch_size: 2,
                policy: AdmissionPolicy::CostAware {
                    max_n: 4,
                    slo_e2e: SimDuration::from_secs(3600),
                },
                seed: 1,
            },
        );
        assert_eq!(report.groups.len(), 1);
        let wl = report.groups[0].workload;
        assert_eq!((wl.prompt_len, wl.gen_len), (64, 8), "padded to maxima");
        let [a, b] = report.outcomes[..] else {
            panic!("expected 2 outcomes")
        };
        assert!(a.finished < b.finished, "2-token request finishes first");
        assert_eq!(a.first_token, b.first_token);
    }

    /// Regression (finish-time truncation drift): with a decode span not
    /// divisible by `padded_gen − 1`, integer tpot used to strand the
    /// pace-setting request's last token *before* the engine freed,
    /// under-reporting the makespan and inflating throughput.
    #[test]
    fn pace_setting_requests_finish_exactly_when_the_engine_frees() {
        // decode = service − prefill = 10 s + 7 ns over padded_gen − 1 = 3
        // steps: truncates to 3_333_333_335 ns per step, 2 ns short over
        // the full span.
        struct RaggedStub;
        impl Engine for RaggedStub {
            fn name(&self) -> String {
                "RaggedStub".into()
            }
            fn run(&self, sc: &Scenario) -> Result<InferenceReport, EngineError> {
                let prefill = SimDuration::from_secs(1);
                let total = prefill + SimDuration::from_nanos(10_000_000_007);
                Ok(InferenceReport {
                    engine: self.name(),
                    model: sc.spec.name.clone(),
                    total_time: total,
                    prefill_time: prefill,
                    decode_time: total - prefill,
                    generated_tokens: sc.workload.total_generated(),
                    gpu_busy: total,
                    gpu_bubble: SimDuration::ZERO,
                    peak_vram: 0,
                    peak_dram: 0,
                    oom: None,
                    metrics: None,
                })
            }
        }
        let reqs = vec![
            Request {
                id: 0,
                arrival: SimTime::ZERO,
                prompt_len: 64,
                gen_len: 4, // pace-setter: padded_gen
            },
            Request {
                id: 1,
                arrival: SimTime::ZERO,
                prompt_len: 64,
                gen_len: 2,
            },
        ];
        let (spec, hw) = mixtral();
        let report = serve(
            &RaggedStub,
            &spec,
            &hw,
            &Traffic::Open(reqs),
            &ServeConfig {
                batch_size: 2,
                policy: AdmissionPolicy::CostAware {
                    max_n: 4,
                    slo_e2e: SimDuration::from_secs(3600),
                },
                seed: 1,
            },
        )
        .expect("serve");
        let g = &report.groups[0];
        let group_end = g.dispatched + g.service_time;
        // The longest request's last token lands exactly when the engine
        // frees — no truncation drift.
        assert_eq!(report.outcomes[0].finished, group_end);
        // And the makespan covers the whole engine-busy horizon.
        assert_eq!(
            report.makespan,
            group_end.saturating_since(SimTime::ZERO),
            "makespan must not under-report the engine-busy horizon"
        );
        // Shorter requests still pace at truncated tpot, strictly earlier.
        assert!(report.outcomes[1].finished < group_end);
    }

    /// Regression (ragged drain): a multi-batch drain that is not a whole
    /// number of batches must be rejected loudly — in release builds the
    /// old `debug_assert` let `count / batch_size` silently drop the
    /// remainder requests from the workload shape.
    #[test]
    #[should_panic(expected = "whole batches")]
    fn ragged_multi_batch_drain_is_rejected() {
        let reqs: Vec<Request> = (0..7)
            .map(|id| Request {
                id,
                arrival: SimTime::ZERO,
                prompt_len: 16,
                gen_len: 2,
            })
            .collect();
        let _ = group_workload(&reqs, 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        /// Draining any backlog through `clamp_drain` covers every request
        /// in finitely many valid groups — no silent truncation for any
        /// (backlog, batch size) shape, including non-multiple drains.
        #[test]
        fn clamp_drain_covers_ragged_backlogs(backlog in 1usize..200, bs in 1usize..9) {
            let mut remaining = backlog;
            while remaining > 0 {
                let take = clamp_drain(remaining, bs);
                prop_assert!(take >= 1 && take <= remaining);
                // Only a sub-batch backlog may drain ragged…
                if take < bs {
                    prop_assert_eq!(take, remaining, "ragged drains only at the tail");
                } else {
                    prop_assert_eq!(take % bs, 0, "larger drains are whole batches");
                }
                // …and every drained shape is representable: the padded
                // workload holds exactly the drained requests.
                let batch: Vec<Request> = (0..take as u64).map(|id| Request {
                    id, arrival: SimTime::ZERO, prompt_len: 8, gen_len: 2,
                }).collect();
                prop_assert_eq!(group_workload(&batch, bs as u32).total_seqs(), take as u64);
                remaining -= take;
            }
        }
    }

    #[test]
    fn closed_loop_issues_exactly_num_requests() {
        let traffic = Traffic::Closed {
            clients: 3,
            think: SimDuration::from_secs(1),
            cfg: TrafficConfig::fixed(11, 64, 4, 5),
        };
        let report = serve_stub(
            &traffic,
            &ServeConfig {
                batch_size: 2,
                policy: AdmissionPolicy::CostAware {
                    max_n: 4,
                    slo_e2e: SimDuration::from_secs(3600),
                },
                seed: 1,
            },
        );
        assert_eq!(report.outcomes.len(), 11);
        // A client's next request arrives strictly after its previous one
        // finished (ids are issue-ordered).
        assert!(report.makespan > SimDuration::from_secs(4));
    }

    #[test]
    fn serving_is_deterministic() {
        let stream = generate(
            Arrivals::Poisson { rate: 3.0 },
            &TrafficConfig {
                num_requests: 25,
                prompt: LengthDist::Uniform { lo: 16, hi: 128 },
                gen: LengthDist::Uniform { lo: 2, hi: 8 },
                seed: 21,
            },
        );
        let cfg = ServeConfig {
            batch_size: 4,
            policy: AdmissionPolicy::Deadline {
                n: 4,
                deadline: SimDuration::from_secs(1),
            },
            seed: 7,
        };
        let a = serve_stub(&Traffic::Open(stream.clone()), &cfg);
        let b = serve_stub(&Traffic::Open(stream), &cfg);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.groups, b.groups);
        assert_eq!(a.replicas, b.replicas);
    }

    #[test]
    fn utilization_accounts_engine_busy_time() {
        let stream = generate(
            Arrivals::Poisson { rate: 4.0 },
            &TrafficConfig::fixed(16, 64, 4, 5),
        );
        let report = serve_stub(
            &Traffic::Open(stream),
            &ServeConfig {
                batch_size: 4,
                policy: AdmissionPolicy::FixedN { n: 2 },
                seed: 1,
            },
        );
        let total_service: SimDuration = report.groups.iter().map(|g| g.service_time).sum();
        assert_eq!(report.replicas[0].busy, total_service);
        let expected = total_service.as_secs_f64() / report.makespan.as_secs_f64();
        assert!((report.replicas[0].utilization - expected).abs() < 1e-12);
        assert!(report.replicas[0].utilization <= 1.0 + 1e-12);
        let tokens: u64 = report
            .outcomes
            .iter()
            .filter(|o| !o.failed)
            .map(|o| o.gen_len as u64)
            .sum();
        assert_eq!(report.replicas[0].tokens, tokens);
    }

    #[test]
    fn real_engine_round_trip() {
        // End-to-end with the actual Klotski engine at a tiny scale: the
        // reported group times come from the simulator, not the stub.
        use klotski_core::engine::{KlotskiConfig, KlotskiEngine};
        let (spec, hw) = mixtral();
        let stream = generate(
            Arrivals::Poisson { rate: 0.5 },
            &TrafficConfig::fixed(8, 32, 3, 2),
        );
        let report = serve(
            &KlotskiEngine::new(KlotskiConfig::full()),
            &spec,
            &hw,
            &Traffic::Open(stream),
            &ServeConfig {
                batch_size: 4,
                policy: AdmissionPolicy::CostAware {
                    max_n: 2,
                    slo_e2e: SimDuration::from_secs(600),
                },
                seed: 3,
            },
        )
        .expect("serve");
        assert_eq!(report.outcomes.len(), 8);
        assert!(report.outcomes.iter().all(|o| !o.failed));
        assert!(report.throughput_tps() > 0.0);
        assert!(report
            .groups
            .iter()
            .all(|g| g.service_time > SimDuration::ZERO));
    }
}
