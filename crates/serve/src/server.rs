//! The serving loop: requests in, batch groups through an engine, timed
//! outcomes out.
//!
//! A single engine instance processes groups sequentially over simulated
//! time. While a group runs, new requests queue; when the engine frees, the
//! admission policy decides when to cut the next group and how large. Each
//! group becomes one [`Workload`] (padded to its longest prompt/output) and
//! one [`Scenario`], so Klotski and every baseline engine can serve the
//! same traffic and be compared policy-for-policy.
//!
//! Per-request timings carry the queueing delay the offline harness never
//! sees: `TTFT = wait + group prefill`, and a request's last token lands at
//! its own `gen_len` (shorter requests in a padded group finish earlier).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use klotski_core::scenario::{Engine, EngineError, Scenario};
use klotski_model::hardware::HardwareSpec;
use klotski_model::spec::ModelSpec;
use klotski_model::workload::Workload;
use klotski_sim::time::{SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::admission::{estimate_group_service, AdmissionPolicy, GroupTrigger};
use crate::traffic::{Request, TrafficConfig};

/// Traffic fed to the serving loop.
#[derive(Debug, Clone)]
pub enum Traffic {
    /// Open loop: a pre-generated arrival stream (see
    /// [`traffic::generate`](crate::traffic::generate)).
    Open(Vec<Request>),
    /// Closed loop: `clients` concurrent users; each issues its next
    /// request `think` after its previous one completes, until
    /// `cfg.num_requests` have been issued in total.
    Closed {
        /// Concurrent clients (all issue their first request at t = 0).
        clients: u32,
        /// Think time between a completion and the next request.
        think: SimDuration,
        /// Stream shape (lengths + total request count + seed).
        cfg: TrafficConfig,
    },
}

/// Serving-loop configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Sequences per batch within a group.
    pub batch_size: u32,
    /// The admission policy forming batch groups.
    pub policy: AdmissionPolicy,
    /// Seed for per-group scenario generation (gating traces).
    pub seed: u64,
}

/// One served request with its full timing breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Request id (stable from the traffic stream).
    pub id: u64,
    /// Arrival time.
    pub arrival: SimTime,
    /// When the request's group was dispatched to the engine.
    pub dispatched: SimTime,
    /// When the request's first generated token landed (end of the group's
    /// prefill).
    pub first_token: SimTime,
    /// When the request's *own* last token landed.
    pub finished: SimTime,
    /// Prompt tokens.
    pub prompt_len: u32,
    /// Generated tokens.
    pub gen_len: u32,
    /// Index of the group that served this request.
    pub group: u32,
    /// Whether the group aborted (OOM); timings are then meaningless and
    /// the request counts as an SLO violation.
    pub failed: bool,
}

impl RequestOutcome {
    /// Time spent queued before dispatch.
    pub fn queue_delay(&self) -> SimDuration {
        self.dispatched.saturating_since(self.arrival)
    }

    /// Time to first token (queueing delay + group prefill).
    pub fn ttft(&self) -> SimDuration {
        self.first_token.saturating_since(self.arrival)
    }

    /// Time per output token after the first (zero for 1-token outputs).
    pub fn tpot(&self) -> SimDuration {
        if self.gen_len <= 1 {
            return SimDuration::ZERO;
        }
        self.finished.saturating_since(self.first_token) / (self.gen_len - 1) as u64
    }

    /// End-to-end latency (arrival → own last token).
    pub fn e2e(&self) -> SimDuration {
        self.finished.saturating_since(self.arrival)
    }
}

/// One dispatched batch group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupRecord {
    /// Group index, in dispatch order.
    pub index: u32,
    /// Dispatch (= formation) time.
    pub dispatched: SimTime,
    /// The padded workload handed to the engine.
    pub workload: Workload,
    /// Requests in the group (`= workload.total_seqs()`).
    pub n_requests: u32,
    /// What cut the group.
    pub trigger: GroupTrigger,
    /// The engine's service time for the group.
    pub service_time: SimDuration,
    /// The group's prefill span.
    pub prefill_time: SimDuration,
    /// Whether the engine aborted with OOM.
    pub oom: bool,
}

/// Everything one serving run produced.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Engine name.
    pub engine: String,
    /// Per-request outcomes, in request-id order.
    pub outcomes: Vec<RequestOutcome>,
    /// Per-group records, in dispatch order.
    pub groups: Vec<GroupRecord>,
    /// First arrival → last completed token.
    pub makespan: SimDuration,
}

impl ServeReport {
    /// Sustained throughput: generated tokens of completed requests over
    /// the makespan.
    pub fn throughput_tps(&self) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        let tokens: u64 = self
            .outcomes
            .iter()
            .filter(|o| !o.failed)
            .map(|o| o.gen_len as u64)
            .sum();
        tokens as f64 / self.makespan.as_secs_f64()
    }
}

/// Drives `engine` over `traffic` and returns per-request outcomes.
///
/// # Errors
///
/// Returns [`EngineError`] if the engine rejects a scenario as invalid
/// (configuration errors — OOM is a per-group *result*, not an error).
///
/// # Panics
///
/// Panics if `cfg.batch_size` is zero, the policy's group size is zero,
/// or closed-loop traffic promises requests but has no clients to issue
/// them.
pub fn serve(
    engine: &dyn Engine,
    spec: &ModelSpec,
    hw: &HardwareSpec,
    traffic: &Traffic,
    cfg: &ServeConfig,
) -> Result<ServeReport, EngineError> {
    assert!(cfg.batch_size > 0, "batch_size must be positive");
    assert!(cfg.policy.max_batches() > 0, "group size must be positive");
    if let Traffic::Closed {
        clients, cfg: tc, ..
    } = traffic
    {
        assert!(
            *clients > 0 || tc.num_requests == 0,
            "closed-loop traffic needs at least one client"
        );
    }

    let mut loop_state = Loop::new(traffic, cfg);
    let mut outcomes: Vec<RequestOutcome> = Vec::new();
    let mut groups: Vec<GroupRecord> = Vec::new();
    let mut t_free = SimTime::ZERO;
    let cost = klotski_model::cost::CostModel::new(spec.clone(), hw.clone());

    while let Some(dispatch) = loop_state.next_group(t_free, &cost) {
        let (t_form, batch, trigger) = dispatch;
        let wl = group_workload(&batch, cfg.batch_size);
        let seed = cfg.seed.wrapping_add(3 * groups.len() as u64);
        let scenario = Scenario::generate(spec.clone(), hw.clone(), wl, seed);
        let report = engine.run(&scenario)?;
        let oom = !report.succeeded();

        let (service, prefill) = if oom {
            (SimDuration::ZERO, SimDuration::ZERO)
        } else {
            (report.total_time, report.prefill_time)
        };
        let first_token = t_form + prefill;
        let group_end = t_form + service;
        // Decode pace of the padded group; each request stops at its own
        // gen_len.
        let padded_gen = wl.gen_len;
        let tpot = if padded_gen > 1 {
            service.saturating_sub(prefill) / (padded_gen - 1) as u64
        } else {
            SimDuration::ZERO
        };
        for r in &batch {
            let finished = if oom {
                t_form
            } else {
                first_token + tpot * (r.gen_len.saturating_sub(1)) as u64
            };
            outcomes.push(RequestOutcome {
                id: r.id,
                arrival: r.arrival,
                dispatched: t_form,
                first_token,
                finished,
                prompt_len: r.prompt_len,
                gen_len: r.gen_len,
                group: groups.len() as u32,
                failed: oom,
            });
            loop_state.on_complete(finished, oom);
        }
        groups.push(GroupRecord {
            index: groups.len() as u32,
            dispatched: t_form,
            workload: wl,
            n_requests: batch.len() as u32,
            trigger,
            service_time: service,
            prefill_time: prefill,
            oom,
        });
        t_free = group_end;
    }

    outcomes.sort_by_key(|o| o.id);
    let first_arrival = outcomes
        .iter()
        .map(|o| o.arrival)
        .min()
        .unwrap_or(SimTime::ZERO);
    let makespan = outcomes
        .iter()
        .map(|o| o.finished)
        .max()
        .unwrap_or(SimTime::ZERO)
        .saturating_since(first_arrival);
    Ok(ServeReport {
        engine: engine.name(),
        outcomes,
        groups,
        makespan,
    })
}

/// Pads a drained batch into one engine workload: whole batches of
/// `batch_size` when possible, otherwise a single ragged batch.
fn group_workload(batch: &[Request], batch_size: u32) -> Workload {
    let count = batch.len() as u32;
    let prompt = batch.iter().map(|r| r.prompt_len).max().expect("non-empty");
    let gen = batch.iter().map(|r| r.gen_len).max().expect("non-empty");
    if count < batch_size {
        Workload::new(count, 1, prompt, gen)
    } else {
        debug_assert_eq!(count % batch_size, 0, "admission drains whole batches");
        Workload::new(batch_size, count / batch_size, prompt, gen)
    }
}

/// Queue + arrival bookkeeping shared by open- and closed-loop traffic.
struct Loop<'a> {
    cfg: &'a ServeConfig,
    queue: VecDeque<Request>,
    /// Future arrivals, earliest first.
    future: BinaryHeap<Reverse<(u64, u64, u32, u32)>>, // (nanos, id, prompt, gen)
    /// Closed-loop state: requests still to issue, lengths, think time.
    closed: Option<ClosedState>,
}

struct ClosedState {
    remaining: u32,
    think: SimDuration,
    cfg: TrafficConfig,
    rng: StdRng,
    next_id: u64,
}

impl<'a> Loop<'a> {
    fn new(traffic: &Traffic, cfg: &'a ServeConfig) -> Self {
        let mut future = BinaryHeap::new();
        let mut closed = None;
        match traffic {
            Traffic::Open(requests) => {
                for r in requests {
                    future.push(Reverse((
                        r.arrival.as_nanos(),
                        r.id,
                        r.prompt_len,
                        r.gen_len,
                    )));
                }
            }
            Traffic::Closed {
                clients,
                think,
                cfg: tc,
            } => {
                let mut rng = StdRng::seed_from_u64(tc.seed);
                let initial = (*clients).min(tc.num_requests);
                for id in 0..initial as u64 {
                    let prompt = tc.prompt.sample(&mut rng);
                    let gen = tc.gen.sample(&mut rng);
                    future.push(Reverse((0, id, prompt, gen)));
                }
                closed = Some(ClosedState {
                    remaining: tc.num_requests - initial,
                    think: *think,
                    cfg: *tc,
                    rng,
                    next_id: initial as u64,
                });
            }
        }
        Loop {
            cfg,
            queue: VecDeque::new(),
            future,
            closed,
        }
    }

    /// A request completed at `finished`; in closed-loop mode its client
    /// issues the next request after thinking (unless the group failed —
    /// a failed client walks away, which also guarantees progress).
    fn on_complete(&mut self, finished: SimTime, failed: bool) {
        let Some(state) = self.closed.as_mut() else {
            return;
        };
        if failed || state.remaining == 0 {
            return;
        }
        state.remaining -= 1;
        let arrival = finished + state.think;
        let prompt = state.cfg.prompt.sample(&mut state.rng);
        let gen = state.cfg.gen.sample(&mut state.rng);
        self.future
            .push(Reverse((arrival.as_nanos(), state.next_id, prompt, gen)));
        state.next_id += 1;
    }

    fn ingest_until(&mut self, now: SimTime) {
        while let Some(&Reverse((at, id, prompt, gen))) = self.future.peek() {
            if at > now.as_nanos() {
                break;
            }
            self.future.pop();
            self.queue.push_back(Request {
                id,
                arrival: SimTime::from_nanos(at),
                prompt_len: prompt,
                gen_len: gen,
            });
        }
    }

    fn oldest_wait(&self, now: SimTime) -> SimDuration {
        self.queue
            .front()
            .map(|r| now.saturating_since(r.arrival))
            .unwrap_or(SimDuration::ZERO)
    }

    /// Advances simulated time from `t_free` until the policy cuts a
    /// group; returns `(formation time, drained requests, trigger)`, or
    /// `None` when all traffic has been served.
    fn next_group(
        &mut self,
        t_free: SimTime,
        cost: &klotski_model::cost::CostModel,
    ) -> Option<(SimTime, Vec<Request>, GroupTrigger)> {
        let mut now = t_free;
        loop {
            self.ingest_until(now);
            if self.queue.is_empty() {
                // Idle: jump to the next arrival (or finish).
                let &Reverse((at, ..)) = self.future.peek()?;
                now = now.max(SimTime::from_nanos(at));
                self.ingest_until(now);
            }
            let eos = self.future.is_empty();
            let wait = self.oldest_wait(now);
            if self
                .cfg
                .policy
                .ready(self.queue.len(), wait, eos, self.cfg.batch_size)
            {
                // Padded shape of the group actually being cut: only the
                // front of the queue (up to the policy's cap) is
                // dispatchable, so requests beyond it must not inflate the
                // estimate.
                let horizon =
                    (self.cfg.policy.max_batches() as usize) * self.cfg.batch_size as usize;
                let front = self.queue.iter().take(horizon);
                let (prompt, gen) =
                    front.fold((1, 1), |(p, g), r| (p.max(r.prompt_len), g.max(r.gen_len)));
                let estimate =
                    |n: u32| estimate_group_service(cost, self.cfg.batch_size, n, prompt, gen);
                let (count, trigger) = self.cfg.policy.take(
                    self.queue.len(),
                    wait,
                    eos,
                    self.cfg.batch_size,
                    &estimate,
                );
                let batch: Vec<Request> = self.queue.drain(..count).collect();
                return Some((now, batch, trigger));
            }
            // Not ready: wake at the policy timer or the next arrival,
            // whichever comes first.
            let timer = self
                .cfg
                .policy
                .timer(self.queue.len(), wait)
                .map(|d| now + d);
            let arrival = self
                .future
                .peek()
                .map(|&Reverse((at, ..))| SimTime::from_nanos(at));
            now = match (timer, arrival) {
                (Some(t), Some(a)) => t.min(a).max(now),
                (Some(t), None) => t.max(now),
                (None, Some(a)) => a.max(now),
                (None, None) => unreachable!("eos with a non-empty queue is always ready"),
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::{generate, Arrivals, LengthDist};
    use klotski_core::report::InferenceReport;

    /// A stub engine with a fixed per-batch cost: service = base +
    /// per_batch × num_batches, prefill = base. Makes queueing arithmetic
    /// exact in tests without running the simulator.
    struct StubEngine {
        base: SimDuration,
        per_batch: SimDuration,
    }

    impl StubEngine {
        fn new() -> Self {
            StubEngine {
                base: SimDuration::from_secs(1),
                per_batch: SimDuration::from_secs(1),
            }
        }
    }

    impl Engine for StubEngine {
        fn name(&self) -> String {
            "Stub".into()
        }

        fn run(&self, sc: &Scenario) -> Result<InferenceReport, EngineError> {
            let total = self.base + self.per_batch * sc.workload.num_batches as u64;
            Ok(InferenceReport {
                engine: self.name(),
                model: sc.spec.name.clone(),
                total_time: total,
                prefill_time: self.base,
                decode_time: total - self.base,
                generated_tokens: sc.workload.total_generated(),
                gpu_busy: total,
                gpu_bubble: SimDuration::ZERO,
                peak_vram: 0,
                peak_dram: 0,
                oom: None,
                metrics: None,
            })
        }
    }

    fn mixtral() -> (ModelSpec, HardwareSpec) {
        (ModelSpec::mixtral_8x7b(), HardwareSpec::env1_rtx3090())
    }

    fn serve_stub(traffic: &Traffic, cfg: &ServeConfig) -> ServeReport {
        let (spec, hw) = mixtral();
        serve(&StubEngine::new(), &spec, &hw, traffic, cfg).expect("serve")
    }

    #[test]
    fn all_requests_served_exactly_once() {
        let stream = generate(
            Arrivals::Poisson { rate: 4.0 },
            &TrafficConfig::fixed(37, 64, 4, 5),
        );
        let report = serve_stub(
            &Traffic::Open(stream),
            &ServeConfig {
                batch_size: 4,
                policy: AdmissionPolicy::FixedN { n: 3 },
                seed: 1,
            },
        );
        assert_eq!(report.outcomes.len(), 37);
        let ids: Vec<u64> = report.outcomes.iter().map(|o| o.id).collect();
        assert_eq!(ids, (0..37).collect::<Vec<_>>());
        let grouped: u32 = report.groups.iter().map(|g| g.n_requests).sum();
        assert_eq!(grouped, 37);
    }

    #[test]
    fn timings_are_causally_ordered() {
        let stream = generate(
            Arrivals::Poisson { rate: 2.0 },
            &TrafficConfig {
                num_requests: 20,
                prompt: LengthDist::Uniform { lo: 16, hi: 64 },
                gen: LengthDist::Uniform { lo: 2, hi: 8 },
                seed: 11,
            },
        );
        let report = serve_stub(
            &Traffic::Open(stream.clone()),
            &ServeConfig {
                batch_size: 4,
                policy: AdmissionPolicy::Deadline {
                    n: 4,
                    deadline: SimDuration::from_secs(2),
                },
                seed: 1,
            },
        );
        for o in &report.outcomes {
            assert!(o.dispatched >= o.arrival);
            assert!(o.first_token >= o.dispatched);
            assert!(o.finished >= o.first_token);
            assert!(o.ttft() >= o.queue_delay());
            assert!(o.e2e() >= o.ttft());
        }
        // Groups are dispatched in time order and never overlap.
        for w in report.groups.windows(2) {
            assert!(w[1].dispatched >= w[0].dispatched + w[0].service_time);
        }
    }

    #[test]
    fn fixed_n_groups_are_full_until_the_flush() {
        let stream = generate(
            Arrivals::Poisson { rate: 100.0 },
            &TrafficConfig::fixed(30, 64, 4, 5),
        );
        let report = serve_stub(
            &Traffic::Open(stream),
            &ServeConfig {
                batch_size: 4,
                policy: AdmissionPolicy::FixedN { n: 2 },
                seed: 1,
            },
        );
        for g in &report.groups {
            assert!(g.workload.num_batches <= 2);
            assert_eq!(g.n_requests as u64, g.workload.total_seqs());
            match g.trigger {
                GroupTrigger::Full => assert_eq!(g.n_requests, 8),
                GroupTrigger::Flush => assert!(g.n_requests < 8),
                other => panic!("unexpected trigger {other:?}"),
            }
        }
    }

    #[test]
    fn deadline_bounds_queue_delay_when_engine_is_idle() {
        // 1 request at t=0, nothing else until t=100 s: the deadline (2 s)
        // must dispatch a partial group at exactly t=2 s.
        let reqs = vec![
            Request {
                id: 0,
                arrival: SimTime::ZERO,
                prompt_len: 64,
                gen_len: 4,
            },
            Request {
                id: 1,
                arrival: SimTime::from_nanos(100_000_000_000),
                prompt_len: 64,
                gen_len: 4,
            },
        ];
        let report = serve_stub(
            &Traffic::Open(reqs),
            &ServeConfig {
                batch_size: 4,
                policy: AdmissionPolicy::Deadline {
                    n: 4,
                    deadline: SimDuration::from_secs(2),
                },
                seed: 1,
            },
        );
        assert_eq!(report.groups.len(), 2);
        assert_eq!(report.outcomes[0].queue_delay(), SimDuration::from_secs(2));
        assert_eq!(report.groups[0].trigger, GroupTrigger::DeadlineExpired);
        // The straggler is flushed as end-of-stream.
        assert_eq!(report.groups[1].trigger, GroupTrigger::Flush);
    }

    #[test]
    fn padding_lets_short_requests_finish_early() {
        let reqs = vec![
            Request {
                id: 0,
                arrival: SimTime::ZERO,
                prompt_len: 64,
                gen_len: 2,
            },
            Request {
                id: 1,
                arrival: SimTime::ZERO,
                prompt_len: 32,
                gen_len: 8,
            },
        ];
        let report = serve_stub(
            &Traffic::Open(reqs),
            &ServeConfig {
                batch_size: 2,
                policy: AdmissionPolicy::CostAware {
                    max_n: 4,
                    slo_e2e: SimDuration::from_secs(3600),
                },
                seed: 1,
            },
        );
        assert_eq!(report.groups.len(), 1);
        let wl = report.groups[0].workload;
        assert_eq!((wl.prompt_len, wl.gen_len), (64, 8), "padded to maxima");
        let [a, b] = report.outcomes[..] else {
            panic!("expected 2 outcomes")
        };
        assert!(a.finished < b.finished, "2-token request finishes first");
        assert_eq!(a.first_token, b.first_token);
    }

    #[test]
    fn closed_loop_issues_exactly_num_requests() {
        let traffic = Traffic::Closed {
            clients: 3,
            think: SimDuration::from_secs(1),
            cfg: TrafficConfig::fixed(11, 64, 4, 5),
        };
        let report = serve_stub(
            &traffic,
            &ServeConfig {
                batch_size: 2,
                policy: AdmissionPolicy::CostAware {
                    max_n: 4,
                    slo_e2e: SimDuration::from_secs(3600),
                },
                seed: 1,
            },
        );
        assert_eq!(report.outcomes.len(), 11);
        // A client's next request arrives strictly after its previous one
        // finished (ids are issue-ordered).
        assert!(report.makespan > SimDuration::from_secs(4));
    }

    #[test]
    fn serving_is_deterministic() {
        let stream = generate(
            Arrivals::Poisson { rate: 3.0 },
            &TrafficConfig {
                num_requests: 25,
                prompt: LengthDist::Uniform { lo: 16, hi: 128 },
                gen: LengthDist::Uniform { lo: 2, hi: 8 },
                seed: 21,
            },
        );
        let cfg = ServeConfig {
            batch_size: 4,
            policy: AdmissionPolicy::Deadline {
                n: 4,
                deadline: SimDuration::from_secs(1),
            },
            seed: 7,
        };
        let a = serve_stub(&Traffic::Open(stream.clone()), &cfg);
        let b = serve_stub(&Traffic::Open(stream), &cfg);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(a.groups, b.groups);
    }

    #[test]
    fn real_engine_round_trip() {
        // End-to-end with the actual Klotski engine at a tiny scale: the
        // reported group times come from the simulator, not the stub.
        use klotski_core::engine::{KlotskiConfig, KlotskiEngine};
        let (spec, hw) = mixtral();
        let stream = generate(
            Arrivals::Poisson { rate: 0.5 },
            &TrafficConfig::fixed(8, 32, 3, 2),
        );
        let report = serve(
            &KlotskiEngine::new(KlotskiConfig::full()),
            &spec,
            &hw,
            &Traffic::Open(stream),
            &ServeConfig {
                batch_size: 4,
                policy: AdmissionPolicy::CostAware {
                    max_n: 2,
                    slo_e2e: SimDuration::from_secs(600),
                },
                seed: 3,
            },
        )
        .expect("serve");
        assert_eq!(report.outcomes.len(), 8);
        assert!(report.outcomes.iter().all(|o| !o.failed));
        assert!(report.throughput_tps() > 0.0);
        assert!(report
            .groups
            .iter()
            .all(|g| g.service_time > SimDuration::ZERO));
    }
}
