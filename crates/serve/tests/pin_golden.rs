//! Regression pins for the serving event loop.
//!
//! The `drive` loop's global-time interleave (arrivals vs. group
//! formations, stable tie-breaking) moved onto the shared
//! `klotski_sim::event::EventQueue` ordering; these checksums were
//! captured from the pre-refactor implementation and pin every timing
//! field of `serve` / `serve_scaled` byte for byte, so the ordering
//! definition can never drift silently.

use klotski_core::report::InferenceReport;
use klotski_core::scenario::{Engine, EngineError, Scenario};
use klotski_model::hardware::HardwareSpec;
use klotski_model::spec::ModelSpec;
use klotski_serve::admission::AdmissionPolicy;
use klotski_serve::cluster::{
    serve_cluster, serve_cluster_faulty, ClusterConfig, ColdStartModel, FaultPlan, FaultScenario,
    QueueDepthReactive, ToleranceConfig,
};
use klotski_serve::continuous::{serve_continuous, ClassAssign, ContinuousConfig, CostEngine};
use klotski_serve::dispatcher::{serve_scaled, DispatchPolicy, ScaleConfig};
use klotski_serve::metrics::SloSpec;
use klotski_serve::server::{serve, ServeConfig, ServeReport, Traffic};
use klotski_serve::traffic::{generate, Arrivals, LengthDist, TrafficConfig};
use klotski_sim::time::SimDuration;

/// Fixed-cost stub with a non-divisible decode span (the +7 ns exercises
/// the truncation/pinning paths).
struct StubEngine;

impl Engine for StubEngine {
    fn name(&self) -> String {
        "Stub".into()
    }

    fn run(&self, sc: &Scenario) -> Result<InferenceReport, EngineError> {
        let base = SimDuration::from_millis(900);
        let total = base
            + SimDuration::from_millis(1100) * sc.workload.num_batches as u64
            + SimDuration::from_nanos(7);
        Ok(InferenceReport {
            engine: self.name(),
            model: sc.spec.name.clone(),
            total_time: total,
            prefill_time: base,
            decode_time: total - base,
            generated_tokens: sc.workload.total_generated(),
            gpu_busy: total,
            gpu_bubble: SimDuration::ZERO,
            peak_vram: 0,
            peak_dram: 0,
            oom: None,
            metrics: None,
        })
    }
}

/// FNV-1a over every timing field the loop produces.
fn checksum(r: &ServeReport) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for o in &r.outcomes {
        mix(o.id);
        mix(o.arrival.as_nanos());
        mix(o.dispatched.as_nanos());
        mix(o.first_token.as_nanos());
        mix(o.finished.as_nanos());
        mix(o.group as u64);
        mix(o.replica as u64);
    }
    for g in &r.groups {
        mix(g.replica as u64);
        mix(g.dispatched.as_nanos());
        mix(g.service_time.as_nanos());
        mix(g.n_requests as u64);
    }
    mix(r.makespan.as_nanos());
    h
}

fn open_stream() -> Vec<klotski_serve::traffic::Request> {
    generate(
        Arrivals::Poisson { rate: 2.5 },
        &TrafficConfig {
            num_requests: 30,
            prompt: LengthDist::Uniform { lo: 16, hi: 96 },
            gen: LengthDist::Uniform { lo: 2, hi: 9 },
            seed: 17,
        },
    )
}

fn cfg() -> ServeConfig {
    ServeConfig {
        batch_size: 3,
        policy: AdmissionPolicy::Deadline {
            n: 3,
            deadline: SimDuration::from_secs(2),
        },
        seed: 11,
    }
}

fn scaled(reps: u32, dispatch: DispatchPolicy) -> ServeReport {
    serve_scaled(
        &StubEngine,
        &ModelSpec::mixtral_8x7b(),
        &HardwareSpec::env1_rtx3090(),
        &Traffic::Open(open_stream()),
        &ScaleConfig {
            serve: cfg(),
            replicas: reps,
            dispatch,
        },
    )
    .expect("serve_scaled")
}

#[test]
fn serve_output_is_pinned() {
    let report = serve(
        &StubEngine,
        &ModelSpec::mixtral_8x7b(),
        &HardwareSpec::env1_rtx3090(),
        &Traffic::Open(open_stream()),
        &cfg(),
    )
    .expect("serve");
    assert_eq!(checksum(&report), GOLDEN_SINGLE, "serve timings drifted");
}

#[test]
fn serve_scaled_output_is_pinned() {
    assert_eq!(
        checksum(&scaled(3, DispatchPolicy::RoundRobin)),
        GOLDEN_RR3,
        "round-robin R=3 timings drifted"
    );
    assert_eq!(
        checksum(&scaled(3, DispatchPolicy::JoinShortestQueue)),
        GOLDEN_JSQ3,
        "jsq R=3 timings drifted"
    );
    assert_eq!(
        checksum(&scaled(2, DispatchPolicy::CostAware)),
        GOLDEN_COST2,
        "cost-aware R=2 timings drifted"
    );
}

#[test]
fn closed_loop_output_is_pinned() {
    let traffic = Traffic::Closed {
        clients: 4,
        think: SimDuration::from_millis(1500),
        cfg: TrafficConfig {
            num_requests: 18,
            prompt: LengthDist::Uniform { lo: 16, hi: 96 },
            gen: LengthDist::Uniform { lo: 2, hi: 9 },
            seed: 23,
        },
    };
    let report = serve(
        &StubEngine,
        &ModelSpec::mixtral_8x7b(),
        &HardwareSpec::env1_rtx3090(),
        &traffic,
        &cfg(),
    )
    .expect("serve");
    assert_eq!(
        checksum(&report),
        GOLDEN_CLOSED,
        "closed-loop timings drifted"
    );
}

#[test]
fn continuous_scheduler_output_is_pinned() {
    // The slot machine's event order (admit chat > continue prefill >
    // admit batch > decode step, arrivals ingested first at ties) drives
    // every timing below; any reordering moves the checksum. Priced by the
    // calibrated cost model via CostEngine — the same estimate arithmetic
    // the cost-aware dispatch pin (GOLDEN_COST2) already holds stable.
    let spec = ModelSpec::mixtral_8x7b();
    let hw = HardwareSpec::env1_rtx3090();
    let report = serve_continuous(
        &CostEngine::new(&spec, &hw),
        &spec,
        &hw,
        &Traffic::Open(open_stream()),
        &ContinuousConfig {
            serve: cfg(),
            refill: true,
            prefill_chunk: 32,
            classes: ClassAssign::ChatShare { chat_pct: 40 },
        },
    )
    .expect("serve_continuous");
    assert_eq!(
        checksum(&report.serve),
        GOLDEN_CONTINUOUS,
        "continuous scheduler timings drifted"
    );
    assert_eq!(
        (report.preemptions, report.refills, report.prefill_chunks),
        GOLDEN_CONTINUOUS_COUNTERS,
        "continuous scheduler counters drifted"
    );
}

// Captured from the pre-refactor ad-hoc interleave (BinaryHeap-based
// ArrivalSource); the EventQueue-based loop must reproduce them exactly.
const GOLDEN_SINGLE: u64 = 13750583574575523042;
const GOLDEN_RR3: u64 = 15407529530216556205;
const GOLDEN_JSQ3: u64 = 8315145353530956359;
const GOLDEN_COST2: u64 = 246358002919420284;
const GOLDEN_CLOSED: u64 = 12563207037895713828;

#[test]
fn cluster_output_is_pinned() {
    // An autoscaled fleet with a real cold start: warm-up completions,
    // ticks, drains, and reclaims all land in the event interleave this
    // checksum pins. `FaultPlan::none()` must route through the exact
    // same code path, so this golden (captured before fault injection
    // existed) is the byte-identity anchor for the fault-free cluster.
    let stream = generate(
        Arrivals::Poisson { rate: 40.0 },
        &TrafficConfig {
            num_requests: 36,
            prompt: LengthDist::Uniform { lo: 16, hi: 96 },
            gen: LengthDist::Uniform { lo: 2, hi: 9 },
            seed: 29,
        },
    );
    let ccfg = ClusterConfig {
        serve: cfg(),
        dispatch: DispatchPolicy::JoinShortestQueue,
        coldstart: ColdStartModel::Fixed(SimDuration::from_millis(1200)),
        tick: SimDuration::from_millis(500),
        slo: SloSpec::relaxed(),
    };
    let report = serve_cluster(
        &StubEngine,
        &ModelSpec::mixtral_8x7b(),
        &HardwareSpec::env1_rtx3090(),
        &Traffic::Open(stream),
        &ccfg,
        &mut QueueDepthReactive::new(1, 4, 300, 50, 2),
    )
    .expect("serve_cluster");
    assert_eq!(
        checksum(&report.serve),
        GOLDEN_CLUSTER,
        "autoscaled cluster timings drifted"
    );
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for e in &report.scale_events {
        for v in [
            e.at.as_nanos(),
            u64::from(e.from),
            u64::from(e.to),
            u64::from(e.warm),
            e.backlog_tokens,
        ] {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    assert_eq!(h, GOLDEN_CLUSTER_SCALE, "scale-event stream drifted");
}

// Captured at introduction of the continuous scheduler (PR 8): pins the
// slot machine's admission/preemption/decode event order byte for byte.
const GOLDEN_CONTINUOUS: u64 = 13375584382816891046;
const GOLDEN_CONTINUOUS_COUNTERS: (u32, u32, u32) = (0, 29, 36);

// Captured from the pre-fault-injection cluster loop (PR 10): the
// fault-free path (`FaultPlan::none()`) must reproduce these exactly.
const GOLDEN_CLUSTER: u64 = 5057458218511373831;
const GOLDEN_CLUSTER_SCALE: u64 = 13097772033778285638;

fn cluster_cfg() -> ClusterConfig {
    ClusterConfig {
        serve: cfg(),
        dispatch: DispatchPolicy::JoinShortestQueue,
        coldstart: ColdStartModel::Fixed(SimDuration::from_millis(1200)),
        tick: SimDuration::from_millis(500),
        slo: SloSpec::relaxed(),
    }
}

fn cluster_stream() -> Vec<klotski_serve::traffic::Request> {
    generate(
        Arrivals::Poisson { rate: 40.0 },
        &TrafficConfig {
            num_requests: 36,
            prompt: LengthDist::Uniform { lo: 16, hi: 96 },
            gen: LengthDist::Uniform { lo: 2, hi: 9 },
            seed: 29,
        },
    )
}

#[test]
fn faulty_entry_point_with_none_plan_reproduces_the_cluster_golden() {
    // The wrapper contract, pinned from outside the crate: routing the
    // exact `cluster_output_is_pinned` workload through the fault-aware
    // entry point with an empty plan and the fault-oblivious tolerance
    // must not move a single byte.
    let report = serve_cluster_faulty(
        &StubEngine,
        &ModelSpec::mixtral_8x7b(),
        &HardwareSpec::env1_rtx3090(),
        &Traffic::Open(cluster_stream()),
        &cluster_cfg(),
        &mut QueueDepthReactive::new(1, 4, 300, 50, 2),
        &FaultPlan::none(),
        &ToleranceConfig::naive(),
    )
    .expect("serve_cluster_faulty");
    assert_eq!(
        checksum(&report.serve),
        GOLDEN_CLUSTER,
        "none-plan faulty path diverged from the fault-free cluster"
    );
}

#[test]
fn fault_run_output_is_pinned() {
    // A generated plan under the full tolerance stack: crash revocation,
    // backoff retries, restarts, and straggler windows all land in the
    // pinned interleave. Two back-to-back runs must agree with each other
    // *and* with the captured constant, so fault handling can never go
    // nondeterministic silently.
    let plan = FaultPlan::generate(&FaultScenario {
        seed: 1234,
        horizon: SimDuration::from_secs(3),
        crashes: 2,
        restart_after: Some(SimDuration::from_secs(1)),
        degraded: 1,
        slowdown_pct: 250,
        degrade_width: SimDuration::from_secs(3),
        coldstart_stalls: 1,
        coldstart_stall: SimDuration::from_secs(1),
        coldstart_fails: 1,
    });
    let run = || {
        serve_cluster_faulty(
            &StubEngine,
            &ModelSpec::mixtral_8x7b(),
            &HardwareSpec::env1_rtx3090(),
            &Traffic::Open(cluster_stream()),
            &cluster_cfg(),
            &mut QueueDepthReactive::new(1, 4, 300, 50, 2),
            &plan,
            &ToleranceConfig::default(),
        )
        .expect("serve_cluster_faulty")
    };
    let a = run();
    let b = run();
    assert!(
        a.faults.crashes > 0 && a.faults.retries > 0,
        "pinned plan must actually lose and retry work: {:?}",
        a.faults
    );
    assert_eq!(
        checksum(&a.serve),
        checksum(&b.serve),
        "fault rerun drifted"
    );
    assert_eq!(a.faults, b.faults, "fault accounting drifted across reruns");
    assert_eq!(
        checksum(&a.serve),
        GOLDEN_FAULTY,
        "fault-run timings drifted"
    );
    let f = a.faults;
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in [
        f.crashes,
        f.fizzled,
        f.degraded,
        f.restarts,
        f.lost_inflight,
        f.lost_queued,
        f.retries,
        f.dropped,
        f.shed,
        f.hedges,
        f.stalled,
        f.coldstart_stalls,
        f.coldstart_failures,
    ] {
        h ^= u64::from(v);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^= f.wasted_busy.as_nanos();
    h = h.wrapping_mul(0x100_0000_01b3);
    assert_eq!(h, GOLDEN_FAULTY_STATS, "fault accounting drifted");
}

// Captured at introduction of fault injection (PR 10): pins the fault
// event interleave (crash < tick < serving ordering, retry instants,
// restart spawns) and the fault ledger byte for byte.
const GOLDEN_FAULTY: u64 = 17147578113817329578;
const GOLDEN_FAULTY_STATS: u64 = 2014719808468303536;
