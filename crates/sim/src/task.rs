//! Tasks: the unit of work the simulator executes.
//!
//! A [`TaskSpec`] names a [`Resource`] — a service
//! duration, a set of dependencies, optional memory effects, and a semantic
//! [`TaskMeta`] label used by the metrics layer (bubble accounting, timeline
//! export) and by schedulers reacting to completions.

use std::fmt;

use crate::memory::{MemDelta, Tier};
use crate::resource::Resource;
use crate::time::SimDuration;

/// Identifier of a submitted task, unique within one [`Simulator`](crate::sim::Simulator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub(crate) u32);

impl TaskId {
    /// The raw index of this task in submission order.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// Semantic class of an operation, used for metrics and scheduling decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Attention (plus its normalization) for one batch at one layer.
    AttentionCompute,
    /// Gate (router) computation for one batch at one layer.
    GateCompute,
    /// One expert's FFN over its assigned tokens.
    ExpertCompute,
    /// Dense FFN compute (dense baselines / dense models).
    DenseCompute,
    /// Expert FFN executed on the CPU (Fiddler-style orchestration).
    CpuExpertCompute,
    /// Transfer of attention/norm/dense weights into VRAM.
    WeightTransfer,
    /// Transfer of gate weights into VRAM.
    GateTransfer,
    /// Transfer of one expert's weights into VRAM.
    ExpertTransfer,
    /// KV-cache prefetch into VRAM.
    KvLoad,
    /// KV-cache writeback to DRAM.
    KvStore,
    /// Activation / hidden-state transfer.
    ActivationTransfer,
    /// Disk → DRAM staging of a layer (adaptive placement window).
    DiskStage,
    /// Eviction bookkeeping (usually zero-duration).
    Offload,
    /// Anything else.
    Misc,
}

impl OpClass {
    /// Whether this class occupies a compute resource (vs. a link).
    pub fn is_compute(self) -> bool {
        matches!(
            self,
            OpClass::AttentionCompute
                | OpClass::GateCompute
                | OpClass::ExpertCompute
                | OpClass::DenseCompute
                | OpClass::CpuExpertCompute
        )
    }

    /// Whether this class moves bytes over a link.
    pub fn is_transfer(self) -> bool {
        matches!(
            self,
            OpClass::WeightTransfer
                | OpClass::GateTransfer
                | OpClass::ExpertTransfer
                | OpClass::KvLoad
                | OpClass::KvStore
                | OpClass::ActivationTransfer
                | OpClass::DiskStage
        )
    }

    /// Short label used in timeline rendering.
    pub fn short_name(self) -> &'static str {
        match self {
            OpClass::AttentionCompute => "attn",
            OpClass::GateCompute => "gate",
            OpClass::ExpertCompute => "expert",
            OpClass::DenseCompute => "ffn",
            OpClass::CpuExpertCompute => "cpu-expert",
            OpClass::WeightTransfer => "w-load",
            OpClass::GateTransfer => "g-load",
            OpClass::ExpertTransfer => "e-load",
            OpClass::KvLoad => "kv-load",
            OpClass::KvStore => "kv-store",
            OpClass::ActivationTransfer => "act",
            OpClass::DiskStage => "disk",
            OpClass::Offload => "offload",
            OpClass::Misc => "misc",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Sentinel for "not applicable" in [`TaskMeta`] fields.
pub const NONE_IDX: u32 = u32::MAX;

/// Semantic label attached to every task.
///
/// `layer`, `batch` and `expert` use [`NONE_IDX`] when not applicable
/// (e.g. a weight transfer has no batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TaskMeta {
    /// Operation class.
    pub class: OpClass,
    /// Model layer index, or [`NONE_IDX`].
    pub layer: u32,
    /// Batch index within the batch group, or [`NONE_IDX`].
    pub batch: u32,
    /// Expert index within the layer, or [`NONE_IDX`].
    pub expert: u32,
    /// Token-step index (autoregressive step), or [`NONE_IDX`].
    pub step: u32,
}

impl TaskMeta {
    /// A label with every field unset except the class.
    pub fn of(class: OpClass) -> Self {
        TaskMeta {
            class,
            layer: NONE_IDX,
            batch: NONE_IDX,
            expert: NONE_IDX,
            step: NONE_IDX,
        }
    }

    /// Sets the layer index.
    pub fn layer(mut self, layer: u32) -> Self {
        self.layer = layer;
        self
    }

    /// Sets the batch index.
    pub fn batch(mut self, batch: u32) -> Self {
        self.batch = batch;
        self
    }

    /// Sets the expert index.
    pub fn expert(mut self, expert: u32) -> Self {
        self.expert = expert;
        self
    }

    /// Sets the token-step index.
    pub fn step(mut self, step: u32) -> Self {
        self.step = step;
        self
    }
}

impl fmt::Display for TaskMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.class)?;
        if self.layer != NONE_IDX {
            write!(f, " L{}", self.layer)?;
        }
        if self.batch != NONE_IDX {
            write!(f, " b{}", self.batch)?;
        }
        if self.expert != NONE_IDX {
            write!(f, " e{}", self.expert)?;
        }
        if self.step != NONE_IDX {
            write!(f, " s{}", self.step)?;
        }
        Ok(())
    }
}

/// Specification of a task to submit to the simulator.
///
/// Build one with [`TaskSpec::new`] and the chained setters, then pass it to
/// [`Simulator::submit`](crate::sim::Simulator::submit).
///
/// # Examples
///
/// ```
/// use klotski_sim::resource::Resource;
/// use klotski_sim::task::{OpClass, TaskMeta, TaskSpec};
/// use klotski_sim::time::SimDuration;
///
/// let spec = TaskSpec::new(
///     Resource::LinkH2d,
///     SimDuration::from_millis(21),
///     TaskMeta::of(OpClass::ExpertTransfer).layer(3).expert(5),
/// );
/// assert_eq!(spec.resource, Resource::LinkH2d);
/// ```
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// The serial resource that services this task.
    pub resource: Resource,
    /// Service time on the resource.
    pub duration: SimDuration,
    /// Semantic label.
    pub meta: TaskMeta,
    /// Tasks that must complete before this one may start.
    pub deps: Vec<TaskId>,
    /// Memory deltas applied when the task starts (allocation point).
    pub mem_on_start: Vec<MemDelta>,
    /// Memory deltas applied when the task ends (release point).
    pub mem_on_end: Vec<MemDelta>,
}

impl TaskSpec {
    /// Creates a task spec with no dependencies and no memory effects.
    pub fn new(resource: Resource, duration: SimDuration, meta: TaskMeta) -> Self {
        TaskSpec {
            resource,
            duration,
            meta,
            deps: Vec::new(),
            mem_on_start: Vec::new(),
            mem_on_end: Vec::new(),
        }
    }

    /// Adds one dependency.
    pub fn after(mut self, dep: TaskId) -> Self {
        self.deps.push(dep);
        self
    }

    /// Adds many dependencies.
    pub fn after_all<I: IntoIterator<Item = TaskId>>(mut self, deps: I) -> Self {
        self.deps.extend(deps);
        self
    }

    /// Allocates `bytes` on `tier` when the task starts.
    pub fn alloc_on_start(mut self, tier: Tier, bytes: u64) -> Self {
        self.mem_on_start.push(MemDelta::alloc(tier, bytes));
        self
    }

    /// Frees `bytes` on `tier` when the task ends.
    pub fn free_on_end(mut self, tier: Tier, bytes: u64) -> Self {
        self.mem_on_end.push(MemDelta::free(tier, bytes));
        self
    }
}

/// Lifecycle state of a task inside the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Waiting on dependencies.
    Blocked,
    /// Dependencies met; queued on its resource.
    Ready,
    /// Currently occupying its resource.
    Running,
    /// Finished.
    Done,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_builder_sets_fields() {
        let m = TaskMeta::of(OpClass::ExpertCompute)
            .layer(7)
            .batch(2)
            .expert(5)
            .step(1);
        assert_eq!(m.layer, 7);
        assert_eq!(m.batch, 2);
        assert_eq!(m.expert, 5);
        assert_eq!(m.step, 1);
        assert_eq!(m.to_string(), "expert L7 b2 e5 s1");
    }

    #[test]
    fn class_partitions_compute_and_transfer() {
        let all = [
            OpClass::AttentionCompute,
            OpClass::GateCompute,
            OpClass::ExpertCompute,
            OpClass::DenseCompute,
            OpClass::CpuExpertCompute,
            OpClass::WeightTransfer,
            OpClass::GateTransfer,
            OpClass::ExpertTransfer,
            OpClass::KvLoad,
            OpClass::KvStore,
            OpClass::ActivationTransfer,
            OpClass::DiskStage,
            OpClass::Offload,
            OpClass::Misc,
        ];
        for class in all {
            assert!(
                !(class.is_compute() && class.is_transfer()),
                "{class} is both compute and transfer"
            );
        }
        assert!(OpClass::ExpertCompute.is_compute());
        assert!(OpClass::ExpertTransfer.is_transfer());
        assert!(!OpClass::Offload.is_compute());
        assert!(!OpClass::Offload.is_transfer());
    }

    #[test]
    fn spec_builder_accumulates() {
        let spec = TaskSpec::new(
            Resource::GpuCompute,
            SimDuration::from_micros(10),
            TaskMeta::of(OpClass::GateCompute),
        )
        .after(TaskId(0))
        .after_all([TaskId(1), TaskId(2)])
        .alloc_on_start(Tier::Vram, 100)
        .free_on_end(Tier::Vram, 100);
        assert_eq!(spec.deps, vec![TaskId(0), TaskId(1), TaskId(2)]);
        assert_eq!(spec.mem_on_start.len(), 1);
        assert_eq!(spec.mem_on_end.len(), 1);
    }

    #[test]
    fn display_skips_unset_fields() {
        let m = TaskMeta::of(OpClass::WeightTransfer).layer(4);
        assert_eq!(m.to_string(), "w-load L4");
    }
}
