//! Serial hardware resources.
//!
//! Each [`Resource`] services one task at a time in ready order, modelling a
//! GPU compute stream, a CPU worker pool, or a DMA/copy engine in one
//! direction of a link. This mirrors how CUDA serializes same-direction
//! copies on a copy engine and kernels on a compute stream.

use std::fmt;

use crate::task::TaskId;
use crate::time::SimTime;

/// The serial resources of the simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resource {
    /// The GPU compute stream (kernels execute serially).
    GpuCompute,
    /// The CPU compute pool (Fiddler-style expert execution).
    CpuCompute,
    /// Host-to-device copy engine (DRAM → VRAM over PCIe).
    LinkH2d,
    /// Device-to-host copy engine (VRAM → DRAM over PCIe).
    LinkD2h,
    /// Disk → DRAM staging link.
    LinkDisk,
}

impl Resource {
    /// All resources, in a fixed order (indexable by [`Resource::index`]).
    pub const ALL: [Resource; 5] = [
        Resource::GpuCompute,
        Resource::CpuCompute,
        Resource::LinkH2d,
        Resource::LinkD2h,
        Resource::LinkDisk,
    ];

    /// Dense index of this resource in [`Resource::ALL`].
    pub fn index(self) -> usize {
        match self {
            Resource::GpuCompute => 0,
            Resource::CpuCompute => 1,
            Resource::LinkH2d => 2,
            Resource::LinkD2h => 3,
            Resource::LinkDisk => 4,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Resource::GpuCompute => "gpu",
            Resource::CpuCompute => "cpu",
            Resource::LinkH2d => "h2d",
            Resource::LinkD2h => "d2h",
            Resource::LinkDisk => "disk",
        }
    }
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Run-time state of one serial resource inside the simulator.
#[derive(Debug, Clone, Default)]
pub(crate) struct ResourceState {
    /// Ready tasks waiting for the resource, in ready order.
    pub queue: std::collections::VecDeque<TaskId>,
    /// The task currently being serviced, if any.
    pub running: Option<TaskId>,
    /// Accumulated busy time (for utilization/bubble metrics).
    pub busy: crate::time::SimDuration,
    /// Completion time of the most recent task.
    pub last_end: SimTime,
    /// Start time of the first task ever serviced.
    pub first_start: Option<SimTime>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, r) in Resource::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Resource::ALL.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Resource::ALL.len());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Resource::GpuCompute.to_string(), "gpu");
        assert_eq!(Resource::LinkH2d.to_string(), "h2d");
    }
}
