//! Simulated time.
//!
//! The simulator uses integer nanoseconds throughout so that event ordering
//! is exact and runs are bit-reproducible. [`SimTime`] is a point on the
//! simulated clock; [`SimDuration`] is a span between two points.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in nanoseconds since simulation start.
///
/// # Examples
///
/// ```
/// use klotski_sim::time::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(3);
/// assert_eq!(t.as_nanos(), 3_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use klotski_sim::time::SimDuration;
///
/// let d = SimDuration::from_micros(1500);
/// assert_eq!(d.as_millis_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point `nanos` nanoseconds after simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds since simulation start, as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The span from `earlier` to `self`.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is after `self`, mirroring
    /// [`std::time::Instant::saturating_duration_since`].
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two time points.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// Negative and non-finite inputs clamp to zero: durations produced by
    /// cost models are physical times and must never be negative.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Creates a duration from fractional milliseconds, rounding to nanoseconds.
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// Nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds in this span, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Milliseconds in this span, as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this span is empty.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction; returns [`SimDuration::ZERO`] on underflow.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The longer of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The shorter of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is after `self`; use
    /// [`SimTime::saturating_since`] when ordering is unknown.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;

    /// Scales the duration; negative or non-finite factors clamp to zero.
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(5);
        assert_eq!(t1.as_nanos(), 5_000_000);
        assert_eq!(t1 - t0, SimDuration::from_millis(5));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(1000), SimDuration::from_millis(1));
        assert_eq!(SimDuration::from_millis(1000), SimDuration::from_secs(1));
        assert_eq!(
            SimDuration::from_secs_f64(0.25),
            SimDuration::from_millis(250)
        );
        assert_eq!(
            SimDuration::from_millis_f64(1.5),
            SimDuration::from_micros(1500)
        );
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn saturating_since_handles_reversed_order() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(30);
        assert_eq!(late.saturating_since(early).as_nanos(), 20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn scaling_by_float_rounds_to_nanos() {
        let d = SimDuration::from_nanos(1000);
        assert_eq!((d * 2.5).as_nanos(), 2500);
        assert_eq!((d * -3.0), SimDuration::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn display_picks_readable_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(17).to_string(), "17.000us");
        assert_eq!(SimDuration::from_millis(17).to_string(), "17.000ms");
        assert_eq!(SimDuration::from_secs(17).to_string(), "17.000s");
    }
}
