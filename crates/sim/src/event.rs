//! A deterministic time-ordered event queue.
//!
//! Events popped from an [`EventQueue`] come out in non-decreasing time
//! order; events scheduled for the *same* instant come out in insertion
//! order (FIFO), which makes simulation runs fully reproducible.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered queue of simulation events.
///
/// # Examples
///
/// ```
/// use klotski_sim::event::EventQueue;
/// use klotski_sim::time::SimTime;
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(20), "late");
/// q.push(SimTime::from_nanos(10), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) wins.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// The time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &n in &[5u64, 1, 9, 3, 7] {
            q.push(t(n), n);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        q.push(t(4), "a");
        q.push(t(4), "b");
        q.push(t(4), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        q.push(t(2), ());
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(t(10), 10);
        q.push(t(30), 30);
        assert_eq!(q.pop().unwrap().1, 10);
        q.push(t(20), 20);
        assert_eq!(q.pop().unwrap().1, 20);
        assert_eq!(q.pop().unwrap().1, 30);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popped times are always non-decreasing, whatever the insertion order.
        #[test]
        fn pop_order_is_monotone(times in proptest::collection::vec(0u64..1_000, 0..200)) {
            let mut q = EventQueue::new();
            for &n in &times {
                q.push(SimTime::from_nanos(n), n);
            }
            let mut last = 0u64;
            while let Some((time, v)) = q.pop() {
                prop_assert_eq!(time.as_nanos(), v);
                prop_assert!(v >= last);
                last = v;
            }
        }

        /// Events at equal times preserve insertion order.
        #[test]
        fn equal_times_are_fifo(count in 1usize..100) {
            let mut q = EventQueue::new();
            for i in 0..count {
                q.push(SimTime::from_nanos(42), i);
            }
            for expect in 0..count {
                prop_assert_eq!(q.pop().unwrap().1, expect);
            }
        }

        /// len reflects pushes minus pops.
        #[test]
        fn len_is_consistent(pushes in 0usize..50, pops in 0usize..60) {
            let mut q = EventQueue::new();
            for i in 0..pushes {
                q.push(SimTime::from_nanos(i as u64), i);
            }
            let mut popped = 0;
            for _ in 0..pops {
                if q.pop().is_some() {
                    popped += 1;
                }
            }
            prop_assert_eq!(q.len(), pushes - popped);
        }
    }
}
