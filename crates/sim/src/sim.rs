//! The discrete-event simulator.
//!
//! Engines submit [`TaskSpec`]s — compute kernels, transfers, bookkeeping —
//! with explicit dependencies, then repeatedly call [`Simulator::step`] and
//! react to completions (this is how gate results trigger on-demand expert
//! transfers *at the simulated time they become known*, exactly like the
//! real engine's I/O thread reacting to the inference thread).
//!
//! Determinism: all state is integer-clocked, resources service tasks in
//! ready order (stable priority insertion), and simultaneous events resolve
//! FIFO, so a given submission sequence always produces the same trajectory.

use std::error::Error;
use std::fmt;

use crate::event::EventQueue;
use crate::memory::{MemoryPool, OomError, Tier};
use crate::metrics::{Metrics, TimelineEntry};
use crate::resource::{Resource, ResourceState};
use crate::task::{TaskId, TaskMeta, TaskSpec, TaskState};
use crate::time::{SimDuration, SimTime};

/// Capacities for the three memory tiers, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierCapacities {
    /// GPU memory bytes.
    pub vram: u64,
    /// Host memory bytes.
    pub dram: u64,
    /// Disk bytes.
    pub disk: u64,
}

impl TierCapacities {
    /// Effectively unbounded capacities (useful in unit tests).
    pub fn unbounded() -> Self {
        TierCapacities {
            vram: u64::MAX / 4,
            dram: u64::MAX / 4,
            disk: u64::MAX / 4,
        }
    }
}

/// A completed task, as reported by [`Simulator::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The completed task.
    pub task: TaskId,
    /// Its semantic label.
    pub meta: TaskMeta,
    /// The resource that serviced it.
    pub resource: Resource,
    /// Service start time.
    pub start: SimTime,
    /// Completion time (equals the simulator clock when reported).
    pub end: SimTime,
}

/// Errors surfaced while stepping the simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A task's start-of-task allocation exceeded a pool's capacity.
    Oom {
        /// The task whose allocation failed.
        task: TaskId,
        /// Its label.
        meta: TaskMeta,
        /// The underlying pool error.
        source: OomError,
    },
    /// No task can make progress but some are not done (dependency cycle or
    /// a dependency that was never submitted to a resource).
    Deadlock {
        /// Number of unfinished tasks.
        remaining: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Oom { task, meta, source } => {
                write!(f, "{task} ({meta}) failed to start: {source}")
            }
            SimError::Deadlock { remaining } => {
                write!(f, "simulation deadlock with {remaining} unfinished tasks")
            }
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Oom { source, .. } => Some(source),
            SimError::Deadlock { .. } => None,
        }
    }
}

#[derive(Debug)]
struct Task {
    resource: Resource,
    duration: SimDuration,
    meta: TaskMeta,
    mem_on_start: Vec<crate::memory::MemDelta>,
    mem_on_end: Vec<crate::memory::MemDelta>,
    priority: i32,
    state: TaskState,
    unmet: u32,
    dependents: Vec<TaskId>,
    start: SimTime,
    end: SimTime,
}

/// The discrete-event simulator: clock, resources, memory pools, metrics.
///
/// # Examples
///
/// ```
/// use klotski_sim::prelude::*;
///
/// # fn main() -> Result<(), klotski_sim::sim::SimError> {
/// let mut sim = Simulator::new(TierCapacities::unbounded());
/// let load = sim.submit(TaskSpec::new(
///     Resource::LinkH2d,
///     SimDuration::from_millis(21),
///     TaskMeta::of(OpClass::ExpertTransfer).expert(4),
/// ));
/// let compute = sim.submit(
///     TaskSpec::new(
///         Resource::GpuCompute,
///         SimDuration::from_millis(3),
///         TaskMeta::of(OpClass::ExpertCompute).expert(4),
///     )
///     .after(load),
/// );
/// let mut order = Vec::new();
/// while let Some(done) = sim.step()? {
///     order.push(done.task);
/// }
/// assert_eq!(order, vec![load, compute]);
/// assert_eq!(sim.now().as_millis_f64(), 24.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Simulator {
    clock: SimTime,
    events: EventQueue<TaskId>,
    tasks: Vec<Task>,
    resources: [ResourceState; 5],
    pools: [MemoryPool; 3],
    metrics: Metrics,
    unfinished: usize,
}

impl Simulator {
    /// Creates a simulator with the given tier capacities.
    pub fn new(caps: TierCapacities) -> Self {
        Simulator {
            clock: SimTime::ZERO,
            events: EventQueue::new(),
            tasks: Vec::new(),
            resources: Default::default(),
            pools: [
                MemoryPool::new(Tier::Vram, caps.vram),
                MemoryPool::new(Tier::Dram, caps.dram),
                MemoryPool::new(Tier::Disk, caps.disk),
            ],
            metrics: Metrics::new(),
            unfinished: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Read access to a memory pool.
    pub fn pool(&self, tier: Tier) -> &MemoryPool {
        &self.pools[tier.index()]
    }

    /// Write access to a memory pool, for engine-managed residency
    /// (e.g. parking resident weights during the offline placement phase).
    pub fn pool_mut(&mut self, tier: Tier) -> &mut MemoryPool {
        &mut self.pools[tier.index()]
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics access (to enable timeline/memory recording).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Number of submitted tasks that have not completed.
    pub fn unfinished(&self) -> usize {
        self.unfinished
    }

    /// Submits a task with default priority. See [`Simulator::submit_with_priority`].
    pub fn submit(&mut self, spec: TaskSpec) -> TaskId {
        self.submit_with_priority(spec, 0)
    }

    /// Submits a task; lower `priority` values are serviced first among
    /// tasks that are ready at the same time on the same resource (used for
    /// urgent on-demand expert transfers overtaking background prefetches).
    ///
    /// # Panics
    ///
    /// Panics if a dependency refers to a task that was never submitted.
    pub fn submit_with_priority(&mut self, spec: TaskSpec, priority: i32) -> TaskId {
        let id = TaskId(u32::try_from(self.tasks.len()).expect("too many tasks"));
        let mut unmet = 0;
        for &dep in &spec.deps {
            assert!(
                dep.index() < self.tasks.len(),
                "dependency {dep} of {id} does not exist"
            );
            if self.tasks[dep.index()].state != TaskState::Done {
                unmet += 1;
                self.tasks[dep.index()].dependents.push(id);
            }
        }
        let state = if unmet == 0 {
            TaskState::Ready
        } else {
            TaskState::Blocked
        };
        self.tasks.push(Task {
            resource: spec.resource,
            duration: spec.duration,
            meta: spec.meta,
            mem_on_start: spec.mem_on_start,
            mem_on_end: spec.mem_on_end,
            priority,
            state,
            unmet,
            dependents: Vec::new(),
            start: SimTime::ZERO,
            end: SimTime::ZERO,
        });
        self.unfinished += 1;
        if state == TaskState::Ready {
            self.enqueue_ready(id);
        }
        id
    }

    /// Inserts `id` into its resource queue, keeping priority order
    /// (stable: FIFO among equal priorities).
    fn enqueue_ready(&mut self, id: TaskId) {
        let prio = self.tasks[id.index()].priority;
        let res = self.tasks[id.index()].resource;
        let queue = &mut self.resources[res.index()].queue;
        let pos = queue
            .iter()
            .position(|&other| self.tasks[other.index()].priority > prio)
            .unwrap_or(queue.len());
        queue.insert(pos, id);
    }

    /// Starts every startable task at the current clock.
    fn dispatch_all(&mut self) -> Result<(), SimError> {
        for res in Resource::ALL {
            let state = &mut self.resources[res.index()];
            // A resource services one task at a time.
            if state.running.is_some() {
                continue;
            }
            if let Some(id) = state.queue.pop_front() {
                self.start_task(id)?;
            }
        }
        Ok(())
    }

    fn start_task(&mut self, id: TaskId) -> Result<(), SimError> {
        let (meta, deltas) = {
            let task = &self.tasks[id.index()];
            (task.meta, task.mem_on_start.clone())
        };
        for d in &deltas {
            if let Err(source) = self.pools[d.tier.index()].apply(d.bytes) {
                return Err(SimError::Oom {
                    task: id,
                    meta,
                    source,
                });
            }
            self.metrics
                .record_memory(self.clock, d.tier, self.pools[d.tier.index()].in_use());
        }
        let task = &mut self.tasks[id.index()];
        task.state = TaskState::Running;
        task.start = self.clock;
        task.end = self.clock + task.duration;
        let res = &mut self.resources[task.resource.index()];
        res.running = Some(id);
        res.first_start.get_or_insert(self.clock);
        self.events.push(task.end, id);
        Ok(())
    }

    /// Advances the simulation to the next completion.
    ///
    /// Returns `Ok(None)` when every submitted task has completed.
    ///
    /// # Errors
    ///
    /// * [`SimError::Oom`] if a starting task's allocation fails.
    /// * [`SimError::Deadlock`] if unfinished tasks remain but none can run.
    pub fn step(&mut self) -> Result<Option<Completion>, SimError> {
        self.dispatch_all()?;
        let Some((time, id)) = self.events.pop() else {
            if self.unfinished > 0 {
                return Err(SimError::Deadlock {
                    remaining: self.unfinished,
                });
            }
            return Ok(None);
        };
        debug_assert!(time >= self.clock, "event queue went backwards");
        self.clock = time;
        Ok(Some(self.complete_task(id)))
    }

    fn complete_task(&mut self, id: TaskId) -> Completion {
        let (resource, meta, start, end, duration, dependents, deltas) = {
            let task = &mut self.tasks[id.index()];
            task.state = TaskState::Done;
            (
                task.resource,
                task.meta,
                task.start,
                task.end,
                task.duration,
                std::mem::take(&mut task.dependents),
                std::mem::take(&mut task.mem_on_end),
            )
        };
        for d in &deltas {
            self.pools[d.tier.index()]
                .apply(d.bytes)
                .expect("end-of-task memory release cannot overflow");
            self.metrics
                .record_memory(self.clock, d.tier, self.pools[d.tier.index()].in_use());
        }
        let res = &mut self.resources[resource.index()];
        res.running = None;
        res.busy += duration;
        res.last_end = end;
        self.metrics.record_task(TimelineEntry {
            resource,
            meta,
            start,
            end,
        });
        for dep in dependents {
            let task = &mut self.tasks[dep.index()];
            task.unmet -= 1;
            if task.unmet == 0 && task.state == TaskState::Blocked {
                task.state = TaskState::Ready;
                self.enqueue_ready(dep);
            }
        }
        self.unfinished -= 1;
        Completion {
            task: id,
            meta,
            resource,
            start,
            end,
        }
    }

    /// Runs until all tasks complete, invoking `on_complete` after each one
    /// so the caller can submit follow-up work.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`].
    pub fn run<F>(&mut self, mut on_complete: F) -> Result<(), SimError>
    where
        F: FnMut(&mut Simulator, Completion),
    {
        while let Some(done) = self.step()? {
            on_complete(self, done);
        }
        Ok(())
    }

    /// Busy time accumulated on `resource`.
    pub fn busy(&self, resource: Resource) -> SimDuration {
        self.resources[resource.index()].busy
    }

    /// The active span of `resource`: first task start to last task end.
    pub fn span(&self, resource: Resource) -> SimDuration {
        let state = &self.resources[resource.index()];
        match state.first_start {
            Some(first) => state.last_end.saturating_since(first),
            None => SimDuration::ZERO,
        }
    }

    /// Idle ("bubble") time on `resource` within its active span.
    pub fn bubble(&self, resource: Resource) -> SimDuration {
        self.span(resource).saturating_sub(self.busy(resource))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::OpClass;

    fn meta(class: OpClass) -> TaskMeta {
        TaskMeta::of(class)
    }

    fn drain(sim: &mut Simulator) -> Vec<Completion> {
        let mut out = Vec::new();
        while let Some(c) = sim.step().expect("sim error") {
            out.push(c);
        }
        out
    }

    #[test]
    fn serial_resource_queues_tasks() {
        let mut sim = Simulator::new(TierCapacities::unbounded());
        let a = sim.submit(TaskSpec::new(
            Resource::GpuCompute,
            SimDuration::from_millis(10),
            meta(OpClass::AttentionCompute),
        ));
        let b = sim.submit(TaskSpec::new(
            Resource::GpuCompute,
            SimDuration::from_millis(5),
            meta(OpClass::GateCompute),
        ));
        let done = drain(&mut sim);
        assert_eq!(done[0].task, a);
        assert_eq!(done[1].task, b);
        assert_eq!(done[1].start.as_millis_f64(), 10.0);
        assert_eq!(done[1].end.as_millis_f64(), 15.0);
    }

    #[test]
    fn parallel_resources_overlap() {
        let mut sim = Simulator::new(TierCapacities::unbounded());
        sim.submit(TaskSpec::new(
            Resource::GpuCompute,
            SimDuration::from_millis(10),
            meta(OpClass::AttentionCompute),
        ));
        sim.submit(TaskSpec::new(
            Resource::LinkH2d,
            SimDuration::from_millis(10),
            meta(OpClass::WeightTransfer),
        ));
        drain(&mut sim);
        assert_eq!(sim.now().as_millis_f64(), 10.0);
    }

    #[test]
    fn dependencies_delay_start() {
        let mut sim = Simulator::new(TierCapacities::unbounded());
        let load = sim.submit(TaskSpec::new(
            Resource::LinkH2d,
            SimDuration::from_millis(21),
            meta(OpClass::ExpertTransfer),
        ));
        let compute = sim.submit(
            TaskSpec::new(
                Resource::GpuCompute,
                SimDuration::from_millis(1),
                meta(OpClass::ExpertCompute),
            )
            .after(load),
        );
        let done = drain(&mut sim);
        assert_eq!(done.len(), 2);
        assert_eq!(done[1].task, compute);
        assert_eq!(done[1].start.as_millis_f64(), 21.0);
        // The GPU stalled 21ms waiting: bubble accounting sees an empty span
        // because the GPU's first task started at 21ms.
        assert_eq!(sim.bubble(Resource::GpuCompute), SimDuration::ZERO);
    }

    #[test]
    fn bubble_is_idle_between_gpu_tasks() {
        let mut sim = Simulator::new(TierCapacities::unbounded());
        let first = sim.submit(TaskSpec::new(
            Resource::GpuCompute,
            SimDuration::from_millis(2),
            meta(OpClass::AttentionCompute),
        ));
        let load = sim.submit(TaskSpec::new(
            Resource::LinkH2d,
            SimDuration::from_millis(20),
            meta(OpClass::ExpertTransfer),
        ));
        sim.submit(
            TaskSpec::new(
                Resource::GpuCompute,
                SimDuration::from_millis(3),
                meta(OpClass::ExpertCompute),
            )
            .after(load)
            .after(first),
        );
        drain(&mut sim);
        // GPU: busy 2 + 3 = 5ms over span 23ms → 18ms bubble.
        assert_eq!(sim.busy(Resource::GpuCompute).as_millis_f64(), 5.0);
        assert_eq!(sim.span(Resource::GpuCompute).as_millis_f64(), 23.0);
        assert_eq!(sim.bubble(Resource::GpuCompute).as_millis_f64(), 18.0);
    }

    #[test]
    fn memory_effects_apply_at_start_and_end() {
        let mut sim = Simulator::new(TierCapacities {
            vram: 1000,
            dram: 1000,
            disk: 1000,
        });
        let load = sim.submit(
            TaskSpec::new(
                Resource::LinkH2d,
                SimDuration::from_millis(1),
                meta(OpClass::ExpertTransfer),
            )
            .alloc_on_start(Tier::Vram, 600),
        );
        sim.submit(
            TaskSpec::new(
                Resource::GpuCompute,
                SimDuration::from_millis(1),
                meta(OpClass::ExpertCompute),
            )
            .after(load)
            .free_on_end(Tier::Vram, 600),
        );
        drain(&mut sim);
        assert_eq!(sim.pool(Tier::Vram).in_use(), 0);
        assert_eq!(sim.pool(Tier::Vram).peak(), 600);
    }

    #[test]
    fn oom_surfaces_with_task_context() {
        let mut sim = Simulator::new(TierCapacities {
            vram: 100,
            dram: 1000,
            disk: 1000,
        });
        sim.submit(
            TaskSpec::new(
                Resource::LinkH2d,
                SimDuration::from_millis(1),
                meta(OpClass::ExpertTransfer).expert(3),
            )
            .alloc_on_start(Tier::Vram, 200),
        );
        let err = sim.step().unwrap_err();
        match err {
            SimError::Oom { meta, source, .. } => {
                assert_eq!(meta.expert, 3);
                assert_eq!(source.requested, 200);
            }
            other => panic!("expected OOM, got {other}"),
        }
    }

    #[test]
    fn dependency_cycle_is_reported_as_deadlock() {
        let mut sim = Simulator::new(TierCapacities::unbounded());
        // A task depending on itself can't be built via the API; emulate a
        // stuck dependency by depending on a task that never finishes
        // because it, in turn, depends on the first. Build via two submits:
        let a = sim.submit(TaskSpec::new(
            Resource::GpuCompute,
            SimDuration::from_millis(1),
            meta(OpClass::Misc),
        ));
        // Complete `a` first so the graph drains…
        while sim.unfinished() > 0 {
            sim.step().unwrap();
        }
        // …then submit b → c → b is impossible via the API (deps must exist
        // at submit time), so instead create an unsatisfiable wait: a task
        // depending on a fresh task that is itself blocked on it is not
        // expressible. The deadlock path is still reachable if an engine
        // forgets to submit a producer; emulate by depending on a Blocked
        // task whose own dependency never runs. Two-level chain:
        let blocked_forever = sim.submit(
            TaskSpec::new(
                Resource::GpuCompute,
                SimDuration::from_millis(1),
                meta(OpClass::Misc),
            )
            .after(a),
        );
        // `a` is already Done, so this actually runs; assert no deadlock.
        let _ = blocked_forever;
        assert!(drain(&mut sim).len() == 1);
    }

    #[test]
    fn priority_reorders_ready_queue() {
        let mut sim = Simulator::new(TierCapacities::unbounded());
        // Occupy the link so subsequent submissions queue up.
        let head = sim.submit(TaskSpec::new(
            Resource::LinkH2d,
            SimDuration::from_millis(5),
            meta(OpClass::WeightTransfer),
        ));
        // Must dispatch `head` before the queue forms behind it.
        sim.dispatch_all().unwrap();
        let background = sim.submit(TaskSpec::new(
            Resource::LinkH2d,
            SimDuration::from_millis(5),
            meta(OpClass::WeightTransfer),
        ));
        let urgent = sim.submit_with_priority(
            TaskSpec::new(
                Resource::LinkH2d,
                SimDuration::from_millis(5),
                meta(OpClass::ExpertTransfer),
            ),
            -1,
        );
        let done = drain(&mut sim);
        let order: Vec<TaskId> = done.iter().map(|c| c.task).collect();
        assert_eq!(order, vec![head, urgent, background]);
    }

    #[test]
    fn run_callback_can_submit_followups() {
        let mut sim = Simulator::new(TierCapacities::unbounded());
        sim.submit(TaskSpec::new(
            Resource::GpuCompute,
            SimDuration::from_millis(1),
            meta(OpClass::GateCompute),
        ));
        let mut chained = false;
        sim.run(|sim, done| {
            if done.meta.class == OpClass::GateCompute && !chained {
                chained = true;
                sim.submit(TaskSpec::new(
                    Resource::LinkH2d,
                    SimDuration::from_millis(2),
                    meta(OpClass::ExpertTransfer),
                ));
            }
        })
        .unwrap();
        assert!(chained);
        assert_eq!(sim.now().as_millis_f64(), 3.0);
    }

    #[test]
    fn zero_duration_tasks_complete_in_submission_order() {
        let mut sim = Simulator::new(TierCapacities::unbounded());
        let a = sim.submit(TaskSpec::new(
            Resource::GpuCompute,
            SimDuration::ZERO,
            meta(OpClass::Offload),
        ));
        let b = sim.submit(TaskSpec::new(
            Resource::GpuCompute,
            SimDuration::ZERO,
            meta(OpClass::Offload),
        ));
        let done = drain(&mut sim);
        assert_eq!(done[0].task, a);
        assert_eq!(done[1].task, b);
        assert_eq!(sim.now(), SimTime::ZERO);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::task::OpClass;
    use proptest::prelude::*;

    proptest! {
        /// Random linear chains: completion order equals submission order and
        /// the makespan equals the sum of durations.
        #[test]
        fn chains_serialize(durs in proptest::collection::vec(1u64..100, 1..40)) {
            let mut sim = Simulator::new(TierCapacities::unbounded());
            let mut prev: Option<TaskId> = None;
            for &d in &durs {
                let mut spec = TaskSpec::new(
                    Resource::GpuCompute,
                    SimDuration::from_micros(d),
                    TaskMeta::of(OpClass::Misc),
                );
                if let Some(p) = prev {
                    spec = spec.after(p);
                }
                prev = Some(sim.submit(spec));
            }
            let mut count = 0;
            while sim.step().unwrap().is_some() {
                count += 1;
            }
            prop_assert_eq!(count, durs.len());
            let total: u64 = durs.iter().sum();
            prop_assert_eq!(sim.now().as_nanos(), total * 1000);
        }

        /// Tasks on independent resources overlap: the makespan is the max
        /// per-resource sum, not the total sum.
        #[test]
        fn independent_resources_overlap(
            gpu in proptest::collection::vec(1u64..50, 1..20),
            link in proptest::collection::vec(1u64..50, 1..20),
        ) {
            let mut sim = Simulator::new(TierCapacities::unbounded());
            for &d in &gpu {
                sim.submit(TaskSpec::new(
                    Resource::GpuCompute,
                    SimDuration::from_micros(d),
                    TaskMeta::of(OpClass::Misc),
                ));
            }
            for &d in &link {
                sim.submit(TaskSpec::new(
                    Resource::LinkH2d,
                    SimDuration::from_micros(d),
                    TaskMeta::of(OpClass::Misc),
                ));
            }
            while sim.step().unwrap().is_some() {}
            let gpu_total: u64 = gpu.iter().sum();
            let link_total: u64 = link.iter().sum();
            prop_assert_eq!(
                sim.now().as_nanos(),
                gpu_total.max(link_total) * 1000
            );
        }

        /// Memory conservation: every alloc paired with a free leaves pools
        /// empty, and no step ever exceeds capacity.
        #[test]
        fn paired_memory_effects_conserve(sizes in proptest::collection::vec(1u64..1000, 1..30)) {
            let cap: u64 = sizes.iter().sum();
            let mut sim = Simulator::new(TierCapacities { vram: cap, dram: cap, disk: cap });
            let mut prev: Option<TaskId> = None;
            for &sz in &sizes {
                let mut load = TaskSpec::new(
                    Resource::LinkH2d,
                    SimDuration::from_micros(1),
                    TaskMeta::of(OpClass::ExpertTransfer),
                )
                .alloc_on_start(Tier::Vram, sz);
                if let Some(p) = prev {
                    load = load.after(p);
                }
                let load = sim.submit(load);
                let free = sim.submit(
                    TaskSpec::new(
                        Resource::GpuCompute,
                        SimDuration::from_micros(1),
                        TaskMeta::of(OpClass::ExpertCompute),
                    )
                    .after(load)
                    .free_on_end(Tier::Vram, sz),
                );
                prev = Some(free);
            }
            while sim.step().unwrap().is_some() {}
            prop_assert_eq!(sim.pool(Tier::Vram).in_use(), 0);
            prop_assert!(sim.pool(Tier::Vram).peak() <= cap);
        }
    }
}
