//! Metrics: timelines, memory traces, bubble accounting.
//!
//! Recording is opt-in (off by default) because full timelines of a long
//! decode run are large; the per-resource busy/span counters on
//! [`Simulator`](crate::sim::Simulator) are always maintained.

use std::fmt::Write as _;

use crate::memory::Tier;
use crate::resource::Resource;
use crate::task::TaskMeta;
use crate::time::{SimDuration, SimTime};

/// One serviced task on one resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEntry {
    /// Resource that serviced the task.
    pub resource: Resource,
    /// Semantic label.
    pub meta: TaskMeta,
    /// Service start.
    pub start: SimTime,
    /// Service end.
    pub end: SimTime,
}

impl TimelineEntry {
    /// Service duration.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// One sample of a memory pool's live bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemorySample {
    /// Sample time.
    pub time: SimTime,
    /// Sampled pool.
    pub tier: Tier,
    /// Live bytes after the change that triggered the sample.
    pub in_use: u64,
}

/// Collected metrics for one simulation.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    record_timeline: bool,
    record_memory: bool,
    timeline: Vec<TimelineEntry>,
    memory: Vec<MemorySample>,
}

impl Metrics {
    /// Creates an empty metrics collector with recording disabled.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Enables or disables timeline recording.
    pub fn set_record_timeline(&mut self, on: bool) {
        self.record_timeline = on;
    }

    /// Enables or disables memory-trace recording.
    pub fn set_record_memory(&mut self, on: bool) {
        self.record_memory = on;
    }

    pub(crate) fn record_task(&mut self, entry: TimelineEntry) {
        if self.record_timeline {
            self.timeline.push(entry);
        }
    }

    pub(crate) fn record_memory(&mut self, time: SimTime, tier: Tier, in_use: u64) {
        if self.record_memory {
            self.memory.push(MemorySample { time, tier, in_use });
        }
    }

    /// All recorded timeline entries, in completion order.
    pub fn timeline(&self) -> &[TimelineEntry] {
        &self.timeline
    }

    /// All recorded memory samples, in event order.
    pub fn memory_samples(&self) -> &[MemorySample] {
        &self.memory
    }

    /// Memory samples for one tier.
    pub fn memory_samples_for(&self, tier: Tier) -> impl Iterator<Item = &MemorySample> {
        self.memory.iter().filter(move |s| s.tier == tier)
    }

    /// Peak live bytes observed in the recorded memory trace for `tier`.
    pub fn recorded_peak(&self, tier: Tier) -> u64 {
        self.memory_samples_for(tier)
            .map(|s| s.in_use)
            .max()
            .unwrap_or(0)
    }

    /// Renders the recorded timeline as an ASCII Gantt chart (one row per
    /// resource), clipped to `[from, to)` and scaled to `width` columns.
    ///
    /// Each cell shows the first letter of the dominant op class in that
    /// slice of time ('.' for idle). This is the visual used to compare
    /// pipeline bubbles (paper Fig. 15).
    pub fn render_ascii(&self, from: SimTime, to: SimTime, width: usize) -> String {
        let mut out = String::new();
        if to <= from || width == 0 {
            return out;
        }
        let span = (to - from).as_nanos().max(1);
        for res in Resource::ALL {
            // Zero-duration bookkeeping tasks occupy no time; drawing them
            // would overpaint real work in their cell.
            let entries: Vec<&TimelineEntry> = self
                .timeline
                .iter()
                .filter(|e| e.resource == res && e.end > from && e.start < to && e.end > e.start)
                .collect();
            if entries.is_empty() {
                continue;
            }
            let mut row = vec!['.'; width];
            for e in &entries {
                let s = e.start.max(from).as_nanos() - from.as_nanos();
                let t = e.end.as_nanos().min(to.as_nanos()) - from.as_nanos();
                let c0 = (s as u128 * width as u128 / span as u128) as usize;
                let c1 = ((t as u128 * width as u128).div_ceil(span as u128) as usize).min(width);
                let ch = e
                    .meta
                    .class
                    .short_name()
                    .chars()
                    .next()
                    .unwrap_or('?')
                    .to_ascii_uppercase();
                for cell in row.iter_mut().take(c1).skip(c0) {
                    *cell = ch;
                }
            }
            let _ = writeln!(
                out,
                "{:>5} |{}|",
                res.name(),
                row.iter().collect::<String>()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{OpClass, TaskMeta};

    fn entry(res: Resource, class: OpClass, start: u64, end: u64) -> TimelineEntry {
        TimelineEntry {
            resource: res,
            meta: TaskMeta::of(class),
            start: SimTime::from_nanos(start),
            end: SimTime::from_nanos(end),
        }
    }

    #[test]
    fn recording_is_gated() {
        let mut m = Metrics::new();
        m.record_task(entry(Resource::GpuCompute, OpClass::GateCompute, 0, 10));
        assert!(m.timeline().is_empty());
        m.set_record_timeline(true);
        m.record_task(entry(Resource::GpuCompute, OpClass::GateCompute, 0, 10));
        assert_eq!(m.timeline().len(), 1);
    }

    #[test]
    fn memory_trace_and_peak() {
        let mut m = Metrics::new();
        m.set_record_memory(true);
        m.record_memory(SimTime::from_nanos(1), Tier::Vram, 100);
        m.record_memory(SimTime::from_nanos(2), Tier::Vram, 300);
        m.record_memory(SimTime::from_nanos(3), Tier::Vram, 50);
        m.record_memory(SimTime::from_nanos(3), Tier::Dram, 999);
        assert_eq!(m.recorded_peak(Tier::Vram), 300);
        assert_eq!(m.recorded_peak(Tier::Dram), 999);
        assert_eq!(m.recorded_peak(Tier::Disk), 0);
        assert_eq!(m.memory_samples_for(Tier::Vram).count(), 3);
    }

    #[test]
    fn ascii_render_marks_busy_cells() {
        let mut m = Metrics::new();
        m.set_record_timeline(true);
        m.record_task(entry(
            Resource::GpuCompute,
            OpClass::AttentionCompute,
            0,
            500,
        ));
        m.record_task(entry(Resource::LinkH2d, OpClass::ExpertTransfer, 0, 1000));
        let s = m.render_ascii(SimTime::ZERO, SimTime::from_nanos(1000), 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("  gpu |AAAAA"));
        assert!(lines[0].contains('.'));
        assert!(lines[1].starts_with("  h2d |EEEEEEEEEE"));
    }

    #[test]
    fn ascii_render_handles_empty_window() {
        let m = Metrics::new();
        assert!(m
            .render_ascii(SimTime::from_nanos(5), SimTime::from_nanos(5), 10)
            .is_empty());
    }

    #[test]
    fn timeline_entry_duration() {
        let e = entry(Resource::GpuCompute, OpClass::Misc, 10, 35);
        assert_eq!(e.duration().as_nanos(), 25);
    }
}
