//! # klotski-sim — discrete-event substrate
//!
//! A deterministic discrete-event simulator of the heterogeneous machine the
//! Klotski paper targets: a GPU compute stream, a CPU compute pool, the two
//! directions of a PCIe link, a disk link, and capacity-tracked
//! VRAM/DRAM/disk memory pools.
//!
//! Inference engines (Klotski and the baselines) are *policies* over this
//! substrate: they submit [`task::TaskSpec`]s with explicit dependencies and
//! react to [`sim::Completion`]s, which is how data-dependent decisions
//! (which experts the gate selected) happen at the simulated time the
//! information becomes available.
//!
//! ## Example
//!
//! ```
//! use klotski_sim::prelude::*;
//!
//! # fn main() -> Result<(), klotski_sim::sim::SimError> {
//! let mut sim = Simulator::new(TierCapacities::unbounded());
//! // Prefetch an expert while attention computes, then run the expert.
//! let attn = sim.submit(TaskSpec::new(
//!     Resource::GpuCompute,
//!     SimDuration::from_millis_f64(2.6),
//!     TaskMeta::of(OpClass::AttentionCompute).layer(0),
//! ));
//! let load = sim.submit(TaskSpec::new(
//!     Resource::LinkH2d,
//!     SimDuration::from_millis(21),
//!     TaskMeta::of(OpClass::ExpertTransfer).layer(0).expert(2),
//! ));
//! sim.submit(
//!     TaskSpec::new(
//!         Resource::GpuCompute,
//!         SimDuration::from_millis(1),
//!         TaskMeta::of(OpClass::ExpertCompute).layer(0).expert(2),
//!     )
//!     .after(attn)
//!     .after(load),
//! );
//! while sim.step()?.is_some() {}
//! // The expert compute had to wait for its 21ms transfer: inter-layer bubble.
//! assert!(sim.bubble(Resource::GpuCompute) > SimDuration::from_millis(18));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod event;
pub mod memory;
pub mod metrics;
pub mod resource;
pub mod sim;
pub mod task;
pub mod time;

/// Convenience re-exports of the most used types.
pub mod prelude {
    pub use crate::memory::{MemDelta, MemoryPool, OomError, Tier};
    pub use crate::metrics::{Metrics, TimelineEntry};
    pub use crate::resource::Resource;
    pub use crate::sim::{Completion, SimError, Simulator, TierCapacities};
    pub use crate::task::{OpClass, TaskId, TaskMeta, TaskSpec, NONE_IDX};
    pub use crate::time::{SimDuration, SimTime};
}
