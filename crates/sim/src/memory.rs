//! Capacity-tracked memory tiers (VRAM / DRAM / disk).
//!
//! Pools track live bytes and the high-water mark; allocation beyond
//! capacity is an error surfaced to the engine, which is how out-of-memory
//! behaviour of baselines (e.g. MoE-Infinity at large batch sizes, §9.2 of
//! the paper) is reproduced.

use std::error::Error;
use std::fmt;

/// A level of the heterogeneous memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// GPU memory.
    Vram,
    /// Host (CPU) memory.
    Dram,
    /// Disk / SSD.
    Disk,
}

impl Tier {
    /// All tiers, fastest first.
    pub const ALL: [Tier; 3] = [Tier::Vram, Tier::Dram, Tier::Disk];

    /// Dense index in [`Tier::ALL`].
    pub fn index(self) -> usize {
        match self {
            Tier::Vram => 0,
            Tier::Dram => 1,
            Tier::Disk => 2,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Vram => "vram",
            Tier::Dram => "dram",
            Tier::Disk => "disk",
        }
    }

    /// The next slower tier, if any.
    pub fn slower(self) -> Option<Tier> {
        match self {
            Tier::Vram => Some(Tier::Dram),
            Tier::Dram => Some(Tier::Disk),
            Tier::Disk => None,
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A signed memory effect applied by a task at start or end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemDelta {
    /// Which pool the delta applies to.
    pub tier: Tier,
    /// Signed byte count: positive allocates, negative frees.
    pub bytes: i64,
}

impl MemDelta {
    /// An allocation of `bytes` on `tier`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds `i64::MAX`.
    pub fn alloc(tier: Tier, bytes: u64) -> Self {
        MemDelta {
            tier,
            bytes: i64::try_from(bytes).expect("allocation size overflows i64"),
        }
    }

    /// A release of `bytes` on `tier`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds `i64::MAX`.
    pub fn free(tier: Tier, bytes: u64) -> Self {
        MemDelta {
            tier,
            bytes: -i64::try_from(bytes).expect("free size overflows i64"),
        }
    }
}

/// Error returned when an allocation exceeds a pool's capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OomError {
    /// Pool that overflowed.
    pub tier: Tier,
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Live bytes at the time of the failure.
    pub in_use: u64,
    /// Pool capacity.
    pub capacity: u64,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory on {}: requested {} B with {} / {} B in use",
            self.tier, self.requested, self.in_use, self.capacity
        )
    }
}

impl Error for OomError {}

/// A capacity-tracked pool for one memory tier.
///
/// # Examples
///
/// ```
/// use klotski_sim::memory::{MemoryPool, Tier};
///
/// let mut pool = MemoryPool::new(Tier::Vram, 1024);
/// pool.alloc(512)?;
/// assert_eq!(pool.in_use(), 512);
/// pool.free(512);
/// assert_eq!(pool.in_use(), 0);
/// assert_eq!(pool.peak(), 512);
/// # Ok::<(), klotski_sim::memory::OomError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MemoryPool {
    tier: Tier,
    capacity: u64,
    in_use: u64,
    peak: u64,
}

impl MemoryPool {
    /// Creates a pool of `capacity` bytes for `tier`.
    pub fn new(tier: Tier, capacity: u64) -> Self {
        MemoryPool {
            tier,
            capacity,
            in_use: 0,
            peak: 0,
        }
    }

    /// The tier this pool models.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Live bytes.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// Bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity - self.in_use
    }

    /// High-water mark of live bytes since creation.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Whether `bytes` more would fit right now.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.available()
    }

    /// Reserves `bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] if the pool would exceed its capacity; the pool
    /// is left unchanged in that case.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), OomError> {
        if !self.fits(bytes) {
            return Err(OomError {
                tier: self.tier,
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        Ok(())
    }

    /// Releases `bytes`.
    ///
    /// # Panics
    ///
    /// Panics if more bytes are freed than are live — this always indicates
    /// a scheduler bookkeeping bug and must not be silently absorbed.
    pub fn free(&mut self, bytes: u64) {
        assert!(
            bytes <= self.in_use,
            "{}: freeing {bytes} B with only {} B live",
            self.tier,
            self.in_use
        );
        self.in_use -= bytes;
    }

    /// Applies a signed delta (task memory effect).
    ///
    /// # Errors
    ///
    /// Returns [`OomError`] on allocation overflow.
    ///
    /// # Panics
    ///
    /// Panics if a negative delta frees more than is live.
    pub fn apply(&mut self, delta: i64) -> Result<(), OomError> {
        if delta >= 0 {
            self.alloc(delta as u64)
        } else {
            self.free((-delta) as u64);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_tracks_usage_and_peak() {
        let mut p = MemoryPool::new(Tier::Dram, 100);
        p.alloc(60).unwrap();
        p.alloc(30).unwrap();
        assert_eq!(p.in_use(), 90);
        assert_eq!(p.available(), 10);
        p.free(50);
        assert_eq!(p.in_use(), 40);
        assert_eq!(p.peak(), 90);
    }

    #[test]
    fn oom_is_reported_and_pool_unchanged() {
        let mut p = MemoryPool::new(Tier::Vram, 100);
        p.alloc(80).unwrap();
        let err = p.alloc(21).unwrap_err();
        assert_eq!(err.tier, Tier::Vram);
        assert_eq!(err.requested, 21);
        assert_eq!(err.in_use, 80);
        assert_eq!(p.in_use(), 80);
        assert!(err.to_string().contains("out of memory on vram"));
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn over_free_panics() {
        let mut p = MemoryPool::new(Tier::Vram, 100);
        p.alloc(10).unwrap();
        p.free(11);
    }

    #[test]
    fn apply_handles_both_signs() {
        let mut p = MemoryPool::new(Tier::Disk, 1000);
        p.apply(700).unwrap();
        p.apply(-200).unwrap();
        assert_eq!(p.in_use(), 500);
        assert!(p.apply(600).is_err());
    }

    #[test]
    fn tier_ordering_and_names() {
        assert_eq!(Tier::Vram.slower(), Some(Tier::Dram));
        assert_eq!(Tier::Dram.slower(), Some(Tier::Disk));
        assert_eq!(Tier::Disk.slower(), None);
        for (i, t) in Tier::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }

    #[test]
    fn mem_delta_constructors() {
        assert_eq!(MemDelta::alloc(Tier::Vram, 5).bytes, 5);
        assert_eq!(MemDelta::free(Tier::Vram, 5).bytes, -5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// in_use equals the sum of surviving allocations; peak never decreases
        /// and always bounds in_use.
        #[test]
        fn conservation(ops in proptest::collection::vec(0u64..50, 1..100)) {
            let mut p = MemoryPool::new(Tier::Dram, 10_000);
            let mut live: Vec<u64> = Vec::new();
            let mut expected = 0u64;
            for (i, &sz) in ops.iter().enumerate() {
                if i % 3 == 2 && !live.is_empty() {
                    let sz = live.pop().unwrap();
                    p.free(sz);
                    expected -= sz;
                } else if p.fits(sz) {
                    p.alloc(sz).unwrap();
                    live.push(sz);
                    expected += sz;
                }
                prop_assert_eq!(p.in_use(), expected);
                prop_assert!(p.peak() >= p.in_use());
                prop_assert!(p.in_use() <= p.capacity());
            }
        }
    }
}
