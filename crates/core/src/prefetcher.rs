//! The correlation-aware expert prefetcher (§6.2 of the paper).
//!
//! An **expert correlation table** records, per MoE layer, how often each
//! expert follows each previous-layer expert on a token's activation path
//! (path length `l = 1`, the paper's implementation choice in §8). The
//! table is warmed up with a pre-run over sample data; during inference,
//! each token's previous-layer choice indexes a row, the rows of all tokens
//! in the batch group are aggregated, and the top-K experts become the
//! prefetch set for the layer. The table keeps learning online; updates are
//! deliberately not persisted, so one task's tendencies never leak into the
//! next (§6.2).

use klotski_model::trace::GatingModel;

/// The expert correlation table plus prediction logic.
///
/// # Examples
///
/// ```
/// use klotski_core::prefetcher::CorrelationTable;
/// use klotski_model::spec::ModelSpec;
/// use klotski_model::trace::{GatingModel, TraceConfig};
///
/// let model = GatingModel::new(&TraceConfig::for_model(&ModelSpec::mixtral_8x7b(), 1));
/// let mut table = CorrelationTable::new(32, 8);
/// table.warm_up(&model, 4096, 2);
/// // Predict layer-0 hot experts for a batch with no history yet:
/// let hot = table.predict_first_layer(2);
/// assert_eq!(hot.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CorrelationTable {
    n_layers: u32,
    n_experts: u32,
    /// `[layer][prev][cur]` transition counts (layer 0's `prev` dimension is
    /// unused; kept for uniform indexing).
    counts: Vec<u64>,
    /// `[layer][cur]` marginal counts (used for layer 0 and as smoothing).
    marginals: Vec<u64>,
}

impl CorrelationTable {
    /// An empty table for `n_layers` MoE layers of `n_experts` experts.
    pub fn new(n_layers: u32, n_experts: u32) -> Self {
        let l = n_layers as usize;
        let e = n_experts as usize;
        CorrelationTable {
            n_layers,
            n_experts,
            counts: vec![0; l * e * e],
            marginals: vec![0; l * e],
        }
    }

    /// Number of MoE layers.
    pub fn n_layers(&self) -> u32 {
        self.n_layers
    }

    /// Experts per layer.
    pub fn n_experts(&self) -> u32 {
        self.n_experts
    }

    fn idx(&self, layer: u32, prev: u16, cur: u16) -> usize {
        let e = self.n_experts as usize;
        (layer as usize * e + prev as usize) * e + cur as usize
    }

    /// Records one token's routing at `layer`: previous-layer first choice
    /// (if any) and the selected experts.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn record(&mut self, layer: u32, prev: Option<u16>, chosen: &[u16]) {
        assert!(layer < self.n_layers, "layer out of range");
        for &c in chosen {
            assert!((c as u32) < self.n_experts, "expert out of range");
            self.marginals[layer as usize * self.n_experts as usize + c as usize] += 1;
            if let Some(p) = prev {
                let i = self.idx(layer, p, c);
                self.counts[i] += 1;
            }
        }
    }

    /// Warm-up pre-run (§8: wikitext-2 sampled at batch 8 × seq 512 in the
    /// paper; here `n_tokens` walks of the gating model).
    pub fn warm_up(&mut self, model: &GatingModel, n_tokens: u32, seed: u64) {
        model.for_each_token_walk(n_tokens, seed, |layer, prev, chosen| {
            self.record(layer, prev, chosen);
        });
    }

    /// Records `count` routed tokens for `expert` at `layer` without
    /// transition context (used for prefill phases, whose routing is
    /// observed in aggregate).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn record_marginal(&mut self, layer: u32, expert: u16, count: u64) {
        assert!(layer < self.n_layers, "layer out of range");
        assert!((expert as u32) < self.n_experts, "expert out of range");
        self.marginals[layer as usize * self.n_experts as usize + expert as usize] += count;
    }

    /// Aggregated expert tendencies at `layer` for a batch group whose
    /// tokens had `prev_choices` as their previous-MoE-layer first choices.
    /// Returns unnormalized scores per expert.
    pub fn tendencies(&self, layer: u32, prev_choices: &[u16]) -> Vec<f64> {
        let e = self.n_experts as usize;
        let mut scores = vec![0.0f64; e];
        for &p in prev_choices {
            let row_base = self.idx(layer, p, 0);
            let row = &self.counts[row_base..row_base + e];
            let total: u64 = row.iter().sum();
            if total == 0 {
                // Unseen context: fall back to the layer marginal.
                let m = &self.marginals[layer as usize * e..(layer as usize + 1) * e];
                let mt: u64 = m.iter().sum();
                if mt > 0 {
                    for (s, &c) in scores.iter_mut().zip(m) {
                        *s += c as f64 / mt as f64;
                    }
                }
                continue;
            }
            for (s, &c) in scores.iter_mut().zip(row) {
                *s += c as f64 / total as f64;
            }
        }
        scores
    }

    /// The top-`k` predicted hot experts at `layer` given the batch group's
    /// previous-layer choices.
    pub fn predict(&self, layer: u32, prev_choices: &[u16], k: u32) -> Vec<u16> {
        top_k_indices(&self.tendencies(layer, prev_choices), k)
    }

    /// The top-`k` experts of the first MoE layer (no history: marginals).
    pub fn predict_first_layer(&self, k: u32) -> Vec<u16> {
        self.predict_marginal(0, k)
    }

    /// The top-`k` experts of `layer` by marginal frequency alone (used for
    /// the prefill phase, where per-token history spans thousands of tokens
    /// and the marginal is the right aggregate).
    pub fn predict_marginal(&self, layer: u32, k: u32) -> Vec<u16> {
        let e = self.n_experts as usize;
        let base = layer as usize * e;
        let m: Vec<f64> = self.marginals[base..base + e]
            .iter()
            .map(|&c| c as f64)
            .collect();
        top_k_indices(&m, k)
    }

    /// Total recorded routing events (sanity/diagnostics).
    pub fn total_records(&self) -> u64 {
        self.marginals.iter().sum()
    }

    /// The marginal counter for (`layer`, `expert`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn marginal_count(&self, layer: u32, expert: u16) -> u64 {
        assert!(layer < self.n_layers, "layer out of range");
        assert!((expert as u32) < self.n_experts, "expert out of range");
        self.marginals[layer as usize * self.n_experts as usize + expert as usize]
    }

    /// The transition counter for (`layer`, `prev` → `cur`).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn transition_count(&self, layer: u32, prev: u16, cur: u16) -> u64 {
        assert!(layer < self.n_layers, "layer out of range");
        assert!(
            (prev as u32) < self.n_experts && (cur as u32) < self.n_experts,
            "expert out of range"
        );
        self.counts[self.idx(layer, prev, cur)]
    }

    /// Adds `count` to the transition counter for (`layer`, `prev` → `cur`)
    /// without touching the marginals (used by the persistence codec).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn add_transition(&mut self, layer: u32, prev: u16, cur: u16, count: u64) {
        assert!(layer < self.n_layers, "layer out of range");
        assert!(
            (prev as u32) < self.n_experts && (cur as u32) < self.n_experts,
            "expert out of range"
        );
        let i = self.idx(layer, prev, cur);
        self.counts[i] += count;
    }
}

fn top_k_indices(scores: &[f64], k: u32) -> Vec<u16> {
    let mut idx: Vec<u16> = (0..scores.len() as u16).collect();
    idx.sort_by(|&a, &b| {
        scores[b as usize]
            .total_cmp(&scores[a as usize])
            .then(a.cmp(&b))
    });
    idx.truncate(k as usize);
    idx
}

/// A correlation table with activation-path length `l = 2`: tendencies are
/// conditioned on the token's first choices at the **two** previous MoE
/// layers.
///
/// §8 of the paper sets `l = 1` and argues that "increasing l would add
/// dimension to path recording, which increases the complexity of the
/// table lookup and memory occupation" while Klotski "does not heavily
/// rely on the accuracy of expert prefetching". This type exists to make
/// that trade-off measurable: memory grows from `L·E²` to `L·E³` counters
/// and each lookup keys on a pair, for a (typically small) accuracy gain —
/// see the `sweep` bench binary.
#[derive(Debug, Clone)]
pub struct DeepCorrelationTable {
    n_layers: u32,
    n_experts: u32,
    /// `[layer][prev2][prev1][cur]` counts (layers 0 and 1 fall back to
    /// the embedded `l = 1` table).
    counts: Vec<u64>,
    /// Fallback for shallow layers and unseen pair contexts.
    shallow: CorrelationTable,
}

impl DeepCorrelationTable {
    /// An empty table for `n_layers` MoE layers of `n_experts` experts.
    pub fn new(n_layers: u32, n_experts: u32) -> Self {
        let l = n_layers as usize;
        let e = n_experts as usize;
        DeepCorrelationTable {
            n_layers,
            n_experts,
            counts: vec![0; l * e * e * e],
            shallow: CorrelationTable::new(n_layers, n_experts),
        }
    }

    /// Bytes of counter storage (the memory-occupation side of §8's
    /// trade-off; compare with `l = 1`'s `L·E²` table).
    pub fn counter_bytes(&self) -> usize {
        8 * self.counts.len()
    }

    /// Number of MoE layers.
    pub fn n_layers(&self) -> u32 {
        self.n_layers
    }

    fn idx(&self, layer: u32, prev2: u16, prev1: u16, cur: u16) -> usize {
        let e = self.n_experts as usize;
        ((layer as usize * e + prev2 as usize) * e + prev1 as usize) * e + cur as usize
    }

    /// Records one token's routing at `layer` given its first choices at
    /// the previous two MoE layers.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn record(&mut self, layer: u32, prev2: Option<u16>, prev1: Option<u16>, chosen: &[u16]) {
        self.shallow.record(layer, prev1, chosen);
        if let (Some(p2), Some(p1)) = (prev2, prev1) {
            for &c in chosen {
                let i = self.idx(layer, p2, p1, c);
                self.counts[i] += 1;
            }
        }
    }

    /// Warm-up pre-run over `n_tokens` token walks.
    pub fn warm_up(&mut self, model: &GatingModel, n_tokens: u32, seed: u64) {
        let mut path: Vec<u16> = Vec::new();
        let mut last_layer = u32::MAX;
        model.for_each_token_walk(n_tokens, seed, |layer, prev, chosen| {
            if layer <= last_layer {
                path.clear(); // new token walk
            }
            last_layer = layer;
            let prev2 = path.len().checked_sub(2).map(|i| path[i]);
            self.record(layer, prev2, prev, chosen);
            path.push(chosen[0]);
        });
    }

    /// The top-`k` predicted experts at `layer` for a batch group whose
    /// tokens carry `(prev2, prev1)` first-choice pairs.
    pub fn predict(&self, layer: u32, pairs: &[(u16, u16)], k: u32) -> Vec<u16> {
        let e = self.n_experts as usize;
        let mut scores = vec![0.0f64; e];
        for &(p2, p1) in pairs {
            let base = self.idx(layer, p2, p1, 0);
            let row = &self.counts[base..base + e];
            let total: u64 = row.iter().sum();
            if total == 0 {
                // Unseen pair: fall back to the l = 1 tendencies.
                for (s, v) in scores.iter_mut().zip(self.shallow.tendencies(layer, &[p1])) {
                    *s += v;
                }
                continue;
            }
            for (s, &c) in scores.iter_mut().zip(row) {
                *s += c as f64 / total as f64;
            }
        }
        top_k_indices(&scores, k)
    }

    /// The embedded path-length-1 table (for shallow layers / comparison).
    pub fn shallow(&self) -> &CorrelationTable {
        &self.shallow
    }
}

/// Scores `l = 2` prefetching on a trace, mirroring [`measure_accuracy`]
/// (predictions start at MoE layer 2, where a full pair context exists).
pub fn measure_accuracy_l2(
    base: &GatingModel,
    trace: &klotski_model::trace::GatingTrace,
    k: u32,
    warmup_tokens: u32,
) -> AccuracyReport {
    let layers = trace.n_moe_layers();
    let mut table = DeepCorrelationTable::new(layers, trace.n_experts());
    table.warm_up(base, warmup_tokens, 0xC0FFEE);

    let mut participation = vec![0.0f64; layers as usize];
    let mut really_hot = vec![0.0f64; layers as usize];
    let steps = trace.gen_len();
    let seqs = trace.n_seqs();

    for step in 0..steps {
        for m in 2..layers {
            let pairs: Vec<(u16, u16)> = (0..seqs)
                .map(|s| {
                    (
                        trace.seq_choices(step, m - 2, s)[0],
                        trace.seq_choices(step, m - 1, s)[0],
                    )
                })
                .collect();
            let predicted = table.predict(m, &pairs, k);
            let counts = trace.tokens_per_expert(step, m);
            let actual_hot = trace.step_hot_experts(step, m, k);
            participation[m as usize] += predicted
                .iter()
                .filter(|&&e| counts[e as usize] > 0)
                .count() as f64
                / k as f64;
            really_hot[m as usize] +=
                predicted.iter().filter(|e| actual_hot.contains(e)).count() as f64 / k as f64;
        }
        for m in 0..layers {
            for s in 0..seqs {
                let chosen = trace.seq_choices(step, m, s);
                let prev1 = (m >= 1).then(|| trace.seq_choices(step, m - 1, s)[0]);
                let prev2 = (m >= 2).then(|| trace.seq_choices(step, m - 2, s)[0]);
                table.record(m, prev2, prev1, chosen);
            }
        }
    }

    let per_layer: Vec<PrefetchAccuracy> = (2..layers as usize)
        .map(|m| PrefetchAccuracy {
            participation: participation[m] / steps as f64,
            really_hot: really_hot[m] / steps as f64,
        })
        .collect();
    let avg_participation =
        per_layer.iter().map(|a| a.participation).sum::<f64>() / per_layer.len().max(1) as f64;
    let avg_really_hot =
        per_layer.iter().map(|a| a.really_hot).sum::<f64>() / per_layer.len().max(1) as f64;
    AccuracyReport {
        per_layer,
        avg_participation,
        avg_really_hot,
        single_seq_accuracy: 0.0,
    }
}

/// Per-layer prefetch-accuracy measurements (paper Fig. 13).
#[derive(Debug, Clone, PartialEq)]
pub struct PrefetchAccuracy {
    /// Fraction of prefetched experts that received ≥1 token ("Participate
    /// in comp." — the green line, ≈100% with multi-batch aggregation).
    pub participation: f64,
    /// Fraction of prefetched experts that were among the step's actual
    /// top-K ("Really hot" — the blue line, ≈58.9% average in the paper).
    pub really_hot: f64,
}

/// Aggregate prefetch-accuracy report (the paper's Fig. 13 data).
#[derive(Debug, Clone)]
pub struct AccuracyReport {
    /// Per-MoE-layer accuracies, averaged over decode steps (layer 0 is
    /// skipped — it has no previous layer for the correlation lookup, as
    /// in the paper's figure, which starts at layer 1).
    pub per_layer: Vec<PrefetchAccuracy>,
    /// Mean participation across layers.
    pub avg_participation: f64,
    /// Mean really-hot accuracy across layers.
    pub avg_really_hot: f64,
    /// Accuracy of predicting for a *single sequence* instead of the whole
    /// batch group (the paper measures 42.24%, demonstrating why
    /// multi-batch aggregation reduces I/O waste).
    pub single_seq_accuracy: f64,
}

/// Replays a routing trace through a warmed correlation table (with online
/// updates, exactly as the engine performs them) and scores the prefetch
/// decisions — the experiment behind the paper's Fig. 13.
pub fn measure_accuracy(
    base: &GatingModel,
    trace: &klotski_model::trace::GatingTrace,
    k: u32,
    warmup_tokens: u32,
) -> AccuracyReport {
    let layers = trace.n_moe_layers();
    let mut table = CorrelationTable::new(layers, trace.n_experts());
    table.warm_up(base, warmup_tokens, 0xC0FFEE);

    let mut participation = vec![0.0f64; layers as usize];
    let mut really_hot = vec![0.0f64; layers as usize];
    let mut single_hits = 0u64;
    let mut single_total = 0u64;
    let steps = trace.gen_len();
    let seqs = trace.n_seqs();

    for step in 0..steps {
        for m in 1..layers {
            let prev: Vec<u16> = (0..seqs)
                .map(|s| trace.seq_choices(step, m - 1, s)[0])
                .collect();
            let predicted = table.predict(m, &prev, k);
            let counts = trace.tokens_per_expert(step, m);
            let actual_hot = trace.step_hot_experts(step, m, k);
            participation[m as usize] += predicted
                .iter()
                .filter(|&&e| counts[e as usize] > 0)
                .count() as f64
                / k as f64;
            really_hot[m as usize] +=
                predicted.iter().filter(|e| actual_hot.contains(e)).count() as f64 / k as f64;

            // Single-sequence prediction: what prefetching for one request
            // at a time (no batching) would achieve.
            for s in (0..seqs).step_by(seqs.max(8) as usize / 8) {
                let single = table.predict(m, &prev[s as usize..s as usize + 1], k);
                let chosen = trace.seq_choices(step, m, s);
                single_hits += single.iter().filter(|e| chosen.contains(e)).count() as u64;
                single_total += k as u64;
            }
        }
        // Online updates after the step, engine-style.
        for m in 0..layers {
            for s in 0..seqs {
                let choices = trace.seq_choices(step, m, s);
                let prev = if m == 0 {
                    None
                } else {
                    Some(trace.seq_choices(step, m - 1, s)[0])
                };
                table.record(m, prev, choices);
            }
        }
    }

    let per_layer: Vec<PrefetchAccuracy> = (1..layers as usize)
        .map(|m| PrefetchAccuracy {
            participation: participation[m] / steps as f64,
            really_hot: really_hot[m] / steps as f64,
        })
        .collect();
    let avg_participation =
        per_layer.iter().map(|a| a.participation).sum::<f64>() / per_layer.len().max(1) as f64;
    let avg_really_hot =
        per_layer.iter().map(|a| a.really_hot).sum::<f64>() / per_layer.len().max(1) as f64;
    AccuracyReport {
        per_layer,
        avg_participation,
        avg_really_hot,
        single_seq_accuracy: single_hits as f64 / single_total.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_model::spec::ModelSpec;
    use klotski_model::trace::TraceConfig;

    fn warmed() -> (GatingModel, CorrelationTable) {
        let cfg = TraceConfig::for_model(&ModelSpec::mixtral_8x7b(), 3);
        let model = GatingModel::new(&cfg);
        let mut t = CorrelationTable::new(cfg.n_moe_layers, cfg.n_experts);
        t.warm_up(&model, 4096, 17);
        (model, t)
    }

    #[test]
    fn warm_up_fills_the_table() {
        let (_, t) = warmed();
        // 4096 tokens × 32 layers × top-2 records.
        assert_eq!(t.total_records(), 4096 * 32 * 2);
    }

    #[test]
    fn prediction_beats_chance() {
        // Predicting with correlation context must recover the generator's
        // hot experts far more often than random (2/8 = 25%).
        let (model, t) = warmed();
        let trace = model.generate_trace(64, 32, 8, 99);
        let mut hits = 0u32;
        let mut total = 0u32;
        for step in 0..trace.gen_len() {
            for layer in 1..trace.n_moe_layers() {
                let prev: Vec<u16> = (0..trace.n_seqs())
                    .map(|s| trace.seq_choices(step, layer - 1, s)[0])
                    .collect();
                let predicted = t.predict(layer, &prev, 2);
                let actual = trace.step_hot_experts(step, layer, 2);
                hits += predicted.iter().filter(|e| actual.contains(e)).count() as u32;
                total += 2;
            }
        }
        let acc = hits as f64 / total as f64;
        assert!(acc > 0.45, "really-hot accuracy = {acc}");
    }

    #[test]
    fn first_layer_prediction_matches_marginal_hot_experts() {
        let (model, t) = warmed();
        let predicted = t.predict_first_layer(2);
        let actual = model.hot_experts(0, 2);
        let overlap = predicted.iter().filter(|e| actual.contains(e)).count();
        assert!(overlap >= 1, "predicted {predicted:?} vs actual {actual:?}");
    }

    #[test]
    fn online_records_shift_predictions() {
        let mut t = CorrelationTable::new(2, 4);
        // Seed: at layer 1, expert 0 always follows expert 3.
        for _ in 0..100 {
            t.record(1, Some(3), &[0]);
        }
        assert_eq!(t.predict(1, &[3, 3, 3], 1), vec![0]);
        // Online drift: expert 2 starts following expert 3 overwhelmingly.
        for _ in 0..1000 {
            t.record(1, Some(3), &[2]);
        }
        assert_eq!(t.predict(1, &[3, 3, 3], 1), vec![2]);
    }

    #[test]
    fn unseen_context_falls_back_to_marginal() {
        let mut t = CorrelationTable::new(2, 4);
        for _ in 0..10 {
            t.record(1, Some(0), &[1]); // marginal favours 1
        }
        // prev=3 was never seen: fall back to marginal.
        assert_eq!(t.predict(1, &[3], 1), vec![1]);
    }

    #[test]
    fn empty_table_predicts_lowest_indices() {
        let t = CorrelationTable::new(2, 4);
        // All-zero scores: deterministic tie-break by index.
        assert_eq!(t.predict_first_layer(2), vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "expert out of range")]
    fn out_of_range_expert_rejected() {
        let mut t = CorrelationTable::new(2, 4);
        t.record(0, None, &[9]);
    }

    #[test]
    fn deep_table_learns_pair_contexts() {
        let mut t = DeepCorrelationTable::new(3, 4);
        // Layer 2: expert 1 follows the pair (0, 3); expert 2 follows (3, 3).
        for _ in 0..50 {
            t.record(2, Some(0), Some(3), &[1]);
            t.record(2, Some(3), Some(3), &[2]);
        }
        assert_eq!(t.predict(2, &[(0, 3)], 1), vec![1]);
        assert_eq!(t.predict(2, &[(3, 3)], 1), vec![2]);
        // The l = 1 view cannot separate the two contexts: prev1 = 3 maps
        // to both experts equally; deterministic tie-break picks 1.
        let shallow = t.shallow().predict(2, &[3], 1);
        assert_eq!(shallow, vec![1]);
    }

    #[test]
    fn deep_table_falls_back_on_unseen_pairs() {
        let mut t = DeepCorrelationTable::new(3, 4);
        for _ in 0..10 {
            t.record(2, Some(0), Some(1), &[3]);
        }
        // Pair (2, 1) unseen → fall back to l = 1 (prev1 = 1 → expert 3).
        assert_eq!(t.predict(2, &[(2, 1)], 1), vec![3]);
    }

    #[test]
    fn deep_warmup_records_both_depths() {
        let (model, _) = warmed();
        let mut t = DeepCorrelationTable::new(32, 8);
        t.warm_up(&model, 512, 5);
        assert_eq!(t.shallow().total_records(), 512 * 32 * 2);
        assert!(t.counts.iter().any(|&c| c > 0), "pair counts recorded");
        // Memory trade-off of §8: E× larger than the shallow table.
        assert_eq!(t.counter_bytes(), 8 * 32 * 8 * 8 * 8);
    }

    #[test]
    fn l2_accuracy_at_least_matches_l1_on_correlated_traces() {
        let cfg = klotski_model::trace::TraceConfig::for_model(&ModelSpec::mixtral_8x7b(), 9);
        let base = GatingModel::new(&cfg);
        let task = base.drifted(cfg.drift, 10);
        let trace = task.generate_trace(96, 128, 8, 11);
        let l1 = measure_accuracy(&base, &trace, 2, 4096);
        let l2 = measure_accuracy_l2(&base, &trace, 2, 4096);
        assert!(
            l2.avg_really_hot > l1.avg_really_hot - 0.08,
            "l2 {:.3} collapsed vs l1 {:.3}",
            l2.avg_really_hot,
            l1.avg_really_hot
        );
        assert!(l2.avg_participation > 0.95);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Aggregated tendencies of per-token probability rows sum to the
        /// number of tokens (each row is a distribution).
        #[test]
        fn tendencies_are_row_normalized(
            records in proptest::collection::vec((0u16..4, 0u16..4), 1..200),
            query in proptest::collection::vec(0u16..4, 1..50),
        ) {
            let mut t = CorrelationTable::new(2, 4);
            for &(p, c) in &records {
                t.record(1, Some(p), &[c]);
            }
            // Ensure every queried row is non-empty by recording one event
            // per context.
            for p in 0..4u16 {
                t.record(1, Some(p), &[0]);
            }
            let scores = t.tendencies(1, &query);
            let total: f64 = scores.iter().sum();
            prop_assert!((total - query.len() as f64).abs() < 1e-6);
        }

        /// predict returns k distinct in-range experts.
        #[test]
        fn predict_shape(k in 1u32..4, prevs in proptest::collection::vec(0u16..4, 1..20)) {
            let mut t = CorrelationTable::new(3, 4);
            for p in 0..4u16 {
                for c in 0..4u16 {
                    t.record(2, Some(p), &[c]);
                }
            }
            let picks = t.predict(2, &prevs, k);
            prop_assert_eq!(picks.len(), k as usize);
            let set: std::collections::HashSet<u16> = picks.iter().copied().collect();
            prop_assert_eq!(set.len(), k as usize);
            prop_assert!(picks.iter().all(|&e| e < 4));
        }
    }
}
