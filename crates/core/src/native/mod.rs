//! The native execution path: Klotski's pipeline run **for real** on the
//! tiny CPU MoE model.
//!
//! The simulated engine (crate::engine) reproduces the paper's *numbers*;
//! this module validates the paper's *algorithm*: an I/O thread stages
//! (and, optionally, dequantizes) expert weights from a DRAM-tier store
//! into a bounded VRAM-tier slot pool while the inference thread computes
//! attention, gates, and experts in Klotski's expert-major, hot-first,
//! arrival-ordered schedule. Because expert contributions are combined in
//! fixed expert-index order ([`klotski_moe::model::MoeModel::combine`]),
//! the pipelined result is **bit-identical** to the sequential reference
//! runner — the property the whole reordering scheme rests on.

mod pipeline;
mod store;

pub use pipeline::{run_pipeline, NativePipelineConfig, NativeRunResult};
pub use store::{ExpertStore, StoredExpert};
