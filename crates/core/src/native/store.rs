//! The DRAM-tier expert store.
//!
//! Experts are the offloaded tensor class (they dominate MoE parameter
//! counts); attention, gate and norm weights stay resident. The store can
//! hold experts quantized — fetching then performs the dequantization the
//! paper does "before computation" (§7), on the I/O thread, so the compute
//! thread only ever sees full-precision weights.

use klotski_moe::model::MoeModel;
use klotski_moe::weights::ExpertWeights;
use klotski_tensor::quant::{QuantConfig, QuantizedMatrix};

/// One expert as stored in the DRAM tier.
#[derive(Debug, Clone)]
pub enum StoredExpert {
    /// Full precision (fetch is a copy).
    Full(ExpertWeights),
    /// Group-quantized (fetch dequantizes).
    Quantized {
        /// Quantized gate projection.
        w1: QuantizedMatrix,
        /// Quantized down projection.
        w2: QuantizedMatrix,
        /// Quantized up projection.
        w3: QuantizedMatrix,
    },
}

/// The expert weights of a whole model, held in the slow tier.
#[derive(Debug, Clone)]
pub struct ExpertStore {
    experts: Vec<Vec<StoredExpert>>,
}

impl ExpertStore {
    /// Builds a store from `model`'s weights, optionally quantizing.
    pub fn from_model(model: &MoeModel, quant: Option<QuantConfig>) -> Self {
        let experts = model
            .weights()
            .layers
            .iter()
            .map(|layer| {
                layer
                    .experts
                    .iter()
                    .map(|e| match quant {
                        None => StoredExpert::Full(e.clone()),
                        Some(cfg) => StoredExpert::Quantized {
                            w1: QuantizedMatrix::quantize(&e.w1, cfg),
                            w2: QuantizedMatrix::quantize(&e.w2, cfg),
                            w3: QuantizedMatrix::quantize(&e.w3, cfg),
                        },
                    })
                    .collect()
            })
            .collect();
        ExpertStore { experts }
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.experts.len()
    }

    /// Experts per layer.
    pub fn n_experts(&self) -> usize {
        self.experts.first().map_or(0, Vec::len)
    }

    /// Fetches (`layer`, `expert`) into "VRAM": clones full-precision
    /// weights or dequantizes — the I/O-thread work of one expert transfer.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn fetch(&self, layer: usize, expert: usize) -> ExpertWeights {
        let mut out = ExpertWeights::placeholder();
        self.fetch_into(layer, expert, &mut out);
        out
    }

    /// [`ExpertStore::fetch`] into a reused slot buffer: after the buffer
    /// has been used once, every subsequent fetch is a pure copy (or
    /// dequantization) into resident memory with **no allocation** — the
    /// VRAM-slot-buffer reuse a real offloading runtime gets from its
    /// staging pool.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn fetch_into(&self, layer: usize, expert: usize, out: &mut ExpertWeights) {
        match &self.experts[layer][expert] {
            StoredExpert::Full(w) => {
                out.w1.copy_from(&w.w1);
                out.w2.copy_from(&w.w2);
                out.w3.copy_from(&w.w3);
            }
            StoredExpert::Quantized { w1, w2, w3 } => {
                w1.dequantize_into(&mut out.w1);
                w2.dequantize_into(&mut out.w2);
                w3.dequantize_into(&mut out.w3);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_moe::config::MoeConfig;

    #[test]
    fn full_store_fetches_identical_weights() {
        let model = MoeModel::new(MoeConfig::tiny(7));
        let store = ExpertStore::from_model(&model, None);
        assert_eq!(store.n_layers(), 4);
        assert_eq!(store.n_experts(), 6);
        let fetched = store.fetch(2, 3);
        assert_eq!(&fetched, &model.weights().layers[2].experts[3]);
    }

    #[test]
    fn quantized_store_fetches_close_weights() {
        let model = MoeModel::new(MoeConfig::tiny(7));
        let store = ExpertStore::from_model(&model, Some(QuantConfig::paper_default()));
        let fetched = store.fetch(1, 2);
        let original = &model.weights().layers[1].experts[2];
        let err = fetched.w1.max_abs_diff(&original.w1);
        assert!(err > 0.0, "quantization must not be lossless here");
        assert!(err < 0.05, "4-bit error too large: {err}");
    }
}
