//! The DRAM-tier expert store.
//!
//! Experts are the offloaded tensor class (they dominate MoE parameter
//! counts); attention, gate and norm weights stay resident. The store can
//! hold experts quantized — fetching then either performs the
//! dequantization the paper does "before computation" (§7) on the I/O
//! thread ([`ExpertStore::fetch_into`]), or hands over the packed bytes
//! themselves ([`ExpertStore::fetch_packed_into`]) for the fused
//! quantized-GEMM path, where compute runs straight off the codes and no
//! full-precision slab ever exists in the slot buffer.

use klotski_moe::model::MoeModel;
use klotski_moe::weights::{ExpertWeights, QuantizedExpertWeights};
use klotski_tensor::quant::QuantConfig;

/// One expert as stored in the DRAM tier.
#[derive(Debug, Clone)]
pub enum StoredExpert {
    /// Full precision (fetch is a copy).
    Full(ExpertWeights),
    /// Group-quantized (fetch dequantizes, or copies the packed bytes).
    Quantized(QuantizedExpertWeights),
}

/// The expert weights of a whole model, held in the slow tier.
#[derive(Debug, Clone)]
pub struct ExpertStore {
    experts: Vec<Vec<StoredExpert>>,
}

impl ExpertStore {
    /// Builds a store from `model`'s weights, optionally quantizing.
    pub fn from_model(model: &MoeModel, quant: Option<QuantConfig>) -> Self {
        let experts = model
            .weights()
            .layers
            .iter()
            .map(|layer| {
                layer
                    .experts
                    .iter()
                    .map(|e| match quant {
                        None => StoredExpert::Full(e.clone()),
                        Some(cfg) => {
                            StoredExpert::Quantized(QuantizedExpertWeights::quantize(e, cfg))
                        }
                    })
                    .collect()
            })
            .collect();
        ExpertStore { experts }
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.experts.len()
    }

    /// Experts per layer.
    pub fn n_experts(&self) -> usize {
        self.experts.first().map_or(0, Vec::len)
    }

    /// Fetches (`layer`, `expert`) into "VRAM": clones full-precision
    /// weights or dequantizes — the I/O-thread work of one expert transfer.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn fetch(&self, layer: usize, expert: usize) -> ExpertWeights {
        let mut out = ExpertWeights::placeholder();
        self.fetch_into(layer, expert, &mut out);
        out
    }

    /// [`ExpertStore::fetch`] into a reused slot buffer: after the buffer
    /// has been used once, every subsequent fetch is a pure copy (or
    /// dequantization) into resident memory with **no allocation** — the
    /// VRAM-slot-buffer reuse a real offloading runtime gets from its
    /// staging pool.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn fetch_into(&self, layer: usize, expert: usize, out: &mut ExpertWeights) {
        match &self.experts[layer][expert] {
            StoredExpert::Full(w) => {
                out.w1.copy_from(&w.w1);
                out.w2.copy_from(&w.w2);
                out.w3.copy_from(&w.w3);
            }
            StoredExpert::Quantized(q) => q.dequantize_into(out),
        }
    }

    /// Whether the store holds experts in quantized form.
    pub fn is_quantized(&self) -> bool {
        matches!(
            self.experts.first().and_then(|l| l.first()),
            Some(StoredExpert::Quantized(_))
        )
    }

    /// Fetches the **packed** form of (`layer`, `expert`) into a reused
    /// slot: a copy of `bits/8 + metadata` bytes per parameter instead of
    /// a 4-byte-per-parameter dequantized slab — the transfer the fused
    /// quantized-GEMM compute path runs from.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range or the store is not
    /// quantized.
    pub fn fetch_packed_into(&self, layer: usize, expert: usize, out: &mut QuantizedExpertWeights) {
        match &self.experts[layer][expert] {
            StoredExpert::Full(_) => {
                panic!("fetch_packed_into on a full-precision store")
            }
            StoredExpert::Quantized(q) => out.copy_from(q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_moe::config::MoeConfig;

    #[test]
    fn full_store_fetches_identical_weights() {
        let model = MoeModel::new(MoeConfig::tiny(7));
        let store = ExpertStore::from_model(&model, None);
        assert_eq!(store.n_layers(), 4);
        assert_eq!(store.n_experts(), 6);
        let fetched = store.fetch(2, 3);
        assert_eq!(&fetched, &model.weights().layers[2].experts[3]);
    }

    #[test]
    fn quantized_store_fetches_close_weights() {
        let model = MoeModel::new(MoeConfig::tiny(7));
        let store = ExpertStore::from_model(&model, Some(QuantConfig::paper_default()));
        assert!(store.is_quantized());
        let fetched = store.fetch(1, 2);
        let original = &model.weights().layers[1].experts[2];
        let err = fetched.w1.max_abs_diff(&original.w1);
        assert!(err > 0.0, "quantization must not be lossless here");
        assert!(err < 0.05, "4-bit error too large: {err}");
    }

    #[test]
    fn packed_fetch_matches_dequantized_fetch_bitwise() {
        use klotski_moe::weights::QuantizedExpertWeights;
        let model = MoeModel::new(MoeConfig::tiny(7));
        let qcfg = QuantConfig::paper_default();
        let store = ExpertStore::from_model(&model, Some(qcfg));
        let mut packed = QuantizedExpertWeights::placeholder(qcfg);
        store.fetch_packed_into(2, 1, &mut packed);
        let mut via_packed = ExpertWeights::placeholder();
        packed.dequantize_into(&mut via_packed);
        assert_eq!(via_packed, store.fetch(2, 1));
        assert!(!ExpertStore::from_model(&model, None).is_quantized());
    }

    #[test]
    #[should_panic(expected = "full-precision store")]
    fn packed_fetch_rejects_full_store() {
        use klotski_moe::weights::QuantizedExpertWeights;
        let model = MoeModel::new(MoeConfig::tiny(7));
        let store = ExpertStore::from_model(&model, None);
        let mut packed = QuantizedExpertWeights::placeholder(QuantConfig::paper_default());
        store.fetch_packed_into(0, 0, &mut packed);
    }
}
