//! The two-thread native pipeline.
//!
//! Thread layout mirrors the paper's implementation (§4, Fig. 6): an
//! **inference thread** walks steps × layers × sequences, and an **I/O
//! thread** serves expert-fetch requests from the [`ExpertStore`] through a
//! bounded slot pool (the VRAM expert buffers). Klotski's schedule shows up
//! as three decisions:
//!
//! * hot experts (predicted from the online marginal table) are requested
//!   *before* the layer's attention, so they stream in under compute;
//! * gate-selected cold experts are requested the moment gating finishes,
//!   in discovery order;
//! * expert computations run in **arrival order** (hot first, then
//!   transfer-completion order), with each expert's slot released as soon
//!   as its tokens are done — "offloaded immediately".

use std::collections::HashSet;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded};
use klotski_moe::attention::AttnMask;
use klotski_moe::h2o::{H2oConfig, H2oState};
use klotski_moe::kv::KvCache;
use klotski_moe::model::MoeModel;
use klotski_moe::weights::ExpertWeights;
use klotski_tensor::quant::QuantConfig;

use super::store::ExpertStore;

/// Configuration of the native pipeline.
#[derive(Debug, Clone, Copy)]
pub struct NativePipelineConfig {
    /// Bounded VRAM expert slots (must be ≥ 1; 2+ enables overlap).
    pub vram_slots: usize,
    /// Hot experts to prefetch per layer.
    pub prefetch_k: usize,
    /// Store experts quantized (fetch dequantizes). Quantization changes
    /// numerics, so bit-exactness versus the reference holds only with
    /// `None`.
    pub quant: Option<QuantConfig>,
    /// Attention mask (dense or StreamingLLM).
    pub mask: AttnMask,
    /// Heavy-hitter KV policy (the §9.8 future-work extension); when set,
    /// it replaces `mask`, and bit-exactness is checked against
    /// [`MoeModel::generate_h2o`].
    pub h2o: Option<H2oConfig>,
}

impl Default for NativePipelineConfig {
    fn default() -> Self {
        NativePipelineConfig {
            vram_slots: 3,
            prefetch_k: 2,
            quant: None,
            mask: AttnMask::Dense,
            h2o: None,
        }
    }
}

/// Result of a native pipelined generation.
#[derive(Debug, Clone)]
pub struct NativeRunResult {
    /// Generated tokens per sequence.
    pub tokens: Vec<Vec<u32>>,
    /// Final hidden state per sequence (for bit-exact comparison).
    pub final_hidden: Vec<Vec<f32>>,
    /// Total expert fetches served by the I/O thread.
    pub expert_fetches: u64,
    /// Prefetched experts that did receive tokens.
    pub prefetch_hits: u64,
    /// Prefetched experts that received no tokens (wasted transfers).
    pub prefetch_misses: u64,
    /// Wall-clock run time.
    pub elapsed: Duration,
}

#[derive(Debug)]
struct FetchRequest {
    layer: usize,
    expert: usize,
}

#[derive(Debug)]
struct FetchedExpert {
    expert: usize,
    weights: ExpertWeights,
}

/// Runs Klotski's native pipeline over `prompts`, generating `gen_len`
/// tokens per sequence.
///
/// All sequences form one batch group: each layer's experts are fetched
/// once and shared across every sequence's tokens (the multi-batch weight
/// sharing of §5).
///
/// # Panics
///
/// Panics if `cfg.vram_slots == 0`, prompts are empty, or any prompt is
/// empty.
pub fn run_pipeline(
    model: &MoeModel,
    prompts: &[Vec<u32>],
    gen_len: usize,
    cfg: &NativePipelineConfig,
) -> NativeRunResult {
    assert!(cfg.vram_slots >= 1, "need at least one VRAM slot");
    assert!(!prompts.is_empty(), "no prompts");
    let start = Instant::now();
    let mcfg = *model.config();
    let n_seqs = prompts.len();
    let store = ExpertStore::from_model(model, cfg.quant);

    let (req_tx, req_rx) = unbounded::<FetchRequest>();
    let (res_tx, res_rx) = unbounded::<FetchedExpert>();
    // Slot pool: the I/O thread takes a token per in-flight expert; the
    // inference thread returns it when the expert is offloaded.
    let (slot_tx, slot_rx) = bounded::<()>(cfg.vram_slots);
    for _ in 0..cfg.vram_slots {
        slot_tx.send(()).expect("filling fresh slot pool");
    }

    let mut result = NativeRunResult {
        tokens: vec![Vec::new(); n_seqs],
        final_hidden: Vec::new(),
        expert_fetches: 0,
        prefetch_hits: 0,
        prefetch_misses: 0,
        elapsed: Duration::ZERO,
    };

    crossbeam::scope(|scope| {
        // --- I/O thread.
        let io_store = &store;
        let io = scope.spawn(move |_| {
            let mut served = 0u64;
            while let Ok(req) = req_rx.recv() {
                // Block until a VRAM slot frees up (bounded staging).
                if slot_rx.recv().is_err() {
                    break;
                }
                let weights = io_store.fetch(req.layer, req.expert);
                served += 1;
                if res_tx
                    .send(FetchedExpert {
                        expert: req.expert,
                        weights,
                    })
                    .is_err()
                {
                    break;
                }
            }
            served
        });

        // --- Inference thread (this thread).
        // Online marginal popularity table (the prefetcher's layer-0 /
        // prefill mode; path-aware prediction lives in the simulated
        // engine's CorrelationTable).
        let mut popularity = vec![vec![0u64; mcfg.n_experts]; mcfg.n_layers];

        let mut caches: Vec<KvCache> = (0..n_seqs).map(|_| model.new_cache()).collect();
        let mut h2o_states: Vec<Option<H2oState>> = (0..n_seqs)
            .map(|_| cfg.h2o.map(|c| H2oState::new(mcfg.n_layers, c)))
            .collect();
        // Token streams: per sequence, the positions processed so far.
        let mut hidden: Vec<Vec<f32>> = vec![Vec::new(); n_seqs];
        let mut positions: Vec<usize> = vec![0; n_seqs];

        // Steps: every prompt position (prefill), then gen_len − 1 decode
        // steps; each step pushes one token of every sequence through all
        // layers. Ragged prompts are handled by per-sequence position.
        let max_prompt = prompts.iter().map(Vec::len).max().unwrap_or(0);
        let total_steps = max_prompt + gen_len - 1;

        for step in 0..total_steps {
            // Which sequences have a token this step, and which token.
            let mut active: Vec<usize> = Vec::new();
            let mut h: Vec<Vec<f32>> = vec![Vec::new(); n_seqs];
            for (s, prompt) in prompts.iter().enumerate() {
                let pos = positions[s];
                let tok = if step < prompt.len() {
                    if step != pos {
                        continue; // this sequence's prompt is shorter; wait
                    }
                    prompt[pos]
                } else if pos == step
                    && step >= prompt.len()
                    && result.tokens[s].len() + 1 < gen_len
                {
                    // Greedy continuation from the previous hidden state
                    // (the final token of each sequence is emitted after
                    // the step loop).
                    let next = model.next_token(&hidden[s]);
                    result.tokens[s].push(next);
                    next
                } else {
                    continue;
                };
                h[s] = model.embed(tok, pos);
                positions[s] += 1;
                active.push(s);
            }
            if active.is_empty() {
                continue;
            }

            for (layer, layer_popularity) in popularity.iter_mut().enumerate() {
                // (1) Prefetch predicted hot experts before attention.
                let hot = top_k_by(layer_popularity, cfg.prefetch_k);
                let mut requested: HashSet<usize> = HashSet::new();
                for &e in &hot {
                    req_tx
                        .send(FetchRequest { layer, expert: e })
                        .expect("I/O thread alive");
                    requested.insert(e);
                }

                // (2) Attention for every active sequence (weights shared).
                for &s in &active {
                    h[s] = match h2o_states[s].as_mut() {
                        Some(state) => model.attn_block_h2o(layer, &h[s], &mut caches[s], state),
                        None => model.attn_block(layer, &h[s], &mut caches[s], cfg.mask),
                    };
                }

                // (3) Gate every token; group tokens by expert.
                let mut normed: Vec<Vec<f32>> = vec![Vec::new(); n_seqs];
                let mut tokens_of: Vec<Vec<(usize, f32)>> = vec![Vec::new(); mcfg.n_experts];
                for &s in &active {
                    normed[s] = model.moe_norm(layer, &h[s]);
                    let routing = model.route_token(layer, &normed[s]);
                    for &(e, w) in &routing.picks {
                        tokens_of[e].push((s, w));
                        layer_popularity[e] += 1;
                    }
                }

                // (4) On-demand requests for activated cold experts, in
                // discovery (expert-id within gate output) order.
                let activated: Vec<usize> = (0..mcfg.n_experts)
                    .filter(|&e| !tokens_of[e].is_empty())
                    .collect();
                for &e in &activated {
                    if requested.insert(e) {
                        req_tx
                            .send(FetchRequest { layer, expert: e })
                            .expect("I/O thread alive");
                    }
                }

                // (5) Compute experts in ARRIVAL order; release each slot
                // immediately after its tokens finish.
                let mut contributions: Vec<Vec<(usize, f32, Vec<f32>)>> = vec![Vec::new(); n_seqs];
                let mut remaining = requested.len();
                let mut done: HashSet<usize> = HashSet::new();
                while remaining > 0 {
                    let fetched = res_rx.recv().expect("I/O thread alive");
                    remaining -= 1;
                    let e = fetched.expert;
                    assert!(done.insert(e), "duplicate expert arrival");
                    if tokens_of[e].is_empty() {
                        result.prefetch_misses += 1;
                    } else {
                        if hot.contains(&e) {
                            result.prefetch_hits += 1;
                        }
                        for &(s, w) in &tokens_of[e] {
                            let out = fetched.weights.forward(&normed[s]);
                            contributions[s].push((e, w, out));
                        }
                    }
                    // Expert finished: offload immediately (free the slot).
                    slot_tx.send(()).expect("returning slot");
                }

                // (6) Combine in fixed expert-index order (bit-exactness).
                for &s in &active {
                    h[s] = model.combine(&h[s], &mut contributions[s]);
                }
            }

            for &s in &active {
                hidden[s] = std::mem::take(&mut h[s]);
            }
        }

        // Emit the final token of each sequence.
        for s in 0..n_seqs {
            let next = model.next_token(&hidden[s]);
            result.tokens[s].push(next);
            // Advance once more so final_hidden matches the reference,
            // which runs the last generated token back through the model.
            let pos = positions[s];
            let mut hh = model.embed(next, pos);
            for layer in 0..mcfg.n_layers {
                hh = match h2o_states[s].as_mut() {
                    Some(state) => model.attn_block_h2o(layer, &hh, &mut caches[s], state),
                    None => model.attn_block(layer, &hh, &mut caches[s], cfg.mask),
                };
                let normed = model.moe_norm(layer, &hh);
                let routing = model.route_token(layer, &normed);
                let mut contributions: Vec<(usize, f32, Vec<f32>)> = routing
                    .picks
                    .iter()
                    .map(|&(e, w)| {
                        (e, w, {
                            req_tx
                                .send(FetchRequest { layer, expert: e })
                                .expect("I/O thread alive");
                            let fetched = res_rx.recv().expect("I/O thread alive");
                            let out = fetched.weights.forward(&normed);
                            slot_tx.send(()).expect("returning slot");
                            out
                        })
                    })
                    .collect();
                hh = model.combine(&hh, &mut contributions);
            }
            hidden[s] = hh;
        }

        drop(req_tx);
        result.expert_fetches = io.join().expect("I/O thread panicked");
        result.final_hidden = hidden;
    })
    .expect("pipeline threads");

    result.elapsed = start.elapsed();
    result
}

fn top_k_by(counts: &[u64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..counts.len()).collect();
    idx.sort_by_key(|&e| (std::cmp::Reverse(counts[e]), e));
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_moe::config::MoeConfig;

    fn prompts(n: usize, len: usize, vocab: usize) -> Vec<Vec<u32>> {
        (0..n)
            .map(|s| {
                (0..len)
                    .map(|p| ((s * 31 + p * 7 + 3) % vocab) as u32)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn pipeline_matches_reference_bit_exactly() {
        let model = MoeModel::new(MoeConfig::tiny(21));
        let p = prompts(4, 6, model.config().vocab);
        let reference = model.generate(&p, 4, AttnMask::Dense);
        let piped = run_pipeline(&model, &p, 4, &NativePipelineConfig::default());
        assert_eq!(piped.tokens, reference.tokens, "token streams diverged");
        assert_eq!(
            piped.final_hidden, reference.final_hidden,
            "hidden states diverged: the reorder is not numerics-neutral"
        );
    }

    #[test]
    fn pipeline_matches_reference_with_one_slot() {
        // Fully serialized I/O (1 slot) must still be correct.
        let model = MoeModel::new(MoeConfig::tiny(5));
        let p = prompts(2, 5, model.config().vocab);
        let reference = model.generate(&p, 3, AttnMask::Dense);
        let cfg = NativePipelineConfig {
            vram_slots: 1,
            ..Default::default()
        };
        let piped = run_pipeline(&model, &p, 3, &cfg);
        assert_eq!(piped.tokens, reference.tokens);
        assert_eq!(piped.final_hidden, reference.final_hidden);
    }

    #[test]
    fn pipeline_matches_reference_with_streaming_mask() {
        let model = MoeModel::new(MoeConfig::tiny(9));
        let p = prompts(2, 12, model.config().vocab);
        let mask = AttnMask::Streaming {
            sinks: 2,
            window: 4,
        };
        let reference = model.generate(&p, 3, mask);
        let cfg = NativePipelineConfig {
            mask,
            ..Default::default()
        };
        let piped = run_pipeline(&model, &p, 3, &cfg);
        assert_eq!(piped.tokens, reference.tokens);
        assert_eq!(piped.final_hidden, reference.final_hidden);
    }

    #[test]
    fn ragged_prompts_are_handled() {
        let model = MoeModel::new(MoeConfig::tiny(13));
        let vocab = model.config().vocab;
        let p = vec![
            prompts(1, 4, vocab).remove(0),
            prompts(1, 7, vocab).remove(0),
            prompts(1, 5, vocab).remove(0),
        ];
        let reference = model.generate(&p, 3, AttnMask::Dense);
        let piped = run_pipeline(&model, &p, 3, &NativePipelineConfig::default());
        assert_eq!(piped.tokens, reference.tokens);
        assert_eq!(piped.final_hidden, reference.final_hidden);
    }

    #[test]
    fn quantized_run_differs_but_stays_reasonable() {
        let model = MoeModel::new(MoeConfig::tiny(3));
        let p = prompts(2, 6, model.config().vocab);
        let exact = run_pipeline(&model, &p, 3, &NativePipelineConfig::default());
        let cfg = NativePipelineConfig {
            quant: Some(QuantConfig::paper_default()),
            ..Default::default()
        };
        let quant = run_pipeline(&model, &p, 3, &cfg);
        // Hidden states are close but not identical.
        assert_ne!(exact.final_hidden, quant.final_hidden);
        let max_diff: f32 = exact.final_hidden[0]
            .iter()
            .zip(&quant.final_hidden[0])
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(max_diff < 1.0, "quantized drift too large: {max_diff}");
    }

    #[test]
    fn pipeline_matches_reference_with_h2o_policy() {
        // The future-work sparse-KV policy composes with the reordered
        // pipeline: bit-exact against the sequential H2O reference.
        let model = MoeModel::new(MoeConfig::tiny(19));
        let p = prompts(3, 14, model.config().vocab);
        let h2o_cfg = H2oConfig {
            budget: 6,
            sinks: 2,
        };
        let reference = model.generate_h2o(&p, 4, h2o_cfg);
        let cfg = NativePipelineConfig {
            h2o: Some(h2o_cfg),
            ..Default::default()
        };
        let piped = run_pipeline(&model, &p, 4, &cfg);
        assert_eq!(piped.tokens, reference.tokens);
        assert_eq!(piped.final_hidden, reference.final_hidden);
        // And the policy actually bites on these long prompts.
        let dense = model.generate(&p, 4, AttnMask::Dense);
        assert_ne!(dense.final_hidden, reference.final_hidden);
    }

    #[test]
    fn prefetch_statistics_are_collected() {
        let model = MoeModel::new(MoeConfig::tiny(17));
        let p = prompts(6, 8, model.config().vocab);
        let r = run_pipeline(&model, &p, 4, &NativePipelineConfig::default());
        assert!(r.expert_fetches > 0);
        assert!(
            r.prefetch_hits + r.prefetch_misses > 0,
            "prefetches must be scored"
        );
        // With 6 sequences routed top-2 over 6 experts, predicted hot
        // experts should mostly participate.
        let hit_rate = r.prefetch_hits as f64 / (r.prefetch_hits + r.prefetch_misses).max(1) as f64;
        assert!(hit_rate > 0.5, "hit rate = {hit_rate}");
    }
}
