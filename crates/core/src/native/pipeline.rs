//! The native pipeline: an I/O thread, an inference thread, and a compute
//! worker pool.
//!
//! Thread layout mirrors the paper's implementation (§4, Fig. 6): an
//! **inference thread** walks steps × layers × sequences, and an **I/O
//! thread** serves expert-fetch requests from the [`ExpertStore`] through a
//! bounded slot pool (the VRAM expert buffers). Klotski's schedule shows up
//! as three decisions:
//!
//! * hot experts (predicted from the online marginal table) are requested
//!   *before* the layer's attention, so they stream in under compute;
//! * gate-selected cold experts are requested the moment gating finishes,
//!   in discovery order;
//! * expert computations run in **arrival order** (hot first, then
//!   transfer-completion order), with each expert's slot released as soon
//!   as its tokens are done — "offloaded immediately".
//!
//! Three compute-side levers make the path fast (this is the aggregation
//! payoff of §5 — many batches' tokens amortize each expert transfer, so
//! each resident expert should also amortize its *compute*):
//!
//! * **Batched expert GEMMs** ([`ExpertWeights::forward_batch`]): all
//!   tokens routed to an arrived expert are stacked into one matrix and
//!   pushed through the FFN as two GEMMs, streaming the weights once per
//!   group instead of once per token. Disable with
//!   [`NativePipelineConfig::batch_experts`] to get the retained
//!   per-token fallback (the pre-batching behavior, kept in-tree for
//!   benchmark comparisons).
//! * **Batched attention** ([`MoeModel::attn_block_batch`]): each step's
//!   attention runs over the whole group at once — Q/K/V and the output
//!   projection are single GEMMs (the projection weights are shared by
//!   every sequence, so they stream once per group instead of once per
//!   token) and per-sequence scores/AV go through blocked strided kernels
//!   over the contiguous KV slabs, all in a reused
//!   [`AttnScratch`](klotski_moe::attention::AttnScratch) — zero heap
//!   allocations in the attention block at steady state. Disable with
//!   [`NativePipelineConfig::batch_attention`] for the retained per-token
//!   walk; the `h2o` policy always attends per token (its heavy-hitter
//!   state updates are sequential by design).
//! * **A compute worker pool**: independent arrived experts are computed
//!   in parallel by `compute_workers` crossbeam workers sharing one task
//!   queue — a pull model, so load balances itself by token count (an
//!   expert with many tokens occupies one worker while others drain the
//!   rest; see He et al., 2025 on imbalanced per-expert loads).
//!
//! No lever changes a single bit of output: every per-element
//! accumulation order is identical to the per-token reference, and expert
//! contributions are still combined in fixed expert-index order.

use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Sender};
use klotski_moe::attention::AttnMask;
use klotski_moe::gate::{RouteScratch, Routing};
use klotski_moe::h2o::{H2oConfig, H2oState};
use klotski_moe::kv::KvCache;
use klotski_moe::model::MoeModel;
use klotski_moe::weights::{ExpertWeights, FfnScratch, QuantizedExpertWeights};
use klotski_tensor::matrix::Matrix;
use klotski_tensor::quant::QuantConfig;
use klotski_tensor::simd::{BackendGuard, KernelBackend};

use super::store::ExpertStore;

/// Configuration of the native pipeline.
#[derive(Debug, Clone, Copy)]
pub struct NativePipelineConfig {
    /// Bounded VRAM expert slots (must be ≥ 1; 2+ enables overlap).
    pub vram_slots: usize,
    /// Hot experts to prefetch per layer.
    pub prefetch_k: usize,
    /// Store experts quantized (fetch dequantizes). Quantization changes
    /// numerics, so bit-exactness versus the reference holds only with
    /// `None`.
    pub quant: Option<QuantConfig>,
    /// Attention mask (dense or StreamingLLM).
    pub mask: AttnMask,
    /// Heavy-hitter KV policy (the §9.8 future-work extension); when set,
    /// it replaces `mask`, and bit-exactness is checked against
    /// [`MoeModel::generate_h2o`].
    pub h2o: Option<H2oConfig>,
    /// Compute each expert's token group as batched GEMMs (`true`, the
    /// default) or with the retained per-token matvec fallback (`false`,
    /// the pre-batching path kept for benchmark comparison). Output is
    /// bit-identical either way.
    pub batch_experts: bool,
    /// Compute workers for parallel expert execution (≤ 1 computes inline
    /// on the inference thread). Only effective with `batch_experts`;
    /// output is bit-identical at any worker count.
    pub compute_workers: usize,
    /// Run each step's attention over the whole group at once (`true`,
    /// the default): Q/K/V/O become per-group GEMMs and scores/AV go
    /// through the blocked strided kernels, all in reused scratch —
    /// versus the retained per-token `attend_one` walk (`false`, kept for
    /// benchmark comparison). Output is bit-identical either way. The
    /// `h2o` policy always attends per token: its heavy-hitter state
    /// updates are sequential by design.
    pub batch_attention: bool,
    /// Kernel backend to force for the run (`None` uses the detected
    /// best). All backends are bit-identical, so this axis only moves
    /// wall-clock — it exists for scalar-vs-SIMD benchmarking. The force
    /// is process-global for the duration of the run (a scoped guard
    /// restores the previous setting afterwards); concurrent pipelines in
    /// one process would share it harmlessly, because outputs don't
    /// depend on the backend.
    pub kernel_backend: Option<KernelBackend>,
    /// With `quant` set and `batch_experts` on: keep experts **packed**
    /// in the VRAM slots and compute through the fused quantized GEMM
    /// (`true`, the default) — no full-precision slab ever exists on the
    /// fetch path — versus staging a dequantized copy into the slot and
    /// running dense GEMMs (`false`, the pre-fusion path kept for
    /// benchmark comparison). Output is bit-identical either way; the
    /// axis only changes where dequantization happens.
    pub fused_quant: bool,
}

/// Default worker-pool width: leave a core each for the inference and I/O
/// threads, cap small — expert parallelism saturates quickly because the
/// slot pool bounds how many experts are resident at once.
fn default_compute_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .saturating_sub(2)
        .clamp(1, 4)
}

impl Default for NativePipelineConfig {
    fn default() -> Self {
        NativePipelineConfig {
            vram_slots: 3,
            prefetch_k: 2,
            quant: None,
            mask: AttnMask::Dense,
            h2o: None,
            batch_experts: true,
            compute_workers: default_compute_workers(),
            batch_attention: true,
            kernel_backend: None,
            fused_quant: true,
        }
    }
}

/// Result of a native pipelined generation.
#[derive(Debug, Clone)]
pub struct NativeRunResult {
    /// Generated tokens per sequence.
    pub tokens: Vec<Vec<u32>>,
    /// Final hidden state per sequence (for bit-exact comparison).
    pub final_hidden: Vec<Vec<f32>>,
    /// Total expert fetches served by the I/O thread.
    pub expert_fetches: u64,
    /// Prefetched experts that did receive tokens.
    pub prefetch_hits: u64,
    /// Prefetched experts that received no tokens (wasted transfers).
    pub prefetch_misses: u64,
    /// Wall-clock run time of the pipeline (store construction — model
    /// loading — excluded).
    pub elapsed: Duration,
}

#[derive(Debug)]
struct FetchRequest {
    layer: usize,
    expert: usize,
}

/// One VRAM slot buffer: a dense expert, or — on the fused quantized
/// path — the packed codes themselves, `bits/8 + metadata` bytes per
/// parameter instead of 4. The slot's form is fixed when the pool is
/// built; buffers circulate unchanged so every fetch stays allocation-free
/// after first use.
#[derive(Debug)]
enum VramExpert {
    /// Full-precision weights (copied or dequantized into the slot).
    Dense(ExpertWeights),
    /// Packed quantized weights; compute runs the fused quantized GEMM.
    Packed(QuantizedExpertWeights),
}

impl VramExpert {
    /// Batched SwiGLU forward into a reused output matrix and
    /// [`FfnScratch`] — allocation-free once the buffers hit their
    /// high-water shapes. `threads` only applies to the dense GEMMs; the
    /// fused quantized path is single-threaded per expert (the worker
    /// pool parallelizes across experts instead). Bit-identical across
    /// forms when the packed codes decode to the dense weights.
    fn forward_batch_threaded_into(
        &self,
        xs: &Matrix,
        out: &mut Matrix,
        scratch: &mut FfnScratch,
        threads: usize,
    ) {
        match self {
            VramExpert::Dense(w) => w.forward_batch_threaded_into(xs, out, scratch, threads),
            VramExpert::Packed(q) => q.forward_batch_into(xs, out, scratch),
        }
    }

    /// Batched forward with an automatic thread count (inline compute on
    /// the inference thread, where no worker pool competes for cores).
    fn forward_batch_into(&self, xs: &Matrix, out: &mut Matrix, scratch: &mut FfnScratch) {
        match self {
            VramExpert::Dense(w) => w.forward_batch_into(xs, out, scratch),
            VramExpert::Packed(q) => q.forward_batch_into(xs, out, scratch),
        }
    }

    /// The dense weights, for the retained per-token fallback — which
    /// never runs with packed slots (the pool is only packed when
    /// `batch_experts` is on).
    fn as_dense(&self) -> &ExpertWeights {
        match self {
            VramExpert::Dense(w) => w,
            VramExpert::Packed(_) => {
                unreachable!("per-token fallback requires dense slots")
            }
        }
    }
}

#[derive(Debug)]
struct FetchedExpert {
    expert: usize,
    weights: VramExpert,
}

/// What the inference thread multiplexes on: expert arrivals from the I/O
/// thread and finished batched forwards from the worker pool. One channel
/// for both means the inference thread never blocks on the wrong event
/// (e.g. waiting for a fetch while a finished compute should release the
/// slot the I/O thread needs).
enum Event {
    Fetched(FetchedExpert),
    Computed {
        expert: usize,
        /// The input buffer rides back to the inference thread's pool so
        /// the next task for this expert reuses it.
        xs: Matrix,
        rows: Matrix,
        /// The slot buffer travels with the task and returns to the pool.
        weights: VramExpert,
    },
}

/// One expert's batched forward, shipped to the worker pool. The input
/// and output matrices come from (and return to) per-expert pools on the
/// inference thread, so dispatch moves buffers instead of allocating.
struct ComputeTask {
    expert: usize,
    weights: VramExpert,
    /// The routed tokens' normalized hidden states, one per row.
    xs: Matrix,
    /// The pooled output buffer the worker computes into.
    out: Matrix,
}

/// Runs Klotski's native pipeline over `prompts`, generating `gen_len`
/// tokens per sequence.
///
/// All sequences form one batch group: each layer's experts are fetched
/// once and shared across every sequence's tokens (the multi-batch weight
/// sharing of §5), and each arrived expert computes its whole token group
/// as one batched forward.
///
/// # Panics
///
/// Panics if `cfg.vram_slots == 0`, prompts are empty, or any prompt is
/// empty.
pub fn run_pipeline(
    model: &MoeModel,
    prompts: &[Vec<u32>],
    gen_len: usize,
    cfg: &NativePipelineConfig,
) -> NativeRunResult {
    assert!(cfg.vram_slots >= 1, "need at least one VRAM slot");
    assert!(!prompts.is_empty(), "no prompts");
    let mcfg = *model.config();
    let n_seqs = prompts.len();
    // Pin the kernel backend for the run if the config asks for one. The
    // force is process-global, but every backend is bit-identical, so a
    // concurrent pipeline sharing it can only change in wall-clock.
    let _backend_guard = cfg.kernel_backend.map(BackendGuard::force);
    let store = ExpertStore::from_model(model, cfg.quant);
    // Time the pipeline itself; store construction is model loading.
    // analyze: allow(determinism) -- the one sanctioned timing site: elapsed is reported, never branched on
    let start = Instant::now();

    let (req_tx, req_rx) = unbounded::<FetchRequest>();
    let (event_tx, event_rx) = unbounded::<Event>();
    // Slot pool: the I/O thread takes a slot *buffer* per in-flight
    // expert and stages the fetch into it; the inference thread returns
    // the buffer when the expert is offloaded. Because the buffers
    // circulate, every fetch after each buffer's first use is a pure copy
    // with no allocation (all experts share one shape). With quantization
    // and the fused GEMM on, the slots hold the packed codes themselves —
    // the fetch copies `bits/8 + metadata` bytes per parameter and no
    // full-precision slab ever exists on the path.
    let packed_slots = cfg.batch_experts && cfg.fused_quant && cfg.quant.is_some();
    let (slot_tx, slot_rx) = bounded::<VramExpert>(cfg.vram_slots);
    for _ in 0..cfg.vram_slots {
        let slot = match (packed_slots, cfg.quant) {
            (true, Some(qcfg)) => VramExpert::Packed(QuantizedExpertWeights::placeholder(qcfg)),
            _ => VramExpert::Dense(ExpertWeights::placeholder()),
        };
        slot_tx.send(slot).expect("filling fresh slot pool");
    }

    let mut result = NativeRunResult {
        // Full generation span reserved upfront: token pushes never grow.
        tokens: (0..n_seqs).map(|_| Vec::with_capacity(gen_len)).collect(),
        final_hidden: Vec::new(),
        expert_fetches: 0,
        prefetch_hits: 0,
        prefetch_misses: 0,
        elapsed: Duration::ZERO,
    };

    crossbeam::scope(|scope| {
        // --- I/O thread.
        let io_store = &store;
        let io_event_tx = event_tx.clone();
        let io = scope.spawn(move |_| {
            let mut served = 0u64;
            while let Ok(req) = req_rx.recv() {
                // Block until a VRAM slot frees up (bounded staging), then
                // stage the expert into the freed slot's buffer.
                let Ok(mut weights) = slot_rx.recv() else {
                    break;
                };
                match &mut weights {
                    VramExpert::Dense(w) => io_store.fetch_into(req.layer, req.expert, w),
                    VramExpert::Packed(q) => io_store.fetch_packed_into(req.layer, req.expert, q),
                }
                served += 1;
                if io_event_tx
                    .send(Event::Fetched(FetchedExpert {
                        expert: req.expert,
                        weights,
                    }))
                    .is_err()
                {
                    break;
                }
            }
            served
        });

        // --- Compute worker pool (pull model: a shared task queue
        // load-balances by token count without central scheduling).
        let task_tx: Option<Sender<ComputeTask>> = if cfg.batch_experts && cfg.compute_workers > 1 {
            let (tx, rx) = unbounded::<ComputeTask>();
            for _ in 0..cfg.compute_workers {
                let rx = rx.clone();
                let worker_event_tx = event_tx.clone();
                scope.spawn(move |_| {
                    // Worker-local SwiGLU intermediates, pre-sized to the
                    // largest possible batch so every task runs without
                    // heap allocation.
                    let mut scratch = FfnScratch::default();
                    scratch.reserve(n_seqs, mcfg.d_ff);
                    while let Ok(mut task) = rx.recv() {
                        // The pool already parallelizes across experts;
                        // intra-GEMM threading on top would oversubscribe.
                        task.weights.forward_batch_threaded_into(
                            &task.xs,
                            &mut task.out,
                            &mut scratch,
                            1,
                        );
                        if worker_event_tx
                            .send(Event::Computed {
                                expert: task.expert,
                                xs: task.xs,
                                rows: task.out,
                                weights: task.weights,
                            })
                            .is_err()
                        {
                            break;
                        }
                    }
                });
            }
            Some(tx)
        } else {
            None
        };
        drop(event_tx); // senders live in the I/O thread and workers only

        // --- Inference thread (this thread).
        // Online marginal popularity table (the prefetcher's layer-0 /
        // prefill mode; path-aware prediction lives in the simulated
        // engine's CorrelationTable).
        let mut popularity = vec![vec![0u64; mcfg.n_experts]; mcfg.n_layers];

        // Per-sequence caches, pre-sized to their full prompt + generation
        // span so the per-layer KV slabs never reallocate mid-decode.
        let mut caches: Vec<KvCache> = prompts
            .iter()
            .map(|p| model.new_cache_with_capacity(p.len() + gen_len))
            .collect();
        let mut h2o_states: Vec<Option<H2oState>> = (0..n_seqs)
            .map(|_| cfg.h2o.map(|c| H2oState::new(mcfg.n_layers, c)))
            .collect();

        // Hot-loop state, allocated once and reused across all steps and
        // layers: per-sequence working + carry hidden states, the per-layer
        // normalized states, the per-expert token groups and pooled
        // input/output matrices, the routing and logits scratch, and the
        // per-expert request/arrival flags. Everything is pre-sized to its
        // high-water shape, so the step loop performs **zero heap
        // allocations** at steady state (pinned by `klotski-analyze`'s
        // alloc_pin test).
        let mut hidden: Vec<Vec<f32>> = vec![Vec::with_capacity(mcfg.d_model); n_seqs];
        let mut h: Vec<Vec<f32>> = vec![Vec::with_capacity(mcfg.d_model); n_seqs];
        let mut normed: Vec<Vec<f32>> = vec![Vec::with_capacity(mcfg.d_model); n_seqs];
        let mut tokens_of: Vec<Vec<(usize, f32)>> = (0..mcfg.n_experts)
            .map(|_| Vec::with_capacity(n_seqs))
            .collect();
        // Per-expert pooled matrices: routed-token inputs and batched
        // outputs. Sized once to the full group; `resize` below never
        // exceeds this, so stacking a group is pure copying.
        let mut expert_xs: Vec<Matrix> = (0..mcfg.n_experts)
            .map(|_| Matrix::zeros(n_seqs, mcfg.d_model))
            .collect();
        let mut expert_rows: Vec<Matrix> = (0..mcfg.n_experts)
            .map(|_| Matrix::zeros(n_seqs, mcfg.d_model))
            .collect();
        let mut rows_ready: Vec<bool> = vec![false; mcfg.n_experts];
        let mut requested: Vec<bool> = vec![false; mcfg.n_experts];
        let mut arrived: Vec<bool> = vec![false; mcfg.n_experts];
        let mut hot: Vec<usize> = Vec::with_capacity(cfg.prefetch_k);
        let mut hot_idx: Vec<usize> = Vec::with_capacity(mcfg.n_experts);
        let mut active: Vec<usize> = Vec::with_capacity(n_seqs);
        let mut positions: Vec<usize> = vec![0; n_seqs];
        let mut routing = Routing { picks: Vec::new() };
        let mut route_scratch = RouteScratch::default();
        // Inline-compute SwiGLU intermediates (used when no worker pool).
        let mut ffn_scratch = FfnScratch::default();
        ffn_scratch.reserve(n_seqs, mcfg.d_ff);
        let mut scratch = model.logits_scratch();
        let mut attn_scratch = model.attn_scratch();

        // Steps: every prompt position (prefill), then gen_len decode
        // steps; each step pushes one token of every sequence through all
        // layers — including the final generated token, whose advance
        // produces `final_hidden` exactly like the reference. Ragged
        // prompts are handled by per-sequence position.
        let max_prompt = prompts.iter().map(Vec::len).max().unwrap_or(0);
        let total_steps = max_prompt + gen_len;
        // Pre-size the attention scratch to the run's high-water shapes
        // (full group, longest possible cache) so the attention block of
        // every step is allocation-free. Skipped when the batched path is
        // off (per-token fallback or h2o): the scratch is never touched.
        let batched_attn = cfg.batch_attention && cfg.h2o.is_none();
        if batched_attn {
            attn_scratch.reserve(n_seqs, total_steps);
        }

        // analyze: no_alloc
        for step in 0..total_steps {
            // Which sequences have a token this step, and which token.
            active.clear();
            for (s, prompt) in prompts.iter().enumerate() {
                let pos = positions[s];
                let tok = if step < prompt.len() {
                    if step != pos {
                        continue; // this sequence's prompt is shorter; wait
                    }
                    prompt[pos]
                } else if pos == step && step >= prompt.len() && result.tokens[s].len() < gen_len {
                    // Greedy continuation from the previous hidden state.
                    let next = model.next_token_with(&hidden[s], &mut scratch);
                    result.tokens[s].push(next);
                    next
                } else {
                    continue;
                };
                model.embed_into(tok, pos, &mut h[s]);
                positions[s] += 1;
                active.push(s);
            }
            if active.is_empty() {
                continue;
            }

            for (layer, layer_popularity) in popularity.iter_mut().enumerate() {
                // (1) Prefetch predicted hot experts before attention.
                top_k_by_into(layer_popularity, cfg.prefetch_k, &mut hot_idx, &mut hot);
                requested.iter_mut().for_each(|f| *f = false);
                let mut n_requested = 0usize;
                for &e in &hot {
                    req_tx
                        .send(FetchRequest { layer, expert: e })
                        .expect("I/O thread alive");
                    requested[e] = true;
                    n_requested += 1;
                }

                // (2) Attention for every active sequence (weights
                // shared). The batched path runs the whole group through
                // one set of Q/K/V/O GEMMs; the per-token fallback (and
                // the inherently sequential h2o policy) walks sequences
                // one at a time. Both are bit-identical.
                if batched_attn {
                    model.attn_block_batch(
                        layer,
                        &mut h,
                        &active,
                        &mut caches,
                        cfg.mask,
                        &mut attn_scratch,
                    );
                } else {
                    for &s in &active {
                        h[s] = match h2o_states[s].as_mut() {
                            Some(state) => {
                                model.attn_block_h2o(layer, &h[s], &mut caches[s], state)
                            }
                            None => model.attn_block(layer, &h[s], &mut caches[s], cfg.mask),
                        };
                    }
                }

                // (3) Gate every token; group tokens by expert.
                for group in tokens_of.iter_mut() {
                    group.clear();
                }
                for &s in &active {
                    model.moe_norm_into(layer, &h[s], &mut normed[s]);
                    model.route_token_into(layer, &normed[s], &mut routing, &mut route_scratch);
                    for &(e, w) in &routing.picks {
                        tokens_of[e].push((s, w));
                        layer_popularity[e] += 1;
                    }
                }

                // (4) On-demand requests for activated cold experts, in
                // discovery (expert-id within gate output) order.
                for (e, group) in tokens_of.iter().enumerate() {
                    if !group.is_empty() && !requested[e] {
                        requested[e] = true;
                        n_requested += 1;
                        req_tx
                            .send(FetchRequest { layer, expert: e })
                            .expect("I/O thread alive");
                    }
                }

                // (5) Compute experts in ARRIVAL order. Each arrived
                // expert's token group runs as ONE batched forward —
                // dispatched to the worker pool when one is running, so
                // independent experts overlap — and its slot is released
                // the moment its compute finishes ("offloaded
                // immediately"). The single event channel means the
                // inference thread always reacts to whichever happens
                // first: an arrival or a completion.
                let mut remaining = n_requested;
                let mut in_flight = 0usize;
                arrived.iter_mut().for_each(|f| *f = false);
                while remaining > 0 || in_flight > 0 {
                    match event_rx.recv().expect("pipeline threads alive") {
                        Event::Fetched(fetched) => {
                            remaining -= 1;
                            let e = fetched.expert;
                            assert!(!arrived[e], "duplicate expert arrival");
                            arrived[e] = true;
                            if tokens_of[e].is_empty() {
                                result.prefetch_misses += 1;
                                slot_tx.send(fetched.weights).expect("returning slot");
                                continue;
                            }
                            if hot.contains(&e) {
                                result.prefetch_hits += 1;
                            }
                            if !cfg.batch_experts {
                                // Retained per-token fallback: one matvec
                                // per routed token, weights re-streamed
                                // every time (the pre-batching path). The
                                // per-token `forward` allocates; only the
                                // batched default path is pinned
                                // allocation-free.
                                let rows = &mut expert_rows[e];
                                rows.resize(tokens_of[e].len(), mcfg.d_model);
                                for (r, &(s, _)) in tokens_of[e].iter().enumerate() {
                                    let out = fetched.weights.as_dense().forward(&normed[s]);
                                    rows.row_mut(r).copy_from_slice(&out);
                                }
                                rows_ready[e] = true;
                                slot_tx.send(fetched.weights).expect("returning slot");
                                continue;
                            }
                            // Stack the expert's routed tokens row-major
                            // into its pooled input matrix.
                            let xs = &mut expert_xs[e];
                            xs.resize(tokens_of[e].len(), mcfg.d_model);
                            for (r, &(s, _)) in tokens_of[e].iter().enumerate() {
                                xs.row_mut(r).copy_from_slice(&normed[s]);
                            }
                            if let Some(task_tx) = &task_tx {
                                // Move the pooled buffers into the task;
                                // they ride back with Event::Computed. The
                                // empty placeholders left behind do not
                                // allocate.
                                task_tx
                                    .send(ComputeTask {
                                        expert: e,
                                        weights: fetched.weights,
                                        xs: std::mem::take(&mut expert_xs[e]),
                                        out: std::mem::take(&mut expert_rows[e]),
                                    })
                                    .expect("worker pool alive");
                                in_flight += 1;
                            } else {
                                fetched.weights.forward_batch_into(
                                    &expert_xs[e],
                                    &mut expert_rows[e],
                                    &mut ffn_scratch,
                                );
                                rows_ready[e] = true;
                                slot_tx.send(fetched.weights).expect("returning slot");
                            }
                        }
                        Event::Computed {
                            expert,
                            xs,
                            rows,
                            weights,
                        } => {
                            // Return the buffers to the per-expert pools.
                            expert_xs[expert] = xs;
                            expert_rows[expert] = rows;
                            rows_ready[expert] = true;
                            in_flight -= 1;
                            // Expert finished: offload immediately.
                            slot_tx.send(weights).expect("returning slot");
                        }
                    }
                }

                // (6) Combine in fixed expert-index order (bit-exactness):
                // ascending-e iteration adds each sequence's contributions
                // in exactly the order [`MoeModel::combine`] would after
                // its sort, with no per-token Vec churn.
                for (e, ready) in rows_ready.iter_mut().enumerate() {
                    if !*ready {
                        continue;
                    }
                    *ready = false;
                    let rows = &expert_rows[e];
                    for (r, &(s, w)) in tokens_of[e].iter().enumerate() {
                        for (hv, &x) in h[s].iter_mut().zip(rows.row(r)) {
                            *hv += w * x;
                        }
                    }
                }
            }

            for &s in &active {
                std::mem::swap(&mut hidden[s], &mut h[s]);
            }
        }

        drop(task_tx);
        drop(req_tx);
        result.expert_fetches = io.join().expect("I/O thread panicked");
        result.final_hidden = hidden;
    })
    .expect("pipeline threads");

    result.elapsed = start.elapsed();
    result
}

/// The `k` most popular experts into a reused output, with reused sort
/// scratch. The key is unique per expert (count, then expert id), so the
/// unstable sort is deterministic — and, unlike the stable sort, it never
/// allocates.
// analyze: no_alloc
fn top_k_by_into(counts: &[u64], k: usize, idx: &mut Vec<usize>, out: &mut Vec<usize>) {
    idx.clear();
    idx.extend(0..counts.len());
    idx.sort_unstable_by_key(|&e| (std::cmp::Reverse(counts[e]), e));
    out.clear();
    out.extend(idx.iter().take(k));
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_moe::config::MoeConfig;

    fn prompts(n: usize, len: usize, vocab: usize) -> Vec<Vec<u32>> {
        (0..n)
            .map(|s| {
                (0..len)
                    .map(|p| ((s * 31 + p * 7 + 3) % vocab) as u32)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn pipeline_matches_reference_bit_exactly() {
        let model = MoeModel::new(MoeConfig::tiny(21));
        let p = prompts(4, 6, model.config().vocab);
        let reference = model.generate(&p, 4, AttnMask::Dense);
        let piped = run_pipeline(&model, &p, 4, &NativePipelineConfig::default());
        assert_eq!(piped.tokens, reference.tokens, "token streams diverged");
        assert_eq!(
            piped.final_hidden, reference.final_hidden,
            "hidden states diverged: the reorder is not numerics-neutral"
        );
    }

    #[test]
    fn pipeline_matches_reference_with_one_slot() {
        // Fully serialized I/O (1 slot) must still be correct.
        let model = MoeModel::new(MoeConfig::tiny(5));
        let p = prompts(2, 5, model.config().vocab);
        let reference = model.generate(&p, 3, AttnMask::Dense);
        let cfg = NativePipelineConfig {
            vram_slots: 1,
            ..Default::default()
        };
        let piped = run_pipeline(&model, &p, 3, &cfg);
        assert_eq!(piped.tokens, reference.tokens);
        assert_eq!(piped.final_hidden, reference.final_hidden);
    }

    #[test]
    fn pipeline_matches_reference_with_streaming_mask() {
        let model = MoeModel::new(MoeConfig::tiny(9));
        let p = prompts(2, 12, model.config().vocab);
        let mask = AttnMask::Streaming {
            sinks: 2,
            window: 4,
        };
        let reference = model.generate(&p, 3, mask);
        let cfg = NativePipelineConfig {
            mask,
            ..Default::default()
        };
        let piped = run_pipeline(&model, &p, 3, &cfg);
        assert_eq!(piped.tokens, reference.tokens);
        assert_eq!(piped.final_hidden, reference.final_hidden);
    }

    #[test]
    fn ragged_prompts_are_handled() {
        let model = MoeModel::new(MoeConfig::tiny(13));
        let vocab = model.config().vocab;
        let p = vec![
            prompts(1, 4, vocab).remove(0),
            prompts(1, 7, vocab).remove(0),
            prompts(1, 5, vocab).remove(0),
        ];
        let reference = model.generate(&p, 3, AttnMask::Dense);
        let piped = run_pipeline(&model, &p, 3, &NativePipelineConfig::default());
        assert_eq!(piped.tokens, reference.tokens);
        assert_eq!(piped.final_hidden, reference.final_hidden);
    }

    #[test]
    fn quantized_run_differs_but_stays_reasonable() {
        let model = MoeModel::new(MoeConfig::tiny(3));
        let p = prompts(2, 6, model.config().vocab);
        let exact = run_pipeline(&model, &p, 3, &NativePipelineConfig::default());
        let cfg = NativePipelineConfig {
            quant: Some(QuantConfig::paper_default()),
            ..Default::default()
        };
        let quant = run_pipeline(&model, &p, 3, &cfg);
        // Hidden states are close but not identical.
        assert_ne!(exact.final_hidden, quant.final_hidden);
        let max_diff: f32 = exact.final_hidden[0]
            .iter()
            .zip(&quant.final_hidden[0])
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(max_diff < 1.0, "quantized drift too large: {max_diff}");
    }

    #[test]
    fn fused_and_staged_quantized_runs_are_bit_identical() {
        // The fused quantized GEMM changes where dequantization happens,
        // not a single output bit: packed slots + in-register dequant must
        // equal dequantize-into-slot + dense GEMMs exactly, with and
        // without the worker pool.
        let model = MoeModel::new(MoeConfig::tiny(11));
        let p = prompts(4, 6, model.config().vocab);
        let staged = run_pipeline(
            &model,
            &p,
            4,
            &NativePipelineConfig {
                quant: Some(QuantConfig::paper_default()),
                fused_quant: false,
                ..Default::default()
            },
        );
        for workers in [1usize, 3] {
            let fused = run_pipeline(
                &model,
                &p,
                4,
                &NativePipelineConfig {
                    quant: Some(QuantConfig::paper_default()),
                    fused_quant: true,
                    compute_workers: workers,
                    ..Default::default()
                },
            );
            assert_eq!(fused.tokens, staged.tokens, "workers={workers}");
            assert_eq!(fused.final_hidden, staged.final_hidden, "workers={workers}");
        }
    }

    #[test]
    fn kernel_backends_are_bit_identical_end_to_end() {
        // Forcing the scalar backend versus the detected best must not
        // change a bit of any output — the whole-pipeline form of the
        // kernel-level byte-identity proptests.
        let model = MoeModel::new(MoeConfig::tiny(27));
        let p = prompts(3, 6, model.config().vocab);
        let scalar = run_pipeline(
            &model,
            &p,
            4,
            &NativePipelineConfig {
                kernel_backend: Some(KernelBackend::Scalar),
                ..Default::default()
            },
        );
        let detected = run_pipeline(&model, &p, 4, &NativePipelineConfig::default());
        assert_eq!(scalar.tokens, detected.tokens);
        assert_eq!(scalar.final_hidden, detected.final_hidden);
    }

    #[test]
    fn pipeline_matches_reference_with_h2o_policy() {
        // The future-work sparse-KV policy composes with the reordered
        // pipeline: bit-exact against the sequential H2O reference.
        let model = MoeModel::new(MoeConfig::tiny(19));
        let p = prompts(3, 14, model.config().vocab);
        let h2o_cfg = H2oConfig {
            budget: 6,
            sinks: 2,
        };
        let reference = model.generate_h2o(&p, 4, h2o_cfg);
        let cfg = NativePipelineConfig {
            h2o: Some(h2o_cfg),
            ..Default::default()
        };
        let piped = run_pipeline(&model, &p, 4, &cfg);
        assert_eq!(piped.tokens, reference.tokens);
        assert_eq!(piped.final_hidden, reference.final_hidden);
        // And the policy actually bites on these long prompts.
        let dense = model.generate(&p, 4, AttnMask::Dense);
        assert_ne!(dense.final_hidden, reference.final_hidden);
    }

    #[test]
    fn prefetch_statistics_are_collected() {
        let model = MoeModel::new(MoeConfig::tiny(17));
        let p = prompts(6, 8, model.config().vocab);
        let r = run_pipeline(&model, &p, 4, &NativePipelineConfig::default());
        assert!(r.expert_fetches > 0);
        assert!(
            r.prefetch_hits + r.prefetch_misses > 0,
            "prefetches must be scored"
        );
        // With 6 sequences routed top-2 over 6 experts, predicted hot
        // experts should mostly participate.
        let hit_rate = r.prefetch_hits as f64 / (r.prefetch_hits + r.prefetch_misses).max(1) as f64;
        assert!(hit_rate > 0.5, "hit rate = {hit_rate}");
    }

    #[test]
    fn batched_and_per_token_paths_are_bit_identical() {
        // The tentpole invariant: batching an expert's token group into
        // GEMMs (with or without the worker pool) changes nothing but
        // wall-clock versus the retained per-token fallback.
        let model = MoeModel::new(MoeConfig::tiny(23));
        let p = prompts(5, 7, model.config().vocab);
        let fallback = run_pipeline(
            &model,
            &p,
            4,
            &NativePipelineConfig {
                batch_experts: false,
                ..Default::default()
            },
        );
        for workers in [1usize, 2, 4] {
            let batched = run_pipeline(
                &model,
                &p,
                4,
                &NativePipelineConfig {
                    batch_experts: true,
                    compute_workers: workers,
                    ..Default::default()
                },
            );
            assert_eq!(batched.tokens, fallback.tokens, "workers={workers}");
            assert_eq!(
                batched.final_hidden, fallback.final_hidden,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn attention_paths_are_bit_identical() {
        // Batched attention (the default) versus the retained per-token
        // walk: nothing but wall-clock may change, on dense and streaming
        // masks alike, including a batch of one.
        let model = MoeModel::new(MoeConfig::tiny(31));
        for (n_seqs, mask) in [
            (1usize, AttnMask::Dense),
            (5, AttnMask::Dense),
            (
                3,
                AttnMask::Streaming {
                    sinks: 2,
                    window: 4,
                },
            ),
        ] {
            let p = prompts(n_seqs, 9, model.config().vocab);
            let per_token = run_pipeline(
                &model,
                &p,
                4,
                &NativePipelineConfig {
                    batch_attention: false,
                    mask,
                    ..Default::default()
                },
            );
            let batched = run_pipeline(
                &model,
                &p,
                4,
                &NativePipelineConfig {
                    batch_attention: true,
                    mask,
                    ..Default::default()
                },
            );
            assert_eq!(batched.tokens, per_token.tokens, "{n_seqs} seqs {mask:?}");
            assert_eq!(
                batched.final_hidden, per_token.final_hidden,
                "{n_seqs} seqs {mask:?}"
            );
        }
    }

    #[test]
    fn worker_pool_composes_with_one_slot_and_h2o() {
        // The tight corner: a 1-slot pool serializes fetches behind slot
        // returns, so completions must be able to release slots while the
        // inference thread waits — the single event channel guarantees it.
        let model = MoeModel::new(MoeConfig::tiny(29));
        let p = prompts(4, 9, model.config().vocab);
        let h2o_cfg = H2oConfig {
            budget: 6,
            sinks: 2,
        };
        let reference = model.generate_h2o(&p, 3, h2o_cfg);
        let piped = run_pipeline(
            &model,
            &p,
            3,
            &NativePipelineConfig {
                vram_slots: 1,
                h2o: Some(h2o_cfg),
                compute_workers: 3,
                ..Default::default()
            },
        );
        assert_eq!(piped.tokens, reference.tokens);
        assert_eq!(piped.final_hidden, reference.final_hidden);
    }
}
