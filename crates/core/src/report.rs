//! Run reports: the measurements every experiment consumes.

use std::fmt;

use klotski_sim::metrics::Metrics;
use klotski_sim::time::SimDuration;

/// The outcome of one simulated inference run.
#[derive(Debug, Clone)]
pub struct InferenceReport {
    /// Engine name (e.g. "Klotski", "FlexGen").
    pub engine: String,
    /// Model name.
    pub model: String,
    /// Total wall-clock (simulated) time, prefill + decode.
    pub total_time: SimDuration,
    /// Completion time of the last prefill-phase task. Meaningful as a
    /// phase boundary for single-group (multi-batch) runs; engines that
    /// process batches sequentially interleave prefills throughout the
    /// run, so only [`total_time`](InferenceReport::total_time) compares
    /// across engines.
    pub prefill_time: SimDuration,
    /// `total_time − prefill_time` (see the caveat above).
    pub decode_time: SimDuration,
    /// Generated tokens (the throughput numerator).
    pub generated_tokens: u64,
    /// GPU busy time.
    pub gpu_busy: SimDuration,
    /// GPU idle time within its active span (pipeline bubbles).
    pub gpu_bubble: SimDuration,
    /// Peak VRAM bytes observed.
    pub peak_vram: u64,
    /// Peak DRAM bytes observed.
    pub peak_dram: u64,
    /// Set when the run aborted with out-of-memory; throughput is then 0.
    pub oom: Option<String>,
    /// Recorded metrics (timeline / memory traces), when enabled.
    pub metrics: Option<Metrics>,
}

impl InferenceReport {
    /// Throughput in generated tokens per second (0 for OOM runs).
    pub fn throughput_tps(&self) -> f64 {
        if self.oom.is_some() || self.total_time.is_zero() {
            return 0.0;
        }
        self.generated_tokens as f64 / self.total_time.as_secs_f64()
    }

    /// End-to-end latency in seconds (`f64::INFINITY` for OOM runs).
    pub fn latency_secs(&self) -> f64 {
        if self.oom.is_some() {
            return f64::INFINITY;
        }
        self.total_time.as_secs_f64()
    }

    /// Fraction of the GPU's active span spent idle.
    pub fn bubble_fraction(&self) -> f64 {
        let span = self.gpu_busy + self.gpu_bubble;
        if span.is_zero() {
            return 0.0;
        }
        self.gpu_bubble.as_secs_f64() / span.as_secs_f64()
    }

    /// Whether the run completed without OOM.
    pub fn succeeded(&self) -> bool {
        self.oom.is_none()
    }
}

impl fmt::Display for InferenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(reason) = &self.oom {
            return write!(f, "{} on {}: OOM ({reason})", self.engine, self.model);
        }
        write!(
            f,
            "{} on {}: {:.2} tok/s ({} tokens in {}, {:.0}% bubbles, peak VRAM {:.1} GB)",
            self.engine,
            self.model,
            self.throughput_tps(),
            self.generated_tokens,
            self.total_time,
            self.bubble_fraction() * 100.0,
            self.peak_vram as f64 / 1e9,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> InferenceReport {
        InferenceReport {
            engine: "Klotski".into(),
            model: "Mixtral-8x7B".into(),
            total_time: SimDuration::from_secs(10),
            prefill_time: SimDuration::from_secs(4),
            decode_time: SimDuration::from_secs(6),
            generated_tokens: 200,
            gpu_busy: SimDuration::from_secs(8),
            gpu_bubble: SimDuration::from_secs(2),
            peak_vram: 20_000_000_000,
            peak_dram: 90_000_000_000,
            oom: None,
            metrics: None,
        }
    }

    #[test]
    fn throughput_and_latency() {
        let r = base();
        assert!((r.throughput_tps() - 20.0).abs() < 1e-9);
        assert!((r.latency_secs() - 10.0).abs() < 1e-9);
        assert!((r.bubble_fraction() - 0.2).abs() < 1e-9);
        assert!(r.succeeded());
    }

    #[test]
    fn oom_zeroes_throughput() {
        let mut r = base();
        r.oom = Some("vram exhausted".into());
        assert_eq!(r.throughput_tps(), 0.0);
        assert_eq!(r.latency_secs(), f64::INFINITY);
        assert!(!r.succeeded());
        assert!(r.to_string().contains("OOM"));
    }

    #[test]
    fn display_summarizes() {
        let s = base().to_string();
        assert!(s.contains("20.00 tok/s"));
        assert!(s.contains("Klotski"));
    }
}
