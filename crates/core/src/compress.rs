//! Compression options: quantization and sparse attention (§7 of the paper).
//!
//! Both are *options* in Klotski because their role in the pipeline is to
//! shrink bytes moved between heterogeneous memories: quantization shrinks
//! weight transfers (experts are robust to 3–4 bit quantization), sparse
//! attention (StreamingLLM sinks + window) shrinks the KV cache that
//! multi-batch processing multiplies.

use klotski_model::spec::{Dtype, QuantScheme};

/// StreamingLLM-style sparse attention shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SparseAttention {
    /// Always-kept initial positions.
    pub sinks: u32,
    /// Kept recent positions.
    pub window: u32,
}

impl SparseAttention {
    /// The fraction of a `context`-token KV cache that is actually kept.
    pub fn kv_factor(&self, context: u64) -> f64 {
        if context == 0 {
            return 1.0;
        }
        let kept = (self.sinks as u64 + self.window as u64).min(context);
        kept as f64 / context as f64
    }
}

/// The compression configuration of one engine run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Compression {
    /// Weight quantization (applied to experts and attention weights).
    pub quant: Option<QuantScheme>,
    /// Sparse attention (applied to KV transfers and attention compute).
    pub sparse_attention: Option<SparseAttention>,
}

impl Compression {
    /// No compression.
    pub fn none() -> Self {
        Compression::default()
    }

    /// The paper's "(q)" configuration: 4-bit HQQ-style weights.
    pub fn quantized() -> Self {
        Compression {
            quant: Some(QuantScheme::paper_default()),
            sparse_attention: None,
        }
    }

    /// Size multiplier for weight transfers relative to `dtype`.
    pub fn weight_factor(&self, dtype: Dtype) -> f64 {
        self.quant.map_or(1.0, |q| q.factor_vs(dtype))
    }

    /// Size multiplier for KV transfers at `context` tokens.
    pub fn kv_factor(&self, context: u64) -> f64 {
        self.sparse_attention.map_or(1.0, |s| s.kv_factor(context))
    }

    /// Effective context length seen by attention at `context` tokens.
    pub fn effective_context(&self, context: u64) -> u64 {
        match self.sparse_attention {
            None => context,
            Some(s) => context.min(s.sinks as u64 + s.window as u64),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_identity() {
        let c = Compression::none();
        assert_eq!(c.weight_factor(Dtype::Bf16), 1.0);
        assert_eq!(c.kv_factor(512), 1.0);
        assert_eq!(c.effective_context(512), 512);
    }

    #[test]
    fn quantized_shrinks_weights_only() {
        let c = Compression::quantized();
        let f = c.weight_factor(Dtype::Bf16);
        assert!((0.25..0.30).contains(&f), "factor = {f}");
        assert_eq!(c.kv_factor(512), 1.0);
    }

    #[test]
    fn sparse_attention_caps_context() {
        let c = Compression {
            quant: None,
            sparse_attention: Some(SparseAttention {
                sinks: 4,
                window: 124,
            }),
        };
        assert_eq!(c.effective_context(512), 128);
        assert_eq!(c.effective_context(100), 100);
        assert!((c.kv_factor(512) - 0.25).abs() < 1e-9);
        assert_eq!(c.kv_factor(64), 1.0);
    }

    #[test]
    fn kv_factor_handles_zero_context() {
        let s = SparseAttention {
            sinks: 4,
            window: 4,
        };
        assert_eq!(s.kv_factor(0), 1.0);
    }
}
