//! # klotski-core — the paper's contribution
//!
//! The Klotski inference engine (ASPLOS 2025): an expert-aware multi-batch
//! pipeline that eliminates inter- and intra-layer bubbles when running
//! mixture-of-experts models under offloading.
//!
//! * [`engine`] — the pipeline paradigm (§5) over the simulated substrate,
//!   with every ablation switch of the paper's Table 3.
//! * [`planner`] — the constraint-sensitive I/O-compute planner (§7),
//!   solving inequalities (4)–(7) for the minimal batch-group size `n`.
//! * [`prefetcher`] — the correlation-aware expert prefetcher (§6.2) and
//!   its expert correlation table.
//! * [`placement`] — adaptive tensor placement across VRAM/DRAM/disk (§6.1).
//! * [`compress`] — quantization + sparse-attention options (§7).
//! * [`native`] — the really-executed two-thread pipeline over the tiny MoE
//!   model, bit-exact against the reference runner.
//! * [`scenario`] / [`driver`] / [`report`] — shared engine infrastructure
//!   (also used by the `klotski-baselines` crate).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compress;
pub mod driver;
pub mod engine;
pub mod native;
pub mod placement;
pub mod planner;
pub mod prefetcher;
pub mod prefetcher_io;
pub mod report;
pub mod scenario;

/// Convenience re-exports of the most used types.
pub mod prelude {
    pub use crate::compress::{Compression, SparseAttention};
    pub use crate::engine::{KlotskiConfig, KlotskiEngine};
    pub use crate::native::{run_pipeline, NativePipelineConfig};
    pub use crate::placement::{plan_placement, PlacementPlan};
    pub use crate::planner::{PipelinePlan, Planner};
    pub use crate::prefetcher::{CorrelationTable, DeepCorrelationTable};
    pub use crate::prefetcher_io::{parse_table, serialize_table};
    pub use crate::report::InferenceReport;
    pub use crate::scenario::{Engine, EngineError, Scenario};
}
