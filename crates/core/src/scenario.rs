//! Scenarios: one (model, hardware, workload, routing trace) tuple.
//!
//! Every engine — Klotski and the five baselines — runs against the same
//! [`Scenario`], so comparisons differ only in *policy*: same cost model,
//! same gating ground truth, same memory capacities.

use std::error::Error;
use std::fmt;

use klotski_model::cost::CostModel;
use klotski_model::hardware::HardwareSpec;
use klotski_model::spec::ModelSpec;
use klotski_model::trace::{GatingModel, GatingTrace, TraceConfig};
use klotski_model::workload::Workload;
use klotski_sim::sim::SimError;
use klotski_sim::time::SimDuration;

use crate::placement::PlacementError;
use crate::report::InferenceReport;

/// A fully specified experiment input.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The model architecture.
    pub spec: ModelSpec,
    /// The machine.
    pub hw: HardwareSpec,
    /// The workload shape (total batches × batch size × lengths).
    pub workload: Workload,
    /// Ground-truth routing for MoE models (`None` for dense models).
    pub trace: Option<GatingTrace>,
    /// The *base* (undrifted) gating model — what a warm-up pre-run on
    /// public sample data sees (§8 of the paper uses wikitext-2).
    pub base_gating: Option<GatingModel>,
    /// The task's (drifted) gating model — the distribution the trace was
    /// actually sampled from. Engines must not peek at this for decisions;
    /// it exists for planners' statistical estimates and for analysis.
    pub task_gating: Option<GatingModel>,
}

impl Scenario {
    /// Generates a scenario: builds the gating model for `spec`, applies a
    /// task-level drift (data sensitivity), and samples the routing trace
    /// for the whole workload.
    pub fn generate(spec: ModelSpec, hw: HardwareSpec, workload: Workload, seed: u64) -> Self {
        if !spec.is_moe() {
            return Scenario {
                spec,
                hw,
                workload,
                trace: None,
                base_gating: None,
                task_gating: None,
            };
        }
        let cfg = TraceConfig::for_model(&spec, seed);
        let base = GatingModel::new(&cfg);
        let task = base.drifted(cfg.drift, seed.wrapping_add(1));
        let trace = task.generate_trace(
            workload.total_seqs() as u32,
            workload.prompt_len,
            workload.gen_len,
            seed.wrapping_add(2),
        );
        Scenario {
            spec,
            hw,
            workload,
            trace: Some(trace),
            base_gating: Some(base),
            task_gating: Some(task),
        }
    }

    /// The cost model of this scenario.
    pub fn cost_model(&self) -> CostModel {
        CostModel::new(self.spec.clone(), self.hw.clone())
    }

    /// The routing trace.
    ///
    /// # Panics
    ///
    /// Panics for dense models; guard with [`ModelSpec::is_moe`].
    pub fn trace(&self) -> &GatingTrace {
        self.trace.as_ref().expect("dense models have no trace")
    }
}

/// An inference engine: one offloading policy over the shared substrate.
pub trait Engine {
    /// Engine name as it appears in reports and figures.
    fn name(&self) -> String;

    /// Runs the scenario to completion.
    ///
    /// Out-of-memory is a *result* (reported via
    /// [`InferenceReport::oom`]), not an error; errors are reserved for
    /// invalid configurations and internal bugs.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] on configuration errors or internal
    /// scheduling bugs (deadlocks).
    fn run(&self, scenario: &Scenario) -> Result<InferenceReport, EngineError>;
}

/// One group run decomposed into decode steps.
///
/// The serving layer needs to reason about a group *during* its run —
/// refill freed slots, chunk the prefill, preempt between steps — which an
/// atomic [`Engine::run`] span cannot express. A `StepPlan` slices the same
/// service time into a prefill span plus `steps` uniform decode steps, with
/// the integer-truncation remainder pinned to the final step so that
/// [`StepPlan::total`] reconstructs the atomic span *exactly*: stepped and
/// atomic execution of the same group are byte-identical by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepPlan {
    /// The group's prefill span (first token of every sequence).
    pub prefill: SimDuration,
    /// One decode step — the integer-truncated mean over `steps`.
    pub decode_step: SimDuration,
    /// Truncation remainder, absorbed by the final decode step.
    pub remainder: SimDuration,
    /// Decode steps after the first token (`padded_gen − 1`).
    pub steps: u32,
    /// Whether the underlying run aborted with an out-of-memory verdict
    /// (all spans are zero in that case).
    pub oom: bool,
}

impl StepPlan {
    /// Slices `report` into steps for a group padded to `padded_gen`
    /// generated tokens per sequence.
    pub fn from_report(report: &InferenceReport, padded_gen: u32) -> Self {
        if !report.succeeded() {
            return StepPlan {
                prefill: SimDuration::ZERO,
                decode_step: SimDuration::ZERO,
                remainder: SimDuration::ZERO,
                steps: 0,
                oom: true,
            };
        }
        let steps = padded_gen.saturating_sub(1);
        let decode = report.total_time.saturating_sub(report.prefill_time);
        let decode_step = if steps > 0 {
            decode / steps as u64
        } else {
            SimDuration::ZERO
        };
        let remainder = decode.saturating_sub(decode_step * steps as u64);
        StepPlan {
            prefill: report.prefill_time,
            decode_step,
            remainder,
            steps,
            oom: false,
        }
    }

    /// Total service time; equals the atomic run's `total_time` exactly.
    pub fn total(&self) -> SimDuration {
        self.prefill + self.decode_step * self.steps as u64 + self.remainder
    }

    /// Offset from dispatch at which a member with `gen_len` generated
    /// tokens (in a group padded to `padded_gen`) sees its last token.
    ///
    /// Pace-setters (`gen_len ≥ padded_gen`) pin to the exact end of the
    /// run so the remainder lands on them; shorter members finish at their
    /// own step boundary.
    pub fn finish_offset(&self, gen_len: u32, padded_gen: u32) -> SimDuration {
        if gen_len >= padded_gen {
            self.total()
        } else {
            self.prefill + self.decode_step * gen_len.saturating_sub(1) as u64
        }
    }
}

/// Step-granular extension of [`Engine`].
///
/// The blanket implementation derives a [`StepPlan`] from an atomic
/// [`Engine::run`], so *every* engine — including `&dyn Engine` trait
/// objects — is usable step-wise without opting in, and stepped execution
/// stays byte-identical to the atomic path. Engines with a native notion
/// of per-step cost (e.g. an analytic cost model) can override
/// [`StepEngine::plan_steps`] to skip the full simulation.
pub trait StepEngine: Engine {
    /// Plans the scenario as a prefill span plus uniform decode steps.
    ///
    /// # Errors
    ///
    /// Same contract as [`Engine::run`]: out-of-memory is a *result*
    /// (`StepPlan::oom`), errors are configuration or internal bugs.
    fn plan_steps(&self, scenario: &Scenario) -> Result<StepPlan, EngineError> {
        let report = self.run(scenario)?;
        Ok(StepPlan::from_report(&report, scenario.workload.gen_len))
    }
}

impl<E: Engine + ?Sized> StepEngine for E {}

/// Errors from engine runs.
#[derive(Debug)]
pub enum EngineError {
    /// The engine cannot express this scenario (e.g. a dense-only engine on
    /// an MoE model).
    InvalidConfig(String),
    /// Internal scheduling bug: the submitted task graph deadlocked.
    Internal(SimError),
    /// The model/workload cannot be placed at all (distinct from a runtime
    /// OOM, which is reported in the [`InferenceReport`]).
    Placement(PlacementError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            EngineError::Internal(e) => write!(f, "internal scheduling error: {e}"),
            EngineError::Placement(e) => write!(f, "{e}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Internal(e) => Some(e),
            EngineError::Placement(e) => Some(e),
            EngineError::InvalidConfig(_) => None,
        }
    }
}

impl From<PlacementError> for EngineError {
    fn from(e: PlacementError) -> Self {
        EngineError::Placement(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moe_scenarios_carry_traces() {
        let s = Scenario::generate(
            ModelSpec::mixtral_8x7b(),
            HardwareSpec::env1_rtx3090(),
            Workload::paper_default(4).with_batches(3),
            7,
        );
        let t = s.trace();
        assert_eq!(t.n_seqs(), 12);
        assert_eq!(t.n_moe_layers(), 32);
        assert!(s.base_gating.is_some());
        assert!(s.task_gating.is_some());
    }

    #[test]
    fn dense_scenarios_have_no_trace() {
        let s = Scenario::generate(
            ModelSpec::opt_1_3b(),
            HardwareSpec::env1_rtx3090(),
            Workload::paper_default(4),
            7,
        );
        assert!(s.trace.is_none());
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let make = |seed| {
            Scenario::generate(
                ModelSpec::mixtral_8x7b(),
                HardwareSpec::env1_rtx3090(),
                Workload::paper_default(4).with_batches(2),
                seed,
            )
        };
        let a = make(3);
        let b = make(3);
        assert_eq!(
            a.trace().decode_choices(0, 0),
            b.trace().decode_choices(0, 0)
        );
        let c = make(4);
        assert_ne!(
            a.trace().decode_choices(0, 0),
            c.trace().decode_choices(0, 0)
        );
    }

    fn report(total_ns: u64, prefill_ns: u64, oom: bool) -> InferenceReport {
        InferenceReport {
            engine: "stub".into(),
            model: "stub".into(),
            total_time: SimDuration::from_nanos(total_ns),
            prefill_time: SimDuration::from_nanos(prefill_ns),
            decode_time: SimDuration::from_nanos(total_ns - prefill_ns),
            generated_tokens: 1,
            gpu_busy: SimDuration::ZERO,
            gpu_bubble: SimDuration::ZERO,
            peak_vram: 0,
            peak_dram: 0,
            oom: oom.then(|| "vram".into()),
            metrics: None,
        }
    }

    #[test]
    fn step_plan_reconstructs_the_atomic_span_exactly() {
        // 10_000_007 ns of decode over 6 steps does not divide evenly; the
        // remainder must land on the final step so total() is exact.
        let r = report(12_000_007, 2_000_000, false);
        let plan = StepPlan::from_report(&r, 7);
        assert_eq!(plan.steps, 6);
        assert_eq!(plan.total(), r.total_time);
        assert_eq!(
            plan.decode_step,
            SimDuration::from_nanos(10_000_007 / 6),
            "decode step is the truncated mean"
        );
        assert!(plan.remainder > SimDuration::ZERO);
        assert!(!plan.oom);
    }

    #[test]
    fn step_plan_finish_offsets_match_truncated_tpot() {
        let r = report(12_000_007, 2_000_000, false);
        let plan = StepPlan::from_report(&r, 7);
        // Pace-setters pin to the exact group end.
        assert_eq!(plan.finish_offset(7, 7), r.total_time);
        // Shorter members land on their own step boundary.
        assert_eq!(
            plan.finish_offset(3, 7),
            plan.prefill + plan.decode_step * 2
        );
        // Monotone in gen_len.
        assert!(plan.finish_offset(2, 7) < plan.finish_offset(6, 7));
        assert!(plan.finish_offset(6, 7) < plan.finish_offset(7, 7));
    }

    #[test]
    fn step_plan_single_token_groups_have_no_steps() {
        let r = report(5_000, 2_000, false);
        let plan = StepPlan::from_report(&r, 1);
        assert_eq!(plan.steps, 0);
        assert_eq!(plan.total(), r.total_time, "post-prefill span survives");
        assert_eq!(plan.finish_offset(1, 1), r.total_time);
    }

    #[test]
    fn step_plan_oom_zeroes_all_spans() {
        let plan = StepPlan::from_report(&report(10, 5, true), 4);
        assert!(plan.oom);
        assert_eq!(plan.total(), SimDuration::ZERO);
    }

    #[test]
    fn blanket_step_engine_matches_run() {
        struct Fixed;
        impl Engine for Fixed {
            fn name(&self) -> String {
                "fixed".into()
            }
            fn run(&self, _: &Scenario) -> Result<InferenceReport, EngineError> {
                Ok(report(12_000_007, 2_000_000, false))
            }
        }
        let sc = Scenario::generate(
            ModelSpec::opt_1_3b(),
            HardwareSpec::env1_rtx3090(),
            Workload::new(2, 1, 8, 7),
            1,
        );
        // Via the blanket impl, both the concrete type and the trait object
        // plan steps that reconstruct run() exactly.
        let plan = Fixed.plan_steps(&sc).unwrap();
        assert_eq!(plan.total(), SimDuration::from_nanos(12_000_007));
        let dynamic: &dyn Engine = &Fixed;
        assert_eq!(dynamic.plan_steps(&sc).unwrap(), plan);
    }

    #[test]
    fn task_gating_is_drifted_from_base() {
        let s = Scenario::generate(
            ModelSpec::mixtral_8x7b(),
            HardwareSpec::env1_rtx3090(),
            Workload::paper_default(4),
            11,
        );
        let base = s.base_gating.as_ref().unwrap();
        let task = s.task_gating.as_ref().unwrap();
        let diff: f64 = (0..base.n_moe_layers())
            .map(|l| {
                base.popularity(l)
                    .iter()
                    .zip(task.popularity(l))
                    .map(|(a, b)| (a - b).abs())
                    .sum::<f64>()
            })
            .sum();
        assert!(diff > 0.01, "drift must perturb popularity");
    }
}
