//! Scenarios: one (model, hardware, workload, routing trace) tuple.
//!
//! Every engine — Klotski and the five baselines — runs against the same
//! [`Scenario`], so comparisons differ only in *policy*: same cost model,
//! same gating ground truth, same memory capacities.

use std::error::Error;
use std::fmt;

use klotski_model::cost::CostModel;
use klotski_model::hardware::HardwareSpec;
use klotski_model::spec::ModelSpec;
use klotski_model::trace::{GatingModel, GatingTrace, TraceConfig};
use klotski_model::workload::Workload;
use klotski_sim::sim::SimError;

use crate::placement::PlacementError;
use crate::report::InferenceReport;

/// A fully specified experiment input.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The model architecture.
    pub spec: ModelSpec,
    /// The machine.
    pub hw: HardwareSpec,
    /// The workload shape (total batches × batch size × lengths).
    pub workload: Workload,
    /// Ground-truth routing for MoE models (`None` for dense models).
    pub trace: Option<GatingTrace>,
    /// The *base* (undrifted) gating model — what a warm-up pre-run on
    /// public sample data sees (§8 of the paper uses wikitext-2).
    pub base_gating: Option<GatingModel>,
    /// The task's (drifted) gating model — the distribution the trace was
    /// actually sampled from. Engines must not peek at this for decisions;
    /// it exists for planners' statistical estimates and for analysis.
    pub task_gating: Option<GatingModel>,
}

impl Scenario {
    /// Generates a scenario: builds the gating model for `spec`, applies a
    /// task-level drift (data sensitivity), and samples the routing trace
    /// for the whole workload.
    pub fn generate(spec: ModelSpec, hw: HardwareSpec, workload: Workload, seed: u64) -> Self {
        if !spec.is_moe() {
            return Scenario {
                spec,
                hw,
                workload,
                trace: None,
                base_gating: None,
                task_gating: None,
            };
        }
        let cfg = TraceConfig::for_model(&spec, seed);
        let base = GatingModel::new(&cfg);
        let task = base.drifted(cfg.drift, seed.wrapping_add(1));
        let trace = task.generate_trace(
            workload.total_seqs() as u32,
            workload.prompt_len,
            workload.gen_len,
            seed.wrapping_add(2),
        );
        Scenario {
            spec,
            hw,
            workload,
            trace: Some(trace),
            base_gating: Some(base),
            task_gating: Some(task),
        }
    }

    /// The cost model of this scenario.
    pub fn cost_model(&self) -> CostModel {
        CostModel::new(self.spec.clone(), self.hw.clone())
    }

    /// The routing trace.
    ///
    /// # Panics
    ///
    /// Panics for dense models; guard with [`ModelSpec::is_moe`].
    pub fn trace(&self) -> &GatingTrace {
        self.trace.as_ref().expect("dense models have no trace")
    }
}

/// An inference engine: one offloading policy over the shared substrate.
pub trait Engine {
    /// Engine name as it appears in reports and figures.
    fn name(&self) -> String;

    /// Runs the scenario to completion.
    ///
    /// Out-of-memory is a *result* (reported via
    /// [`InferenceReport::oom`]), not an error; errors are reserved for
    /// invalid configurations and internal bugs.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] on configuration errors or internal
    /// scheduling bugs (deadlocks).
    fn run(&self, scenario: &Scenario) -> Result<InferenceReport, EngineError>;
}

/// Errors from engine runs.
#[derive(Debug)]
pub enum EngineError {
    /// The engine cannot express this scenario (e.g. a dense-only engine on
    /// an MoE model).
    InvalidConfig(String),
    /// Internal scheduling bug: the submitted task graph deadlocked.
    Internal(SimError),
    /// The model/workload cannot be placed at all (distinct from a runtime
    /// OOM, which is reported in the [`InferenceReport`]).
    Placement(PlacementError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            EngineError::Internal(e) => write!(f, "internal scheduling error: {e}"),
            EngineError::Placement(e) => write!(f, "{e}"),
        }
    }
}

impl Error for EngineError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EngineError::Internal(e) => Some(e),
            EngineError::Placement(e) => Some(e),
            EngineError::InvalidConfig(_) => None,
        }
    }
}

impl From<PlacementError> for EngineError {
    fn from(e: PlacementError) -> Self {
        EngineError::Placement(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moe_scenarios_carry_traces() {
        let s = Scenario::generate(
            ModelSpec::mixtral_8x7b(),
            HardwareSpec::env1_rtx3090(),
            Workload::paper_default(4).with_batches(3),
            7,
        );
        let t = s.trace();
        assert_eq!(t.n_seqs(), 12);
        assert_eq!(t.n_moe_layers(), 32);
        assert!(s.base_gating.is_some());
        assert!(s.task_gating.is_some());
    }

    #[test]
    fn dense_scenarios_have_no_trace() {
        let s = Scenario::generate(
            ModelSpec::opt_1_3b(),
            HardwareSpec::env1_rtx3090(),
            Workload::paper_default(4),
            7,
        );
        assert!(s.trace.is_none());
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let make = |seed| {
            Scenario::generate(
                ModelSpec::mixtral_8x7b(),
                HardwareSpec::env1_rtx3090(),
                Workload::paper_default(4).with_batches(2),
                seed,
            )
        };
        let a = make(3);
        let b = make(3);
        assert_eq!(
            a.trace().decode_choices(0, 0),
            b.trace().decode_choices(0, 0)
        );
        let c = make(4);
        assert_ne!(
            a.trace().decode_choices(0, 0),
            c.trace().decode_choices(0, 0)
        );
    }

    #[test]
    fn task_gating_is_drifted_from_base() {
        let s = Scenario::generate(
            ModelSpec::mixtral_8x7b(),
            HardwareSpec::env1_rtx3090(),
            Workload::paper_default(4),
            11,
        );
        let base = s.base_gating.as_ref().unwrap();
        let task = s.task_gating.as_ref().unwrap();
        let diff: f64 = (0..base.n_moe_layers())
            .map(|l| {
                base.popularity(l)
                    .iter()
                    .zip(task.popularity(l))
                    .map(|(a, b)| (a - b).abs())
                    .sum::<f64>()
            })
            .sum();
        assert!(diff > 0.01, "drift must perturb popularity");
    }
}
