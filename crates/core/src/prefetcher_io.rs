//! Persistence for the expert-correlation table.
//!
//! §8 of the paper: expert selections from the pre-run are "recorded and
//! tabulated in JSON format", and §6.2: online updates are deliberately
//! *not* saved back, "to prevent the prefetching tendencies of other tasks
//! from influencing current tasks". This module provides exactly that
//! lifecycle: serialize the warm-up table once, load it at engine start,
//! never write the drifted in-memory copy back.
//!
//! The format is a small line-oriented text codec (one header line plus one
//! line per non-zero counter) rather than JSON: the workspace deliberately
//! carries no JSON dependency (see DESIGN.md §4), and the table is a pure
//! counter dump with no nesting to express.

use std::error::Error;
use std::fmt;
use std::str::FromStr;

use crate::prefetcher::CorrelationTable;

/// Format identifier written on the first line.
const MAGIC: &str = "klotski-correlation-table v1";

/// Errors from parsing a serialized correlation table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The first line is not the expected magic/version header.
    BadHeader(String),
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// An index was out of the declared table bounds.
    OutOfBounds {
        /// 1-based line number.
        line: usize,
        /// What overflowed.
        what: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadHeader(h) => write!(f, "unrecognized header {h:?}"),
            CodecError::BadLine { line, content } => {
                write!(f, "unparseable line {line}: {content:?}")
            }
            CodecError::OutOfBounds { line, what } => {
                write!(f, "line {line}: {what} out of bounds")
            }
        }
    }
}

impl Error for CodecError {}

/// Serializes `table` to the text format.
///
/// Layout:
///
/// ```text
/// klotski-correlation-table v1
/// dims <layers> <experts>
/// m <layer> <expert> <count>        # marginal counters
/// t <layer> <prev> <cur> <count>    # transition counters
/// ```
///
/// Zero counters are omitted; lines are emitted in index order so output is
/// canonical (diff-able, hashable).
pub fn serialize_table(table: &CorrelationTable) -> String {
    let layers = table.n_layers();
    let experts = table.n_experts();
    let mut out = String::new();
    out.push_str(MAGIC);
    out.push('\n');
    out.push_str(&format!("dims {layers} {experts}\n"));
    for layer in 0..layers {
        for e in 0..experts as u16 {
            let c = table.marginal_count(layer, e);
            if c > 0 {
                out.push_str(&format!("m {layer} {e} {c}\n"));
            }
        }
    }
    for layer in 0..layers {
        for prev in 0..experts as u16 {
            for cur in 0..experts as u16 {
                let c = table.transition_count(layer, prev, cur);
                if c > 0 {
                    out.push_str(&format!("t {layer} {prev} {cur} {c}\n"));
                }
            }
        }
    }
    out
}

/// Parses a table serialized by [`serialize_table`].
///
/// # Errors
///
/// Returns [`CodecError`] on malformed headers, lines, or out-of-bounds
/// indices. Blank lines and `#` comments are ignored.
pub fn parse_table(text: &str) -> Result<CorrelationTable, CodecError> {
    let mut lines = text.lines().enumerate();
    let header = lines.next().map(|(_, l)| l.trim()).unwrap_or_default();
    if header != MAGIC {
        return Err(CodecError::BadHeader(header.to_owned()));
    }

    fn field<T: FromStr>(
        parts: &mut std::str::SplitWhitespace<'_>,
        line: usize,
        content: &str,
    ) -> Result<T, CodecError> {
        parts
            .next()
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| CodecError::BadLine {
                line,
                content: content.to_owned(),
            })
    }

    let mut table: Option<CorrelationTable> = None;
    for (idx, raw) in lines {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().unwrap_or_default();
        match (tag, &mut table) {
            ("dims", slot) if slot.is_none() => {
                let layers: u32 = field(&mut parts, line_no, line)?;
                let experts: u32 = field(&mut parts, line_no, line)?;
                *slot = Some(CorrelationTable::new(layers, experts));
            }
            ("m", Some(t)) => {
                let layer: u32 = field(&mut parts, line_no, line)?;
                let e: u16 = field(&mut parts, line_no, line)?;
                let count: u64 = field(&mut parts, line_no, line)?;
                if layer >= t.n_layers() || e as u32 >= t.n_experts() {
                    return Err(CodecError::OutOfBounds {
                        line: line_no,
                        what: "marginal index",
                    });
                }
                t.record_marginal(layer, e, count);
            }
            ("t", Some(t)) => {
                let layer: u32 = field(&mut parts, line_no, line)?;
                let prev: u16 = field(&mut parts, line_no, line)?;
                let cur: u16 = field(&mut parts, line_no, line)?;
                let count: u64 = field(&mut parts, line_no, line)?;
                if layer >= t.n_layers()
                    || prev as u32 >= t.n_experts()
                    || cur as u32 >= t.n_experts()
                {
                    return Err(CodecError::OutOfBounds {
                        line: line_no,
                        what: "transition index",
                    });
                }
                t.add_transition(layer, prev, cur, count);
            }
            _ => {
                return Err(CodecError::BadLine {
                    line: line_no,
                    content: line.to_owned(),
                })
            }
        }
    }
    table.ok_or(CodecError::BadHeader("missing dims line".to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_model::spec::ModelSpec;
    use klotski_model::trace::{GatingModel, TraceConfig};

    fn warmed() -> CorrelationTable {
        let cfg = TraceConfig::for_model(&ModelSpec::mixtral_8x7b(), 4);
        let model = GatingModel::new(&cfg);
        let mut t = CorrelationTable::new(cfg.n_moe_layers, cfg.n_experts);
        t.warm_up(&model, 1024, 9);
        t
    }

    #[test]
    fn round_trip_preserves_every_counter() {
        let t = warmed();
        let text = serialize_table(&t);
        let parsed = parse_table(&text).expect("round trip");
        assert_eq!(parsed.n_layers(), t.n_layers());
        assert_eq!(parsed.n_experts(), t.n_experts());
        assert_eq!(parsed.total_records(), t.total_records());
        for layer in 0..t.n_layers() {
            for prev in 0..t.n_experts() as u16 {
                for cur in 0..t.n_experts() as u16 {
                    assert_eq!(
                        parsed.transition_count(layer, prev, cur),
                        t.transition_count(layer, prev, cur),
                        "({layer},{prev},{cur})"
                    );
                }
            }
        }
    }

    #[test]
    fn round_trip_preserves_predictions() {
        let t = warmed();
        let parsed = parse_table(&serialize_table(&t)).unwrap();
        let prev: Vec<u16> = (0..64).map(|i| (i % 8) as u16).collect();
        for layer in 1..t.n_layers() {
            assert_eq!(parsed.predict(layer, &prev, 2), t.predict(layer, &prev, 2));
        }
    }

    #[test]
    fn serialization_is_canonical() {
        let t = warmed();
        assert_eq!(serialize_table(&t), serialize_table(&t));
        let reparsed = parse_table(&serialize_table(&t)).unwrap();
        assert_eq!(serialize_table(&reparsed), serialize_table(&t));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!("{MAGIC}\n\n# a comment\ndims 2 4\nm 0 1 7\n\nt 1 0 2 3\n");
        let t = parse_table(&text).unwrap();
        assert_eq!(t.marginal_count(0, 1), 7);
        assert_eq!(t.transition_count(1, 0, 2), 3);
    }

    #[test]
    fn errors_are_specific() {
        assert!(matches!(
            parse_table("nonsense\n"),
            Err(CodecError::BadHeader(_))
        ));
        let bad_line = format!("{MAGIC}\ndims 2 4\nq 1 2 3\n");
        assert!(matches!(
            parse_table(&bad_line),
            Err(CodecError::BadLine { line: 3, .. })
        ));
        let oob = format!("{MAGIC}\ndims 2 4\nm 9 0 1\n");
        assert!(matches!(
            parse_table(&oob),
            Err(CodecError::OutOfBounds { .. })
        ));
        let display = parse_table("x").unwrap_err().to_string();
        assert!(display.contains("unrecognized header"));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Arbitrary sparse counter sets survive a serialize → parse cycle.
        #[test]
        fn arbitrary_tables_round_trip(
            records in proptest::collection::vec((0u32..4, 0u16..6, 0u16..6, 1u64..1000), 0..100),
        ) {
            let mut t = CorrelationTable::new(4, 6);
            for &(layer, prev, cur, count) in &records {
                t.add_transition(layer, prev, cur, count);
                t.record_marginal(layer, cur, count);
            }
            let parsed = parse_table(&serialize_table(&t)).unwrap();
            for &(layer, prev, cur, _) in &records {
                prop_assert_eq!(
                    parsed.transition_count(layer, prev, cur),
                    t.transition_count(layer, prev, cur)
                );
            }
            prop_assert_eq!(parsed.total_records(), t.total_records());
        }
    }
}
