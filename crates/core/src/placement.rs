//! Adaptive tensor placement (§6.1 of the paper).
//!
//! Klotski aggregates VRAM, DRAM and disk into one memory space and decides
//! where every tensor class lives:
//!
//! * VRAM holds the working set (current + prefetched tensors, KV chunks,
//!   activations) and — when there is spare capacity — the experts of the
//!   first few layers stay **resident**, removing their I/O entirely
//!   (the "Further Use Memory" line of Fig. 12).
//! * DRAM is prioritized for experts (they are the on-demand-transferred
//!   class, and DRAM's bandwidth is what serves those urgent transfers);
//!   attention/gate weights and the KV cache also live there.
//! * When DRAM cannot hold all experts, the tail layers spill to disk and a
//!   **staging window** of `L` layers is continuously prefetched
//!   disk → DRAM ahead of the compute front, using otherwise-idle
//!   CPU–disk bandwidth.

use std::error::Error;
use std::fmt;

use klotski_model::hardware::HardwareSpec;
use klotski_model::spec::ModelSpec;
use klotski_model::workload::Workload;

use crate::compress::Compression;

/// Where the experts of each layer live, plus derived budgets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacementPlan {
    /// Experts of layers `[0, resident_expert_layers)` stay in VRAM.
    pub resident_expert_layers: u32,
    /// Experts of layers `[resident, resident + dram_expert_layers)` live in DRAM.
    pub dram_expert_layers: u32,
    /// Experts of the remaining layers live on disk.
    pub disk_expert_layers: u32,
    /// Disk→DRAM staging window in layers (0 when nothing is on disk).
    pub staging_window: u32,
    /// Whether DRAM-side buffers are pinned (fast H2D path).
    pub pinned: bool,
    /// VRAM bytes reserved for the transient working set.
    pub vram_workspace: u64,
    /// VRAM bytes spent on resident experts.
    pub vram_resident: u64,
    /// DRAM bytes used by weights.
    pub dram_weights: u64,
    /// DRAM bytes budgeted for the KV cache.
    pub dram_kv: u64,
}

impl PlacementPlan {
    /// Whether `layer`'s experts are VRAM-resident.
    pub fn is_expert_resident(&self, layer: u32) -> bool {
        layer < self.resident_expert_layers
    }

    /// Whether `layer`'s experts are staged from disk.
    pub fn is_expert_on_disk(&self, layer: u32) -> bool {
        layer >= self.resident_expert_layers + self.dram_expert_layers
    }
}

/// Error: the model cannot be placed in the given memory hierarchy at all.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementError {
    /// What failed to fit where.
    pub reason: String,
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "placement infeasible: {}", self.reason)
    }
}

impl Error for PlacementError {}

/// Bytes of VRAM the transient working set needs at group size `n`:
/// double-buffered attention weights, the gate, up to all experts of one
/// layer in flight, two KV chunks, activations, embeddings.
pub fn vram_workspace_bytes(
    spec: &ModelSpec,
    wl: &Workload,
    n: u32,
    compression: &Compression,
) -> u64 {
    let ctx = wl.max_context();
    let kv_chunk = (wl.batch_size as u64 * ctx * spec.kv_bytes_per_token_layer()) as f64
        * compression.kv_factor(ctx);
    let experts_in_flight = spec.n_experts.max(1) as u64 * spec.expert_bytes();
    let activations = 8 * spec.hidden_bytes(n as u64 * wl.batch_size as u64);
    2 * spec.attn_bytes()
        + spec.gate_bytes()
        + experts_in_flight
        + (4.0 * kv_chunk) as u64
        + activations
        + spec.embed_bytes()
}

/// Total KV bytes of the whole workload at its maximum context.
pub fn kv_total_bytes(spec: &ModelSpec, wl: &Workload, compression: &Compression) -> u64 {
    let ctx = wl.max_context();
    (spec.kv_bytes_total(wl.total_seqs(), ctx) as f64 * compression.kv_factor(ctx)) as u64
}

/// Computes the placement for one run.
///
/// `use_spare_vram = false` reproduces the "Complete Offloading" line of
/// Fig. 12 (no resident experts); `true` reproduces "Further Use Memory".
///
/// # Errors
///
/// Returns [`PlacementError`] when the workload cannot fit: the working set
/// alone exceeds VRAM, or DRAM cannot hold the KV cache plus the non-expert
/// weights even with every expert on disk.
pub fn plan_placement(
    spec: &ModelSpec,
    hw: &HardwareSpec,
    wl: &Workload,
    n: u32,
    compression: &Compression,
    use_spare_vram: bool,
) -> Result<PlacementPlan, PlacementError> {
    let workspace = vram_workspace_bytes(spec, wl, n, compression);
    if workspace > hw.vram_bytes {
        return Err(PlacementError {
            reason: format!(
                "working set {:.1} GB exceeds VRAM {:.1} GB",
                workspace as f64 / 1e9,
                hw.vram_bytes as f64 / 1e9
            ),
        });
    }

    // Spare VRAM hosts resident experts, greedily from layer 0.
    let layer_expert_bytes = spec.n_experts as u64 * spec.expert_bytes();
    let mut resident = 0u32;
    if use_spare_vram && spec.is_moe() && layer_expert_bytes > 0 {
        let mut spare = hw.vram_bytes - workspace;
        while resident < spec.n_layers && spare >= layer_expert_bytes {
            spare -= layer_expert_bytes;
            resident += 1;
        }
    }
    let vram_resident = resident as u64 * layer_expert_bytes;

    // DRAM: non-expert weights + KV always live here; experts fill the rest.
    let kv = kv_total_bytes(spec, wl, compression);
    let non_expert: u64 = (0..spec.n_layers)
        .map(|l| spec.layer_bytes(l) - expert_bytes_of_layer(spec, l))
        .sum::<u64>()
        + spec.embed_bytes();
    let dram_budget = (hw.dram_bytes as f64 * 0.92) as u64;
    let fixed = kv + non_expert;
    if fixed > dram_budget {
        return Err(PlacementError {
            reason: format!(
                "KV cache {:.1} GB + non-expert weights {:.1} GB exceed DRAM {:.1} GB",
                kv as f64 / 1e9,
                non_expert as f64 / 1e9,
                dram_budget as f64 / 1e9
            ),
        });
    }
    let offloaded_layers = spec.n_layers - resident;
    let mut dram_layers = 0u32;
    let mut dram_used = fixed;
    for l in resident..spec.n_layers {
        let bytes = expert_bytes_of_layer(spec, l);
        if dram_used + bytes > dram_budget {
            break;
        }
        dram_used += bytes;
        dram_layers += 1;
        let _ = l;
    }
    let mut disk_layers = offloaded_layers - dram_layers;
    // Staging window: enough layers in flight to cover the disk/PCIe rate
    // gap. When the disk is engaged, DRAM must keep headroom for the
    // staged layers, so the resident-in-DRAM set shrinks by the window.
    let staging_window = if disk_layers == 0 {
        0
    } else {
        let ratio = (hw.h2d_bw / hw.disk_bw).ceil() as u32;
        let window = ratio.clamp(2, 8).min(offloaded_layers);
        let reserve = window.min(dram_layers);
        dram_layers -= reserve;
        disk_layers += reserve;
        dram_used -= (0..reserve).fold(0, |acc, i| {
            acc + expert_bytes_of_layer(spec, resident + dram_layers + i)
        });
        window
    };

    Ok(PlacementPlan {
        resident_expert_layers: resident,
        dram_expert_layers: dram_layers,
        disk_expert_layers: disk_layers,
        staging_window,
        pinned: true,
        vram_workspace: workspace,
        vram_resident,
        dram_weights: dram_used - kv,
        dram_kv: kv,
    })
}

fn expert_bytes_of_layer(spec: &ModelSpec, layer: u32) -> u64 {
    if spec.is_moe_layer(layer) {
        spec.n_experts as u64 * spec.expert_bytes()
    } else {
        spec.dense_ffn_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_model::hardware::HardwareSpec;

    fn wl(bs: u32, n: u32) -> Workload {
        Workload::paper_default(bs).with_batches(n)
    }

    #[test]
    fn mixtral_8x7b_env1_fits_dram_no_disk() {
        // 93 GB of weights + KV well within 256 GB DRAM.
        let spec = ModelSpec::mixtral_8x7b();
        let hw = HardwareSpec::env1_rtx3090();
        let p = plan_placement(&spec, &hw, &wl(16, 15), 15, &Compression::none(), false).unwrap();
        assert_eq!(p.disk_expert_layers, 0);
        assert_eq!(p.staging_window, 0);
        assert_eq!(p.resident_expert_layers, 0);
        assert_eq!(
            p.dram_expert_layers + p.resident_expert_layers + p.disk_expert_layers,
            32
        );
    }

    #[test]
    fn mixtral_8x22b_env1_spills_to_disk() {
        // 282 GB of weights cannot fit 256 GB DRAM: the paper's Env-1
        // 8×22B runs engage the disk and its 1 GB/s read path.
        let spec = ModelSpec::mixtral_8x22b();
        let hw = HardwareSpec::env1_rtx3090();
        let p = plan_placement(&spec, &hw, &wl(16, 10), 10, &Compression::none(), false).unwrap();
        assert!(p.disk_expert_layers > 0, "{p:?}");
        assert!(p.staging_window >= 2);
    }

    #[test]
    fn spare_vram_hosts_resident_experts_on_h800() {
        // 80 GB H800 running 8×7B (Env 2 is "not resource-constrained" for
        // it, per the paper) leaves room for resident expert layers.
        let spec = ModelSpec::mixtral_8x7b();
        let hw = HardwareSpec::env2_h800();
        let with = plan_placement(&spec, &hw, &wl(16, 8), 8, &Compression::none(), true).unwrap();
        let without =
            plan_placement(&spec, &hw, &wl(16, 8), 8, &Compression::none(), false).unwrap();
        assert!(with.resident_expert_layers > 0);
        assert_eq!(without.resident_expert_layers, 0);
        assert!(with.vram_resident > 0);
        assert!(with.is_expert_resident(0));
        assert!(!with.is_expert_resident(with.resident_expert_layers));
    }

    #[test]
    fn quantization_moves_layers_off_disk() {
        let spec = ModelSpec::mixtral_8x22b();
        let hw = HardwareSpec::env1_rtx3090();
        let full = plan_placement(&spec, &hw, &wl(16, 10), 10, &Compression::none(), false)
            .unwrap()
            .disk_expert_layers;
        // NOTE: quantization shrinks *transfer* bytes; resident DRAM copies
        // in this reproduction stay full-precision (the paper dequantizes
        // before compute), so placement is unchanged. This test documents
        // that deliberate choice.
        let quant = plan_placement(
            &spec,
            &hw,
            &wl(16, 10),
            10,
            &Compression::quantized(),
            false,
        )
        .unwrap()
        .disk_expert_layers;
        assert_eq!(full, quant);
    }

    #[test]
    fn huge_kv_is_rejected() {
        // A monstrous batch group overflows DRAM with KV cache.
        let spec = ModelSpec::mixtral_8x22b();
        let hw = HardwareSpec::env1_rtx3090();
        let bad = Workload::new(512, 64, 512, 32);
        let err = plan_placement(&spec, &hw, &bad, 64, &Compression::none(), false).unwrap_err();
        assert!(err.to_string().contains("KV cache"));
    }

    #[test]
    fn sparse_attention_shrinks_kv_budget() {
        let spec = ModelSpec::mixtral_8x7b();
        let hw = HardwareSpec::env1_rtx3090();
        let dense = plan_placement(&spec, &hw, &wl(64, 15), 15, &Compression::none(), false)
            .unwrap()
            .dram_kv;
        let sparse_cfg = Compression {
            quant: None,
            sparse_attention: Some(crate::compress::SparseAttention {
                sinks: 4,
                window: 132,
            }),
        };
        let sparse = plan_placement(&spec, &hw, &wl(64, 15), 15, &sparse_cfg, false)
            .unwrap()
            .dram_kv;
        assert!(sparse < dense / 2, "dense {dense} sparse {sparse}");
    }

    #[test]
    fn workspace_grows_with_group_size() {
        let spec = ModelSpec::mixtral_8x7b();
        let small = vram_workspace_bytes(&spec, &wl(16, 3), 3, &Compression::none());
        let large = vram_workspace_bytes(&spec, &wl(16, 15), 15, &Compression::none());
        assert!(large > small);
    }
}
