//! Shared plumbing for engines: step/group bookkeeping, trace views,
//! the simulation drain loop and report assembly.
//!
//! Both the Klotski engine and the five baselines are built on these
//! helpers so that their reports are measured identically.

use klotski_model::spec::ModelSpec;
use klotski_model::trace::GatingTrace;
use klotski_model::workload::Workload;
use klotski_sim::prelude::*;

use crate::report::InferenceReport;
use crate::scenario::EngineError;

/// One autoregressive phase of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// Prompt ingestion (also produces the first generated token).
    Prefill,
    /// Decode step `i` (0-based; there are `gen_len − 1` of them).
    Decode(u32),
}

impl StepKind {
    /// Monotone step index for task labels: prefill = 0, decode i = i+1.
    pub fn index(self) -> u32 {
        match self {
            StepKind::Prefill => 0,
            StepKind::Decode(i) => i + 1,
        }
    }

    /// All steps of a workload generating `gen_len` tokens.
    pub fn all(gen_len: u32) -> impl Iterator<Item = StepKind> {
        std::iter::once(StepKind::Prefill)
            .chain((0..gen_len.saturating_sub(1)).map(StepKind::Decode))
    }

    /// Context length (tokens attended over) at this step.
    pub fn context(self, prompt_len: u32) -> u64 {
        match self {
            StepKind::Prefill => prompt_len as u64,
            StepKind::Decode(i) => prompt_len as u64 + i as u64 + 1,
        }
    }
}

/// A group-aware view over the routing trace.
#[derive(Debug, Clone, Copy)]
pub struct TraceView<'a> {
    trace: &'a GatingTrace,
}

impl<'a> TraceView<'a> {
    /// Wraps a trace.
    pub fn new(trace: &'a GatingTrace) -> Self {
        TraceView { trace }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &'a GatingTrace {
        self.trace
    }

    /// Routed-token counts per expert at (`step`, MoE layer `m`) restricted
    /// to sequences `[s0, s1)`. Prefill counts are apportioned by share of
    /// the total sequence population.
    pub fn expert_tokens(&self, step: StepKind, m: u32, s0: u32, s1: u32) -> Vec<u32> {
        match step {
            StepKind::Prefill => {
                let total = self.trace.n_seqs() as u64;
                self.trace
                    .prefill_tokens_per_expert(m)
                    .iter()
                    .map(|&c| (c as u64 * (s1 - s0) as u64 / total.max(1)) as u32)
                    .collect()
            }
            StepKind::Decode(i) => self.trace.tokens_per_expert_in(i, m, s0, s1),
        }
    }

    /// Experts with ≥1 routed token at (`step`, `m`) within `[s0, s1)`.
    pub fn activated(&self, step: StepKind, m: u32, s0: u32, s1: u32) -> Vec<u16> {
        self.expert_tokens(step, m, s0, s1)
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(e, _)| e as u16)
            .collect()
    }

    /// The first batch (of `batch_size`-wide batches within `[s0, s1)`)
    /// whose tokens request `expert`, if any — the gate whose completion
    /// triggers the on-demand transfer.
    pub fn first_requesting_batch(
        &self,
        step: StepKind,
        m: u32,
        s0: u32,
        s1: u32,
        batch_size: u32,
        expert: u16,
    ) -> Option<u32> {
        match step {
            // Prefill activates experts from the first batch onwards in
            // aggregate; attribute to batch 0.
            StepKind::Prefill => Some(0),
            StepKind::Decode(i) => {
                let n_batches = (s1 - s0) / batch_size;
                (0..n_batches).find(|&b| {
                    let from = s0 + b * batch_size;
                    let counts = self
                        .trace
                        .tokens_per_expert_in(i, m, from, from + batch_size);
                    counts[expert as usize] > 0
                })
            }
        }
    }

    /// Per-sequence first choices at the previous MoE layer (`m − 1`) of
    /// the same decode step — the correlation-prefetcher's lookup keys.
    pub fn prev_choices(&self, decode_step: u32, m: u32, s0: u32, s1: u32) -> Vec<u16> {
        assert!(m > 0, "layer 0 has no previous MoE layer");
        (s0..s1)
            .map(|s| self.trace.seq_choices(decode_step, m - 1, s)[0])
            .collect()
    }
}

/// Statistics collected while draining the simulation.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Completion time of the last prefill-phase task.
    pub prefill_end: SimTime,
    /// `(gpu-op index, VRAM bytes in use)` samples, one per GPU compute
    /// completion (paper Fig. 12's x-axis is exactly this op index).
    pub memory_curve: Vec<(u64, u64)>,
}

/// Drains the simulator to completion.
///
/// Returns run statistics, or the OOM message if the run died of memory
/// exhaustion (an expected *result* for some engines).
///
/// # Errors
///
/// Returns [`EngineError::Internal`] on scheduling deadlocks (engine bugs).
pub fn drain(
    sim: &mut Simulator,
    record_memory_curve: bool,
) -> Result<(RunStats, Option<String>), EngineError> {
    let mut stats = RunStats::default();
    let mut gpu_ops = 0u64;
    loop {
        match sim.step() {
            Ok(Some(done)) => {
                if done.meta.step == 0 && done.end > stats.prefill_end {
                    stats.prefill_end = done.end;
                }
                if record_memory_curve
                    && done.resource == Resource::GpuCompute
                    && done.meta.class.is_compute()
                {
                    gpu_ops += 1;
                    stats
                        .memory_curve
                        .push((gpu_ops, sim.pool(Tier::Vram).in_use()));
                }
            }
            Ok(None) => return Ok((stats, None)),
            Err(SimError::Oom { meta, source, .. }) => {
                return Ok((stats, Some(format!("{meta}: {source}"))));
            }
            Err(e @ SimError::Deadlock { .. }) => return Err(EngineError::Internal(e)),
        }
    }
}

/// Assembles the standard report after a drained run.
pub fn build_report(
    engine: String,
    spec: &ModelSpec,
    wl: &Workload,
    sim: &Simulator,
    stats: &RunStats,
    oom: Option<String>,
) -> InferenceReport {
    let total = sim.now().saturating_since(SimTime::ZERO);
    let prefill = stats.prefill_end.saturating_since(SimTime::ZERO);
    InferenceReport {
        engine,
        model: spec.name.clone(),
        total_time: total,
        prefill_time: prefill,
        decode_time: total.saturating_sub(prefill),
        generated_tokens: wl.total_generated(),
        gpu_busy: sim.busy(Resource::GpuCompute),
        gpu_bubble: sim.bubble(Resource::GpuCompute),
        peak_vram: sim.pool(Tier::Vram).peak(),
        peak_dram: sim.pool(Tier::Dram).peak(),
        oom,
        metrics: if sim.metrics().timeline().is_empty() && sim.metrics().memory_samples().is_empty()
        {
            None
        } else {
            Some(sim.metrics().clone())
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_model::spec::ModelSpec;
    use klotski_model::trace::{GatingModel, TraceConfig};

    fn trace() -> GatingTrace {
        let cfg = TraceConfig::for_model(&ModelSpec::mixtral_8x7b(), 5);
        GatingModel::new(&cfg).generate_trace(32, 64, 4, 9)
    }

    #[test]
    fn step_kinds_enumerate_correctly() {
        let steps: Vec<StepKind> = StepKind::all(4).collect();
        assert_eq!(steps.len(), 4);
        assert_eq!(steps[0], StepKind::Prefill);
        assert_eq!(steps[3], StepKind::Decode(2));
        assert_eq!(steps[0].index(), 0);
        assert_eq!(steps[3].index(), 3);
        assert_eq!(StepKind::Prefill.context(512), 512);
        assert_eq!(StepKind::Decode(0).context(512), 513);
    }

    #[test]
    fn prefill_tokens_are_apportioned_by_group() {
        let t = trace();
        let v = TraceView::new(&t);
        let all = v.expert_tokens(StepKind::Prefill, 0, 0, 32);
        let half = v.expert_tokens(StepKind::Prefill, 0, 0, 16);
        for e in 0..8 {
            assert_eq!(half[e], all[e] / 2);
        }
    }

    #[test]
    fn decode_tokens_sum_to_group_routing() {
        let t = trace();
        let v = TraceView::new(&t);
        let counts = v.expert_tokens(StepKind::Decode(1), 3, 8, 24);
        let total: u32 = counts.iter().sum();
        assert_eq!(total, 16 * 2);
    }

    #[test]
    fn first_requesting_batch_is_consistent_with_activation() {
        let t = trace();
        let v = TraceView::new(&t);
        let step = StepKind::Decode(0);
        for e in v.activated(step, 2, 0, 32) {
            let b = v
                .first_requesting_batch(step, 2, 0, 32, 8, e)
                .expect("activated expert must have a requesting batch");
            assert!(b < 4);
            let from = b * 8;
            let counts = v.expert_tokens(step, 2, from, from + 8);
            assert!(counts[e as usize] > 0);
        }
    }

    #[test]
    fn prev_choices_have_group_width() {
        let t = trace();
        let v = TraceView::new(&t);
        assert_eq!(v.prev_choices(0, 1, 4, 20).len(), 16);
    }
}
