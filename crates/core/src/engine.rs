//! The Klotski engine: the expert-aware multi-batch pipeline (§5) executed
//! over the simulated substrate.
//!
//! Per layer, the engine:
//!
//! 1. streams each batch's KV chunk in and computes attention, sharing the
//!    layer's weights across the whole batch group (inter-layer bubbles
//!    shrink because `n` batches of compute cover the next transfers);
//! 2. prefetches only the gate and the K predicted **hot** experts during
//!    the attention phase (inequalities (4)–(5));
//! 3. fires on-demand transfers for gate-selected cold experts the moment
//!    the selecting batch's gate completes — at higher link priority than
//!    background prefetches;
//! 4. partitions expert computation **by expert across batches** and lets
//!    experts execute in readiness order — prefetched hot experts first,
//!    cold experts in transfer-completion order (intra-layer bubbles hide
//!    under hot-expert compute) — and offloads each expert the moment its
//!    computation finishes;
//! 5. prefetches the next layer's attention weights during the expert phase
//!    (inequality (7)) and, when experts live on disk, keeps a sliding
//!    disk→DRAM staging window ahead of the compute front (§6.1).
//!
//! Every ablation row of the paper's Table 3 is a switch on
//! [`KlotskiConfig`].

use std::collections::BTreeMap;

use klotski_model::cost::CostModel;
use klotski_model::spec::ModelSpec;
use klotski_model::workload::Workload;
use klotski_sim::prelude::*;

use crate::compress::Compression;
use crate::driver::{build_report, drain, StepKind, TraceView};
use crate::placement::{plan_placement, PlacementPlan};
use crate::planner::Planner;
use crate::prefetcher::CorrelationTable;
use crate::report::InferenceReport;
use crate::scenario::{Engine, EngineError, Scenario};

/// Link priorities (lower = more urgent among simultaneously-ready tasks).
mod prio {
    /// KV chunks are on the critical path of the very next attention.
    pub const KV: i32 = -2;
    /// Gate-selected cold experts must arrive as soon as possible.
    pub const ON_DEMAND: i32 = -1;
    /// Gate + hot-expert prefetches.
    pub const PREFETCH: i32 = 0;
    /// Next layer's attention weights are the least urgent.
    pub const BACKGROUND: i32 = 1;
}

/// Feature switches of the Klotski engine (the paper's Table 3 rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KlotskiConfig {
    /// Share each loaded layer across the whole batch group (vs. one batch
    /// at a time).
    pub multi_batch: bool,
    /// Prefetch only gate + hot experts (vs. the whole MoE layer).
    pub hot_expert_prefetch: bool,
    /// Let experts compute in readiness order (vs. gate-discovery order).
    pub reorder_experts: bool,
    /// Partition the expert phase **by batch** instead of by expert
    /// (FlexGen's zig-zag block order): every batch runs its own expert
    /// ops, so weights are shared but expert kernels are not batched
    /// across the group.
    pub batch_major_experts: bool,
    /// Quantization / sparse-attention options.
    pub compression: Compression,
    /// Park the first layers' experts in spare VRAM (Fig. 12's
    /// "Further Use Memory" mode).
    pub use_spare_vram: bool,
    /// Record a full task timeline (Fig. 15).
    pub record_timeline: bool,
    /// Record the per-op VRAM curve (Fig. 12).
    pub record_memory: bool,
    /// Tokens used to warm up the expert-correlation table (§8 pre-run).
    pub warmup_tokens: u32,
    /// Number of hot experts to prefetch; defaults to the model's top-k.
    pub prefetch_k: Option<u32>,
}

impl Default for KlotskiConfig {
    fn default() -> Self {
        KlotskiConfig {
            multi_batch: true,
            hot_expert_prefetch: true,
            reorder_experts: true,
            batch_major_experts: false,
            compression: Compression::none(),
            use_spare_vram: false,
            record_timeline: false,
            record_memory: false,
            warmup_tokens: 4096,
            prefetch_k: None,
        }
    }
}

impl KlotskiConfig {
    /// Table 3 row 1: single batch, whole-MoE-layer prefetch.
    pub fn ablation_simple_pipeline() -> Self {
        KlotskiConfig {
            multi_batch: false,
            hot_expert_prefetch: false,
            reorder_experts: false,
            batch_major_experts: true,
            ..Self::default()
        }
    }

    /// Table 3 row 2: + multi-batch weight sharing (expert computation
    /// still partitioned by batch, as in the Fig. 4(b) strawman).
    pub fn ablation_multi_batch() -> Self {
        KlotskiConfig {
            hot_expert_prefetch: false,
            reorder_experts: false,
            batch_major_experts: true,
            ..Self::default()
        }
    }

    /// Table 3 row 3: + prefetch only hot experts. Expert computation is
    /// expert-major (one kernel per expert over all batches) but stays in
    /// gate-discovery order — the "adjust order" step of Fig. 7 (hot-first
    /// + transfer-completion order) is what the full configuration adds.
    pub fn ablation_hot_prefetch() -> Self {
        KlotskiConfig {
            reorder_experts: false,
            ..Self::default()
        }
    }

    /// Table 3 row 4 (full Klotski: + adjusted expert order).
    pub fn full() -> Self {
        Self::default()
    }

    /// Table 3 row 5: full Klotski + 4-bit weight quantization.
    pub fn quantized() -> Self {
        KlotskiConfig {
            compression: Compression::quantized(),
            ..Self::default()
        }
    }
}

/// The Klotski inference engine.
#[derive(Debug, Clone, Default)]
pub struct KlotskiEngine {
    cfg: KlotskiConfig,
}

impl KlotskiEngine {
    /// Creates an engine with the given configuration.
    pub fn new(cfg: KlotskiConfig) -> Self {
        KlotskiEngine { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &KlotskiConfig {
        &self.cfg
    }

    /// The constraint-sensitive planner for `scenario`'s model/hardware
    /// under this engine's compression settings.
    pub fn planner(&self, scenario: &Scenario) -> Planner {
        Planner::new(scenario.cost_model(), self.cfg.compression)
    }
}

impl Engine for KlotskiEngine {
    fn name(&self) -> String {
        let base = match (
            self.cfg.multi_batch,
            self.cfg.hot_expert_prefetch,
            self.cfg.reorder_experts,
        ) {
            (false, _, _) => "Simple pipeline",
            (true, false, _) => "Klotski (whole-layer prefetch)",
            (true, true, false) => "Klotski (no reorder)",
            (true, true, true) => "Klotski",
        };
        if self.cfg.compression.quant.is_some() {
            format!("{base} (q)")
        } else {
            base.to_owned()
        }
    }

    fn run(&self, sc: &Scenario) -> Result<InferenceReport, EngineError> {
        if sc.spec.is_moe() && sc.trace.is_none() {
            return Err(EngineError::InvalidConfig(
                "MoE scenario without a gating trace".into(),
            ));
        }
        let cost = sc.cost_model();
        let wl = sc.workload;
        let group_size = if self.cfg.multi_batch {
            wl.num_batches
        } else {
            1
        };

        let placement = match plan_placement(
            &sc.spec,
            &sc.hw,
            &wl,
            group_size,
            &self.cfg.compression,
            self.cfg.use_spare_vram,
        ) {
            Ok(p) => p,
            Err(e) => {
                let sim = Simulator::new(sc.hw.tier_capacities());
                let stats = crate::driver::RunStats::default();
                return Ok(build_report(
                    self.name(),
                    &sc.spec,
                    &wl,
                    &sim,
                    &stats,
                    Some(e.to_string()),
                ));
            }
        };

        let mut table = sc.base_gating.as_ref().map(|base| {
            let mut t = CorrelationTable::new(sc.spec.n_moe_layers(), sc.spec.n_experts);
            t.warm_up(base, self.cfg.warmup_tokens, 0xC0FFEE);
            t
        });

        let mut sim = Simulator::new(sc.hw.tier_capacities());
        sim.metrics_mut()
            .set_record_timeline(self.cfg.record_timeline);
        sim.metrics_mut().set_record_memory(self.cfg.record_memory);

        // Static allocations: embeddings + activation workspace + resident
        // experts in VRAM; DRAM-resident weights; disk-resident layers.
        let act_ws = 8 * sc
            .spec
            .hidden_bytes(group_size as u64 * wl.batch_size as u64);
        let static_vram = sc.spec.embed_bytes() + act_ws + placement.vram_resident;
        if sim.pool_mut(Tier::Vram).alloc(static_vram).is_err() {
            let stats = crate::driver::RunStats::default();
            return Ok(build_report(
                self.name(),
                &sc.spec,
                &wl,
                &sim,
                &stats,
                Some(format!(
                    "static working set {:.1} GB exceeds VRAM",
                    static_vram as f64 / 1e9
                )),
            ));
        }
        sim.pool_mut(Tier::Dram)
            .alloc(placement.dram_weights)
            .expect("placement guarantees DRAM weight fit");
        let disk_bytes: u64 = (0..sc.spec.n_layers)
            .filter(|&l| placement.is_expert_on_disk(l))
            .map(|l| expert_layer_bytes(&sc.spec, l))
            .sum();
        let disk_cap = sim.pool(Tier::Disk).capacity();
        sim.pool_mut(Tier::Disk)
            .alloc(disk_bytes.min(disk_cap))
            .expect("disk capacity is ample in both environments");

        {
            let mut b = Builder {
                spec: &sc.spec,
                cost: &cost,
                cfg: &self.cfg,
                placement: &placement,
                view: sc.trace.as_ref().map(TraceView::new),
                table: table.as_mut(),
                sim: &mut sim,
                wl: &wl,
                k_prefetch: self.cfg.prefetch_k.unwrap_or(sc.spec.top_k.max(1)),
                carry: Vec::new(),
                prev_attn_tasks: Vec::new(),
                pending_attn_w: None,
                layer_ends: Vec::new(),
                stage_map: BTreeMap::new(),
            };
            let n_groups = wl.num_batches.div_ceil(group_size);
            for g in 0..n_groups {
                let b0 = g * group_size;
                let b1 = (b0 + group_size).min(wl.num_batches);
                b.submit_group(b0, b1);
            }
        }

        let (stats, oom) = drain(&mut sim, self.cfg.record_memory)?;
        Ok(build_report(self.name(), &sc.spec, &wl, &sim, &stats, oom))
    }
}

fn expert_layer_bytes(spec: &ModelSpec, layer: u32) -> u64 {
    if spec.is_moe_layer(layer) {
        spec.n_experts as u64 * spec.expert_bytes()
    } else {
        spec.dense_ffn_bytes()
    }
}

/// Scheduling context of one MoE layer's expert phase: which sequences the
/// group spans, which experts the gates activated, which were prefetched as
/// hot, and how many tokens each routed.
struct ExpertPhase<'a> {
    step: StepKind,
    moe_layer: u32,
    /// First sequence of the batch group (inclusive).
    s0: u32,
    /// Last sequence of the batch group (exclusive).
    s1: u32,
    /// Experts with at least one routed token, ascending id.
    activated: &'a [u16],
    /// The prefetched (predicted-hot) experts.
    hot: &'a [u16],
    /// Routed-token count per expert id.
    counts: &'a [u32],
}

/// DAG builder for one run.
struct Builder<'a> {
    spec: &'a ModelSpec,
    cost: &'a CostModel,
    cfg: &'a KlotskiConfig,
    placement: &'a PlacementPlan,
    view: Option<TraceView<'a>>,
    table: Option<&'a mut CorrelationTable>,
    sim: &'a mut Simulator,
    wl: &'a Workload,
    k_prefetch: u32,
    /// Completion anchors of the previous layer (its layer-end task).
    carry: Vec<TaskId>,
    /// Attention computes of the previous layer, per batch: the KV stream
    /// prefetches layer `l`'s chunk for batch `b` as soon as layer `l−1`'s
    /// attention for `b` has finished (one layer of KV double-buffering,
    /// mirroring the dedicated KV-prefetch CUDA stream of §8).
    prev_attn_tasks: Vec<TaskId>,
    /// The prefetched attention-weight transfer for the next layer.
    pending_attn_w: Option<TaskId>,
    /// Every layer-end task, in execution order (disk staging anchors).
    layer_ends: Vec<TaskId>,
    /// Disk→DRAM stage task per layer of the current step.
    stage_map: BTreeMap<u32, TaskId>,
}

impl<'a> Builder<'a> {
    fn submit_group(&mut self, batch0: u32, batch1: u32) {
        let n_b = batch1 - batch0;
        let s0 = batch0 * self.wl.batch_size;
        let s1 = batch1 * self.wl.batch_size;
        for step in StepKind::all(self.wl.gen_len) {
            self.stage_map.clear();
            self.stage_initial_window(step);
            if self.pending_attn_w.is_none() {
                self.pending_attn_w = Some(self.submit_attn_weights(0, step));
            }
            for l in 0..self.spec.n_layers {
                self.submit_layer(step, l, n_b, s0, s1);
            }
        }
    }

    /// Stages the first `window` disk layers of a step, anchored to layer
    /// ends `window` layers back in global execution order.
    fn stage_initial_window(&mut self, step: StepKind) {
        let w = self.placement.staging_window;
        for l in 0..w.min(self.spec.n_layers) {
            if !self.placement.is_expert_on_disk(l) {
                continue;
            }
            let anchor_idx = (self.layer_ends.len() as i64) + l as i64 - w as i64;
            let dep = if anchor_idx >= 0 {
                Some(self.layer_ends[anchor_idx as usize])
            } else {
                None
            };
            self.submit_stage(step, l, dep);
        }
    }

    fn submit_stage(&mut self, step: StepKind, layer: u32, dep: Option<TaskId>) {
        // Disk and DRAM hold full-precision weights; quantization is applied
        // on the DRAM→VRAM transfer path only (the paper dequantizes before
        // compute and reports that quantization barely moves the disk-bound
        // Mixtral-8×22B Env-1 numbers, which pins the quantizer to PCIe).
        let bytes = expert_layer_bytes(self.spec, layer);
        let mut spec = TaskSpec::new(
            Resource::LinkDisk,
            self.cost.disk_time(bytes),
            TaskMeta::of(OpClass::DiskStage)
                .layer(layer)
                .step(step.index()),
        )
        .alloc_on_start(Tier::Dram, bytes);
        if let Some(d) = dep {
            spec = spec.after(d);
        }
        let id = self.sim.submit(spec);
        self.stage_map.insert(layer, id);
    }

    /// The prefetch throttle: weight transfers for the layer at the
    /// current global position may not start before the layer two
    /// positions back has finished, bounding in-flight weights to roughly
    /// two layers (double buffering). Without this, phases where compute
    /// outpaces I/O (prefill) would let the link run arbitrarily far ahead
    /// and flood VRAM.
    fn throttle_dep(&self) -> Option<TaskId> {
        self.layer_ends
            .len()
            .checked_sub(2)
            .map(|i| self.layer_ends[i])
    }

    /// Submits the attention (+ dense FFN) weight transfer for `layer`.
    fn submit_attn_weights(&mut self, layer: u32, step: StepKind) -> TaskId {
        let wf = self.cfg.compression.weight_factor(self.spec.dtype);
        let mut vram = self.spec.attn_bytes();
        if !self.spec.is_moe_layer(layer) {
            vram += self.spec.dense_ffn_bytes();
        }
        let bytes = (vram as f64 * wf) as u64;
        let mut spec = TaskSpec::new(
            Resource::LinkH2d,
            self.cost.h2d_time(bytes),
            TaskMeta::of(OpClass::WeightTransfer)
                .layer(layer)
                .step(step.index()),
        )
        .alloc_on_start(Tier::Vram, vram);
        if let Some(t) = self.throttle_dep() {
            spec = spec.after(t);
        }
        self.sim.submit_with_priority(spec, prio::BACKGROUND)
    }

    #[allow(clippy::too_many_lines)]
    fn submit_layer(&mut self, step: StepKind, l: u32, n_b: u32, s0: u32, s1: u32) {
        let spec = self.spec;
        let cost = self.cost;
        let comp = &self.cfg.compression;
        let bs = self.wl.batch_size as u64;
        let step_idx = step.index();
        let ctx = step.context(self.wl.prompt_len);
        let eff_ctx = comp.effective_context(ctx);
        let kv_factor = comp.kv_factor(ctx);
        let kv_per_tok = spec.kv_bytes_per_token_layer();
        let is_moe = spec.is_moe_layer(l);
        let resident = is_moe && self.placement.is_expert_resident(l);

        let attn_w = self.pending_attn_w.take().expect("attn weights prefetched");

        // --- Gate + hot-expert prefetch (issued while attention computes).
        let mut gate_w: Option<TaskId> = None;
        // Ordered map on purpose: `transfers` is iterated below (release
        // accounting and layer-end dependency edges), and hash-order
        // iteration would make the simulated schedule vary across runs.
        let mut transfers: BTreeMap<u16, TaskId> = BTreeMap::new();
        let mut hot: Vec<u16> = Vec::new();
        let stage_dep = self.stage_map.get(&l).copied();

        let moe_idx = spec.moe_index(l);
        let counts: Vec<u32> = match (is_moe, moe_idx, self.view.as_ref()) {
            (true, Some(m), Some(view)) => view.expert_tokens(step, m, s0, s1),
            _ => Vec::new(),
        };
        let activated: Vec<u16> = counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(e, _)| e as u16)
            .collect();

        let throttle = self.throttle_dep();
        // Whole-MoE-layer blob transfer (gate + every expert as one unit),
        // used when hot-expert prefetch is off: this is FlexGen's (and the
        // strawman's) granularity — no compute may start before the whole
        // layer has arrived.
        let mut layer_blob: Option<TaskId> = None;
        if is_moe && !resident && !self.cfg.hot_expert_prefetch {
            let wf = comp.weight_factor(spec.dtype);
            let vram = spec.gate_bytes() + spec.n_experts as u64 * spec.expert_bytes();
            let bytes = (vram as f64 * wf) as u64;
            let mut t = TaskSpec::new(
                Resource::LinkH2d,
                cost.h2d_time(bytes),
                TaskMeta::of(OpClass::ExpertTransfer)
                    .layer(l)
                    .step(step_idx),
            )
            .alloc_on_start(Tier::Vram, vram);
            if let Some(d) = stage_dep {
                t = t.after(d);
            }
            if let Some(d) = throttle {
                t = t.after(d);
            }
            layer_blob = Some(self.sim.submit_with_priority(t, prio::PREFETCH));
            hot = (0..spec.n_experts as u16).collect();
        } else if is_moe && !resident {
            let wf = comp.weight_factor(spec.dtype);
            let mut gate_spec = TaskSpec::new(
                Resource::LinkH2d,
                cost.gate_h2d_time(),
                TaskMeta::of(OpClass::GateTransfer).layer(l).step(step_idx),
            )
            .alloc_on_start(Tier::Vram, spec.gate_bytes());
            if let Some(t) = throttle {
                gate_spec = gate_spec.after(t);
            }
            gate_w = Some(self.sim.submit_with_priority(gate_spec, prio::PREFETCH));

            let m = moe_idx.expect("moe layer has a moe index");
            hot = self.predict_hot(step, m, s0, s1);
            for &e in &hot {
                let mut t = TaskSpec::new(
                    Resource::LinkH2d,
                    cost.expert_h2d_time(wf),
                    TaskMeta::of(OpClass::ExpertTransfer)
                        .layer(l)
                        .expert(e as u32)
                        .step(step_idx),
                )
                .alloc_on_start(Tier::Vram, spec.expert_bytes());
                if let Some(d) = stage_dep {
                    t = t.after(d);
                }
                if let Some(d) = throttle {
                    t = t.after(d);
                }
                transfers.insert(e, self.sim.submit_with_priority(t, prio::PREFETCH));
            }
        } else if is_moe && resident {
            hot = if self.cfg.hot_expert_prefetch {
                let m = moe_idx.expect("moe layer has a moe index");
                self.predict_hot(step, m, s0, s1)
            } else {
                (0..spec.n_experts as u16).collect()
            };
        }

        // --- Attention phase: KV in, attention, gate, KV out (per batch).
        let mut attn_tasks = Vec::with_capacity(n_b as usize);
        let mut gate_tasks = Vec::with_capacity(n_b as usize);
        for b in 0..n_b {
            let kv_load = if matches!(step, StepKind::Decode(_)) {
                let bytes = (bs as f64 * ctx as f64 * kv_per_tok as f64 * kv_factor) as u64;
                let mut t = TaskSpec::new(
                    Resource::LinkH2d,
                    cost.kv_h2d_time(bs, ctx, kv_factor),
                    TaskMeta::of(OpClass::KvLoad)
                        .layer(l)
                        .batch(b)
                        .step(step_idx),
                )
                .alloc_on_start(Tier::Vram, bytes);
                if let Some(&anchor) = self.prev_attn_tasks.get(b as usize) {
                    t = t.after(anchor);
                } else if b > 0 {
                    t = t.after(attn_tasks[b as usize - 1]);
                }
                Some((self.sim.submit_with_priority(t, prio::KV), bytes))
            } else {
                None
            };

            let attn_dur = match step {
                StepKind::Prefill => {
                    cost.attention_time(bs, self.wl.prompt_len as u64, eff_ctx / 2 + 1)
                }
                StepKind::Decode(_) => cost.attention_time(bs, 1, eff_ctx),
            };
            let mut attn = TaskSpec::new(
                Resource::GpuCompute,
                attn_dur,
                TaskMeta::of(OpClass::AttentionCompute)
                    .layer(l)
                    .batch(b)
                    .step(step_idx),
            )
            .after(attn_w)
            .after_all(self.carry.iter().copied());
            if let Some((kv, _)) = kv_load {
                attn = attn.after(kv);
            }
            let attn = self.sim.submit(attn);
            attn_tasks.push(attn);

            // Write back the new KV entries (and release the chunk).
            let new_tokens = match step {
                StepKind::Prefill => self.wl.prompt_len as u64,
                StepKind::Decode(_) => 1,
            };
            let store_bytes = bs * new_tokens * kv_per_tok;
            let dram_growth = (store_bytes as f64 * kv_factor) as u64;
            let mut store = TaskSpec::new(
                Resource::LinkD2h,
                cost.kv_d2h_time(bs, new_tokens),
                TaskMeta::of(OpClass::KvStore)
                    .layer(l)
                    .batch(b)
                    .step(step_idx),
            )
            .after(attn)
            .alloc_on_start(Tier::Vram, store_bytes)
            .free_on_end(Tier::Vram, store_bytes);
            store
                .mem_on_end
                .push(MemDelta::alloc(Tier::Dram, dram_growth));
            if let Some((_, chunk_bytes)) = kv_load {
                store
                    .mem_on_end
                    .push(MemDelta::free(Tier::Vram, chunk_bytes));
            }
            self.sim.submit(store);

            if is_moe {
                let gate_tokens = bs * new_tokens;
                let mut gate = TaskSpec::new(
                    Resource::GpuCompute,
                    cost.gate_time(gate_tokens),
                    TaskMeta::of(OpClass::GateCompute)
                        .layer(l)
                        .batch(b)
                        .step(step_idx),
                )
                .after(attn);
                if let Some(g) = gate_w {
                    gate = gate.after(g);
                }
                if let Some(blob) = layer_blob {
                    gate = gate.after(blob);
                }
                gate_tasks.push(self.sim.submit(gate));
            }
        }

        // --- Expert phase (or dense FFN).
        let mut compute_tasks: Vec<TaskId> = Vec::new();
        if is_moe {
            let m = moe_idx.expect("moe layer has a moe index");
            // On-demand transfers for activated cold experts.
            if self.cfg.hot_expert_prefetch && !resident {
                let wf = comp.weight_factor(spec.dtype);
                for &e in &activated {
                    if transfers.contains_key(&e) {
                        continue;
                    }
                    let b_first = self
                        .view
                        .as_ref()
                        .and_then(|v| {
                            v.first_requesting_batch(step, m, s0, s1, self.wl.batch_size, e)
                        })
                        .unwrap_or(0);
                    let mut t = TaskSpec::new(
                        Resource::LinkH2d,
                        cost.expert_h2d_time(wf),
                        TaskMeta::of(OpClass::ExpertTransfer)
                            .layer(l)
                            .expert(e as u32)
                            .step(step_idx),
                    )
                    .after(gate_tasks[b_first as usize])
                    .alloc_on_start(Tier::Vram, spec.expert_bytes());
                    if let Some(d) = stage_dep {
                        t = t.after(d);
                    }
                    transfers.insert(e, self.sim.submit_with_priority(t, prio::ON_DEMAND));
                }
            }

            let whole_layer_deps: Vec<TaskId> = layer_blob.into_iter().collect();
            if self.cfg.batch_major_experts {
                // FlexGen-style: each batch runs its own expert ops after
                // its gate; weights are shared but kernels are per-batch.
                let view = self.view.as_ref().expect("moe run has a trace");
                let mut prev_in_chain: Option<TaskId> = None;
                for b in 0..n_b {
                    let from = s0 + b * self.wl.batch_size;
                    let to = from + self.wl.batch_size;
                    let batch_counts = view.expert_tokens(step, m, from, to);
                    for (e, &tokens) in batch_counts.iter().enumerate() {
                        if tokens == 0 {
                            continue;
                        }
                        let mut t = TaskSpec::new(
                            Resource::GpuCompute,
                            cost.expert_time(tokens as u64),
                            TaskMeta::of(OpClass::ExpertCompute)
                                .layer(l)
                                .batch(b)
                                .expert(e as u32)
                                .step(step_idx),
                        )
                        .after(gate_tasks[b as usize])
                        .after_all(whole_layer_deps.iter().copied());
                        if let Some(&tr) = transfers.get(&(e as u16)) {
                            t = t.after(tr);
                        }
                        if let Some(p) = prev_in_chain {
                            t = t.after(p);
                        }
                        let id = self.sim.submit(t);
                        prev_in_chain = Some(id);
                        compute_tasks.push(id);
                    }
                }
                // Expert weights release at layer end (no per-expert
                // offload: any batch may still need them).
            } else {
                // Execution order: reordered (readiness) vs. fixed.
                let order = self.execution_order(&ExpertPhase {
                    step,
                    moe_layer: m,
                    s0,
                    s1,
                    activated: &activated,
                    hot: &hot,
                    counts: &counts,
                });
                let mut prev_in_chain: Option<TaskId> = None;
                for e in order {
                    let tokens = counts[e as usize] as u64;
                    let mut t = TaskSpec::new(
                        Resource::GpuCompute,
                        cost.expert_time(tokens),
                        TaskMeta::of(OpClass::ExpertCompute)
                            .layer(l)
                            .expert(e as u32)
                            .step(step_idx),
                    )
                    .after_all(gate_tasks.iter().copied());
                    if self.cfg.hot_expert_prefetch {
                        if let Some(&tr) = transfers.get(&e) {
                            t = t.after(tr);
                        }
                    } else {
                        t = t.after_all(whole_layer_deps.iter().copied());
                    }
                    if !self.cfg.reorder_experts {
                        if let Some(p) = prev_in_chain {
                            t = t.after(p);
                        }
                    }
                    if !resident && transfers.contains_key(&e) {
                        // Offload immediately after this expert's computations.
                        t = t.free_on_end(Tier::Vram, spec.expert_bytes());
                    }
                    let id = self.sim.submit(t);
                    prev_in_chain = Some(id);
                    compute_tasks.push(id);
                }
            }
        } else {
            // Dense FFN per batch (weights arrived with the attention
            // transfer).
            let tokens_per_batch = match step {
                StepKind::Prefill => bs * self.wl.prompt_len as u64,
                StepKind::Decode(_) => bs,
            };
            for (b, &attn) in attn_tasks.iter().enumerate() {
                let t = TaskSpec::new(
                    Resource::GpuCompute,
                    cost.dense_ffn_time(tokens_per_batch),
                    TaskMeta::of(OpClass::DenseCompute)
                        .layer(l)
                        .batch(b as u32)
                        .step(step_idx),
                )
                .after(attn);
                compute_tasks.push(self.sim.submit(t));
            }
        }

        // --- Layer end: free the layer's transient weights, anchor the
        // next layer, slide the disk window.
        let mut freed = self.spec.attn_bytes();
        if !is_moe {
            freed += self.spec.dense_ffn_bytes();
        }
        if is_moe && !resident {
            freed += spec.gate_bytes();
            if layer_blob.is_some() {
                // The blob (gate + every expert) releases as one unit.
                freed += spec.expert_bytes() * spec.n_experts as u64;
            } else if self.cfg.batch_major_experts {
                // Batch-major mode keeps every transferred expert until the
                // whole layer finishes (any later batch may need it).
                freed += spec.expert_bytes() * transfers.len() as u64;
            } else {
                // Prefetched-but-inactive experts were never computed:
                // release them here (the active ones freed themselves).
                for (&e, _) in transfers.iter() {
                    if counts.get(e as usize).copied().unwrap_or(0) == 0 {
                        freed += spec.expert_bytes();
                    }
                }
            }
        }
        let mut end = TaskSpec::new(
            Resource::GpuCompute,
            SimDuration::ZERO,
            TaskMeta::of(OpClass::Offload).layer(l).step(step_idx),
        )
        .after_all(compute_tasks.iter().copied())
        .after_all(attn_tasks.iter().copied())
        // Transfers with no dependent compute (inactive prefetched experts)
        // must still land before their bytes can be released here.
        .after_all(transfers.values().copied())
        .after_all(gate_w)
        .after_all(layer_blob)
        .free_on_end(Tier::Vram, freed);
        if let Some(stage) = self.stage_map.get(&l) {
            // The staged DRAM window slot is released once the layer is done.
            end = end.free_on_end(Tier::Dram, expert_layer_bytes(spec, l));
            let _ = stage;
        }
        let end = self.sim.submit(end);
        self.layer_ends.push(end);

        // Slide the staging window.
        let w = self.placement.staging_window;
        if w > 0 && l + w < spec.n_layers && self.placement.is_expert_on_disk(l + w) {
            self.submit_stage(step, l + w, Some(end));
        }

        // Prefetch the next layer slot's attention weights.
        let (next_step, next_layer) = if l + 1 < spec.n_layers {
            (step, l + 1)
        } else {
            // Wraps into the next step (or the next group's prefill; the
            // transfer is reusable since layer 0 is next either way).
            (step, 0)
        };
        self.pending_attn_w = Some(self.submit_attn_weights(next_layer, next_step));

        // Online correlation-table update with this layer's actual routing.
        self.record_actuals(step, l, s0, s1);

        self.carry = vec![end];
        self.prev_attn_tasks = attn_tasks;
    }

    /// Predicted hot experts for (`step`, MoE layer `m`).
    fn predict_hot(&self, step: StepKind, m: u32, s0: u32, s1: u32) -> Vec<u16> {
        let Some(table) = self.table.as_deref() else {
            return (0..self.k_prefetch.min(self.spec.n_experts) as u16).collect();
        };
        match step {
            StepKind::Prefill => table.predict_marginal(m, self.k_prefetch),
            StepKind::Decode(i) => {
                if m == 0 {
                    table.predict_marginal(0, self.k_prefetch)
                } else {
                    let view = self.view.as_ref().expect("moe run has a trace");
                    let prev = view.prev_choices(i, m, s0, s1);
                    table.predict(m, &prev, self.k_prefetch)
                }
            }
        }
    }

    /// Expert execution order for the fixed-order (non-reordered) modes;
    /// in reorder mode the submission order is hot-first but actual start
    /// times follow readiness.
    fn execution_order(&self, ph: &ExpertPhase<'_>) -> Vec<u16> {
        let mut order: Vec<u16> = ph.activated.to_vec();
        if self.cfg.reorder_experts {
            // Hot (prefetched) experts first, by token count descending;
            // then the rest (their true order emerges from transfer
            // completion via readiness).
            order.sort_by_key(|&e| {
                let is_hot = ph.hot.contains(&e);
                (!is_hot, std::cmp::Reverse(ph.counts[e as usize]), e)
            });
        } else if self.cfg.hot_expert_prefetch {
            // Gate-discovery order: by first requesting batch, then id —
            // the strawman's stall-prone order (§3.2 problem (2)).
            let view = self.view.as_ref().expect("moe run has a trace");
            order.sort_by_key(|&e| {
                let b = view
                    .first_requesting_batch(
                        ph.step,
                        ph.moe_layer,
                        ph.s0,
                        ph.s1,
                        self.wl.batch_size,
                        e,
                    )
                    .unwrap_or(u32::MAX);
                (b, e)
            });
        } else {
            order.sort_unstable();
        }
        order
    }

    /// Feeds the layer's actual routing back into the correlation table.
    fn record_actuals(&mut self, step: StepKind, l: u32, s0: u32, s1: u32) {
        let Some(m) = self.spec.moe_index(l) else {
            return;
        };
        let Some(view) = self.view else {
            return;
        };
        let Some(table) = self.table.as_deref_mut() else {
            return;
        };
        match step {
            StepKind::Prefill => {
                for (e, &c) in view.expert_tokens(step, m, s0, s1).iter().enumerate() {
                    if c > 0 {
                        table.record_marginal(m, e as u16, c as u64);
                    }
                }
            }
            StepKind::Decode(i) => {
                let trace = view.trace();
                for s in s0..s1 {
                    let choices = trace.seq_choices(i, m, s);
                    let prev = if m == 0 {
                        None
                    } else {
                        Some(trace.seq_choices(i, m - 1, s)[0])
                    };
                    table.record(m, prev, choices);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_model::hardware::HardwareSpec;

    fn scenario(bs: u32, n: u32) -> Scenario {
        Scenario::generate(
            ModelSpec::mixtral_8x7b(),
            HardwareSpec::env1_rtx3090(),
            Workload::new(bs, n, 128, 4),
            42,
        )
    }

    fn run(cfg: KlotskiConfig, sc: &Scenario) -> InferenceReport {
        KlotskiEngine::new(cfg).run(sc).expect("engine run")
    }

    #[test]
    fn full_engine_completes_and_reports() {
        let sc = scenario(8, 4);
        let r = run(KlotskiConfig::full(), &sc);
        assert!(r.succeeded(), "{:?}", r.oom);
        assert!(r.throughput_tps() > 0.0);
        assert_eq!(r.generated_tokens, 8 * 4 * 4);
        assert!(r.peak_vram > 0);
        assert!(r.peak_vram < 24_000_000_000, "fits the 3090");
        assert!(r.prefill_time > SimDuration::ZERO);
        assert!(r.decode_time > SimDuration::ZERO);
    }

    #[test]
    fn ablation_order_matches_table3() {
        // Paper Table 3: each added technique increases throughput. The
        // ordering needs the planner's regime — a batch group large enough
        // that inequality (5) is satisfiable — so this runs at bs 16 × n 10
        // (the paper's own Table 3 scale).
        let sc = scenario(16, 10);
        let simple = run(KlotskiConfig::ablation_simple_pipeline(), &sc);
        let multi = run(KlotskiConfig::ablation_multi_batch(), &sc);
        let hot = run(KlotskiConfig::ablation_hot_prefetch(), &sc);
        let full = run(KlotskiConfig::full(), &sc);
        assert!(
            multi.throughput_tps() > simple.throughput_tps() * 1.5,
            "multi-batch {} ≤ simple {}",
            multi.throughput_tps(),
            simple.throughput_tps()
        );
        // Strict hot > multi ordering is asserted at full paper scale in
        // tests/ablation.rs; this fast scenario (short prompt/generation)
        // is prefill-dominated, so allow a tie within noise here.
        assert!(
            hot.throughput_tps() > multi.throughput_tps() * 0.97,
            "hot-prefetch {} ≪ multi {}",
            hot.throughput_tps(),
            multi.throughput_tps()
        );
        assert!(
            full.throughput_tps() >= hot.throughput_tps() * 0.98,
            "reorder {} < hot {}",
            full.throughput_tps(),
            hot.throughput_tps()
        );
    }

    #[test]
    fn reordering_reduces_bubbles() {
        let sc = scenario(8, 6);
        let fixed = run(KlotskiConfig::ablation_hot_prefetch(), &sc);
        let reordered = run(KlotskiConfig::full(), &sc);
        assert!(
            reordered.gpu_bubble <= fixed.gpu_bubble,
            "reorder bubbles {} > fixed {}",
            reordered.gpu_bubble,
            fixed.gpu_bubble
        );
    }

    #[test]
    fn quantization_speeds_up_io_bound_runs() {
        let sc = scenario(4, 4);
        let full = run(KlotskiConfig::full(), &sc);
        let quant = run(KlotskiConfig::quantized(), &sc);
        assert!(
            quant.total_time < full.total_time,
            "quantized {} ≥ full {}",
            quant.total_time,
            full.total_time
        );
    }

    #[test]
    fn names_reflect_configuration() {
        assert_eq!(KlotskiEngine::new(KlotskiConfig::full()).name(), "Klotski");
        assert_eq!(
            KlotskiEngine::new(KlotskiConfig::quantized()).name(),
            "Klotski (q)"
        );
        assert_eq!(
            KlotskiEngine::new(KlotskiConfig::ablation_simple_pipeline()).name(),
            "Simple pipeline"
        );
    }

    #[test]
    fn memory_is_conserved_across_the_run() {
        let sc = scenario(4, 3);
        let engine = KlotskiEngine::new(KlotskiConfig::full());
        let r = engine.run(&sc).unwrap();
        assert!(r.succeeded());
        // Peak DRAM covers weights + all KV written back.
        assert!(r.peak_dram > 0);
    }

    #[test]
    fn dense_models_run_without_traces() {
        let sc = Scenario::generate(
            ModelSpec::opt_1_3b(),
            HardwareSpec::env1_rtx3090(),
            Workload::new(4, 4, 128, 4),
            1,
        );
        let r = run(KlotskiConfig::full(), &sc);
        assert!(r.succeeded(), "{:?}", r.oom);
        assert!(r.throughput_tps() > 0.0);
    }

    #[test]
    fn infeasible_workloads_report_oom_not_panic() {
        // A batch group whose KV alone exceeds DRAM.
        let sc = Scenario::generate(
            ModelSpec::mixtral_8x22b(),
            HardwareSpec::env1_rtx3090(),
            Workload::new(512, 64, 512, 4),
            1,
        );
        let r = run(KlotskiConfig::full(), &sc);
        assert!(!r.succeeded());
        assert_eq!(r.throughput_tps(), 0.0);
    }

    #[test]
    fn timeline_recording_is_optional_and_works() {
        let sc = scenario(4, 2);
        let mut cfg = KlotskiConfig::full();
        cfg.record_timeline = true;
        let r = run(cfg, &sc);
        let metrics = r.metrics.expect("timeline requested");
        assert!(!metrics.timeline().is_empty());
        let off = run(KlotskiConfig::full(), &sc);
        assert!(off.metrics.is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use klotski_model::hardware::HardwareSpec;
    use proptest::prelude::*;

    fn config_for(selector: u8) -> KlotskiConfig {
        match selector % 5 {
            0 => KlotskiConfig::ablation_simple_pipeline(),
            1 => KlotskiConfig::ablation_multi_batch(),
            2 => KlotskiConfig::ablation_hot_prefetch(),
            3 => KlotskiConfig::quantized(),
            _ => KlotskiConfig::full(),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        /// Schedule legality across random workload shapes and engine
        /// configurations: the submitted task graph must drain without
        /// deadlock or OOM, account every generated token, and respect
        /// the machine's memory limits.
        #[test]
        fn random_scenarios_complete_consistently(
            bs in 1u32..12,
            n in 1u32..6,
            prompt in 16u32..128,
            gen in 2u32..6,
            seed in 0u64..50,
            selector in 0u8..5,
        ) {
            let wl = Workload::new(bs, n, prompt, gen);
            let sc = Scenario::generate(
                ModelSpec::mixtral_8x7b(),
                HardwareSpec::env1_rtx3090(),
                wl,
                seed,
            );
            let r = KlotskiEngine::new(config_for(selector))
                .run(&sc)
                .expect("no internal scheduling errors");
            prop_assert!(r.succeeded(), "unexpected OOM: {:?}", r.oom);
            prop_assert_eq!(r.generated_tokens, wl.total_generated());
            prop_assert!(r.peak_vram <= sc.hw.vram_bytes);
            prop_assert!(r.peak_dram <= sc.hw.dram_bytes);
            prop_assert!(r.gpu_busy <= r.total_time);
            prop_assert!(r.prefill_time <= r.total_time);
            prop_assert!(r.throughput_tps() > 0.0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// Determinism: the same scenario and configuration always produce
        /// the identical report.
        #[test]
        fn runs_are_deterministic(seed in 0u64..20, selector in 0u8..5) {
            let wl = Workload::new(4, 3, 64, 3);
            let sc = Scenario::generate(
                ModelSpec::mixtral_8x7b(),
                HardwareSpec::env1_rtx3090(),
                wl,
                seed,
            );
            let cfg = config_for(selector);
            let a = KlotskiEngine::new(cfg).run(&sc).unwrap();
            let b = KlotskiEngine::new(cfg).run(&sc).unwrap();
            prop_assert_eq!(a.total_time, b.total_time);
            prop_assert_eq!(a.gpu_busy, b.gpu_busy);
            prop_assert_eq!(a.peak_vram, b.peak_vram);
        }
    }
}
