//! The constraint-sensitive I/O-compute planner (§7 of the paper).
//!
//! Planning goal: the smallest batch-group size `n` such that every key
//! point of the pipeline (Fig. 9) has its transfer finished before its
//! computation wants to start — inequalities (4)–(7) of the paper:
//!
//! ```text
//! (4) n·t_cA                       ≥ t_ioG
//! (5) n·(t_cA + t_cG)              ≥ t_ioG + K·t_ioE
//! (6) n·(t_cA + t_cG) + t_c_hotE   ≥ t_ioG + (K+1)·t_ioE
//! (7) n·(t_cA + t_cG) + t_c_hotE + Σ_Q t_cEi
//!                                  ≥ t_ioG + (K+len(Q))·t_ioE + t_ioA
//! ```
//!
//! Stage 1 ("measurement of current hardware capability") is the calibrated
//! [`CostModel`]; stage 2 evaluates the inequalities for increasing `n`
//! (the compute terms grow with `n`, the I/O terms don't) and returns the
//! first satisfying value, then applies the memory constraints of Eq. (3):
//! a too-large `n` floods DRAM with KV cache, in which case `n` is capped
//! and the plan marked, mirroring the paper's manual `n = 10` for
//! Mixtral-8×22B in Environment 1.

use klotski_model::cost::CostModel;
use klotski_model::trace::GatingModel;
use klotski_model::workload::Workload;
use klotski_sim::time::SimDuration;

use crate::compress::Compression;

/// Stage-1 profile: the per-op times the inequalities are built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Profile {
    /// Attention compute per batch (decode, steady state).
    pub t_c_attn: SimDuration,
    /// Gate compute per batch.
    pub t_c_gate: SimDuration,
    /// Gate weight transfer.
    pub t_io_gate: SimDuration,
    /// One expert's weight transfer (compressed bytes).
    pub t_io_expert: SimDuration,
    /// One layer's attention-weight transfer (compressed bytes).
    pub t_io_attn: SimDuration,
}

impl Profile {
    /// Measures the profile for `batch_size` under `compression`.
    pub fn measure(cost: &CostModel, batch_size: u32, compression: &Compression) -> Self {
        let spec = cost.spec();
        let ctx = 512 + 16; // representative decode context for the paper shape
        let wf = compression.weight_factor(spec.dtype);
        Profile {
            t_c_attn: cost.attention_time(batch_size as u64, 1, compression.effective_context(ctx)),
            t_c_gate: cost.gate_time(batch_size as u64),
            t_io_gate: cost.gate_h2d_time(),
            t_io_expert: cost.expert_h2d_time(wf),
            t_io_attn: cost.attn_h2d_time(wf),
        }
    }
}

/// The planner's output.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelinePlan {
    /// The batch-group size to use.
    pub n: u32,
    /// The minimal `n` that satisfies inequalities (4)–(7) (uncapped).
    pub required_n: u32,
    /// Whether the chosen `n` satisfies all inequalities.
    pub satisfied: bool,
    /// Whether memory constraints forced `n` below `required_n`.
    pub memory_capped: bool,
    /// Estimated total KV-cache bytes at the chosen `n`.
    pub est_kv_bytes: u64,
    /// The stage-1 profile used.
    pub profile: Profile,
}

/// The constraint-sensitive planner.
#[derive(Debug, Clone)]
pub struct Planner {
    cost: CostModel,
    compression: Compression,
    /// Upper bound on `n` explored (the paper explores up to 15).
    pub max_n: u32,
}

impl Planner {
    /// Creates a planner for one (model, hardware, compression) setting.
    pub fn new(cost: CostModel, compression: Compression) -> Self {
        Planner {
            cost,
            compression,
            max_n: 64,
        }
    }

    /// Expected number of distinct activated experts per layer when `tokens`
    /// tokens each select `top_k` experts under `popularity` (or a uniform
    /// fallback when no gating statistics are available).
    pub fn expected_activated(&self, tokens: u64, popularity: Option<&[f64]>) -> f64 {
        let spec = self.cost.spec();
        let e = spec.n_experts as usize;
        if e == 0 {
            return 0.0;
        }
        let picks = tokens.saturating_mul(spec.top_k as u64) as f64;
        let uniform = vec![1.0 / e as f64; e];
        let pop = popularity.unwrap_or(&uniform);
        pop.iter()
            .map(|&p| 1.0 - (1.0 - p).powf(picks))
            .sum::<f64>()
            .min(e as f64)
    }

    /// Evaluates inequalities (4)–(7) at group size `n`, returning every
    /// slack (LHS − RHS, in seconds; negative ⇒ violated) in paper order.
    pub fn slacks(&self, n: u32, batch_size: u32, gating: Option<&GatingModel>) -> [f64; 4] {
        self.slacks_impl(n, batch_size, gating)
    }

    /// Evaluates inequalities (4)–(7) at group size `n`.
    ///
    /// Returns the most-violated slack (negative ⇒ violated) in seconds.
    pub fn worst_slack(&self, n: u32, batch_size: u32, gating: Option<&GatingModel>) -> f64 {
        self.slacks_impl(n, batch_size, gating)
            .into_iter()
            .fold(f64::INFINITY, f64::min)
    }

    fn slacks_impl(&self, n: u32, batch_size: u32, gating: Option<&GatingModel>) -> [f64; 4] {
        let spec = self.cost.spec();
        let p = Profile::measure(&self.cost, batch_size, &self.compression);
        let k = spec.top_k.max(1) as f64;
        let tokens = n as u64 * batch_size as u64;

        // Average per-layer popularity for hot/cold token split.
        let (hot_share, avg_pop) = match gating {
            Some(g) => {
                let layers = g.n_moe_layers().max(1);
                let mut share = 0.0;
                let mut pop = vec![0.0f64; spec.n_experts as usize];
                for l in 0..layers {
                    let pl = g.popularity(l);
                    let hot = g.hot_experts(l, spec.top_k);
                    share += hot.iter().map(|&e| pl[e as usize]).sum::<f64>();
                    for (a, &b) in pop.iter_mut().zip(pl) {
                        *a += b / layers as f64;
                    }
                }
                (share / layers as f64, Some(pop))
            }
            None => (k / spec.n_experts.max(1) as f64, None),
        };

        let activated = self.expected_activated(tokens, avg_pop.as_deref());
        let len_q = (activated - k).max(0.0);

        // Token split: hot experts take `hot_share` of the routed tokens.
        let routed = tokens as f64 * k;
        let hot_tokens_each = (routed * hot_share / k).round() as u64;
        let cold_tokens_each = if len_q > 0.0 {
            (routed * (1.0 - hot_share) / len_q).round() as u64
        } else {
            0
        };
        let t_c_hot = self.cost.expert_time(hot_tokens_each).as_secs_f64() * k;
        let t_c_cold_total = self.cost.expert_time(cold_tokens_each).as_secs_f64() * len_q;

        let nf = n as f64;
        let t_ca = p.t_c_attn.as_secs_f64();
        let t_cg = p.t_c_gate.as_secs_f64();
        let t_iog = p.t_io_gate.as_secs_f64();
        let t_ioe = p.t_io_expert.as_secs_f64();
        let t_ioa = p.t_io_attn.as_secs_f64();

        let slack4 = nf * t_ca - t_iog;
        let slack5 = nf * (t_ca + t_cg) - (t_iog + k * t_ioe);
        let slack6 = nf * (t_ca + t_cg) + t_c_hot - (t_iog + (k + 1.0) * t_ioe);
        let slack7 =
            nf * (t_ca + t_cg) + t_c_hot + t_c_cold_total - (t_iog + (k + len_q) * t_ioe + t_ioa);
        [slack4, slack5, slack6, slack7]
    }

    /// Solves for the pipeline plan under the memory constraints of `wl`
    /// (DRAM must hold weights + the KV cache of `n × batch_size`
    /// sequences).
    pub fn plan(&self, wl: &Workload, gating: Option<&GatingModel>) -> PipelinePlan {
        let spec = self.cost.spec();
        let hw = self.cost.hardware();
        let profile = Profile::measure(&self.cost, wl.batch_size, &self.compression);

        if !spec.is_moe() {
            // Dense models: only the attention/FFN overlap matters; use
            // inequality (7) degenerated to whole-layer prefetch.
            let t_layer_io = profile.t_io_attn.as_secs_f64() + profile.t_io_expert.as_secs_f64();
            let t_compute = profile.t_c_attn.as_secs_f64();
            let required = (t_layer_io / t_compute.max(1e-9)).ceil().max(1.0) as u32;
            let n = required.min(self.max_n);
            return PipelinePlan {
                n,
                required_n: required,
                satisfied: n >= required,
                memory_capped: false,
                est_kv_bytes: spec
                    .kv_bytes_total(n as u64 * wl.batch_size as u64, wl.max_context()),
                profile,
            };
        }

        let required_n = (1..=self.max_n)
            .find(|&n| self.worst_slack(n, wl.batch_size, gating) >= 0.0)
            .unwrap_or(self.max_n);

        // Memory constraint (Eq. 3): experts may spill to disk, but the KV
        // cache and the non-expert weights must fit DRAM (with headroom for
        // pinned buffers and the disk staging window).
        let kv_factor = self.compression.kv_factor(wl.max_context());
        let dram_budget = (hw.dram_bytes as f64 * 0.92) as u64;
        let non_expert: u64 = (0..spec.n_layers)
            .map(|l| {
                let mut b = spec.attn_bytes();
                if spec.is_moe_layer(l) {
                    b += spec.gate_bytes();
                } else {
                    b += spec.dense_ffn_bytes();
                }
                b
            })
            .sum::<u64>()
            + spec.embed_bytes()
            + 8 * spec.n_experts.max(1) as u64 * spec.expert_bytes();
        let kv_per_group_seq =
            (spec.kv_bytes_total(wl.batch_size as u64, wl.max_context()) as f64 * kv_factor) as u64;
        let mut n_mem = required_n;
        while n_mem > 1 {
            let kv = kv_per_group_seq * n_mem as u64;
            if non_expert.saturating_add(kv) <= dram_budget {
                break;
            }
            n_mem -= 1;
        }

        let n = required_n.min(n_mem).max(1);
        PipelinePlan {
            n,
            required_n,
            satisfied: self.worst_slack(n, wl.batch_size, gating) >= 0.0,
            memory_capped: n < required_n,
            est_kv_bytes: (spec.kv_bytes_total(n as u64 * wl.batch_size as u64, wl.max_context())
                as f64
                * kv_factor) as u64,
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use klotski_model::hardware::HardwareSpec;
    use klotski_model::spec::ModelSpec;
    use klotski_model::trace::TraceConfig;

    fn planner(compression: Compression) -> Planner {
        Planner::new(
            CostModel::new(ModelSpec::mixtral_8x7b(), HardwareSpec::env1_rtx3090()),
            compression,
        )
    }

    fn gating() -> GatingModel {
        GatingModel::new(&TraceConfig::for_model(&ModelSpec::mixtral_8x7b(), 1))
    }

    #[test]
    fn slack_grows_with_n() {
        let p = planner(Compression::none());
        let g = gating();
        let s3 = p.worst_slack(3, 16, Some(&g));
        let s8 = p.worst_slack(8, 16, Some(&g));
        let s15 = p.worst_slack(15, 16, Some(&g));
        assert!(s3 < s8 && s8 < s15, "{s3} {s8} {s15}");
    }

    #[test]
    fn slacks_expose_the_binding_inequality() {
        // Inequality (4) (gate transfer vs attention) is trivially
        // satisfiable; (7) (full expert queue + next attention) binds.
        let p = planner(Compression::none());
        let g = gating();
        let s = p.slacks(8, 16, Some(&g));
        assert!(s[0] > 0.0, "(4) should hold at n=8: {s:?}");
        assert!(s[3] <= s[0], "(7) is the hardest constraint: {s:?}");
        assert_eq!(
            p.worst_slack(8, 16, Some(&g)),
            s.into_iter().fold(f64::INFINITY, f64::min)
        );
    }

    #[test]
    fn plan_finds_a_minimal_n() {
        let p = planner(Compression::none());
        let g = gating();
        let wl = Workload::paper_default(16);
        let plan = p.plan(&wl, Some(&g));
        assert!(plan.n >= 1);
        assert!(plan.satisfied || plan.memory_capped);
        if plan.n > 1 && !plan.memory_capped {
            // Minimality: n−1 must violate some inequality.
            assert!(
                p.worst_slack(plan.n - 1, 16, Some(&g)) < 0.0,
                "n−1 should not satisfy the inequalities"
            );
        }
    }

    #[test]
    fn bigger_batches_need_smaller_n() {
        // More tokens per batch ⇒ more compute per batch ⇒ fewer batches
        // needed to cover the same I/O.
        let p = planner(Compression::none());
        let g = gating();
        let n_small = p.plan(&Workload::paper_default(4), Some(&g)).required_n;
        let n_big = p.plan(&Workload::paper_default(64), Some(&g)).required_n;
        assert!(n_big <= n_small, "bs4 → n={n_small}, bs64 → n={n_big}");
    }

    #[test]
    fn quantization_reduces_required_n() {
        // §9.3: smaller transfers ⇒ full overlap at smaller n.
        let g = gating();
        let wl = Workload::paper_default(8);
        let full = planner(Compression::none()).plan(&wl, Some(&g)).required_n;
        let quant = planner(Compression::quantized())
            .plan(&wl, Some(&g))
            .required_n;
        assert!(quant < full, "full → n={full}, quantized → n={quant}");
    }

    #[test]
    fn slower_links_need_larger_n() {
        let g = gating();
        let wl = Workload::paper_default(16);
        let fast = Planner::new(
            CostModel::new(ModelSpec::mixtral_8x7b(), HardwareSpec::env1_rtx3090()),
            Compression::none(),
        )
        .plan(&wl, Some(&g))
        .required_n;
        let slow = Planner::new(
            CostModel::new(
                ModelSpec::mixtral_8x7b(),
                HardwareSpec::env1_rtx3090().with_link_scale(0.5),
            ),
            Compression::none(),
        )
        .plan(&wl, Some(&g))
        .required_n;
        assert!(slow >= fast, "fast n={fast}, slow n={slow}");
    }

    #[test]
    fn memory_cap_engages_for_8x22b_on_env1() {
        // The paper had to cap n at 10 for Mixtral-8×22B in Environment 1
        // because the planner's n would OOM.
        let p = Planner::new(
            CostModel::new(ModelSpec::mixtral_8x22b(), HardwareSpec::env1_rtx3090()),
            Compression::none(),
        );
        let cfg = TraceConfig::for_model(&ModelSpec::mixtral_8x22b(), 1);
        let g = GatingModel::new(&cfg);
        let plan = p.plan(&Workload::paper_default(64), Some(&g));
        assert!(
            plan.memory_capped || plan.n <= plan.required_n,
            "8×22B on 24 GB should be memory-aware: {plan:?}"
        );
    }

    #[test]
    fn expected_activated_saturates() {
        let p = planner(Compression::none());
        let few = p.expected_activated(1, None);
        let many = p.expected_activated(10_000, None);
        assert!(few < many);
        assert!(many <= 8.0 + 1e-9);
        assert!((many - 8.0).abs() < 1e-3, "all experts activate eventually");
    }

    #[test]
    fn dense_models_plan_without_gating() {
        let p = Planner::new(
            CostModel::new(ModelSpec::opt_6_7b(), HardwareSpec::env1_rtx3090()),
            Compression::none(),
        );
        let plan = p.plan(&Workload::paper_default(4), None);
        assert!(plan.n >= 1);
    }
}
