//! Criterion microbenchmarks for the library's hot paths: the simulator
//! core, the planner, the prefetcher, the quantizer, the native kernels,
//! trace generation, and a small end-to-end engine run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use klotski_core::compress::Compression;
use klotski_core::engine::{KlotskiConfig, KlotskiEngine};
use klotski_core::native::{run_pipeline, NativePipelineConfig};
use klotski_core::planner::Planner;
use klotski_core::prefetcher::CorrelationTable;
use klotski_core::scenario::{Engine, Scenario};
use klotski_model::cost::CostModel;
use klotski_model::hardware::HardwareSpec;
use klotski_model::spec::ModelSpec;
use klotski_model::trace::{GatingModel, TraceConfig};
use klotski_model::workload::Workload;
use klotski_moe::config::MoeConfig;
use klotski_moe::model::MoeModel;
use klotski_sim::event::EventQueue;
use klotski_sim::prelude::*;
use klotski_tensor::init::xavier_matrix;
use klotski_tensor::quant::{QuantConfig, QuantizedMatrix};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("sim/event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
}

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("sim/chain_10k_tasks", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(TierCapacities::unbounded());
            let mut prev: Option<TaskId> = None;
            for _ in 0..10_000 {
                let mut spec = TaskSpec::new(
                    Resource::GpuCompute,
                    SimDuration::from_micros(5),
                    TaskMeta::of(OpClass::Misc),
                );
                if let Some(p) = prev {
                    spec = spec.after(p);
                }
                prev = Some(sim.submit(spec));
            }
            while sim.step().unwrap().is_some() {}
            black_box(sim.now())
        })
    });
}

fn bench_planner(c: &mut Criterion) {
    let cost = CostModel::new(ModelSpec::mixtral_8x7b(), HardwareSpec::env1_rtx3090());
    let planner = Planner::new(cost, Compression::none());
    let gating = GatingModel::new(&TraceConfig::for_model(&ModelSpec::mixtral_8x7b(), 1));
    let wl = Workload::paper_default(16);
    c.bench_function("core/planner_solve", |b| {
        b.iter(|| black_box(planner.plan(&wl, Some(&gating))))
    });
}

fn bench_prefetcher(c: &mut Criterion) {
    let gating = GatingModel::new(&TraceConfig::for_model(&ModelSpec::mixtral_8x7b(), 1));
    let mut table = CorrelationTable::new(32, 8);
    table.warm_up(&gating, 4096, 3);
    let prev: Vec<u16> = (0..960).map(|i| (i % 8) as u16).collect();
    c.bench_function("core/prefetcher_predict_960_tokens", |b| {
        b.iter(|| black_box(table.predict(black_box(17), &prev, 2)))
    });
    c.bench_function("core/correlation_warmup_1k_tokens", |b| {
        b.iter(|| {
            let mut t = CorrelationTable::new(32, 8);
            t.warm_up(&gating, 1000, 7);
            black_box(t.total_records())
        })
    });
}

fn bench_quantizer(c: &mut Criterion) {
    let w = xavier_matrix(64, 1024, 5);
    c.bench_function("tensor/quantize_64x1024_4bit", |b| {
        b.iter(|| black_box(QuantizedMatrix::quantize(&w, QuantConfig::paper_default())))
    });
    let q = QuantizedMatrix::quantize(&w, QuantConfig::paper_default());
    c.bench_function("tensor/dequantize_64x1024_4bit", |b| {
        b.iter(|| black_box(q.dequantize()))
    });
    // Group-at-a-time dequantization (bulk bit-stream refill, one
    // scale/zero load per group) vs the retained per-element reference.
    let mut out = klotski_tensor::matrix::Matrix::zeros(64, 1024);
    c.bench_function("tensor/dequantize_into_64x1024_grouped", |b| {
        b.iter(|| {
            q.dequantize_into(&mut out);
            black_box(out.row(63)[1023])
        })
    });
    c.bench_function("tensor/dequantize_into_64x1024_reference", |b| {
        b.iter(|| {
            q.dequantize_reference_into(&mut out);
            black_box(out.row(63)[1023])
        })
    });
}

fn bench_simd_kernels(c: &mut Criterion) {
    use klotski_tensor::matrix::Matrix;
    use klotski_tensor::simd::{detected_backend, KernelBackend};
    // The 2x8 register-blocked nt kernel at an expert-FFN shape, scalar vs
    // every backend the CPU (and feature set) offers. All variants are
    // bit-identical; only the instruction mix differs.
    let xs = xavier_matrix(16, 256, 3);
    let w = xavier_matrix(1024, 256, 4);
    let mut out = Matrix::zeros(16, 1024);
    let mut backends = vec![KernelBackend::Scalar];
    for b in [KernelBackend::Sse2, KernelBackend::Avx2] {
        if b.is_available() {
            backends.push(b);
        }
    }
    for &backend in &backends {
        c.bench_function(&format!("tensor/matmul_nt_16x256x1024_{backend}"), |b| {
            b.iter(|| {
                xs.matmul_nt_into_with_backend(&w, &mut out, 1, backend);
                black_box(out.row(15)[1023])
            })
        });
    }
    let x: Vec<f32> = (0..256).map(|i| (i as f32 * 0.13).sin()).collect();
    let mut y = vec![0.0f32; 1024];
    for &backend in &backends {
        c.bench_function(&format!("tensor/matvec_1024x256_{backend}"), |b| {
            b.iter(|| {
                w.matvec_into_with_backend(&x, &mut y, backend);
                black_box(y[1023])
            })
        });
    }
    let _ = detected_backend();
}

fn bench_fused_quant_gemm(c: &mut Criterion) {
    use klotski_tensor::matrix::Matrix;
    // Staged dequantize-then-GEMM (what the slot path did before fusion)
    // vs the fused quantized-domain GEMM, at an expert-FFN shape.
    let w = xavier_matrix(1024, 256, 6);
    let q = QuantizedMatrix::quantize(&w, QuantConfig::paper_default());
    let xs = xavier_matrix(16, 256, 7);
    let mut dense = Matrix::zeros(1024, 256);
    let mut out = Matrix::zeros(16, 1024);
    c.bench_function("tensor/quant_gemm_16x256x1024_staged", |b| {
        b.iter(|| {
            q.dequantize_into(&mut dense);
            xs.matmul_nt_into(&dense, &mut out);
            black_box(out.row(15)[1023])
        })
    });
    c.bench_function("tensor/quant_gemm_16x256x1024_fused", |b| {
        b.iter(|| {
            q.matmul_nt_fused_into(&xs, &mut out);
            black_box(out.row(15)[1023])
        })
    });
}

fn bench_native_kernels(c: &mut Criterion) {
    let a = xavier_matrix(64, 64, 1);
    let bm = xavier_matrix(64, 64, 2);
    c.bench_function("tensor/matmul_64x64x64", |b| {
        b.iter(|| black_box(a.matmul(&bm)))
    });
    // Tiled/register-blocked nt kernel vs the retained naive reference, at
    // an expert-FFN-like shape.
    let xs = xavier_matrix(16, 256, 3);
    let w = xavier_matrix(1024, 256, 4);
    c.bench_function("tensor/matmul_nt_16x256x1024_tiled", |b| {
        b.iter(|| black_box(xs.matmul_nt(&w)))
    });
    c.bench_function("tensor/matmul_nt_16x256x1024_naive", |b| {
        b.iter(|| black_box(xs.matmul_nt_naive(&w)))
    });
    let model = MoeModel::new(MoeConfig::tiny(3));
    let x = vec![0.1f32; model.config().d_model];
    c.bench_function("moe/expert_forward_tiny", |b| {
        b.iter(|| black_box(model.expert_out(0, 0, &x)))
    });
    // Batched expert forward vs the same tokens one at a time.
    let e = klotski_moe::weights::ExpertWeights::seeded(model.config(), 0, 0);
    let toks = xavier_matrix(16, model.config().d_model, 5);
    c.bench_function("moe/expert_forward_batch_16", |b| {
        b.iter(|| black_box(e.forward_batch(&toks)))
    });
    c.bench_function("moe/expert_forward_16_per_token", |b| {
        b.iter(|| {
            for r in 0..toks.rows() {
                black_box(e.forward(toks.row(r)));
            }
        })
    });
}

fn bench_attention_kernels(c: &mut Criterion) {
    use klotski_tensor::matrix::{
        matvec_strided_into, matvec_strided_naive, weighted_rows_into, weighted_rows_naive,
        StridedRows,
    };
    // One attention head's slice of a 128-position KV slab (d_model 256,
    // head_dim 32, head 3) — the scores and AV shapes of batched
    // attention, blocked kernel vs naive reference.
    let (d_model, head_dim, off, len) = (256usize, 32usize, 3 * 32usize, 128usize);
    let slab = xavier_matrix(len, d_model, 11);
    let q: Vec<f32> = (0..head_dim).map(|i| (i as f32 * 0.17).sin()).collect();
    let idx: Vec<usize> = (0..len).collect();
    let weights: Vec<f32> = (0..len).map(|i| 1.0 / (i + 1) as f32).collect();
    let mut scores = vec![0.0f32; len];
    let mut av = vec![0.0f32; head_dim];
    c.bench_function("tensor/matvec_strided_128pos_blocked", |b| {
        b.iter(|| {
            let rows = StridedRows::new(slab.as_slice(), d_model, off, head_dim);
            matvec_strided_into(&q, &rows, &idx, &mut scores);
            black_box(scores[len - 1])
        })
    });
    c.bench_function("tensor/matvec_strided_128pos_naive", |b| {
        b.iter(|| {
            let rows = StridedRows::new(slab.as_slice(), d_model, off, head_dim);
            matvec_strided_naive(&q, &rows, &idx, &mut scores);
            black_box(scores[len - 1])
        })
    });
    c.bench_function("tensor/weighted_rows_128pos_blocked", |b| {
        b.iter(|| {
            let rows = StridedRows::new(slab.as_slice(), d_model, off, head_dim);
            weighted_rows_into(&weights, &rows, &idx, &mut av);
            black_box(av[head_dim - 1])
        })
    });
    c.bench_function("tensor/weighted_rows_128pos_naive", |b| {
        b.iter(|| {
            let rows = StridedRows::new(slab.as_slice(), d_model, off, head_dim);
            weighted_rows_naive(&weights, &rows, &idx, &mut av);
            black_box(av[head_dim - 1])
        })
    });
    // A whole-group attention step vs the per-token walk (8 sequences).
    let cfg = MoeConfig::tiny(3);
    let model = MoeModel::new(cfg);
    let group: Vec<usize> = (0..8).collect();
    let hs: Vec<Vec<f32>> = (0..8)
        .map(|s| {
            (0..cfg.d_model)
                .map(|i| ((s * 7 + i) as f32 * 0.1).sin())
                .collect()
        })
        .collect();
    c.bench_function("moe/attn_block_batch_8seq", |b| {
        let mut scratch = model.attn_scratch();
        b.iter(|| {
            let mut caches: Vec<_> = (0..8).map(|_| model.new_cache()).collect();
            let mut h = hs.clone();
            model.attn_block_batch(
                0,
                &mut h,
                &group,
                &mut caches,
                klotski_moe::attention::AttnMask::Dense,
                &mut scratch,
            );
            black_box(h[7][0])
        })
    });
    c.bench_function("moe/attn_block_8seq_per_token", |b| {
        b.iter(|| {
            let mut caches: Vec<_> = (0..8).map(|_| model.new_cache()).collect();
            let mut out = 0.0;
            for s in 0..8 {
                let h = model.attn_block(
                    0,
                    &hs[s],
                    &mut caches[s],
                    klotski_moe::attention::AttnMask::Dense,
                );
                out = h[0];
            }
            black_box(out)
        })
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let gating = GatingModel::new(&TraceConfig::for_model(&ModelSpec::mixtral_8x7b(), 1));
    c.bench_function("model/generate_trace_64seq_8steps", |b| {
        b.iter(|| black_box(gating.generate_trace(64, 512, 8, 9)))
    });
}

fn bench_engine_end_to_end(c: &mut Criterion) {
    let sc = Scenario::generate(
        ModelSpec::mixtral_8x7b(),
        HardwareSpec::env1_rtx3090(),
        Workload::new(8, 4, 128, 4),
        11,
    );
    let engine = KlotskiEngine::new(KlotskiConfig::full());
    c.bench_function("core/klotski_sim_run_small", |b| {
        b.iter(|| black_box(engine.run(&sc).unwrap().throughput_tps()))
    });
}

fn bench_native_pipeline(c: &mut Criterion) {
    let model = MoeModel::new(MoeConfig::tiny(13));
    let prompts: Vec<Vec<u32>> = (0..4)
        .map(|s| (0..6).map(|p| ((s * 31 + p * 7) % 96) as u32).collect())
        .collect();
    c.bench_function("core/native_pipeline_tiny", |b| {
        b.iter(|| {
            black_box(run_pipeline(
                &model,
                &prompts,
                3,
                &NativePipelineConfig::default(),
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_simulator,
    bench_planner,
    bench_prefetcher,
    bench_quantizer,
    bench_simd_kernels,
    bench_fused_quant_gemm,
    bench_native_kernels,
    bench_attention_kernels,
    bench_trace_generation,
    bench_engine_end_to_end,
    bench_native_pipeline,
);
criterion_main!(benches);
