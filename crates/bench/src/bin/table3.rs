//! Table 3: the ablation study — throughput as each Klotski technique is
//! added, across the three evaluation settings.

use klotski_bench::{tps_cell, Setting, TextTable};
use klotski_core::engine::{KlotskiConfig, KlotskiEngine};
use klotski_core::scenario::Engine;

fn main() {
    println!("== Table 3: ablation study (throughput, token/s) ==\n");

    // The paper's Table 3 measures at the settings' best batch sizes; we
    // use batch 64 for throughput-oriented settings and 16 for the
    // memory-tight 8×22B-on-3090 case (its single-batch engines cap there).
    let rows: [(&str, KlotskiConfig); 5] = [
        ("Simple Pipeline", KlotskiConfig::ablation_simple_pipeline()),
        ("+ Multi batches", KlotskiConfig::ablation_multi_batch()),
        (
            "+ Only prefetch hot experts",
            KlotskiConfig::ablation_hot_prefetch(),
        ),
        ("Klotski (+ adjust order)", KlotskiConfig::full()),
        ("Klotski (q)", KlotskiConfig::quantized()),
    ];

    let mut table = TextTable::new(["Configuration", "8x7B Env1", "8x22B Env1", "8x22B Env2"]);
    let mut columns: Vec<Vec<String>> = vec![Vec::new(); 3];
    for (i, setting) in Setting::ALL.iter().enumerate() {
        let bs = if klotski_bench::cheap_mode() {
            8
        } else {
            match setting {
                Setting::Big8x22bEnv1 => 16,
                _ => 64,
            }
        };
        let sc = setting.scenario(bs);
        for (_, cfg) in &rows {
            let report = KlotskiEngine::new(*cfg).run(&sc).expect("ablation run");
            columns[i].push(tps_cell(&report));
        }
    }
    for (r, (label, _)) in rows.iter().enumerate() {
        table.row([
            (*label).to_owned(),
            columns[0][r].clone(),
            columns[1][r].clone(),
            columns[2][r].clone(),
        ]);
    }
    table.print();

    println!("\npaper (Table 3):   5.721 → 18.24 → 19.07 → 22.41 → 22.60   (8x7B Env1)");
    println!("                   0.010 →  0.97 →  1.13 →  1.33 →  1.37   (8x22B Env1)");
    println!("                   1.149 → 34.07 → 44.17 → 52.85 → 53.13   (8x22B Env2)");
}
