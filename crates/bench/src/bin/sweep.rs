//! Design-choice ablations beyond the paper's Table 3: the knobs DESIGN.md
//! calls out, each swept in isolation.
//!
//! 1. prefetch depth K (the paper fixes K = k and argues more is waste);
//! 2. correlation-table warm-up size (the §8 pre-run);
//! 3. activation-path length l = 1 vs l = 2 (the §8 trade-off);
//! 4. sparse-KV budget (StreamingLLM option of §7);
//! 5. disk bandwidth sensitivity (the Env-1 staging path).

use klotski_bench::{Setting, TextTable, SEED};
use klotski_core::compress::{Compression, SparseAttention};
use klotski_core::engine::{KlotskiConfig, KlotskiEngine};
use klotski_core::prefetcher::{measure_accuracy, measure_accuracy_l2};
use klotski_core::scenario::{Engine, Scenario};
use klotski_model::trace::{GatingModel, TraceConfig};

fn main() {
    let setting = Setting::Small8x7bEnv1;

    println!("== Sweep 1: prefetch depth K (Mixtral-8x7B Env 1, bs 16, n 15) ==");
    let sc = setting.scenario(16);
    let mut t = TextTable::new(["K", "throughput (tok/s)", "GPU bubbles"]);
    for k in [1u32, 2, 3, 4] {
        let mut cfg = KlotskiConfig::full();
        cfg.prefetch_k = Some(k);
        let r = KlotskiEngine::new(cfg).run(&sc).expect("run");
        t.row([
            k.to_string(),
            format!("{:.2}", r.throughput_tps()),
            format!("{:.1}%", r.bubble_fraction() * 100.0),
        ]);
    }
    t.print();
    println!("(the paper presets K = k = 2: deeper prefetch buys little and moves bytes early)");

    println!("\n== Sweep 2: correlation-table warm-up (pre-run size) ==");
    let spec = setting.model();
    let tc = TraceConfig::for_model(&spec, SEED);
    let base = GatingModel::new(&tc);
    let task = base.drifted(tc.drift, SEED + 1);
    let trace = if klotski_bench::cheap_mode() {
        task.generate_trace(60, 128, 8, SEED + 2)
    } else {
        task.generate_trace(240, 256, 16, SEED + 2)
    };
    let mut t = TextTable::new(["warm-up tokens", "participation", "really-hot"]);
    for warmup in [64u32, 512, 4096, 16384] {
        let acc = measure_accuracy(&base, &trace, 2, warmup);
        t.row([
            warmup.to_string(),
            format!("{:.1}%", acc.avg_participation * 100.0),
            format!("{:.1}%", acc.avg_really_hot * 100.0),
        ]);
    }
    t.print();

    println!("\n== Sweep 3: activation-path length (§8's l trade-off) ==");
    let l1 = measure_accuracy(&base, &trace, 2, 4096);
    let l2 = measure_accuracy_l2(&base, &trace, 2, 4096);
    let e = spec.n_experts as usize;
    let layers = spec.n_moe_layers() as usize;
    let mut t = TextTable::new(["l", "really-hot", "participation", "table bytes"]);
    t.row([
        "1".to_owned(),
        format!("{:.1}%", l1.avg_really_hot * 100.0),
        format!("{:.1}%", l1.avg_participation * 100.0),
        format!("{}", 8 * layers * e * e),
    ]);
    t.row([
        "2".to_owned(),
        format!("{:.1}%", l2.avg_really_hot * 100.0),
        format!("{:.1}%", l2.avg_participation * 100.0),
        format!("{}", 8 * layers * e * e * e),
    ]);
    t.print();
    println!("(the paper sets l = 1: the E× larger table buys marginal accuracy)");

    println!("\n== Sweep 4: sparse-KV budget (StreamingLLM sinks + window) ==");
    let sc = Scenario::generate(
        setting.model(),
        setting.hardware(),
        klotski_bench::workload(32, 15),
        SEED,
    );
    let mut t = TextTable::new(["KV kept", "throughput (tok/s)", "peak DRAM (GB)"]);
    for (label, sparse) in [
        ("full", None),
        (
            "sinks 4 + window 252",
            Some(SparseAttention {
                sinks: 4,
                window: 252,
            }),
        ),
        (
            "sinks 4 + window 124",
            Some(SparseAttention {
                sinks: 4,
                window: 124,
            }),
        ),
        (
            "sinks 4 + window 60",
            Some(SparseAttention {
                sinks: 4,
                window: 60,
            }),
        ),
    ] {
        let mut cfg = KlotskiConfig::full();
        cfg.compression = Compression {
            quant: None,
            sparse_attention: sparse,
        };
        let r = KlotskiEngine::new(cfg).run(&sc).expect("run");
        t.row([
            label.to_owned(),
            format!("{:.2}", r.throughput_tps()),
            format!("{:.1}", r.peak_dram as f64 / 1e9),
        ]);
    }
    t.print();
    println!("(the §9.8 future-work direction; the native-path heavy-hitter variant");
    println!(" lives in klotski-moe::h2o and is validated in its tests)");

    println!("\n== Sweep 5: disk bandwidth (Mixtral-8x22B Env 1, bs 16, n 10) ==");
    let mut t = TextTable::new(["disk GB/s", "throughput (tok/s)"]);
    for disk_gbps in [0.5f64, 1.0, 2.0, 4.0] {
        let mut hw = Setting::Big8x22bEnv1.hardware();
        hw.disk_bw = disk_gbps * 1e9;
        let wl = klotski_bench::workload(16, 10);
        let sc = Scenario::generate(Setting::Big8x22bEnv1.model(), hw, wl, SEED);
        let r = KlotskiEngine::new(KlotskiConfig::full())
            .run(&sc)
            .expect("run");
        t.row([
            format!("{disk_gbps:.1}"),
            format!("{:.2}", r.throughput_tps()),
        ]);
    }
    t.print();
    println!("(Env 1's 8x22B runs are staging-bound: throughput tracks disk bandwidth)");
}
