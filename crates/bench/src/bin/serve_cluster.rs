//! Cluster-scale serving: autoscaling policy × traffic pattern → SLO
//! attainment vs replica-hours, for Mixtral-8×7B in Env 1 served by the
//! full Klotski engine behind a dynamic fleet.
//!
//! The fleet-level complement of `serve_scale`: there the fleet size is an
//! axis you sweep by hand; here an [`AutoscalePolicy`] moves it at run
//! time, paying a weight-streaming cold start (derived from the calibrated
//! cost model) for every mid-run spawn. Three traffic patterns:
//!
//! * **diurnal** — a Poisson stream warped by a day-like sinusoidal rate
//!   cycle: the canonical autoscaling workload, where a peak-sized static
//!   fleet idles through every trough;
//! * **flash_crowd** — a sudden multiplicative spike on steady load:
//!   stresses reaction time and cold-start cost;
//! * **replay** — the diurnal stream recorded to a `(t, prompt, gen)`
//!   trace, round-tripped through the text format, and replayed: gated
//!   byte-identical to the live diurnal cell, pinning that recorded
//!   workloads reproduce simulations exactly.
//!
//! Each pattern runs under four fleet policies: static at the cap
//! (over-provisioned baseline), static at the floor (under-provisioned),
//! queue-depth-reactive, and SLO-attainment-reactive. The headline gate
//! (full mode, diurnal): the queue-reactive autoscaler must hold SLO
//! attainment within 5 points of the peak-sized static fleet while
//! spending measurably fewer replica-hours.
//!
//! Output is deterministic under the fixed seed (the examples smoke test
//! asserts byte-identical reruns) and ends with one JSON line per cell
//! (committed as `BENCH_serve_cluster.json` for the perf trajectory).
//!
//! `KLOTSKI_CHEAP=1` shrinks the sweep to CI-smoke scale.

use klotski_bench::{cheap_mode, TextTable, SEED};
use klotski_core::engine::{KlotskiConfig, KlotskiEngine};
use klotski_core::scenario::Engine;
use klotski_model::hardware::HardwareSpec;
use klotski_model::spec::ModelSpec;
use klotski_model::trace::RequestTrace;
use klotski_serve::admission::AdmissionPolicy;
use klotski_serve::cluster::{
    serve_cluster, AutoscalePolicy, ClusterConfig, ClusterReport, ColdStartModel,
    QueueDepthReactive, SloReactive, StaticFleet,
};
use klotski_serve::dispatcher::DispatchPolicy;
use klotski_serve::metrics::{summarize, SloSpec, SloSummary};
use klotski_serve::server::{ServeConfig, Traffic};
use klotski_serve::traffic::{
    generate_with_profile, replay, to_trace, Arrivals, LengthDist, RateProfile, Request,
    TrafficConfig,
};
use klotski_sim::time::{SimDuration, SimTime};

/// Sweep parameters resolved once for cheap/full mode.
struct Sweep {
    batch_size: u32,
    n_max: u32,
    floor: u32,
    cap: u32,
    num_requests: u32,
    /// Base Poisson rate before profile warping.
    base_rate: f64,
    /// Diurnal cycle period.
    period: SimDuration,
    /// Flash-crowd spike instant, width, and magnitude.
    flash_at: SimTime,
    flash_width: SimDuration,
    flash_magnitude: f64,
    prompt: LengthDist,
    gen: LengthDist,
    tick: SimDuration,
    slo: SloSpec,
    admission: AdmissionPolicy,
    coldstart: ColdStartModel,
    /// Queue-reactive watermarks (backlog tokens per provisioned replica).
    high: u64,
    low: u64,
    patience: u32,
    /// SLO-reactive attainment target.
    slo_target: f64,
}

fn sweep_params(cheap: bool) -> Sweep {
    let n_max = if cheap { 4 } else { 8 };
    let slo_ttft = SimDuration::from_secs(if cheap { 60 } else { 120 });
    Sweep {
        batch_size: if cheap { 4 } else { 8 },
        n_max,
        floor: 1,
        cap: if cheap { 2 } else { 4 },
        num_requests: if cheap { 48 } else { 420 },
        base_rate: if cheap { 1.0 } else { 0.7 },
        period: SimDuration::from_secs(if cheap { 120 } else { 300 }),
        flash_at: SimTime::ZERO + SimDuration::from_secs(if cheap { 20 } else { 150 }),
        flash_width: SimDuration::from_secs(if cheap { 20 } else { 60 }),
        flash_magnitude: if cheap { 3.0 } else { 5.0 },
        prompt: LengthDist::Uniform {
            lo: if cheap { 32 } else { 64 },
            hi: if cheap { 64 } else { 192 },
        },
        gen: LengthDist::Uniform { lo: 2, hi: 8 },
        tick: SimDuration::from_secs(if cheap { 5 } else { 20 }),
        slo: SloSpec {
            ttft: slo_ttft,
            tpot: SimDuration::from_secs(8),
        },
        admission: AdmissionPolicy::Deadline {
            n: n_max,
            deadline: slo_ttft / 4,
        },
        // Every mid-run spawn streams its resident weights through the
        // calibrated H2D model — elasticity is not free.
        coldstart: ColdStartModel::WeightStreaming {
            provision: SimDuration::from_secs(2),
            resident_experts_per_layer: 2,
        },
        high: if cheap { 600 } else { 1600 },
        low: if cheap { 100 } else { 400 },
        patience: if cheap { 3 } else { 2 },
        slo_target: 0.95,
    }
}

/// The autoscaler roster, in presentation order.
const SCALERS: [&str; 4] = [
    "static_peak",
    "static_floor",
    "queue_reactive",
    "slo_reactive",
];

fn make_policy(name: &str, sweep: &Sweep) -> Box<dyn AutoscalePolicy> {
    match name {
        "static_peak" => Box::new(StaticFleet {
            replicas: sweep.cap,
        }),
        "static_floor" => Box::new(StaticFleet {
            replicas: sweep.floor,
        }),
        "queue_reactive" => Box::new(QueueDepthReactive::new(
            sweep.floor,
            sweep.cap,
            sweep.high,
            sweep.low,
            sweep.patience,
        )),
        "slo_reactive" => Box::new(SloReactive::new(
            sweep.floor,
            sweep.cap,
            sweep.slo_target,
            sweep.patience,
        )),
        other => panic!("unknown autoscaler {other}"),
    }
}

struct Cell {
    traffic: &'static str,
    scaler: &'static str,
    report: ClusterReport,
    summary: SloSummary,
}

impl Cell {
    fn attainment(&self) -> f64 {
        if self.summary.requests == 0 {
            1.0
        } else {
            self.summary.slo_met as f64 / self.summary.requests as f64
        }
    }
}

fn run_cell(
    engine: &dyn Engine,
    sweep: &Sweep,
    traffic_name: &'static str,
    stream: Vec<Request>,
    scaler: &'static str,
) -> Cell {
    let spec = ModelSpec::mixtral_8x7b();
    let hw = HardwareSpec::env1_rtx3090();
    let cfg = ClusterConfig {
        serve: ServeConfig {
            batch_size: sweep.batch_size,
            policy: sweep.admission,
            seed: SEED,
        },
        dispatch: DispatchPolicy::JoinShortestQueue,
        coldstart: sweep.coldstart,
        tick: sweep.tick,
        slo: sweep.slo,
    };
    let mut policy = make_policy(scaler, sweep);
    let report = serve_cluster(
        engine,
        &spec,
        &hw,
        &Traffic::Open(stream),
        &cfg,
        policy.as_mut(),
    )
    .expect("serve_cluster run");
    let summary = summarize(&report.serve, &sweep.slo);
    Cell {
        traffic: traffic_name,
        scaler,
        report,
        summary,
    }
}

fn json_line(c: &Cell, sweep: &Sweep, mode: &str) -> String {
    let s = &c.summary;
    let r = &c.report;
    format!(
        "{{\"bench\":\"serve_cluster\",\"mode\":\"{}\",\"traffic\":\"{}\",\"autoscaler\":\"{}\",\
         \"floor\":{},\"cap\":{},\"coldstart\":\"{}\",\"warmup_s\":{:.3},\
         \"dispatch\":\"jsq\",\"policy\":\"{}\",\"seed\":{},\
         \"requests\":{},\"slo_met\":{},\"attainment\":{:.4},\"replica_hours\":{:.4},\
         \"peak_provisioned\":{},\"spawned_total\":{},\"scale_events\":{},\
         \"ttft_p50_s\":{:.3},\"ttft_p99_s\":{:.3},\"throughput_tps\":{:.3},\"makespan_s\":{:.1}}}",
        mode,
        c.traffic,
        c.scaler,
        sweep.floor,
        sweep.cap,
        sweep.coldstart.label(),
        r.warmup.as_secs_f64(),
        sweep.admission.label(),
        SEED,
        s.requests,
        s.slo_met,
        c.attainment(),
        r.serve.replica_hours(),
        r.peak_provisioned,
        r.spawned_total,
        r.scale_events.len(),
        s.ttft.p50.as_secs_f64(),
        s.ttft.p99.as_secs_f64(),
        s.throughput_tps,
        r.serve.makespan.as_secs_f64(),
    )
}

fn print_panel(cells: &[Cell]) {
    let mut table = TextTable::new([
        "autoscaler",
        "SLO met",
        "attain",
        "rep-hours",
        "peak",
        "spawned",
        "events",
        "TTFT p99",
        "tok/s",
    ]);
    for c in cells {
        table.row([
            c.scaler.to_owned(),
            format!("{}/{}", c.summary.slo_met, c.summary.requests),
            format!("{:.3}", c.attainment()),
            format!("{:.3}", c.report.serve.replica_hours()),
            format!("{}", c.report.peak_provisioned),
            format!("{}", c.report.spawned_total),
            format!("{}", c.report.scale_events.len()),
            format!("{:.2}s", c.summary.ttft.p99.as_secs_f64()),
            format!("{:.2}", c.summary.throughput_tps),
        ]);
    }
    table.print();
}

fn find<'a>(cells: &'a [Cell], traffic: &str, scaler: &str) -> &'a Cell {
    cells
        .iter()
        .find(|c| c.traffic == traffic && c.scaler == scaler)
        .expect("swept cell")
}

fn main() {
    let cheap = cheap_mode();
    let sweep = sweep_params(cheap);
    let engine = KlotskiEngine::new(KlotskiConfig::full());
    let mut cells: Vec<Cell> = Vec::new();

    println!(
        "== serve_cluster: Mixtral-8x7B Env 1, Klotski engine, dynamic fleet {}..{}, \
         bs {}, n <= {}, deadline admission, jsq dispatch, tick {} ==",
        sweep.floor, sweep.cap, sweep.batch_size, sweep.n_max, sweep.tick
    );
    println!(
        "(SLO: TTFT <= {}, TPOT <= {}; cold start: {} — every mid-run spawn pays it)",
        sweep.slo.ttft,
        sweep.slo.tpot,
        sweep.coldstart.label(),
    );

    let traffic_cfg = TrafficConfig {
        num_requests: sweep.num_requests,
        prompt: sweep.prompt,
        gen: sweep.gen,
        seed: SEED,
    };
    // Trough well under one replica's capacity, peak well over it: a
    // floor-sized fleet drowns at the crest, a peak-sized one idles in
    // the trough — elasticity has something real to win.
    let diurnal_profile = RateProfile::Diurnal {
        period: sweep.period,
        trough: 0.2,
        peak: 2.2,
    };
    let diurnal = generate_with_profile(
        Arrivals::Poisson {
            rate: sweep.base_rate,
        },
        &traffic_cfg,
        &[diurnal_profile],
    );
    let flash = generate_with_profile(
        Arrivals::Poisson {
            rate: sweep.base_rate,
        },
        &traffic_cfg,
        &[RateProfile::FlashCrowd {
            at: sweep.flash_at,
            width: sweep.flash_width,
            magnitude: sweep.flash_magnitude,
        }],
    );
    // Record the diurnal stream and round-trip it through the on-disk text
    // format: the replayed workload must drive identical simulations.
    let trace_text = to_trace(&diurnal).to_text();
    let replayed = replay(&RequestTrace::parse(&trace_text).expect("trace round-trip"));

    for (name, stream) in [
        ("diurnal", &diurnal),
        ("flash_crowd", &flash),
        ("replay", &replayed),
    ] {
        println!("\n==== {name}: {} requests ====", stream.len());
        let panel: Vec<Cell> = SCALERS
            .into_iter()
            .map(|scaler| run_cell(&engine, &sweep, name, stream.clone(), scaler))
            .collect();
        print_panel(&panel);
        cells.extend(panel);
    }

    // ---- Gate 1 (always): trace replay is byte-exact ------------------
    // The replayed stream must reproduce the live diurnal cells exactly —
    // same outcomes, groups, replica lifetimes, and scale decisions.
    for scaler in SCALERS {
        let live = find(&cells, "diurnal", scaler);
        let rep = find(&cells, "replay", scaler);
        assert_eq!(
            live.report.serve.outcomes, rep.report.serve.outcomes,
            "{scaler}: replayed outcomes must be byte-identical"
        );
        assert_eq!(
            live.report.serve.groups, rep.report.serve.groups,
            "{scaler}: replayed groups must be byte-identical"
        );
        assert_eq!(
            live.report.serve.replicas, rep.report.serve.replicas,
            "{scaler}: replayed replica lifetimes must be byte-identical"
        );
        assert_eq!(
            live.report.scale_events, rep.report.scale_events,
            "{scaler}: replayed scale decisions must be byte-identical"
        );
    }
    println!("\ntrace replay reproduces the live diurnal run byte-for-byte: confirmed");

    // ---- Gate 2 (always): every cell serves the whole stream ----------
    for c in &cells {
        assert_eq!(
            c.summary.requests as u32, sweep.num_requests,
            "{}/{}: request conservation",
            c.traffic, c.scaler
        );
        assert!(
            c.report.peak_provisioned <= sweep.cap,
            "{}/{}: fleet exceeded cap",
            c.traffic,
            c.scaler
        );
    }
    println!("all cells serve the full stream within the fleet cap: confirmed");

    // ---- Gate 3 (full mode): elasticity pays on the diurnal cycle -----
    // The reactive autoscaler must hold attainment within 5 points of the
    // peak-sized static fleet while spending measurably (>= 10%) fewer
    // replica-hours.
    if !cheap {
        let peak = find(&cells, "diurnal", "static_peak");
        let reactive = find(&cells, "diurnal", "queue_reactive");
        let (a_peak, a_reactive) = (peak.attainment(), reactive.attainment());
        assert!(
            a_reactive >= a_peak - 0.05,
            "queue_reactive attainment {a_reactive:.3} must be within 5pp of \
             static_peak {a_peak:.3} on the diurnal cycle"
        );
        let (h_peak, h_reactive) = (
            peak.report.serve.replica_hours(),
            reactive.report.serve.replica_hours(),
        );
        assert!(
            h_reactive <= 0.9 * h_peak,
            "queue_reactive must spend measurably fewer replica-hours than \
             static_peak: {h_reactive:.3} vs {h_peak:.3}"
        );
        println!(
            "diurnal: queue_reactive holds {a_reactive:.3} attainment (static_peak {a_peak:.3}) \
             at {h_reactive:.2} replica-hours vs {h_peak:.2} ({:.0}% saved): confirmed",
            (1.0 - h_reactive / h_peak) * 100.0
        );
    }

    let mode = if cheap { "cheap" } else { "full" };
    println!("\n-- JSON --");
    for c in &cells {
        println!("{}", json_line(c, &sweep, mode));
    }
}
