//! Fault-tolerant cluster serving: fault intensity × recovery posture →
//! goodput, loss, and SLO attainment for Mixtral-8×7B in Env 1 served by
//! the full Klotski engine behind an autoscaled fleet.
//!
//! The robustness complement of `serve_cluster`: there the fleet reacts
//! to *load*; here it must also survive *failures*. A seeded
//! [`FaultPlan`] injects replica crashes (in-flight and queued work
//! lost), straggler windows (a replica silently serving N× slower), and
//! cold-start trouble (stalled or failed spawns) as deterministic
//! simulation events. Three recovery postures face four fault tiers:
//!
//! * **naive** — fault-oblivious: crash-lost requests are dropped on the
//!   spot (explicitly accounted, never silently), stragglers keep
//!   receiving load;
//! * **retry_health** — crash-lost requests re-enqueue with capped
//!   exponential backoff; suspected stragglers (observed/estimated
//!   service-time EWMA against the fleet's best) are excluded from
//!   dispatch while healthy replicas exist;
//! * **full** — additionally hedges stuck chat-class requests off
//!   suspect replicas and sheds batch-class work at admission once the
//!   per-replica backlog passes a watermark.
//!
//! Gates (asserted in cheap mode too): every cell resolves every request
//! exactly once (served, dropped, or shed — conservation is absolute);
//! at the mid tier, retry_health drops and sheds nothing while holding
//! ≥ 80% of its own fault-free goodput, and the naive baseline provably
//! suffers (lost requests or missed SLO).
//!
//! Output is deterministic under the fixed seed and ends with one JSON
//! line per cell (committed as `BENCH_serve_faults.json`).
//!
//! `KLOTSKI_CHEAP=1` shrinks the sweep to CI-smoke scale.

use klotski_bench::{cheap_mode, TextTable, SEED};
use klotski_core::engine::{KlotskiConfig, KlotskiEngine};
use klotski_core::scenario::Engine;
use klotski_model::hardware::HardwareSpec;
use klotski_model::spec::ModelSpec;
use klotski_serve::admission::AdmissionPolicy;
use klotski_serve::cluster::{
    serve_cluster_faulty, ClusterConfig, ClusterReport, ColdStartModel, DegradationPolicy,
    FaultPlan, FaultScenario, QueueDepthReactive, ToleranceConfig,
};
use klotski_serve::continuous::ClassAssign;
use klotski_serve::dispatcher::DispatchPolicy;
use klotski_serve::metrics::{summarize, SloSpec, SloSummary};
use klotski_serve::server::{ServeConfig, Traffic};
use klotski_serve::traffic::{generate, Arrivals, LengthDist, Request, TrafficConfig};
use klotski_sim::time::SimDuration;

/// Sweep parameters resolved once for cheap/full mode.
struct Sweep {
    batch_size: u32,
    n_max: u32,
    floor: u32,
    cap: u32,
    num_requests: u32,
    rate: f64,
    prompt: LengthDist,
    gen: LengthDist,
    tick: SimDuration,
    slo: SloSpec,
    admission: AdmissionPolicy,
    coldstart: ColdStartModel,
    high: u64,
    low: u64,
    patience: u32,
    /// Fault onsets land uniformly inside this window (the arrival span,
    /// so faults hit a loaded fleet, not the drained tail).
    horizon: SimDuration,
    restart_after: SimDuration,
    /// Full posture: hedge chat requests stuck this long on a suspect.
    hedge_after: SimDuration,
    /// Full posture: shed batch work above this backlog per warm replica.
    shed_watermark: u64,
}

fn sweep_params(cheap: bool) -> Sweep {
    let n_max = if cheap { 4 } else { 8 };
    let slo_ttft = SimDuration::from_secs(if cheap { 90 } else { 150 });
    Sweep {
        batch_size: if cheap { 4 } else { 8 },
        n_max,
        floor: 2,
        cap: if cheap { 3 } else { 4 },
        num_requests: if cheap { 48 } else { 240 },
        rate: if cheap { 1.0 } else { 0.8 },
        prompt: LengthDist::Uniform {
            lo: if cheap { 32 } else { 64 },
            hi: if cheap { 64 } else { 160 },
        },
        gen: LengthDist::Uniform { lo: 2, hi: 8 },
        tick: SimDuration::from_secs(if cheap { 5 } else { 15 }),
        slo: SloSpec {
            ttft: slo_ttft,
            tpot: SimDuration::from_secs(8),
        },
        admission: AdmissionPolicy::Deadline {
            n: n_max,
            deadline: slo_ttft / 6,
        },
        coldstart: ColdStartModel::Fixed(SimDuration::from_secs(if cheap { 10 } else { 20 })),
        high: if cheap { 600 } else { 1600 },
        low: if cheap { 100 } else { 400 },
        patience: 2,
        horizon: SimDuration::from_secs(if cheap { 40 } else { 250 }),
        restart_after: SimDuration::from_secs(if cheap { 15 } else { 30 }),
        hedge_after: slo_ttft / 4,
        shed_watermark: if cheap { 700 } else { 2_000 },
    }
}

/// Fault tiers, in rising intensity. `none` is the fault-free anchor the
/// recovery gate measures against.
const TIERS: [&str; 4] = ["none", "low", "mid", "high"];

fn make_plan(tier: &str, sweep: &Sweep) -> FaultPlan {
    let base = FaultScenario {
        seed: SEED ^ 0x5eed_fa17,
        horizon: sweep.horizon,
        crashes: 0,
        restart_after: Some(sweep.restart_after),
        degraded: 0,
        slowdown_pct: 300,
        degrade_width: sweep.horizon / 4,
        coldstart_stalls: 0,
        coldstart_stall: SimDuration::from_secs(10),
        coldstart_fails: 0,
    };
    match tier {
        "none" => FaultPlan::none(),
        "low" => FaultPlan::generate(&FaultScenario {
            crashes: 1,
            degraded: 1,
            slowdown_pct: 200,
            ..base
        }),
        "mid" => FaultPlan::generate(&FaultScenario {
            crashes: 2,
            degraded: 1,
            coldstart_stalls: 1,
            ..base
        }),
        "high" => FaultPlan::generate(&FaultScenario {
            crashes: 3,
            degraded: 2,
            slowdown_pct: 400,
            coldstart_stalls: 1,
            coldstart_fails: 1,
            ..base
        }),
        other => panic!("unknown fault tier {other}"),
    }
}

/// The recovery postures, in presentation order.
const MODES: [&str; 3] = ["naive", "retry_health", "full"];

fn make_tolerance(mode: &str, sweep: &Sweep) -> ToleranceConfig {
    match mode {
        "naive" => ToleranceConfig::naive(),
        "retry_health" => ToleranceConfig::default(),
        "full" => ToleranceConfig {
            hedge_after: Some(sweep.hedge_after),
            degradation: DegradationPolicy::ShedBatchOver {
                backlog_per_replica: sweep.shed_watermark,
            },
            classes: ClassAssign::ChatShare { chat_pct: 70 },
            ..ToleranceConfig::default()
        },
        other => panic!("unknown tolerance mode {other}"),
    }
}

struct Cell {
    tier: &'static str,
    mode: &'static str,
    report: ClusterReport,
    summary: SloSummary,
}

impl Cell {
    fn attainment(&self) -> f64 {
        if self.summary.requests == 0 {
            1.0
        } else {
            self.summary.slo_met as f64 / self.summary.requests as f64
        }
    }

    fn served(&self) -> usize {
        self.summary.requests - self.summary.dropped - self.summary.shed
    }
}

fn run_cell(
    engine: &dyn Engine,
    sweep: &Sweep,
    stream: &[Request],
    tier: &'static str,
    mode: &'static str,
) -> Cell {
    let spec = ModelSpec::mixtral_8x7b();
    let hw = HardwareSpec::env1_rtx3090();
    let cfg = ClusterConfig {
        serve: ServeConfig {
            batch_size: sweep.batch_size,
            policy: sweep.admission,
            seed: SEED,
        },
        dispatch: DispatchPolicy::JoinShortestQueue,
        coldstart: sweep.coldstart,
        tick: sweep.tick,
        slo: sweep.slo,
    };
    let plan = make_plan(tier, sweep);
    let tol = make_tolerance(mode, sweep);
    let report = serve_cluster_faulty(
        engine,
        &spec,
        &hw,
        &Traffic::Open(stream.to_vec()),
        &cfg,
        &mut QueueDepthReactive::new(
            sweep.floor,
            sweep.cap,
            sweep.high,
            sweep.low,
            sweep.patience,
        ),
        &plan,
        &tol,
    )
    .expect("serve_cluster_faulty run");
    let summary = summarize(&report.serve, &sweep.slo);
    Cell {
        tier,
        mode,
        report,
        summary,
    }
}

fn json_line(c: &Cell, mode_label: &str) -> String {
    let s = &c.summary;
    let f = &c.report.faults;
    format!(
        "{{\"bench\":\"serve_faults\",\"mode\":\"{}\",\"tier\":\"{}\",\"tolerance\":\"{}\",\
         \"seed\":{},\"requests\":{},\"served\":{},\"dropped\":{},\"shed\":{},\"retried\":{},\
         \"slo_met\":{},\"attainment\":{:.4},\"goodput_tps\":{:.3},\"throughput_tps\":{:.3},\
         \"crashes\":{},\"lost_inflight\":{},\"lost_queued\":{},\"restarts\":{},\"degraded\":{},\
         \"hedges\":{},\"stalled\":{},\"coldstart_stalls\":{},\"coldstart_failures\":{},\
         \"wasted_busy_s\":{:.3},\"retry_tokens\":{},\"replica_hours\":{:.4},\"makespan_s\":{:.1}}}",
        mode_label,
        c.tier,
        c.mode,
        SEED,
        s.requests,
        c.served(),
        s.dropped,
        s.shed,
        s.retried,
        s.slo_met,
        c.attainment(),
        s.goodput_tps,
        s.throughput_tps,
        f.crashes,
        f.lost_inflight,
        f.lost_queued,
        f.restarts,
        f.degraded,
        f.hedges,
        f.stalled,
        f.coldstart_stalls,
        f.coldstart_failures,
        f.wasted_busy.as_secs_f64(),
        s.retry_tokens,
        c.report.serve.replica_hours(),
        c.report.serve.makespan.as_secs_f64(),
    )
}

fn print_panel(cells: &[Cell]) {
    let mut table = TextTable::new([
        "tolerance",
        "served",
        "dropped",
        "shed",
        "retried",
        "SLO met",
        "attain",
        "goodput",
        "crashes",
        "wasted",
    ]);
    for c in cells {
        table.row([
            c.mode.to_owned(),
            format!("{}/{}", c.served(), c.summary.requests),
            format!("{}", c.summary.dropped),
            format!("{}", c.summary.shed),
            format!("{}", c.summary.retried),
            format!("{}/{}", c.summary.slo_met, c.summary.requests),
            format!("{:.3}", c.attainment()),
            format!("{:.2}", c.summary.goodput_tps),
            format!("{}", c.report.faults.crashes),
            format!("{:.1}s", c.report.faults.wasted_busy.as_secs_f64()),
        ]);
    }
    table.print();
}

fn find<'a>(cells: &'a [Cell], tier: &str, mode: &str) -> &'a Cell {
    cells
        .iter()
        .find(|c| c.tier == tier && c.mode == mode)
        .expect("swept cell")
}

fn main() {
    let cheap = cheap_mode();
    let sweep = sweep_params(cheap);
    let engine = KlotskiEngine::new(KlotskiConfig::full());
    let mut cells: Vec<Cell> = Vec::new();

    println!(
        "== serve_faults: Mixtral-8x7B Env 1, Klotski engine, fleet {}..{}, bs {}, n <= {}, \
         deadline admission, jsq dispatch, tick {} ==",
        sweep.floor, sweep.cap, sweep.batch_size, sweep.n_max, sweep.tick
    );
    println!(
        "(SLO: TTFT <= {}, TPOT <= {}; cold start {}; crashes replaced after {})",
        sweep.slo.ttft,
        sweep.slo.tpot,
        sweep.coldstart.label(),
        sweep.restart_after,
    );

    let stream = generate(
        Arrivals::Poisson { rate: sweep.rate },
        &TrafficConfig {
            num_requests: sweep.num_requests,
            prompt: sweep.prompt,
            gen: sweep.gen,
            seed: SEED,
        },
    );

    for tier in TIERS {
        let plan = make_plan(tier, &sweep);
        println!(
            "\n==== tier {tier}: {} fault(s) planned ====",
            plan.faults.len()
        );
        let panel: Vec<Cell> = MODES
            .into_iter()
            .map(|mode| run_cell(&engine, &sweep, &stream, tier, mode))
            .collect();
        print_panel(&panel);
        cells.extend(panel);
    }

    // ---- Gate 1 (always): absolute request conservation ---------------
    // Every cell resolves every request exactly once: served, explicitly
    // dropped, or explicitly shed. No silent loss, no duplicates.
    for c in &cells {
        assert_eq!(
            c.summary.requests as u32, sweep.num_requests,
            "{}/{}: request conservation",
            c.tier, c.mode
        );
        let ids: Vec<u64> = c.report.serve.outcomes.iter().map(|o| o.id).collect();
        let expected: Vec<u64> = (0..u64::from(sweep.num_requests)).collect();
        assert_eq!(
            ids, expected,
            "{}/{}: exactly-once resolution",
            c.tier, c.mode
        );
    }
    println!("\nevery cell resolves every request exactly once: confirmed");

    // ---- Gate 2 (always): retry+health loses nothing at the mid tier --
    // The tolerant posture serves every request (no drops within the
    // retry budget, nothing shed) and recovers >= 80% of its own
    // fault-free goodput despite two crashes and a straggler window.
    let anchor = find(&cells, "none", "retry_health");
    let mid = find(&cells, "mid", "retry_health");
    assert_eq!(
        (mid.summary.dropped, mid.summary.shed),
        (0, 0),
        "retry_health must serve every request at the mid tier"
    );
    assert!(
        mid.summary.retried > 0,
        "the mid tier must actually lose and re-serve work"
    );
    assert!(
        mid.summary.goodput_tps >= 0.8 * anchor.summary.goodput_tps,
        "retry_health must recover >= 80% of fault-free goodput at the mid tier: \
         {:.3} vs {:.3} tok/s",
        mid.summary.goodput_tps,
        anchor.summary.goodput_tps,
    );
    println!(
        "mid tier: retry_health serves {}/{} with {} retries at {:.2} tok/s \
         ({:.0}% of fault-free {:.2}): confirmed",
        mid.served(),
        mid.summary.requests,
        mid.summary.retried,
        mid.summary.goodput_tps,
        100.0 * mid.summary.goodput_tps / anchor.summary.goodput_tps,
        anchor.summary.goodput_tps,
    );

    // ---- Gate 3 (always): the naive baseline provably suffers ---------
    let naive_mid = find(&cells, "mid", "naive");
    assert!(
        naive_mid.summary.dropped > 0 || naive_mid.summary.slo_met < naive_mid.summary.requests,
        "the fault-oblivious baseline must lose requests or miss SLO at the mid tier"
    );
    println!(
        "mid tier: naive drops {} request(s) at {:.3} attainment: confirmed",
        naive_mid.summary.dropped,
        naive_mid.attainment(),
    );

    let mode = if cheap { "cheap" } else { "full" };
    println!("\n-- JSON --");
    for c in &cells {
        println!("{}", json_line(c, mode));
    }
}
