//! Fig. 12: GPU memory usage over the prefill, step by step (one GPU op —
//! a layer's attention/gate or one expert — per step), for complete
//! offloading versus the spare-VRAM ("further use memory") mode.

use klotski_bench::{Setting, TextTable};
use klotski_core::engine::{KlotskiConfig, KlotskiEngine};
use klotski_core::scenario::{Engine, Scenario};

fn run_curve(sc: &Scenario, use_spare: bool) -> (Vec<(u64, u64)>, u64, f64) {
    let mut cfg = KlotskiConfig::full();
    cfg.use_spare_vram = use_spare;
    cfg.record_memory = true;
    let engine = KlotskiEngine::new(cfg);
    let report = engine.run(sc).expect("engine run");
    assert!(report.succeeded(), "{:?}", report.oom);
    // The memory curve is sampled at every GPU compute completion; restrict
    // to the prefill portion like the paper ("the decoding phase is
    // essentially a repetition").
    let metrics = report.metrics.as_ref().expect("memory recorded");
    let prefill_end = report.prefill_time;
    let mut curve = Vec::new();
    let mut op = 0u64;
    for s in metrics.memory_samples_for(klotski_sim::memory::Tier::Vram) {
        if s.time.saturating_since(klotski_sim::time::SimTime::ZERO) > prefill_end {
            break;
        }
        op += 1;
        curve.push((op, s.in_use));
    }
    (curve, report.peak_vram, report.throughput_tps())
}

fn main() {
    for (setting, bs) in [(Setting::Small8x7bEnv1, 16u32), (Setting::Big8x22bEnv2, 16)] {
        let wl = klotski_bench::workload(bs, setting.n());
        let sc = Scenario::generate(setting.model(), setting.hardware(), wl, klotski_bench::SEED);
        let original = sc.spec.total_bytes();
        let vram_limit = sc.hw.vram_bytes;

        println!("\n== Fig. 12: {} (prefill) ==", setting.title());
        println!(
            "original requirement {:.1} GB | GPU memory limit {:.1} GB",
            original as f64 / 1e9,
            vram_limit as f64 / 1e9
        );

        let (complete, peak_c, tps_c) = run_curve(&sc, false);
        let (further, peak_f, tps_f) = run_curve(&sc, true);

        // Downsampled usage curve.
        let mut table =
            TextTable::new(["prefill op #", "complete offload (GB)", "further-use (GB)"]);
        let samples = 12;
        let len = complete.len().max(further.len()).max(1);
        for i in 0..samples {
            let idx = i * len / samples;
            let c = complete.get(idx.min(complete.len().saturating_sub(1)));
            let f = further.get(idx.min(further.len().saturating_sub(1)));
            table.row([
                c.map(|x| x.0).unwrap_or(0).to_string(),
                format!("{:.2}", c.map(|x| x.1).unwrap_or(0) as f64 / 1e9),
                format!("{:.2}", f.map(|x| x.1).unwrap_or(0) as f64 / 1e9),
            ]);
        }
        table.print();

        let reduction_c = (1.0 - peak_c as f64 / original as f64) * 100.0;
        let reduction_f = (1.0 - peak_f as f64 / original as f64) * 100.0;
        println!(
            "complete offloading: peak {:.1} GB = {reduction_c:.1}% below the original \
             requirement ({tps_c:.1} tok/s)",
            peak_c as f64 / 1e9
        );
        println!(
            "further-use memory:  peak {:.1} GB = {reduction_f:.1}% below the original \
             requirement ({tps_f:.1} tok/s)",
            peak_f as f64 / 1e9
        );
        println!(
            "paper: >94.1% reduction fully offloaded; 74.5% while sustaining ~40 tok/s (Env 2)"
        );
    }
}
