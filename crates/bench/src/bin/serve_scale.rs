//! Multi-replica serving: replicas × arrival rate × dispatch policy →
//! request-level SLO metrics, for Mixtral-8×7B in Env 1 served by the
//! full Klotski engine behind the dispatcher.
//!
//! The serving-side complement of `serve_sweep`: there the axis is *how
//! groups are formed* on one engine; here admission is fixed (deadline)
//! and the axes are *how many engines* there are and *how the stream is
//! sharded* across them — round-robin, join-shortest-queue, or cost-model-
//! informed placement. Two experiments, two claims:
//!
//! * **scale** — a fixed, oversaturating burst stream swept over replica
//!   counts: throughput must scale with R (gated at >1.3× per doubling
//!   for the state-aware policies; blind round-robin's weaker scaling is
//!   reported).
//! * **dispatch** — a contested near-capacity stream (rate ∝ R) with
//!   heavy-tailed prompts: at every R ≥ 2 the state-aware policies must
//!   beat round-robin goodput, because a heavy request pads its whole
//!   group and blind request-count balancing keeps feeding the replica
//!   that drew it.
//!
//! Output is deterministic under the fixed seed (the examples smoke test
//! asserts byte-identical reruns) and ends with one JSON line per cell
//! (committed as `BENCH_serve_scale.json` for the perf trajectory).
//!
//! `KLOTSKI_CHEAP=1` shrinks the sweep to CI-smoke scale.

use klotski_bench::{cheap_mode, TextTable, SEED};
use klotski_core::engine::{KlotskiConfig, KlotskiEngine};
use klotski_core::scenario::Engine;
use klotski_model::hardware::HardwareSpec;
use klotski_model::spec::ModelSpec;
use klotski_serve::admission::AdmissionPolicy;
use klotski_serve::dispatcher::{serve_scaled, DispatchPolicy, ScaleConfig};
use klotski_serve::metrics::{summarize, SloSpec, SloSummary};
use klotski_serve::server::{ServeConfig, Traffic};
use klotski_serve::traffic::{generate, Arrivals, LengthDist, TrafficConfig};
use klotski_sim::time::SimDuration;

struct Cell {
    experiment: &'static str,
    replicas: u32,
    rate: f64,
    dispatch: DispatchPolicy,
    summary: SloSummary,
    utilization: Vec<f64>,
}

fn json_line(c: &Cell, mode: &str, admission: &str) -> String {
    let s = &c.summary;
    let util: Vec<String> = c.utilization.iter().map(|u| format!("{u:.3}")).collect();
    format!(
        "{{\"bench\":\"serve_scale\",\"mode\":\"{}\",\"experiment\":\"{}\",\"replicas\":{},\
         \"rate_rps\":{:.2},\"dispatch\":\"{}\",\"policy\":\"{}\",\"seed\":{},\
         \"traffic\":\"bursty\",\"requests\":{},\"slo_met\":{},\
         \"ttft_p50_s\":{:.3},\"ttft_p99_s\":{:.3},\"e2e_p99_s\":{:.3},\"goodput_tps\":{:.3},\
         \"throughput_tps\":{:.3},\"utilization\":[{}]}}",
        mode,
        c.experiment,
        c.replicas,
        c.rate,
        c.dispatch.label(),
        admission,
        SEED,
        s.requests,
        s.slo_met,
        s.ttft.p50.as_secs_f64(),
        s.ttft.p99.as_secs_f64(),
        s.e2e.p99.as_secs_f64(),
        s.goodput_tps,
        s.throughput_tps,
        util.join(","),
    )
}

/// Sweep parameters resolved once for cheap/full mode.
struct Sweep {
    batch_size: u32,
    n_max: u32,
    replica_counts: Vec<u32>,
    /// Requests in a dispatch-experiment cell (scaled ×4 for saturation).
    num_requests: u32,
    prompt: LengthDist,
    gen: LengthDist,
    /// Near-capacity arrival rate *per replica* (dispatch experiment).
    near_unit: f64,
    /// Oversaturating absolute rate (scale experiment).
    sat_rate: f64,
    slo: SloSpec,
    admission: AdmissionPolicy,
    burst: u32,
}

fn sweep_params(cheap: bool) -> Sweep {
    let batch_size = if cheap { 4 } else { 8 };
    let n_max = if cheap { 4 } else { 8 };
    let slo_e2e = SimDuration::from_secs(if cheap { 60 } else { 240 });
    Sweep {
        batch_size,
        n_max,
        replica_counts: if cheap { vec![1, 2] } else { vec![1, 2, 4] },
        num_requests: if cheap { 48 } else { 96 },
        // Mostly light prompts with a heavy tail: the padded-group cost of
        // a heavy prompt is what separates state-aware dispatch from blind
        // round-robin. Outputs stay narrow so token counts track prefill
        // work.
        prompt: if cheap {
            LengthDist::HeavyTail {
                lo: 32,
                hi: 64,
                heavy: 512,
                heavy_pct: 20,
            }
        } else {
            LengthDist::HeavyTail {
                lo: 128,
                hi: 256,
                heavy: 1024,
                heavy_pct: 20,
            }
        },
        gen: if cheap {
            LengthDist::Uniform { lo: 2, hi: 6 }
        } else {
            LengthDist::Uniform { lo: 4, hi: 16 }
        },
        near_unit: if cheap { 0.60 } else { 0.12 },
        sat_rate: if cheap { 1.5 } else { 2.0 },
        slo: SloSpec {
            ttft: slo_e2e / 2,
            tpot: SimDuration::from_secs(8),
        },
        // Deadline admission isolates the dispatch axis: groups are cut by
        // size or timer identically on every replica, so cells differ only
        // in *where* requests were routed.
        admission: AdmissionPolicy::Deadline {
            n: n_max,
            deadline: slo_e2e / 4,
        },
        burst: batch_size,
    }
}

fn run_cell(
    engine: &dyn Engine,
    sweep: &Sweep,
    experiment: &'static str,
    replicas: u32,
    rate: f64,
    num_requests: u32,
    dispatch: DispatchPolicy,
) -> Cell {
    let spec = ModelSpec::mixtral_8x7b();
    let hw = HardwareSpec::env1_rtx3090();
    let stream = generate(
        Arrivals::Bursty {
            rate,
            burst: sweep.burst,
        },
        &TrafficConfig {
            num_requests,
            prompt: sweep.prompt,
            gen: sweep.gen,
            seed: SEED,
        },
    );
    let report = serve_scaled(
        engine,
        &spec,
        &hw,
        &Traffic::Open(stream),
        &ScaleConfig {
            serve: ServeConfig {
                batch_size: sweep.batch_size,
                policy: sweep.admission,
                seed: SEED,
            },
            replicas,
            dispatch,
        },
    )
    .expect("serve_scaled run");
    let summary = summarize(&report, &sweep.slo);
    let utilization: Vec<f64> = report.replicas.iter().map(|r| r.utilization).collect();
    Cell {
        experiment,
        replicas,
        rate,
        dispatch,
        summary,
        utilization,
    }
}

fn find<'a>(cells: &'a [Cell], exp: &str, r: u32, d: DispatchPolicy) -> &'a Cell {
    cells
        .iter()
        .find(|c| c.experiment == exp && c.replicas == r && c.dispatch == d)
        .expect("swept cell")
}

fn print_table(cells: &[Cell]) {
    let mut table = TextTable::new([
        "dispatch",
        "TTFT p50",
        "TTFT p99",
        "e2e p99",
        "SLO met",
        "goodput",
        "tok/s",
        "util min..max",
    ]);
    for c in cells {
        let (umin, umax) = c
            .utilization
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), &u| {
                (lo.min(u), hi.max(u))
            });
        table.row([
            c.dispatch.label().to_owned(),
            format!("{:.2}s", c.summary.ttft.p50.as_secs_f64()),
            format!("{:.2}s", c.summary.ttft.p99.as_secs_f64()),
            format!("{:.2}s", c.summary.e2e.p99.as_secs_f64()),
            format!("{}/{}", c.summary.slo_met, c.summary.requests),
            format!("{:.2}", c.summary.goodput_tps),
            format!("{:.2}", c.summary.throughput_tps),
            format!("{umin:.2}..{umax:.2}"),
        ]);
    }
    table.print();
}

fn main() {
    let cheap = cheap_mode();
    let sweep = sweep_params(cheap);
    let engine = KlotskiEngine::new(KlotskiConfig::full());
    let mut cells: Vec<Cell> = Vec::new();

    println!(
        "== serve_scale: Mixtral-8x7B Env 1, Klotski engine x R replicas, bs {}, n <= {}, \
         deadline admission, heavy-tailed prompts in bursts of {} ==",
        sweep.batch_size, sweep.n_max, sweep.burst
    );
    println!(
        "(SLO: TTFT <= {}, TPOT <= {}; goodput counts only SLO-met requests)",
        sweep.slo.ttft, sweep.slo.tpot
    );

    // ---- Experiment 1: throughput scaling under saturation ------------
    let heavy_requests = sweep.num_requests * 4;
    println!(
        "\n==== scale: {} requests at {:.2} req/s (oversaturates every R) ====",
        heavy_requests, sweep.sat_rate
    );
    for &replicas in &sweep.replica_counts {
        println!("\n-- {replicas} replica(s) --");
        let panel: Vec<Cell> = DispatchPolicy::ALL
            .into_iter()
            .map(|dispatch| {
                run_cell(
                    &engine,
                    &sweep,
                    "scale",
                    replicas,
                    sweep.sat_rate,
                    heavy_requests,
                    dispatch,
                )
            })
            .collect();
        print_table(&panel);
        cells.extend(panel);
    }

    // Throughput must scale with the replica count under the state-aware
    // policies. (Round-robin scales too, but can scale worse: blind
    // sharding shrinks per-engine group sizes and with them the
    // pipeline's weight-sharing amortization — reported, not gated.)
    for pair in sweep.replica_counts.windows(2) {
        let (lo, hi) = (pair[0], pair[1]);
        for d in [DispatchPolicy::JoinShortestQueue, DispatchPolicy::CostAware] {
            let t_lo = find(&cells, "scale", lo, d).summary.throughput_tps;
            let t_hi = find(&cells, "scale", hi, d).summary.throughput_tps;
            assert!(
                t_hi > 1.3 * t_lo,
                "{}: throughput must scale with replicas: R={hi} gives {t_hi:.2} tok/s vs \
                 R={lo} at {t_lo:.2} tok/s",
                d.label(),
            );
        }
        let rr_ratio = find(&cells, "scale", hi, DispatchPolicy::RoundRobin)
            .summary
            .throughput_tps
            / find(&cells, "scale", lo, DispatchPolicy::RoundRobin)
                .summary
                .throughput_tps
                .max(f64::MIN_POSITIVE);
        println!("\nR={lo}->{hi}: round_robin scales {rr_ratio:.2}x (state-aware gated at >1.3x)");
    }
    println!("throughput scales with replica count under saturation: confirmed");

    // ---- Experiment 2: dispatch policy at contested load --------------
    println!(
        "\n==== dispatch: {} requests at {:.2} req/s per replica (near capacity) ====",
        sweep.num_requests, sweep.near_unit
    );
    for &replicas in &sweep.replica_counts {
        // Offered load and request count both scale with R, so every
        // replica sees the same expected work and the makespan tail does
        // not drown the comparison.
        let rate = sweep.near_unit * replicas as f64;
        let requests = sweep.num_requests * replicas;
        println!(
            "\n-- {replicas} replica(s), {requests} requests, arrival rate {rate:.2} req/s --"
        );
        let panel: Vec<Cell> = DispatchPolicy::ALL
            .into_iter()
            .map(|dispatch| {
                run_cell(
                    &engine, &sweep, "dispatch", replicas, rate, requests, dispatch,
                )
            })
            .collect();
        print_table(&panel);
        cells.extend(panel);
    }

    // At every R >= 2 the state-aware policies must beat blind
    // round-robin goodput in the contested regime.
    for &r in sweep.replica_counts.iter().filter(|&&r| r >= 2) {
        let goodput =
            |d: DispatchPolicy| -> f64 { find(&cells, "dispatch", r, d).summary.goodput_tps };
        let rr = goodput(DispatchPolicy::RoundRobin);
        let jsq = goodput(DispatchPolicy::JoinShortestQueue);
        let cost = goodput(DispatchPolicy::CostAware);
        assert!(
            jsq > rr,
            "jsq goodput must beat round-robin at R={r}: {jsq:.3} vs {rr:.3}"
        );
        assert!(
            cost > rr,
            "cost-aware goodput must beat round-robin at R={r}: {cost:.3} vs {rr:.3}"
        );
        println!("R={r}: goodput rr {rr:.2} < jsq {jsq:.2}, rr {rr:.2} < cost_aware {cost:.2}: confirmed");
    }

    let mode = if cheap { "cheap" } else { "full" };
    println!("\n-- JSON --");
    for c in &cells {
        println!("{}", json_line(c, mode, sweep.admission.label()));
    }
}
