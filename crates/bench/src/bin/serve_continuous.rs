//! Continuous batching vs. run-to-completion: step-level slot refill,
//! chunked preemptible prefill, and priority classes under saturated
//! bursty, heavy-tailed traffic.
//!
//! Both sides run on the [`CostEngine`] baseline, whose group price equals
//! the continuous scheduler's summed step price *exactly* (the admission
//! tests pin the identity) — so every delta below is scheduling policy,
//! never pricing. Two experiments, two claims:
//!
//! * **goodput** — one saturating bursty stream with heavy-tailed prompt
//!   *and* output lengths, served run-to-completion (`refill: false`) and
//!   continuously (`refill: true`). Run-to-completion pads every group to
//!   its slowest member, so the heavy tail idles most slots; slot refill
//!   reclaims them at step boundaries. Gated in full mode at >= 1.3x
//!   goodput.
//! * **classes** — the same stream scheduled continuously with a uniform
//!   queue vs. a chat/batch priority split (`ClassAssign::ChatShare`).
//!   Chat admissions jump the queue (and park batch-class prefill between
//!   chunks when slots are free mid-prefill), so the *same* chat requests
//!   see lower TTFT; per-class numbers come from [`summarize_where`].
//!   Gated in full mode: classed chat TTFT p50 at most half of uniform.
//!
//! Output is deterministic under the fixed seed (the examples smoke test
//! asserts byte-identical reruns) and ends with one JSON line per cell
//! (committed as `BENCH_serve_continuous.json` for the perf trajectory).
//!
//! `KLOTSKI_CHEAP=1` shrinks the sweep to CI-smoke scale.

use klotski_bench::{cheap_mode, TextTable, SEED};
use klotski_model::hardware::HardwareSpec;
use klotski_model::spec::ModelSpec;
use klotski_serve::admission::AdmissionPolicy;
use klotski_serve::continuous::{
    serve_continuous, ClassAssign, ContinuousConfig, CostEngine, RequestClass,
};
use klotski_serve::metrics::{summarize, summarize_where, SloSpec, SloSummary};
use klotski_serve::server::{ServeConfig, Traffic};
use klotski_serve::traffic::{generate, Arrivals, LengthDist, TrafficConfig};
use klotski_sim::time::SimDuration;

struct Cell {
    experiment: &'static str,
    scheduler: &'static str,
    classes: ClassAssign,
    summary: SloSummary,
    /// The chat-share subpopulation (same ids in every cell, whether or
    /// not the scheduler prioritized them).
    chat: SloSummary,
    preemptions: u32,
    refills: u32,
    prefill_chunks: u32,
    occupancy: f64,
}

fn json_line(c: &Cell, mode: &str) -> String {
    let s = &c.summary;
    format!(
        "{{\"bench\":\"serve_continuous\",\"mode\":\"{}\",\"experiment\":\"{}\",\
         \"scheduler\":\"{}\",\"classes\":\"{}\",\"seed\":{},\"traffic\":\"bursty_heavy_tail\",\
         \"requests\":{},\"slo_met\":{},\"ttft_p50_s\":{:.3},\"ttft_p99_s\":{:.3},\
         \"e2e_p99_s\":{:.3},\"goodput_tps\":{:.3},\"throughput_tps\":{:.3},\
         \"preemptions\":{},\"refills\":{},\"prefill_chunks\":{},\"occupancy\":{:.3},\
         \"chat_requests\":{},\"chat_slo_met\":{},\"chat_ttft_p50_s\":{:.3}}}",
        mode,
        c.experiment,
        c.scheduler,
        c.classes.label(),
        SEED,
        s.requests,
        s.slo_met,
        s.ttft.p50.as_secs_f64(),
        s.ttft.p99.as_secs_f64(),
        s.e2e.p99.as_secs_f64(),
        s.goodput_tps,
        s.throughput_tps,
        c.preemptions,
        c.refills,
        c.prefill_chunks,
        c.occupancy,
        c.chat.requests,
        c.chat.slo_met,
        c.chat.ttft.p50.as_secs_f64(),
    )
}

/// Sweep parameters resolved once for cheap/full mode.
struct Sweep {
    batch_size: u32,
    n_max: u32,
    num_requests: u32,
    /// Saturating arrival rate (req/s) — work arrives faster than the
    /// run-to-completion loop drains it, so padding waste compounds.
    rate: f64,
    burst: u32,
    prompt: LengthDist,
    gen: LengthDist,
    prefill_chunk: u32,
    chat_pct: u32,
    slo: SloSpec,
}

fn sweep_params(cheap: bool) -> Sweep {
    Sweep {
        batch_size: if cheap { 4 } else { 8 },
        n_max: if cheap { 2 } else { 4 },
        num_requests: if cheap { 32 } else { 128 },
        rate: 4.0,
        burst: if cheap { 4 } else { 8 },
        // Heavy tails on both axes: a heavy prompt walls off the queue
        // behind its prefill (what chunking preempts), a heavy output pads
        // its whole group's decode (what slot refill reclaims).
        prompt: if cheap {
            LengthDist::HeavyTail {
                lo: 16,
                hi: 64,
                heavy: 512,
                heavy_pct: 15,
            }
        } else {
            LengthDist::HeavyTail {
                lo: 32,
                hi: 128,
                heavy: 1024,
                heavy_pct: 15,
            }
        },
        gen: if cheap {
            LengthDist::HeavyTail {
                lo: 2,
                hi: 4,
                heavy: 32,
                heavy_pct: 25,
            }
        } else {
            LengthDist::HeavyTail {
                lo: 2,
                hi: 8,
                heavy: 64,
                heavy_pct: 25,
            }
        },
        prefill_chunk: if cheap { 32 } else { 64 },
        chat_pct: 30,
        // Sits between the two schedulers' TTFT distributions in the
        // saturated regime: continuous mostly meets it, run-to-completion
        // mostly does not — which is exactly the goodput story.
        slo: SloSpec {
            ttft: SimDuration::from_secs(if cheap { 120 } else { 240 }),
            tpot: SimDuration::from_secs(10),
        },
    }
}

fn run_cell(
    engine: &CostEngine,
    sweep: &Sweep,
    experiment: &'static str,
    refill: bool,
    classes: ClassAssign,
) -> Cell {
    let spec = ModelSpec::mixtral_8x7b();
    let hw = HardwareSpec::env1_rtx3090();
    let stream = generate(
        Arrivals::Bursty {
            rate: sweep.rate,
            burst: sweep.burst,
        },
        &TrafficConfig {
            num_requests: sweep.num_requests,
            prompt: sweep.prompt,
            gen: sweep.gen,
            seed: SEED,
        },
    );
    let report = serve_continuous(
        engine,
        &spec,
        &hw,
        &Traffic::Open(stream),
        &ContinuousConfig {
            serve: ServeConfig {
                batch_size: sweep.batch_size,
                policy: AdmissionPolicy::Deadline {
                    n: sweep.n_max,
                    deadline: SimDuration::from_secs(2),
                },
                seed: SEED,
            },
            refill,
            prefill_chunk: sweep.prefill_chunk,
            classes,
        },
    )
    .expect("serve_continuous run");
    let summary = summarize(&report.serve, &sweep.slo);
    // Chat subpopulation is defined by the *share*, not by what the cell's
    // scheduler did — so the same ids are compared across every cell.
    let share = ClassAssign::ChatShare {
        chat_pct: sweep.chat_pct,
    };
    let chat = summarize_where(&report.serve, &sweep.slo, &|o| {
        share.class_of(o.id) == RequestClass::Chat
    });
    Cell {
        experiment,
        scheduler: if refill { "continuous" } else { "rtc" },
        classes,
        summary,
        chat,
        preemptions: report.preemptions,
        refills: report.refills,
        prefill_chunks: report.prefill_chunks,
        occupancy: report.occupancy,
    }
}

fn print_table(cells: &[Cell]) {
    let mut table = TextTable::new([
        "scheduler",
        "classes",
        "TTFT p50",
        "TTFT p99",
        "e2e p99",
        "SLO met",
        "goodput",
        "occupancy",
        "preempt",
        "refills",
        "chunks",
        "chat TTFT p50",
    ]);
    for c in cells {
        table.row([
            c.scheduler.to_owned(),
            c.classes.label().to_owned(),
            format!("{:.2}s", c.summary.ttft.p50.as_secs_f64()),
            format!("{:.2}s", c.summary.ttft.p99.as_secs_f64()),
            format!("{:.2}s", c.summary.e2e.p99.as_secs_f64()),
            format!("{}/{}", c.summary.slo_met, c.summary.requests),
            format!("{:.2}", c.summary.goodput_tps),
            format!("{:.2}", c.occupancy),
            format!("{}", c.preemptions),
            format!("{}", c.refills),
            format!("{}", c.prefill_chunks),
            format!("{:.2}s", c.chat.ttft.p50.as_secs_f64()),
        ]);
    }
    table.print();
}

fn main() {
    let cheap = cheap_mode();
    let sweep = sweep_params(cheap);
    let spec = ModelSpec::mixtral_8x7b();
    let hw = HardwareSpec::env1_rtx3090();
    let engine = CostEngine::new(&spec, &hw);
    let mut cells: Vec<Cell> = Vec::new();

    println!(
        "== serve_continuous: Mixtral-8x7B Env 1, cost-parity engine, {} slots \
         (bs {} x n {}), {} requests at {:.1} req/s in bursts of {}, prefill chunk {} ==",
        sweep.batch_size * sweep.n_max,
        sweep.batch_size,
        sweep.n_max,
        sweep.num_requests,
        sweep.rate,
        sweep.burst,
        sweep.prefill_chunk,
    );
    println!(
        "(SLO: TTFT <= {}, TPOT <= {}; goodput counts only SLO-met requests; \
         both schedulers price steps identically)",
        sweep.slo.ttft, sweep.slo.tpot
    );

    // ---- Experiment 1: goodput, continuous vs run-to-completion -------
    println!("\n==== goodput: slot refill vs run-to-completion under saturation ====\n");
    let panel = vec![
        run_cell(&engine, &sweep, "goodput", false, ClassAssign::Uniform),
        run_cell(&engine, &sweep, "goodput", true, ClassAssign::Uniform),
    ];
    print_table(&panel);
    let rtc = panel[0].summary.goodput_tps;
    let cont = panel[1].summary.goodput_tps;
    let ratio = cont / rtc.max(f64::MIN_POSITIVE);
    println!(
        "\ngoodput: rtc {rtc:.2} tok/s -> continuous {cont:.2} tok/s ({ratio:.2}x); \
         occupancy {:.2} -> {:.2}",
        panel[0].occupancy, panel[1].occupancy
    );
    assert!(
        panel[1].refills > 0,
        "saturated stream must exercise slot refill"
    );
    if !cheap {
        // The tentpole gate: at cost parity, step-level refill must beat
        // run-to-completion goodput by a wide margin under padding waste.
        assert!(
            ratio >= 1.3,
            "continuous goodput must be >= 1.3x run-to-completion under \
             saturated heavy-tailed load: {cont:.2} vs {rtc:.2} ({ratio:.2}x)"
        );
        println!("continuous >= 1.3x run-to-completion goodput: confirmed");
    }
    cells.extend(panel);

    // ---- Experiment 2: priority classes ------------------------------
    println!(
        "\n==== classes: uniform queue vs {}% chat share (same chat ids compared) ====\n",
        sweep.chat_pct
    );
    let panel = vec![
        run_cell(&engine, &sweep, "classes", true, ClassAssign::Uniform),
        run_cell(
            &engine,
            &sweep,
            "classes",
            true,
            ClassAssign::ChatShare {
                chat_pct: sweep.chat_pct,
            },
        ),
    ];
    print_table(&panel);
    let uni = &panel[0];
    let classed = &panel[1];
    println!(
        "\nchat TTFT p50: uniform {:.2}s -> classed {:.2}s; chat SLO met {}/{} -> {}/{}",
        uni.chat.ttft.p50.as_secs_f64(),
        classed.chat.ttft.p50.as_secs_f64(),
        uni.chat.slo_met,
        uni.chat.requests,
        classed.chat.slo_met,
        classed.chat.requests,
    );
    if !cheap {
        // The class gate: the same chat requests must see their median
        // TTFT at least halved by priority admission. (Preemptions can
        // legitimately be zero here — with the slot pool saturated, chat
        // jumps the queue at step boundaries rather than mid-prefill; the
        // parking path itself is pinned by unit and golden tests.)
        assert!(
            classed.chat.ttft.p50 * 2 < uni.chat.ttft.p50,
            "priority classes must at least halve chat TTFT p50: {} vs uniform {}",
            classed.chat.ttft.p50,
            uni.chat.ttft.p50
        );
        println!("priority classes at least halve chat TTFT p50: confirmed");
    }
    cells.extend(panel);

    let mode = if cheap { "cheap" } else { "full" };
    println!("\n-- JSON --");
    for c in &cells {
        println!("{}", json_line(c, mode));
    }
}
