//! Fig. 14: throughput as a function of the batch-group size `n` (3–15)
//! and the batch size (4–64), for Mixtral-8×7B in Env 1 and Mixtral-8×22B
//! in Env 2.

use klotski_bench::{tps_cell, Setting, TextTable, SEED};
use klotski_core::engine::{KlotskiConfig, KlotskiEngine};
use klotski_core::scenario::{Engine, Scenario};
use klotski_model::workload::Workload;

fn main() {
    let engine = KlotskiEngine::new(KlotskiConfig::full());
    let batch_sizes = klotski_bench::sweep_batch_sizes();
    let ns: Vec<u32> = if klotski_bench::cheap_mode() {
        vec![3, 5]
    } else {
        (3..=15).step_by(2).collect()
    };
    for setting in [Setting::Small8x7bEnv1, Setting::Big8x22bEnv2] {
        println!(
            "\n== Fig. 14: {} — throughput vs n and batch size ==",
            setting.title()
        );
        let mut headers = vec!["n".to_owned()];
        for &bs in &batch_sizes {
            headers.push(format!("bs={bs}"));
        }
        let mut table = TextTable::new(headers);
        for &n in &ns {
            let mut row = vec![n.to_string()];
            for &bs in &batch_sizes {
                let wl = Workload::paper_default(bs).with_batches(n);
                let sc = Scenario::generate(setting.model(), setting.hardware(), wl, SEED);
                let report = engine.run(&sc).expect("engine run");
                row.push(tps_cell(&report));
            }
            table.row(row);
        }
        table.print();
    }
    println!("\nreading (paper §9.7): small n leaves I/O uncovered; throughput climbs");
    println!("steeply with n, faster at larger batch sizes, then flattens once the");
    println!("inter-/intra-layer bubbles are gone and extra n only amortizes I/O counts.");
}
