//! Table 1: throughput improvement from the dense-model I/O-overlap
//! strategy (multi-batch weight sharing) applied to dense models (OPT)
//! versus MoE models (Switch Transformers).
//!
//! The paper's point: the strategy helps dense models much more
//! (201–268%) than MoE models (111–190%), because uniformly prefetching
//! "the next layer" ignores the MoE layer's multiplied expert I/O.

use klotski_bench::{tps_cell, TextTable, SEED};
use klotski_core::engine::{KlotskiConfig, KlotskiEngine};
use klotski_core::scenario::{Engine, Scenario};
use klotski_model::hardware::HardwareSpec;
use klotski_model::spec::ModelSpec;
use klotski_model::workload::Workload;

fn main() {
    println!("== Table 1: I/O-overlap strategy on dense vs MoE models ==");
    println!("(batch size 4, sequence length 512, Environment 1)\n");

    // "Original": single-batch pipeline that prefetches the next layer
    // while computing the current one (Fig. 4(a)). "+Strategy": the same
    // with multi-batch weight sharing (Fig. 4(b)), n = 8.
    let original = KlotskiEngine::new(KlotskiConfig::ablation_simple_pipeline());
    let strategy = KlotskiEngine::new(KlotskiConfig::ablation_multi_batch());
    let n = 8;

    let mut table = TextTable::new([
        "Model",
        "Size (GB)",
        "Original",
        "+ Strategy",
        "Improvement",
        "Bubbles after",
    ]);
    let mut dense_bubbles = Vec::new();
    let mut moe_bubbles = Vec::new();

    for spec in [
        ModelSpec::opt_1_3b(),
        ModelSpec::opt_6_7b(),
        ModelSpec::switch_base(16),
        ModelSpec::switch_base(128),
    ] {
        let wl = if klotski_bench::cheap_mode() {
            Workload::new(4, n, 128, 8)
        } else {
            Workload::new(4, n, 512, 32)
        };
        let sc = Scenario::generate(spec.clone(), HardwareSpec::env1_rtx3090(), wl, SEED);
        let base = original.run(&sc).expect("original run");
        let plus = strategy.run(&sc).expect("strategy run");
        let improvement = (plus.throughput_tps() / base.throughput_tps() - 1.0) * 100.0;
        let bubbles = plus.bubble_fraction() * 100.0;
        if spec.is_moe() {
            moe_bubbles.push(bubbles);
        } else {
            dense_bubbles.push(bubbles);
        }
        table.row([
            spec.name.clone(),
            format!("{:.1}", spec.total_bytes() as f64 / 1e9),
            tps_cell(&base),
            tps_cell(&plus),
            format!("{improvement:.0}%"),
            format!("{bubbles:.0}%"),
        ]);
    }
    table.print();

    let dense_avg = dense_bubbles.iter().sum::<f64>() / dense_bubbles.len() as f64;
    let moe_avg = moe_bubbles.iter().sum::<f64>() / moe_bubbles.len() as f64;
    println!(
        "\nGPU bubbles remaining after the strategy: dense {dense_avg:.0}% vs MoE {moe_avg:.0}%"
    );
    println!(
        "paper's §3.1 observation — the strategy leaves MoE pipelines stalled \
         where dense pipelines run busy — {}",
        if moe_avg > dense_avg {
            "holds"
        } else {
            "DID NOT REPRODUCE"
        }
    );
    println!(
        "(note: raw improvement ratios differ from the paper's because multi-batch \
         amortization itself favours the I/O-bound MoE runs; see EXPERIMENTS.md)"
    );
}
