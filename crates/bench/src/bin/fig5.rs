//! Fig. 5: expert-popularity heatmaps for Mixtral-8×7B and the decoder
//! parts of switch-base-8/16 — the hot-expert phenomenon Klotski exploits.

use klotski_bench::SEED;
use klotski_model::spec::ModelSpec;
use klotski_model::trace::{GatingModel, TraceConfig};

fn heatmap(spec: &ModelSpec, seqs: u32, decoder_only_layers: Option<u32>) {
    let cfg = TraceConfig::for_model(spec, SEED);
    let gating = GatingModel::new(&cfg);
    let trace = gating.generate_trace(seqs, 512, 8, SEED + 1);
    let total_layers = trace.n_moe_layers();
    let (from, to) = match decoder_only_layers {
        Some(d) => (total_layers - d, total_layers),
        None => (0, total_layers),
    };
    println!("\n== {} (MoE layers {from}..{to}) ==", spec.name);
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '@'];
    let experts = trace.n_experts().min(16);
    for e in 0..experts {
        print!("e{e:<3} |");
        for l in from..to {
            let counts = trace.popularity_counts(l);
            let total: u64 = counts.iter().sum();
            let share = counts[e as usize] as f64 / total.max(1) as f64;
            let idx = ((share * experts as f64).min(1.0) * (shades.len() - 1) as f64) as usize;
            print!("{}", shades[idx]);
        }
        println!("|");
    }

    // Quantify the skew: top-K token share per layer.
    let k = spec.top_k.max(1) as usize;
    let mut min_share = f64::INFINITY;
    let mut max_share: f64 = 0.0;
    let mut sum = 0.0;
    for l in from..to {
        let counts = trace.popularity_counts(l);
        let total: u64 = counts.iter().sum();
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let share = sorted.iter().take(k).sum::<u64>() as f64 / total.max(1) as f64;
        min_share = min_share.min(share);
        max_share = max_share.max(share);
        sum += share;
    }
    println!(
        "top-{k} coverage: min {:.1}%, avg {:.1}%, max {:.1}%  (paper: e.g. 53.7% for Mixtral layer 14)",
        min_share * 100.0,
        sum / (to - from) as f64 * 100.0,
        max_share * 100.0
    );
}

fn main() {
    println!("== Fig. 5: expert popularity heatmaps (darker = more tokens) ==");
    let seqs = if klotski_bench::cheap_mode() { 16 } else { 64 };
    heatmap(&ModelSpec::mixtral_8x7b(), seqs, None);
    // The paper plots the decoder halves of the switch models (6 MoE layers).
    heatmap(&ModelSpec::switch_base(8), seqs, Some(6));
    heatmap(&ModelSpec::switch_base(16), seqs, Some(6));
}
