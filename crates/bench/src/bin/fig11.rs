//! Fig. 11: the throughput–latency trade-off. Each engine sweeps the batch
//! size; the curve closer to the lower-right (high throughput at low
//! latency) is better.

use klotski_bench::{fig10_engines, Setting, TextTable};

fn main() {
    for setting in Setting::ALL {
        println!(
            "\n== Fig. 11: {} — (latency s → throughput tok/s) per batch size ==",
            setting.title()
        );
        let batch_sizes = klotski_bench::sweep_batch_sizes();
        let mut headers = vec!["Engine".to_owned()];
        for &bs in &batch_sizes {
            headers.push(format!("bs={bs}"));
        }
        let mut table = TextTable::new(headers);
        for engine in fig10_engines() {
            let mut row = vec![engine.name()];
            for &bs in &batch_sizes {
                let sc = setting.scenario(bs);
                let report = engine.run(&sc).expect("engine run");
                if report.succeeded() {
                    row.push(format!(
                        "{:.0}s→{:.2}",
                        report.latency_secs(),
                        report.throughput_tps()
                    ));
                } else {
                    row.push("OOM".to_owned());
                }
            }
            table.row(row);
        }
        table.print();
    }
    println!("\n(the paper reads these as curves: at an equal time budget, Klotski");
    println!("completes ≥3x the work of FlexGen in Env 2 and dominates the rest)");
}
